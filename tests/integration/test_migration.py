"""Query migration to a replica DBMS (the paper's Grid scenario)."""

import pickle

import pytest

from repro import QuerySession, SuspendSpec
from repro.harness.experiments import nlj_buffer_trigger
from repro.workloads import build_complex_plan, build_smj_s


class TestComplexPlanMigration:
    """The 10-operator plan carries disk-resident state (sort sublists,
    dumped buffers) that must travel inside the SuspendedQuery."""

    @pytest.mark.parametrize("strategy", ["all_dump", "lp"])
    def test_migrate_complex_plan(self, strategy):
        db, plan = build_complex_plan(scale=400)
        ref = QuerySession(*build_complex_plan(scale=400)).execute().rows

        session = QuerySession(db, plan)
        first = session.execute(
            suspend_when=nlj_buffer_trigger("nlj0", 400)
        )
        sq = session.suspend(SuspendSpec(strategy=strategy))
        sq.export_payloads(db.state_store)
        wire = pickle.dumps(sq)

        replica = db.replicate()
        shipped = pickle.loads(wire)
        resumed = QuerySession.resume(replica, shipped)
        assert first.rows + resumed.execute().rows == ref

    def test_migration_charges_receiving_side(self):
        db, plan = build_smj_s(selectivity=0.5, scale=400)
        session = QuerySession(db, plan)
        session.execute(max_rows=50)
        sq = session.suspend(SuspendSpec(strategy="all_dump"))
        sq.export_payloads(db.state_store)

        replica = db.replicate()
        before = replica.disk.counters.pages_written
        QuerySession.resume(replica, pickle.loads(pickle.dumps(sq)))
        # Re-homing sublists + dumps writes pages on the replica.
        assert replica.disk.counters.pages_written > before

    def test_resume_in_place_still_works_after_export(self):
        """Exporting payloads must not break local resume."""
        db, plan = build_smj_s(selectivity=0.5, scale=400)
        ref = QuerySession(*build_smj_s(selectivity=0.5, scale=400)).execute().rows
        session = QuerySession(db, plan)
        first = session.execute(max_rows=40)
        sq = session.suspend(SuspendSpec(strategy="lp"))
        sq.export_payloads(db.state_store)
        resumed = QuerySession.resume(db, sq)
        assert first.rows + resumed.execute().rows == ref
