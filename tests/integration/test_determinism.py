"""Determinism: the virtual-clock design makes every run reproducible."""

from repro import QuerySession, SuspendSpec
from repro.harness.experiments import (
    measure_suspend_overhead,
    nlj_buffer_trigger,
)
from repro.workloads import build_complex_plan, build_nlj_s


def test_identical_runs_charge_identical_costs():
    costs = []
    for _ in range(2):
        db, plan = build_nlj_s(selectivity=0.5, scale=400)
        session = QuerySession(db, plan)
        session.execute(max_rows=200)
        costs.append(db.now)
    assert costs[0] == costs[1]


def test_overhead_measurements_are_bit_identical():
    results = []
    for _ in range(2):
        factory = lambda: build_complex_plan(scale=400)
        _, plan = factory()
        trigger = nlj_buffer_trigger("nlj0", int(0.85 * plan.buffer_tuples))
        r = measure_suspend_overhead(factory, trigger, "lp")
        results.append(
            (r.total_overhead, r.suspend_cost, r.resume_cost)
        )
    assert results[0] == results[1]


def test_suspend_plans_are_deterministic():
    plans = []
    for _ in range(2):
        db, plan = build_nlj_s(selectivity=0.3, scale=400)
        session = QuerySession(db, plan)
        session.execute(max_rows=50)
        sq = session.suspend(SuspendSpec(strategy="lp"))
        plans.append(
            tuple(sorted((k, str(v)) for k, v in sq.suspend_plan.decisions.items()))
        )
    assert plans[0] == plans[1]
