"""Integration: the paper's headline claims at reduced scale.

Each test reproduces the *shape* of one evaluation result (who wins, where
the crossover falls) on a smaller instance than the benchmarks use, so the
claims stay covered by the fast test suite.
"""

import math

import pytest

from repro.harness.experiments import (
    measure_suspend_overhead,
    nlj_buffer_trigger,
    root_rows_trigger,
    run_reference_to_milestone,
    scan_position_trigger,
)
from repro.workloads import (
    build_complex_plan,
    build_left_deep_nlj,
    build_nlj_s,
    build_skewed_nlj_s,
)

SCALE = 400  # paper scale / 400: R has 5,500 tuples, buffers 500


def overhead(selectivity, strategy, scale=SCALE):
    factory = lambda: build_nlj_s(selectivity=selectivity, scale=scale)
    _, plan = factory()
    trigger = nlj_buffer_trigger("nlj", plan.buffer_tuples // 2)
    return measure_suspend_overhead(factory, trigger, strategy)


class TestFigure8Shape:
    def test_dump_wins_at_low_selectivity(self):
        assert (
            overhead(0.05, "all_dump").total_overhead
            < overhead(0.05, "all_goback").total_overhead
        )

    def test_goback_wins_at_high_selectivity(self):
        assert (
            overhead(0.9, "all_goback").total_overhead
            < overhead(0.9, "all_dump").total_overhead
        )

    def test_goback_suspend_time_always_much_lower(self):
        for sel in (0.05, 0.9):
            assert (
                overhead(sel, "all_goback").suspend_cost
                < overhead(sel, "all_dump").suspend_cost / 3
            )

    def test_lp_tracks_the_minimum(self):
        for sel in (0.05, 0.9):
            lp = overhead(sel, "lp").total_overhead
            best = min(
                overhead(sel, "all_dump").total_overhead,
                overhead(sel, "all_goback").total_overhead,
            )
            assert lp <= best + 1.0

    def test_dump_overhead_flat_in_selectivity(self):
        low = overhead(0.1, "all_dump").total_overhead
        high = overhead(0.9, "all_dump").total_overhead
        assert low == pytest.approx(high, rel=0.25)


class TestFigure9Shape:
    def test_gap_grows_with_suspend_point(self):
        """Later suspend points mean more state: the strategy gap widens."""
        gaps = []
        for frac in (0.25, 0.9):
            factory = lambda: build_nlj_s(selectivity=0.9, scale=SCALE)
            _, plan = factory()
            trigger = nlj_buffer_trigger(
                "nlj", int(plan.buffer_tuples * frac)
            )
            dump = measure_suspend_overhead(factory, trigger, "all_dump")
            goback = measure_suspend_overhead(factory, trigger, "all_goback")
            gaps.append(abs(dump.total_overhead - goback.total_overhead))
        assert gaps[1] > gaps[0]


class TestFigure12Shape:
    def test_online_beats_static_in_low_selectivity_region(self):
        factory = lambda: build_skewed_nlj_s(scale=SCALE)
        trigger = scan_position_trigger("scan_R", 3000)
        online = measure_suspend_overhead(factory, trigger, "lp")
        static = measure_suspend_overhead(factory, trigger, "static")
        assert online.total_overhead < static.total_overhead

    def test_online_matches_static_in_high_selectivity_region(self):
        factory = lambda: build_skewed_nlj_s(scale=SCALE)
        trigger = scan_position_trigger("scan_R", 6500)
        online = measure_suspend_overhead(factory, trigger, "lp")
        static = measure_suspend_overhead(factory, trigger, "static")
        assert online.total_overhead <= static.total_overhead + 1.0


class TestFigure13Shape:
    def test_hybrid_beats_both_purists(self):
        factory = lambda: build_complex_plan(scale=SCALE)
        _, plan = factory()
        trigger = nlj_buffer_trigger("nlj0", int(0.85 * plan.buffer_tuples))
        results = {
            s: measure_suspend_overhead(factory, trigger, s)
            for s in ("all_dump", "all_goback", "lp")
        }
        assert (
            results["lp"].total_overhead
            < min(
                results["all_dump"].total_overhead,
                results["all_goback"].total_overhead,
            )
        )
        assert results["lp"].suspend_cost < results["all_dump"].suspend_cost


class TestFigure14Shape:
    def test_overhead_decreases_as_budget_grows(self):
        factory = lambda: build_left_deep_nlj(scale=SCALE)
        trigger = nlj_buffer_trigger("nlj2", 400)
        db, plan = factory()
        ref, _ = run_reference_to_milestone(db, plan, trigger)
        overheads = []
        suspends = []
        # Measured suspend cost includes the fixed SuspendedQuery write
        # (~one control page) on top of the budgeted per-operator costs.
        sq_write = 2.5
        for budget in (1.0, 20.0, math.inf):
            r = measure_suspend_overhead(
                factory, trigger, "lp", budget=budget, reference_cost=ref
            )
            overheads.append(r.total_overhead)
            suspends.append(r.suspend_cost)
            assert (
                r.suspend_cost <= budget + sq_write + 1e-6
                or budget == math.inf
            )
        assert overheads[0] >= overheads[-1]
        assert suspends[-1] >= suspends[0]
