"""The suspend-time cost model must track measured reality.

The optimizer is only as good as its constants: these tests compare the
estimated suspend/resume costs of concrete plans against the costs the
simulator actually charges when those plans run.
"""

import pytest

from repro import QuerySession
from repro.core.costs import build_cost_model
from repro.core.optimizer import choose_suspend_plan, estimate_plan_cost
from repro.harness.experiments import (
    measure_suspend_overhead,
    nlj_buffer_trigger,
)
from repro.workloads import build_nlj_s


@pytest.mark.parametrize("selectivity", [0.1, 0.5, 1.0])
@pytest.mark.parametrize("strategy", ["all_dump", "all_goback"])
def test_estimates_track_measurements(selectivity, strategy):
    factory = lambda: build_nlj_s(selectivity=selectivity, scale=200)
    _, plan = factory()
    trigger = nlj_buffer_trigger("nlj", plan.buffer_tuples // 2)

    # Estimated costs at the suspend point.
    db, p = factory()
    session = QuerySession(db, p)
    session.execute(suspend_when=trigger)
    model = build_cost_model(session.runtime)
    suspend_plan = choose_suspend_plan(session.runtime, strategy=strategy)
    estimate = estimate_plan_cost(suspend_plan, model)

    measured = measure_suspend_overhead(factory, trigger, strategy)

    # Suspend cost: the measurement adds the fixed SuspendedQuery write.
    assert measured.suspend_cost == pytest.approx(
        estimate.suspend, abs=5.0
    )
    # Total overhead: within 2x (the paper calls g^r an approximation;
    # skipping makes actual resume cheaper than the estimate).
    assert measured.total_overhead <= estimate.total * 2 + 5.0
    assert measured.total_overhead >= estimate.total * 0.3 - 5.0


def test_lp_choice_agrees_with_measured_winner():
    """Where the purist plans differ measurably, the LP must side with
    the measured winner (the whole point of online optimization)."""
    for selectivity in (0.1, 1.0):
        factory = lambda: build_nlj_s(selectivity=selectivity, scale=200)
        _, plan = factory()
        trigger = nlj_buffer_trigger("nlj", plan.buffer_tuples // 2)
        dump = measure_suspend_overhead(factory, trigger, "all_dump")
        goback = measure_suspend_overhead(factory, trigger, "all_goback")
        lp = measure_suspend_overhead(factory, trigger, "lp")
        measured_best = min(dump.total_overhead, goback.total_overhead)
        assert lp.total_overhead <= measured_best + 1.0
