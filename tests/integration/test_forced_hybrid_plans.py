"""Directed tests of hand-built hybrid suspend plans.

The optimizer usually picks these combinations itself; here they are
*forced* via ``suspend(plan=...)`` so every branch of the protocol —
especially DumpState answering ``Suspend(Ctr)`` (the dump-to-contract
reconciliation) — is exercised deterministically.
"""

import pytest

from repro import QuerySession, SuspendSpec
from repro.common.errors import InvalidSuspendPlanError
from repro.core.costs import build_cost_model
from repro.core.optimizer import enumerate_valid_plans
from repro.core.strategies import OpDecision, Strategy, SuspendPlan
from repro.core.suspended_query import KIND_DUMP_TO_CONTRACT

from tests.conftest import (
    make_small_db,
    reference_rows,
    suspend_resume_rows,
    tiny_nlj_plan,
    tiny_smj_plan,
)


def forced_plan(session, **name_decisions):
    """Build a SuspendPlan from operator-name -> decision mappings."""
    by_name = {op.name: op.op_id for op in session.runtime.ops.values()}
    decisions = {}
    for name, decision in name_decisions.items():
        if isinstance(decision, str) and decision == "dump":
            decisions[by_name[name]] = OpDecision.dump()
        else:
            decisions[by_name[name]] = OpDecision.goback(by_name[decision])
    return SuspendPlan(decisions=decisions, source="forced")


class TestNLJDumpUnderContract:
    """Parent NLJ goes back; the child stack dumps under its contract."""

    def run_forced(self, point, **name_decisions):
        plan = tiny_nlj_plan(selectivity=0.8, buffer_tuples=40)
        ref = reference_rows(make_small_db, plan)
        db = make_small_db()
        session = QuerySession(db, plan)
        first = session.execute(max_rows=point)
        if session.status.value == "completed":
            return None
        sp = forced_plan(session, **name_decisions)
        sq = session.suspend(SuspendSpec(plan=sp))
        resumed = QuerySession.resume(db, sq)
        return (first.rows + resumed.execute().rows, ref, sq)

    def test_parent_goback_children_dump(self):
        """NLJ goes back to itself; filter/scan dump at current position
        (allowed: the fresh suspend-time contract owes no output)."""
        result = self.run_forced(
            30,
            nlj="nlj",
            filter="nlj",
            scan_R="nlj",
            scan_S="dump",
        )
        assert result is not None
        got, ref, _ = result
        assert got == ref

    def test_deep_chain_with_mid_dump(self):
        """Two NLJs: top goes back, bottom dumps under the chain —
        the KIND_DUMP_TO_CONTRACT path."""
        from repro.engine.plan import FilterSpec, NLJSpec, ScanSpec
        from repro.relational.expressions import (
            EquiJoinCondition,
            UniformSelect,
        )

        plan = NLJSpec(
            outer=NLJSpec(
                outer=FilterSpec(
                    ScanSpec("R", label="scan_R"),
                    UniformSelect(1, 0.8),
                    label="filter",
                ),
                inner=ScanSpec("S", label="scan_S1"),
                condition=EquiJoinCondition(0, 0, modulus=40),
                buffer_tuples=60,
                label="nlj_low",
            ),
            inner=ScanSpec("S", label="scan_S2"),
            condition=EquiJoinCondition(3, 0, modulus=25),
            buffer_tuples=30,
            label="nlj_top",
        )
        ref = reference_rows(make_small_db, plan)
        hybrid_seen = False
        for point in (1, 9, 60, 200):
            db = make_small_db()
            session = QuerySession(db, plan)
            first = session.execute(max_rows=point)
            if session.status.value == "completed":
                continue
            sp = forced_plan(
                session,
                nlj_top="nlj_top",
                nlj_low="dump",
                filter="dump",
                scan_R="dump",
                scan_S1="dump",
                scan_S2="dump",
            )
            try:
                sq = session.suspend(SuspendSpec(plan=sp))
            except InvalidSuspendPlanError:
                continue  # c_{i,j} forbids the dump at this point
            kinds = {e.kind for e in sq.entries.values()}
            if KIND_DUMP_TO_CONTRACT in kinds:
                hybrid_seen = True
            resumed = QuerySession.resume(db, sq)
            assert first.rows + resumed.execute().rows == ref, f"@{point}"
        assert hybrid_seen, "expected at least one dump-under-contract"


class TestExhaustiveForcedPlans:
    """Every valid plan at a tricky suspend point preserves output."""

    @pytest.mark.parametrize("point", [17, 90])
    def test_all_valid_plans_for_smj(self, point):
        plan = tiny_smj_plan()
        ref = reference_rows(make_small_db, plan)
        db = make_small_db()
        probe = QuerySession(db, plan)
        probe.execute(max_rows=point)
        if probe.status.value == "completed":
            return
        model = build_cost_model(probe.runtime)
        all_plans = list(enumerate_valid_plans(model))
        assert len(all_plans) >= 3
        for sp in all_plans:
            db2 = make_small_db()
            session = QuerySession(db2, plan)
            first = session.execute(max_rows=point)
            sq = session.suspend(SuspendSpec(plan=sp))
            resumed = QuerySession.resume(db2, sq)
            got = first.rows + resumed.execute().rows
            assert got == ref, f"plan {sp.decisions}"
