"""Integration: output equivalence across operators, strategies, points.

The fundamental invariant of the whole system: for any plan, any suspend
point, and any valid suspend plan, the concatenation of pre-suspend and
post-resume output equals the uninterrupted run's output, tuple for
tuple, in order.
"""

import pytest

from repro import Database, QuerySession, SuspendSpec
from repro.engine.plan import (
    DupElimSpec,
    FilterSpec,
    GroupAggSpec,
    HybridHashJoinSpec,
    IndexNLJSpec,
    MergeJoinSpec,
    NLJSpec,
    ProjectSpec,
    ScanSpec,
    SimpleHashJoinSpec,
    SortSpec,
)
from repro.relational.datagen import BASE_SCHEMA, generate_uniform_table
from repro.relational.expressions import EquiJoinCondition, UniformSelect

from tests.conftest import reference_rows, suspend_resume_rows


def mkdb():
    db = Database()
    db.create_table("R", BASE_SCHEMA, generate_uniform_table(300, seed=1))
    db.create_table("S", BASE_SCHEMA, generate_uniform_table(200, seed=2))
    db.create_index("idx_S", "S", 0)
    return db


COND = EquiJoinCondition(0, 0, modulus=40)

PLANS = {
    "nlj": NLJSpec(
        outer=FilterSpec(ScanSpec("R"), UniformSelect(1, 0.5)),
        inner=ScanSpec("S"),
        condition=COND,
        buffer_tuples=40,
    ),
    "smj": MergeJoinSpec(
        left=SortSpec(
            FilterSpec(ScanSpec("R"), UniformSelect(1, 0.6)),
            key_columns=(0,),
            buffer_tuples=50,
        ),
        right=SortSpec(ScanSpec("S"), key_columns=(0,), buffer_tuples=60),
        condition=EquiJoinCondition(0, 0),
    ),
    "shj": SimpleHashJoinSpec(
        build=FilterSpec(ScanSpec("R"), UniformSelect(1, 0.5)),
        probe=ScanSpec("S"),
        condition=COND,
        num_partitions=4,
    ),
    "hhj": HybridHashJoinSpec(
        build=FilterSpec(ScanSpec("R"), UniformSelect(1, 0.5)),
        probe=ScanSpec("S"),
        condition=COND,
        num_partitions=4,
        memory_partitions=2,
    ),
    "inlj": IndexNLJSpec(
        outer=FilterSpec(ScanSpec("R"), UniformSelect(1, 0.5)),
        index="idx_S",
        outer_key_column=0,
    ),
    "agg": GroupAggSpec(
        child=SortSpec(
            FilterSpec(ScanSpec("R"), UniformSelect(1, 0.7)),
            key_columns=(0,),
            buffer_tuples=40,
        ),
        group_columns=(0,),
        agg_func="count",
        agg_column=0,
    ),
    "dup": DupElimSpec(
        child=SortSpec(
            ProjectSpec(ScanSpec("R"), columns=(1,)),
            key_columns=(0,),
            buffer_tuples=64,
        )
    ),
    "deep": NLJSpec(
        outer=NLJSpec(
            outer=SortSpec(
                FilterSpec(ScanSpec("R"), UniformSelect(1, 0.3)),
                key_columns=(0,),
                buffer_tuples=60,
            ),
            inner=ScanSpec("S"),
            condition=COND,
            buffer_tuples=50,
        ),
        inner=ScanSpec("S"),
        condition=EquiJoinCondition(3, 0, modulus=30),
        buffer_tuples=40,
    ),
}


@pytest.mark.parametrize("plan_name", sorted(PLANS))
@pytest.mark.parametrize("strategy", ["all_dump", "all_goback", "lp", "dp"])
def test_equivalence_across_points(plan_name, strategy):
    plan = PLANS[plan_name]
    ref = reference_rows(mkdb, plan)
    assert ref, f"plan {plan_name} must produce output"
    for point in (1, 7, 33, 150):
        got = suspend_resume_rows(mkdb, plan, point, strategy)
        if got is None:
            continue
        assert got == ref, f"{plan_name}/{strategy}@{point}"


@pytest.mark.parametrize("plan_name", ["nlj", "smj", "deep", "shj", "hhj", "inlj"])
def test_double_suspend_equivalence(plan_name):
    plan = PLANS[plan_name]
    ref = reference_rows(mkdb, plan)
    for strategies in (("all_dump", "all_goback"), ("all_goback", "lp"), ("lp", "lp")):
        db = mkdb()
        session = QuerySession(db, plan)
        rows = session.execute(max_rows=5).rows
        sq = session.suspend(SuspendSpec(strategy=strategies[0]))
        session = QuerySession.resume(db, sq)
        rows += session.execute(max_rows=9).rows
        if session.status.value != "completed":
            sq2 = session.suspend(SuspendSpec(strategy=strategies[1]))
            session = QuerySession.resume(db, sq2)
            rows += session.execute().rows
        assert rows == ref, f"{plan_name}/{strategies}"


def test_triple_suspend_chain():
    plan = PLANS["nlj"]
    ref = reference_rows(mkdb, plan)
    db = mkdb()
    session = QuerySession(db, plan)
    rows = session.execute(max_rows=3).rows
    for strategy in ("all_goback", "lp", "all_dump"):
        if session.status.value == "completed":
            break
        sq = session.suspend(SuspendSpec(strategy=strategy))
        session = QuerySession.resume(db, sq)
        rows += session.execute(max_rows=20).rows
    rows += session.execute().rows if session.status.value != "completed" else []
    assert rows == ref


def test_budget_constrained_suspend_is_still_correct():
    plan = PLANS["deep"]
    ref = reference_rows(mkdb, plan)
    got = suspend_resume_rows(mkdb, plan, 25, "lp", budget=10.0)
    if got is not None:
        assert got == ref
