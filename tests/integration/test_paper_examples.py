"""The paper's worked examples (Sections 1, 3) replayed on the engine.

Examples 1-8 walk the running R |x| S |x| T plan (Figure 1) through
checkpointing, contracting, suspending, and resuming. These tests build
that exact plan and assert the behaviours the paper narrates.
"""

import pytest

from repro import Database, QuerySession, SuspendSpec
from repro.core.strategies import OpDecision, SuspendPlan
from repro.core.suspended_query import KIND_DUMP, KIND_GOBACK
from repro.engine.plan import NLJSpec, ScanSpec
from repro.relational.datagen import BASE_SCHEMA, generate_uniform_table
from repro.relational.expressions import EquiJoinCondition


def running_example_db():
    """Figure 1: R |x| S |x| T with two block NLJs over table scans."""
    db = Database()
    db.create_table("R", BASE_SCHEMA, generate_uniform_table(400, seed=1))
    db.create_table("S", BASE_SCHEMA, generate_uniform_table(120, seed=2))
    db.create_table("T", BASE_SCHEMA, generate_uniform_table(120, seed=3))
    return db


def running_example_plan(outer_buffer=150, inner_buffer=100):
    return NLJSpec(
        outer=NLJSpec(
            outer=ScanSpec("R", label="scan_R"),
            inner=ScanSpec("S", label="scan_S"),
            condition=EquiJoinCondition(0, 0, modulus=20),
            buffer_tuples=inner_buffer,
            label="nlj1",
        ),
        inner=ScanSpec("T", label="scan_T"),
        condition=EquiJoinCondition(0, 0, modulus=20),
        buffer_tuples=outer_buffer,
        label="nlj0",
    )


def session_at_t5():
    """Run to the paper's t5: NLJ0 mid-fill, NLJ1 past its checkpoint."""
    db = running_example_db()
    session = QuerySession(db, running_example_plan())
    session.execute(
        suspend_when=lambda rt: rt.op_named("nlj0").buffer_fill() >= 60
        and rt.op_named("nlj1").tuples_emitted > 0
    )
    assert session.status.value == "suspend_pending"
    return db, session


class TestExample2MinimalHeapStatePoints:
    def test_nlj_heap_state_is_zero_at_checkpoints(self):
        """Checkpoints happen exactly when the outer buffer empties."""
        db = running_example_db()
        session = QuerySession(db, running_example_plan())
        nlj1 = session.op_named("nlj1")
        observed = []
        original = nlj1.make_checkpoint

        def spying_checkpoint():
            observed.append(nlj1.heap_tuples())
            return original()

        nlj1.make_checkpoint = spying_checkpoint
        session.execute(collect=False)
        assert observed, "NLJ1 should have checkpointed at pass boundaries"
        assert all(h == 0 for h in observed)

    def test_minimal_points_do_not_coincide(self):
        """The two NLJs checkpoint asynchronously: on their own cadences,
        at moments that generally differ (Example 2)."""
        db = running_example_db()
        # A buffer size that does not divide the child's per-pass output,
        # so the two operators' pass boundaries interleave.
        session = QuerySession(db, running_example_plan(outer_buffer=140))
        times = {"nlj0": [], "nlj1": []}
        for name in times:
            op = session.op_named(name)
            original = op.make_checkpoint

            def spy(op=op, name=name, original=original):
                times[name].append(op.rt.disk.now)
                return original()

            op.make_checkpoint = spy
        session.execute(collect=False)
        assert times["nlj0"] and times["nlj1"]
        # The operators checkpoint on their own cadences: different
        # counts, and moments that are not subsets of one another.
        assert len(times["nlj1"]) != len(times["nlj0"])
        assert set(times["nlj1"]) - set(times["nlj0"])
        assert set(times["nlj0"]) - set(times["nlj1"])


class TestExample4CheckpointingAndContracting:
    def test_checkpoint_signs_contracts_with_children(self):
        """NLJ0's checkpoint at its minimal-heap-state point carries
        contracts with both children; NLJ1's contract maps to NLJ1's own
        latest proactive checkpoint."""
        db, session = session_at_t5()
        graph = session.runtime.graph
        nlj0 = session.op_named("nlj0")
        nlj1 = session.op_named("nlj1")
        ck0 = graph.latest_checkpoint(nlj0.op_id)
        ctr = graph.contract_from(ck0, nlj1.op_id)
        assert ctr.child_ckpt_id == graph.latest_checkpoint(nlj1.op_id).ckpt_id

    def test_nested_contract_covers_inner_scan(self):
        """Signing NLJ1's contract captured Scan_S's position (the inner
        stream child) via a nested contract."""
        db, session = session_at_t5()
        graph = session.runtime.graph
        nlj0 = session.op_named("nlj0")
        nlj1 = session.op_named("nlj1")
        scan_s = session.op_named("scan_S")
        ck0 = graph.latest_checkpoint(nlj0.op_id)
        ctr = graph.contract_from(ck0, nlj1.op_id)
        assert scan_s.op_id in ctr.nested
        nested = ctr.nested[scan_s.op_id]
        assert "page_no" in nested.control


class TestExamples5And6SuspendPlans:
    def op_ids(self, session):
        return {op.name: op.op_id for op in session.runtime.ops.values()}

    def test_example5_hybrid_dump_then_goback(self):
        """NLJ0 dumps, NLJ1 goes back: NLJ0's entry carries its buffer on
        disk; NLJ1's entry is control state only; Scan_R's entry records
        the contract position (earlier than its current position)."""
        db, session = session_at_t5()
        ids = self.op_ids(session)
        scan_r_now = session.op_named("scan_R").control_state()
        plan = SuspendPlan(
            decisions={
                ids["nlj0"]: OpDecision.dump(),
                ids["nlj1"]: OpDecision.goback(ids["nlj1"]),
                ids["scan_R"]: OpDecision.goback(ids["nlj1"]),
                ids["scan_S"]: OpDecision.goback(ids["nlj1"]),
                ids["scan_T"]: OpDecision.dump(),
            }
        )
        sq = session.suspend(SuspendSpec(plan=plan))
        assert sq.entries[ids["nlj0"]].kind == KIND_DUMP
        assert sq.entries[ids["nlj0"]].dump_handle is not None
        assert sq.entries[ids["nlj1"]].kind == KIND_GOBACK
        assert sq.entries[ids["nlj1"]].dump_handle is None
        # Scan_R is told to regenerate from the contract point, which
        # precedes (or equals) its position at the suspend instant.
        target = sq.entries[ids["scan_R"]].target_control
        assert (target["page_no"], target["slot"]) <= (
            scan_r_now["page_no"],
            scan_r_now["slot"],
        )

    def test_example6_all_goback_chain(self):
        """Both NLJs go back: every entry is control-state only and
        Scan_R resumes from NLJ1's fulfilling-checkpoint contract."""
        db, session = session_at_t5()
        ids = self.op_ids(session)
        plan = SuspendPlan(
            decisions={
                ids["nlj0"]: OpDecision.goback(ids["nlj0"]),
                ids["nlj1"]: OpDecision.goback(ids["nlj0"]),
                ids["scan_R"]: OpDecision.goback(ids["nlj0"]),
                ids["scan_S"]: OpDecision.goback(ids["nlj0"]),
                ids["scan_T"]: OpDecision.goback(ids["nlj0"]),
            }
        )
        sq = session.suspend(SuspendSpec(plan=plan))
        assert all(e.dump_handle is None for e in sq.entries.values())
        assert sq.entries[ids["nlj0"]].kind == KIND_GOBACK
        assert sq.entries[ids["nlj1"]].kind == KIND_GOBACK


class TestExample7ResumeInAction:
    @pytest.mark.parametrize("strategy", ["all_dump", "all_goback", "lp"])
    def test_resume_produces_tuple_after_suspend_point(self, strategy):
        """The resumed plan's first tuple is precisely the one after the
        last produced before suspension."""
        ref = QuerySession(
            running_example_db(), running_example_plan()
        ).execute().rows
        db, session = session_at_t5()
        produced = list(session.rows)
        sq = session.suspend(SuspendSpec(strategy=strategy))
        resumed = QuerySession.resume(db, sq)
        nxt = resumed.execute(max_rows=1).rows
        assert produced + nxt == ref[: len(produced) + 1]


class TestExample8ContractGraphEvolution:
    def test_left_deep_four_nlj_graph_stays_bounded(self):
        """The Figure 5 scenario: four NLJs in a chain create and prune
        checkpoints as execution proceeds; the live graph never exceeds
        the Theorem 1 bound and old checkpoints are deleted."""
        db = Database()
        sizes = {"T0": 300, "T1": 60, "T2": 50, "T3": 40}
        for name, n in sizes.items():
            db.create_table(
                name, BASE_SCHEMA, generate_uniform_table(n, seed=hash(name) % 97)
            )
        plan = ScanSpec("T0", label="scan_T0")
        for level, buf in enumerate((40, 60, 90)):
            plan = NLJSpec(
                outer=plan,
                inner=ScanSpec(f"T{level + 1}", label=f"scan_T{level + 1}"),
                condition=EquiJoinCondition(0, 0, modulus=10),
                buffer_tuples=buf,
                label=f"P{2 - level}",
            )
        session = QuerySession(db, plan)
        session.execute(collect=False)  # invariants asserted throughout
        graph = session.runtime.graph
        height = session.runtime.plan_height()
        graph.check_theorem1_bound(len(session.runtime.ops), height)
        # Old checkpoints were pruned: each NLJ retains only its active set.
        for name in ("P0", "P1", "P2"):
            op = session.op_named(name)
            live = len(graph.checkpoints_of(op.op_id))
            latest = graph.latest_checkpoint(op.op_id)
            assert live <= height + 1
            assert latest.seq > live  # more were created than survive
