"""Section 3.4's generalized suspend plans: per-child strategies.

A merge join may "choose GoBack w.r.t. its left child and DumpState
w.r.t. its right child". These tests force such mixed decisions and
check both correctness (output equivalence) and the economics (dumping
the big-packet side beats regenerating it when the other side's redo is
cheap).
"""

import pytest

from repro import Database, QuerySession, SuspendSpec
from repro.common.errors import InvalidSuspendPlanError
from repro.core.strategies import OpDecision, SuspendPlan
from repro.engine.plan import FilterSpec, MergeJoinSpec, ScanSpec, SortSpec
from repro.relational.datagen import BASE_SCHEMA, generate_uniform_table
from repro.relational.expressions import EquiJoinCondition, UniformSelect


def skewed_packet_db():
    """Left side: selective filter (expensive redo). Right side: heavy
    duplicates (large value packets, cheap to dump)."""
    db = Database()
    db.create_table("L", BASE_SCHEMA, generate_uniform_table(400, seed=1))
    right_rows = [
        (key, i / 100, i) for key in range(30) for i in range(12)
    ]
    db.create_table("Rt", BASE_SCHEMA, right_rows)
    return db


def packet_plan():
    return MergeJoinSpec(
        left=SortSpec(
            FilterSpec(ScanSpec("L"), UniformSelect(1, 0.2), label="f"),
            key_columns=(0,),
            buffer_tuples=60,
            label="sort_L",
        ),
        right=SortSpec(
            ScanSpec("Rt"), key_columns=(0,), buffer_tuples=80, label="sort_R"
        ),
        condition=EquiJoinCondition(0, 0),
        label="mj",
    )


def mixed_plan(session, dump_side):
    ids = {op.name: op.op_id for op in session.runtime.ops.values()}
    dump_child = ids["sort_R"] if dump_side == "right" else ids["sort_L"]
    keep_chain = ids["sort_L"] if dump_side == "right" else ids["sort_R"]
    decisions = {
        ids["mj"]: OpDecision.goback(ids["mj"], dump_children=(dump_child,)),
        dump_child: OpDecision.dump(),
        keep_chain: OpDecision.goback(ids["mj"]),
    }
    # Fill remaining operators: everything under the chained sort goes
    # back; everything under the dumped sort dumps.
    def fill(op, decision):
        for child in op.children:
            decisions.setdefault(
                child.op_id,
                decision,
            )
            fill(child, decision)

    fill(
        session.runtime.op(keep_chain), OpDecision.goback(ids["mj"])
    )
    fill(session.runtime.op(dump_child), OpDecision.dump())
    return SuspendPlan(decisions=decisions, source="mixed")


class TestPerChildCorrectness:
    @pytest.mark.parametrize("dump_side", ["left", "right"])
    @pytest.mark.parametrize("point", [3, 25, 70])
    def test_mixed_plan_preserves_output(self, dump_side, point):
        plan = packet_plan()
        ref = QuerySession(skewed_packet_db(), plan).execute().rows
        db = skewed_packet_db()
        session = QuerySession(db, plan)
        first = session.execute(max_rows=point)
        if session.status.value == "completed":
            return
        sp = mixed_plan(session, dump_side)
        sq = session.suspend(SuspendSpec(plan=sp))
        resumed = QuerySession.resume(db, sq)
        assert first.rows + resumed.execute().rows == ref

    def test_dumped_side_child_keeps_position(self):
        """The dumped side's child suspends at its current position (no
        contract-point rewind)."""
        db = skewed_packet_db()
        session = QuerySession(db, packet_plan())
        session.execute(max_rows=25)
        sort_r = session.op_named("sort_R")
        pos_now = sort_r.control_state()
        sp = mixed_plan(session, "right")
        sq = session.suspend(SuspendSpec(plan=sp))
        entry = sq.entries[sort_r.op_id]
        assert entry.kind == "dump"
        assert entry.target_control == pos_now

    def test_dump_children_must_be_children(self):
        db = skewed_packet_db()
        session = QuerySession(db, packet_plan())
        session.execute(max_rows=5)
        ids = {op.name: op.op_id for op in session.runtime.ops.values()}
        bogus = SuspendPlan(
            decisions={
                op_id: OpDecision.dump() for op_id in ids.values()
            }
        )
        bogus.decisions[ids["mj"]] = OpDecision.goback(
            ids["mj"], dump_children=(ids["f"],)  # grandchild, invalid
        )
        with pytest.raises(InvalidSuspendPlanError):
            session.suspend(SuspendSpec(plan=bogus))


class TestPerChildEconomics:
    def test_mixed_beats_pure_goback_on_skewed_packets(self):
        """Dumping the duplicate-heavy right packet while regenerating
        the cheap left side costs less total overhead than regenerating
        both sides."""
        from repro.harness.experiments import (
            measure_suspend_overhead,
            root_rows_trigger,
        )

        factory = lambda: (skewed_packet_db(), packet_plan())
        trigger = root_rows_trigger("mj", 25)

        goback = measure_suspend_overhead(factory, trigger, "all_goback")

        db = skewed_packet_db()
        session = QuerySession(db, packet_plan())
        session.execute(suspend_when=trigger)
        sp = mixed_plan(session, "right")
        # Measure the mixed plan through the same milestone protocol.
        from repro.harness.experiments import run_reference_to_milestone

        db2 = skewed_packet_db()
        ref_cost, _ = run_reference_to_milestone(
            db2, packet_plan(), trigger
        )
        db3 = skewed_packet_db()
        session3 = QuerySession(db3, packet_plan())
        start = db3.now
        session3.execute(suspend_when=trigger)
        sp3 = mixed_plan(session3, "right")
        sq = session3.suspend(SuspendSpec(plan=sp3))
        resumed = QuerySession.resume(db3, sq)
        resumed.execute(max_rows=1)
        mixed_overhead = (db3.now - start) - ref_cost

        # The mixed plan must not lose to pure GoBack: it dumps the big
        # right packet instead of re-merging it from the right sort.
        assert mixed_overhead <= goback.total_overhead + 1.0
