"""Unit tests for the projection operator."""

import pytest

from repro import QuerySession
from repro.engine.plan import ProjectSpec, ScanSpec

from tests.conftest import make_small_db, reference_rows, suspend_resume_rows


class TestProject:
    def test_selects_columns_in_order(self):
        db = make_small_db()
        plan = ProjectSpec(ScanSpec("R"), columns=(2, 0))
        rows = QuerySession(db, plan).execute().rows
        originals = list(db.catalog.table("R").all_rows())
        assert rows == [(r[2], r[0]) for r in originals]

    def test_schema_narrowed(self):
        db = make_small_db()
        session = QuerySession(db, ProjectSpec(ScanSpec("R"), columns=(0,), label="p"))
        assert session.op_named("p").schema.names() == ["key"]

    def test_rewindable_over_scan(self):
        db = make_small_db()
        session = QuerySession(db, ProjectSpec(ScanSpec("R"), columns=(0,), label="p"))
        p = session.op_named("p")
        first = [p.next() for _ in range(4)]
        p.rewind()
        assert [p.next() for _ in range(4)] == first

    @pytest.mark.parametrize("strategy", ["all_dump", "lp"])
    def test_suspend_resume_equivalence(self, strategy):
        plan = ProjectSpec(ScanSpec("R"), columns=(1, 2))
        ref = reference_rows(make_small_db, plan)
        got = suspend_resume_rows(make_small_db, plan, 123, strategy)
        assert got == ref
