"""Unit tests for the Operator base class machinery."""

import pytest

from repro import Database, QuerySession, SuspendSpec
from repro.common.errors import ReproError
from repro.core.checkpoint import control_state_bytes
from repro.engine.base import Operator
from repro.engine.runtime import Runtime
from repro.relational.datagen import BASE_SCHEMA, generate_uniform_table
from repro.relational.schema import Schema

from tests.conftest import make_small_db, tiny_nlj_plan


class CountingSource(Operator):
    """Minimal stateless operator emitting n rows, for base-class tests."""

    STATEFUL = False

    def __init__(self, op_id, name, runtime, n=10):
        super().__init__(op_id, name, [], runtime, Schema.of(["x"]))
        self.n = n
        self.i = 0

    def _next(self):
        if self.i >= self.n:
            return None
        self.i += 1
        return (self.i,)

    def control_state(self):
        return {"i": self.i}

    def _resume_from_dump(self, entry, payload, ctx):
        self.i = entry.target_control["i"]

    def _resume_goback(self, entry, ctx):
        self.i = entry.target_control["i"]


def make_source(n=10):
    runtime = Runtime(Database())
    op = CountingSource(0, "src", runtime, n=n)
    op.open()
    return op, runtime


class TestIteration:
    def test_emission_counts_and_cpu_charges(self):
        op, runtime = make_source(5)
        rows = [op.next() for _ in range(6)]
        assert rows == [(1,), (2,), (3,), (4,), (5,), None]
        assert op.tuples_emitted == 5
        assert op.work == pytest.approx(5 * 0.001)

    def test_rewind_unsupported_by_default(self):
        op, _ = make_source()
        with pytest.raises(ReproError):
            op.rewind()

    def test_attribute_work_captures_direct_io(self):
        op, runtime = make_source()
        with op.attribute_work():
            runtime.disk.read_pages(3)
        assert op.work == pytest.approx(3.0)

    def test_pending_rows_returned_first(self):
        op, _ = make_source(3)
        op._pending_rows.extend([(100,), (200,)])
        assert op.next() == (100,)
        assert op.next() == (200,)
        assert op.next() == (1,)
        # Pending rows count as emissions too.
        assert op.tuples_emitted == 3


class TestDefaults:
    def test_heap_defaults_zero(self):
        op, _ = make_source()
        assert op.heap_tuples() == 0
        assert op.heap_pages() == 0
        assert op._heap_state_payload() is None

    def test_stateless_children_split(self):
        op, _ = make_source()
        assert op.heap_children() == []
        assert op.stream_children() == []

    def test_dump_cost_estimates_nonnegative(self):
        op, _ = make_source()
        assert op.estimate_dump_suspend_cost() >= 0
        assert op.estimate_dump_resume_cost() >= 1.0  # at least one read


class TestFullStateCheckpoint:
    def test_created_when_stateful_op_has_no_checkpoint(self):
        """After a resume the graph is empty; a parent checkpoint forces a
        stateful child to produce a full-state reactive checkpoint."""
        db = make_small_db()
        plan = tiny_nlj_plan(buffer_tuples=30)
        session = QuerySession(db, plan)
        session.execute(max_rows=10)
        sq = session.suspend(SuspendSpec(strategy="all_dump"))
        resumed = QuerySession.resume(db, sq)
        nlj = resumed.op_named("nlj")
        graph = resumed.runtime.graph
        assert graph.latest_checkpoint(nlj.op_id) is None
        fulfilling = nlj._full_state_checkpoint()
        assert fulfilling.payload["__full_state__"] is True
        assert fulfilling.payload["heap"] == nlj._heap_state_payload()
        assert fulfilling.reactive
        assert graph.latest_checkpoint(nlj.op_id) is fulfilling

    def test_full_state_payload_charged_like_a_dump(self):
        """control_state_bytes prices the heap rows at tuple width."""
        payload = {
            "__full_state__": True,
            "heap": [(1, 2, 3)] * 7,
            "control": {"fill": 7},
        }
        assert control_state_bytes(payload) >= 7 * 200
