"""Unit tests for plan specs and instantiation."""

import pickle

import pytest

from repro import QuerySession
from repro.engine.plan import (
    FilterSpec,
    NLJSpec,
    ScanSpec,
    SortSpec,
    instantiate_plan,
    plan_height,
    plan_operator_count,
)
from repro.engine.runtime import Runtime
from repro.relational.expressions import EquiJoinCondition, UniformSelect

from tests.conftest import make_small_db, tiny_nlj_plan, tiny_smj_plan


class TestPlanSpecs:
    def test_operator_count(self):
        assert plan_operator_count(tiny_nlj_plan()) == 4
        assert plan_operator_count(tiny_smj_plan()) == 6

    def test_plan_height(self):
        assert plan_height(tiny_nlj_plan()) == 3
        assert plan_height(ScanSpec("R")) == 1

    def test_specs_are_picklable(self):
        spec = tiny_smj_plan()
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_preorder_op_ids(self):
        db = make_small_db()
        runtime = Runtime(db)
        root = instantiate_plan(tiny_nlj_plan(), runtime)
        assert root.op_id == 0
        names = {op.op_id: op.name for op in runtime.ops.values()}
        assert names == {0: "nlj", 1: "filter", 2: "scan_R", 3: "scan_S"}

    def test_ids_stable_across_instantiations(self):
        spec = tiny_smj_plan()
        ids1 = _op_names(spec)
        ids2 = _op_names(spec)
        assert ids1 == ids2

    def test_default_labels_generated(self):
        db = make_small_db()
        runtime = Runtime(db)
        spec = FilterSpec(ScanSpec("R"), UniformSelect(1, 0.5))
        root = instantiate_plan(spec, runtime)
        assert root.name == "filter_0"

    def test_parent_links_set(self):
        db = make_small_db()
        runtime = Runtime(db)
        root = instantiate_plan(tiny_nlj_plan(), runtime)
        assert root.parent is None
        for child in root.children:
            assert child.parent is root

    def test_unknown_spec_type_rejected(self):
        db = make_small_db()
        with pytest.raises(TypeError):
            instantiate_plan(object(), Runtime(db))


def _op_names(spec):
    db = make_small_db()
    runtime = Runtime(db)
    instantiate_plan(spec, runtime)
    return {op_id: op.name for op_id, op in runtime.ops.items()}


class TestRuntimeHelpers:
    def test_root_lookup(self):
        db = make_small_db()
        session = QuerySession(db, tiny_nlj_plan())
        assert session.runtime.root() is session.root

    def test_plan_height(self):
        db = make_small_db()
        session = QuerySession(db, tiny_smj_plan())
        assert session.runtime.plan_height() == 4

    def test_duplicate_op_id_rejected(self):
        db = make_small_db()
        session = QuerySession(db, tiny_nlj_plan())
        with pytest.raises(ValueError):
            session.runtime.register(session.root)
