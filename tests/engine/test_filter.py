"""Unit tests for the filter operator and its contract migration."""

import pytest

from repro import Database, QuerySession, SuspendSpec
from repro.engine.config import EngineConfig
from repro.engine.plan import FilterSpec, NLJSpec, ScanSpec
from repro.relational.datagen import BASE_SCHEMA, generate_uniform_table
from repro.relational.expressions import (
    ColumnCompare,
    EquiJoinCondition,
    UniformSelect,
)

from tests.conftest import make_small_db, reference_rows, suspend_resume_rows


def filter_db():
    db = Database()
    db.create_table("R", BASE_SCHEMA, generate_uniform_table(200, seed=1))
    return db


class TestFilter:
    def test_passes_matching_rows_only(self):
        plan = FilterSpec(ScanSpec("R"), UniformSelect(1, 0.5))
        rows = QuerySession(filter_db(), plan).execute().rows
        assert rows
        assert all(r[1] < 0.5 for r in rows)

    def test_empty_result(self):
        plan = FilterSpec(ScanSpec("R"), ColumnCompare(0, "<", -1))
        assert QuerySession(filter_db(), plan).execute().rows == []

    @pytest.mark.parametrize("strategy", ["all_dump", "lp"])
    def test_suspend_resume_equivalence(self, strategy):
        plan = FilterSpec(ScanSpec("R"), UniformSelect(1, 0.3))
        ref = reference_rows(filter_db, plan)
        got = suspend_resume_rows(filter_db, plan, 17, strategy)
        assert got == ref

    def test_rewindable_over_scan(self):
        db = filter_db()
        session = QuerySession(
            db, FilterSpec(ScanSpec("R"), UniformSelect(1, 0.5), label="f")
        )
        f = session.op_named("f")
        first = [f.next() for _ in range(5)]
        f.rewind()
        again = [f.next() for _ in range(5)]
        assert first == again


class TestContractMigration:
    """Footnote 3: a selective filter saves the first matching tuple and
    re-anchors its contract past the non-matching prefix."""

    def nlj_plan(self, selectivity):
        return NLJSpec(
            outer=FilterSpec(
                ScanSpec("R", label="scan_R"),
                UniformSelect(1, selectivity),
                label="filter",
            ),
            inner=ScanSpec("S", label="scan_S"),
            condition=EquiJoinCondition(0, 0, modulus=40),
            buffer_tuples=40,
            label="nlj",
        )

    def test_migration_saves_row_in_contract(self):
        db = make_small_db()
        session = QuerySession(db, self.nlj_plan(0.1))
        session.execute(max_rows=3)
        graph = session.runtime.graph
        saved = [
            c
            for c in graph.contracts_of_child(
                session.op_named("filter").op_id
            )
            if c.saved_rows
        ]
        assert saved, "selective filter should have migrated a contract"

    @pytest.mark.parametrize("migration", [True, False])
    def test_equivalence_with_and_without_migration(self, migration):
        plan = self.nlj_plan(0.15)
        config = EngineConfig(contract_migration=migration)
        db = make_small_db()
        ref = QuerySession(db, plan, config=config).execute().rows

        db2 = make_small_db()
        session = QuerySession(db2, plan, config=config)
        first = session.execute(max_rows=5)
        sq = session.suspend(SuspendSpec(strategy="all_goback"))
        resumed = QuerySession.resume(db2, sq, config=config)
        assert first.rows + resumed.execute().rows == ref

    def test_migration_reduces_goback_resume_redo(self):
        """With migration the scan is not re-read past the saved match."""
        costs = {}
        for migration in (True, False):
            config = EngineConfig(contract_migration=migration)
            db = make_small_db()
            session = QuerySession(db, self.nlj_plan(0.05), config=config)
            session.execute(max_rows=2)
            before = db.now
            sq = session.suspend(SuspendSpec(strategy="all_goback"))
            resumed = QuerySession.resume(db, sq, config=config)
            resumed.execute(max_rows=1)
            costs[migration] = db.now - before
        assert costs[True] <= costs[False]
