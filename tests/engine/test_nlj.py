"""Unit tests for block nested-loop join: execution, checkpoints, skipping."""

import pytest

from repro import Database, QuerySession, SuspendSpec
from repro.common.errors import ReproError
from repro.engine.plan import FilterSpec, NLJSpec, ScanSpec, SortSpec
from repro.relational.datagen import BASE_SCHEMA, generate_uniform_table
from repro.relational.expressions import EquiJoinCondition, UniformSelect

from tests.conftest import (
    make_small_db,
    reference_rows,
    suspend_resume_rows,
    tiny_nlj_plan,
)


def expected_nlj_output(db, selectivity, modulus, buffer_tuples):
    """Block-NLJ output order computed independently of the engine."""
    r_rows = [r for r in db.catalog.table("R").all_rows() if r[1] < selectivity]
    s_rows = list(db.catalog.table("S").all_rows())
    out = []
    for start in range(0, len(r_rows), buffer_tuples):
        block = r_rows[start : start + buffer_tuples]
        for s in s_rows:
            for r in block:
                if r[0] % modulus == s[0] % modulus:
                    out.append(r + s)
    return out


class TestBlockNLJExecution:
    def test_matches_independent_oracle(self):
        db = make_small_db()
        plan = tiny_nlj_plan(selectivity=0.5, buffer_tuples=40, modulus=40)
        rows = QuerySession(db, plan).execute().rows
        assert rows == expected_nlj_output(db, 0.5, 40, 40)

    def test_empty_outer_produces_nothing(self):
        db = make_small_db()
        plan = tiny_nlj_plan(selectivity=0.0)
        assert QuerySession(db, plan).execute().rows == []

    def test_buffer_smaller_than_outer_forces_multiple_passes(self):
        db = make_small_db()
        plan = tiny_nlj_plan(selectivity=1.0, buffer_tuples=50)
        rows = QuerySession(db, plan).execute().rows
        assert rows == expected_nlj_output(db, 1.0, 40, 50)

    def test_rejects_non_rewindable_inner(self):
        from repro.engine.plan import SimpleHashJoinSpec

        db = make_small_db()
        inner = SimpleHashJoinSpec(
            build=ScanSpec("S"),
            probe=ScanSpec("S"),
            condition=EquiJoinCondition(0, 0),
        )
        plan = NLJSpec(
            outer=ScanSpec("R"),
            inner=inner,
            condition=EquiJoinCondition(0, 0),
            buffer_tuples=10,
        )
        with pytest.raises(ReproError):
            QuerySession(db, plan)

    def test_rejects_zero_buffer(self):
        db = make_small_db()
        with pytest.raises(ValueError):
            QuerySession(db, tiny_nlj_plan(buffer_tuples=0))


class TestNLJCheckpoints:
    def test_checkpoints_at_minimal_heap_state_points(self):
        db = make_small_db()
        plan = tiny_nlj_plan(selectivity=1.0, buffer_tuples=100)
        session = QuerySession(db, plan)
        session.execute()
        nlj = session.op_named("nlj")
        graph = session.runtime.graph
        latest = graph.latest_checkpoint(nlj.op_id)
        # 300 outer tuples / 100 per pass = 3 passes; checkpoints at open
        # plus after each non-final pass.
        assert latest is not None
        assert latest.seq >= 3
        # Near-empty at minimal-heap-state points: only the pass counter.
        assert latest.payload == {"passes": 3}

    def test_initial_checkpoint_at_open(self):
        db = make_small_db()
        session = QuerySession(db, tiny_nlj_plan())
        graph = session.runtime.graph
        assert graph.latest_checkpoint(session.op_named("nlj").op_id) is not None

    def test_heap_pages_tracks_buffer(self):
        db = make_small_db()
        session = QuerySession(db, tiny_nlj_plan(selectivity=1.0, buffer_tuples=150))
        session.execute(
            suspend_when=lambda rt: rt.op_named("nlj").buffer_fill() >= 120
        )
        nlj = session.op_named("nlj")
        assert nlj.heap_tuples() == 120
        assert nlj.heap_pages() == 2  # 120 tuples at 100/page


class TestNLJSuspendResume:
    @pytest.mark.parametrize("strategy", ["all_dump", "all_goback", "lp"])
    @pytest.mark.parametrize("point", [1, 25, 150, 480])
    def test_equivalence(self, strategy, point):
        plan = tiny_nlj_plan()
        ref = reference_rows(make_small_db, plan)
        got = suspend_resume_rows(make_small_db, plan, point, strategy)
        if got is not None:
            assert got == ref

    def test_goback_skips_prior_join_output(self):
        """After a GoBack resume the next tuple is exactly the one after
        the suspend point — nothing is re-emitted (Section 3.3)."""
        plan = tiny_nlj_plan()
        db = make_small_db()
        session = QuerySession(db, plan)
        first = session.execute(max_rows=50)
        last_before = first.rows[-1]
        sq = session.suspend(SuspendSpec(strategy="all_goback"))
        resumed = QuerySession.resume(db, sq)
        after = resumed.execute(max_rows=1).rows[0]
        ref = reference_rows(make_small_db, plan)
        idx = ref.index(last_before)
        assert after == ref[idx + 1]

    def test_suspend_mid_fill_with_sort_inner(self):
        """Sort as NLJ inner (rewindable in merge phase) works across
        suspend/resume even when suspension lands before the sort ran."""

        def db_factory():
            db = Database()
            db.create_table("R", BASE_SCHEMA, generate_uniform_table(150, seed=1))
            db.create_table("S", BASE_SCHEMA, generate_uniform_table(80, seed=2))
            return db

        plan = NLJSpec(
            outer=FilterSpec(ScanSpec("R"), UniformSelect(1, 0.9), label="f"),
            inner=SortSpec(ScanSpec("S"), key_columns=(0,), buffer_tuples=30),
            condition=EquiJoinCondition(0, 0, modulus=20),
            buffer_tuples=60,
            label="nlj",
        )
        ref = reference_rows(db_factory, plan)
        for point in (1, 40, 200):
            got = suspend_resume_rows(db_factory, plan, point, "lp")
            if got is not None:
                assert got == ref
