"""Unit tests for static plan validation and memory accounting."""

import pytest

from repro import QuerySession, SuspendSpec
from repro.engine.plan import (
    DupElimSpec,
    FilterSpec,
    GroupAggSpec,
    MergeJoinSpec,
    NLJSpec,
    ProjectSpec,
    ScanSpec,
    SimpleHashJoinSpec,
    SortSpec,
)
from repro.engine.validate import PlanValidationError, validate_plan_spec
from repro.relational.expressions import EquiJoinCondition, UniformSelect

from tests.conftest import make_small_db, tiny_nlj_plan, tiny_smj_plan


class TestMergeJoinValidation:
    def test_sorted_inputs_accepted(self):
        validate_plan_spec(tiny_smj_plan())

    def test_unsorted_input_rejected(self):
        plan = MergeJoinSpec(
            left=ScanSpec("R"),
            right=SortSpec(ScanSpec("S"), key_columns=(0,), buffer_tuples=10),
            condition=EquiJoinCondition(0, 0),
        )
        with pytest.raises(PlanValidationError, match="left input"):
            validate_plan_spec(plan)

    def test_sorted_tables_whitelist(self):
        plan = MergeJoinSpec(
            left=SortSpec(ScanSpec("R"), key_columns=(0,), buffer_tuples=10),
            right=ScanSpec("S"),
            condition=EquiJoinCondition(0, 0),
        )
        with pytest.raises(PlanValidationError):
            validate_plan_spec(plan)
        validate_plan_spec(plan, sorted_tables={"S"})

    def test_modulus_join_rejected(self):
        plan = MergeJoinSpec(
            left=SortSpec(ScanSpec("R"), key_columns=(0,), buffer_tuples=10),
            right=SortSpec(ScanSpec("S"), key_columns=(0,), buffer_tuples=10),
            condition=EquiJoinCondition(0, 0, modulus=5),
        )
        with pytest.raises(PlanValidationError, match="modulus"):
            validate_plan_spec(plan)

    def test_sort_on_wrong_column_rejected(self):
        plan = MergeJoinSpec(
            left=SortSpec(ScanSpec("R"), key_columns=(1,), buffer_tuples=10),
            right=SortSpec(ScanSpec("S"), key_columns=(0,), buffer_tuples=10),
            condition=EquiJoinCondition(0, 0),
        )
        with pytest.raises(PlanValidationError):
            validate_plan_spec(plan)

    def test_filter_preserves_order(self):
        plan = MergeJoinSpec(
            left=FilterSpec(
                SortSpec(ScanSpec("R"), key_columns=(0,), buffer_tuples=10),
                UniformSelect(1, 0.5),
            ),
            right=SortSpec(ScanSpec("S"), key_columns=(0,), buffer_tuples=10),
            condition=EquiJoinCondition(0, 0),
        )
        validate_plan_spec(plan)


class TestAggregateAndNLJValidation:
    def test_group_agg_requires_sorted_child(self):
        bad = GroupAggSpec(
            child=ScanSpec("R"), group_columns=(0,), agg_func="count",
            agg_column=0,
        )
        with pytest.raises(PlanValidationError):
            validate_plan_spec(bad)
        good = GroupAggSpec(
            child=SortSpec(ScanSpec("R"), key_columns=(0,), buffer_tuples=8),
            group_columns=(0,),
            agg_func="count",
            agg_column=0,
        )
        validate_plan_spec(good)

    def test_dup_elim_requires_sorted_child(self):
        with pytest.raises(PlanValidationError):
            validate_plan_spec(DupElimSpec(child=ScanSpec("R")))

    def test_nlj_inner_must_be_rewindable(self):
        bad = NLJSpec(
            outer=ScanSpec("R"),
            inner=SimpleHashJoinSpec(
                build=ScanSpec("S"),
                probe=ScanSpec("S"),
                condition=EquiJoinCondition(0, 0),
            ),
            condition=EquiJoinCondition(0, 0),
            buffer_tuples=10,
        )
        with pytest.raises(PlanValidationError, match="rewindable"):
            validate_plan_spec(bad)
        validate_plan_spec(tiny_nlj_plan())

    def test_project_over_scan_is_rewindable_inner(self):
        plan = NLJSpec(
            outer=ScanSpec("R"),
            inner=ProjectSpec(ScanSpec("S"), columns=(0,)),
            condition=EquiJoinCondition(0, 0),
            buffer_tuples=10,
        )
        validate_plan_spec(plan)


class TestMemoryAccounting:
    def test_memory_grows_with_buffer_and_releases_on_suspend(self):
        db = make_small_db()
        session = QuerySession(db, tiny_nlj_plan(buffer_tuples=200))
        assert session.memory_in_use() == 0
        session.execute(
            suspend_when=lambda rt: rt.op_named("nlj").buffer_fill() >= 150
        )
        held = session.memory_in_use()
        assert held >= 2 * db.cost_model.page_bytes  # 150 tuples = 2 pages
        session.suspend(SuspendSpec(strategy="all_dump"))
        assert session.memory_in_use() == 0

    def test_goback_suspend_also_releases_memory(self):
        db = make_small_db()
        session = QuerySession(db, tiny_nlj_plan(buffer_tuples=200))
        session.execute(
            suspend_when=lambda rt: rt.op_named("nlj").buffer_fill() >= 150
        )
        session.suspend(SuspendSpec(strategy="all_goback"))
        assert session.memory_in_use() == 0
