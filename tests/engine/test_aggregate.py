"""Unit tests for grouping/aggregation and duplicate elimination."""

import pytest

from repro import Database, QuerySession, SuspendSpec
from repro.engine.plan import (
    DupElimSpec,
    GroupAggSpec,
    ProjectSpec,
    ScanSpec,
    SortSpec,
)
from repro.relational.datagen import BASE_SCHEMA

from tests.conftest import reference_rows, suspend_resume_rows


def group_db():
    db = Database()
    rows = [(i % 10, (i % 4) / 10, i) for i in range(200)]
    db.create_table("G", BASE_SCHEMA, rows)
    return db


def agg_plan(func="count", agg_col=2):
    return GroupAggSpec(
        child=SortSpec(ScanSpec("G"), key_columns=(0,), buffer_tuples=64, label="s"),
        group_columns=(0,),
        agg_func=func,
        agg_column=agg_col,
        label="agg",
    )


def dup_plan():
    return DupElimSpec(
        child=SortSpec(
            ProjectSpec(ScanSpec("G"), columns=(0, 1)),
            key_columns=(0, 1),
            buffer_tuples=64,
        ),
        label="dup",
    )


class TestGroupAggregate:
    def test_count_per_group(self):
        rows = QuerySession(group_db(), agg_plan("count")).execute().rows
        assert rows == [(k, 20) for k in range(10)]

    def test_sum(self):
        rows = QuerySession(group_db(), agg_plan("sum", 2)).execute().rows
        expected = {k: sum(i for i in range(200) if i % 10 == k) for k in range(10)}
        assert rows == [(k, expected[k]) for k in range(10)]

    def test_min_max(self):
        mins = QuerySession(group_db(), agg_plan("min", 2)).execute().rows
        maxs = QuerySession(group_db(), agg_plan("max", 2)).execute().rows
        assert mins == [(k, k) for k in range(10)]
        assert maxs == [(k, 190 + k) for k in range(10)]

    def test_unknown_agg_rejected(self):
        with pytest.raises(ValueError):
            QuerySession(group_db(), agg_plan("median"))

    def test_empty_input(self):
        db = Database()
        db.create_table("G", BASE_SCHEMA, [])
        assert QuerySession(db, agg_plan()).execute().rows == []

    @pytest.mark.parametrize("strategy", ["all_dump", "all_goback", "lp"])
    @pytest.mark.parametrize("point", [1, 5, 9])
    def test_suspend_resume_equivalence(self, strategy, point):
        plan = agg_plan("sum", 2)
        ref = reference_rows(group_db, plan)
        got = suspend_resume_rows(group_db, plan, point, strategy)
        if got is not None:
            assert got == ref

    def test_suspend_mid_group_preserves_partial_aggregate(self):
        """Suspend fires while a group is being accumulated; the running
        aggregate travels in the control state (Section 4)."""
        db = group_db()
        plan = agg_plan("sum", 2)
        ref = reference_rows(group_db, plan)
        session = QuerySession(db, plan)
        # Trigger inside the accumulation of group 3 (after ~70 child rows
        # have been consumed by the aggregate's sort child).
        session.execute(
            suspend_when=lambda rt: rt.op_named("agg").in_group
            and rt.op_named("agg").current_key == (3,)
        )
        assert session.status.value == "suspend_pending"
        first_rows = list(session.rows)
        sq = session.suspend(SuspendSpec(strategy="lp"))
        resumed = QuerySession.resume(db, sq)
        assert first_rows + resumed.execute().rows == ref


class TestDuplicateEliminate:
    def test_removes_duplicates(self):
        rows = QuerySession(group_db(), dup_plan()).execute().rows
        assert len(rows) == len(set(rows))
        assert len(rows) == 20  # 10 keys x 2 distinct u values? no: 4 u values per key appear

    def test_output_sorted_distinct(self):
        rows = QuerySession(group_db(), dup_plan()).execute().rows
        assert rows == sorted(set(rows))

    @pytest.mark.parametrize("strategy", ["all_dump", "lp"])
    def test_suspend_resume_equivalence(self, strategy):
        plan = dup_plan()
        ref = reference_rows(group_db, plan)
        got = suspend_resume_rows(group_db, plan, 7, strategy)
        if got is not None:
            assert got == ref
