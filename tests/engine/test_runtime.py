"""Unit tests for the suspend controller and runtime context."""

import pytest

from repro import QuerySession
from repro.common.errors import SuspendRequested
from repro.engine.runtime import Runtime, SuspendController

from tests.conftest import make_small_db, tiny_nlj_plan


class TestSuspendController:
    def test_unarmed_poll_is_noop(self):
        SuspendController().poll(None)

    def test_armed_condition_raises_once(self):
        ctrl = SuspendController()
        ctrl.arm(lambda rt: True)
        with pytest.raises(SuspendRequested):
            ctrl.poll(None)
        assert ctrl.fired
        ctrl.poll(None)  # does not fire twice

    def test_false_condition_does_not_fire(self):
        ctrl = SuspendController()
        ctrl.arm(lambda rt: False)
        ctrl.poll(None)
        assert not ctrl.fired

    def test_suppression_blocks_firing(self):
        ctrl = SuspendController()
        ctrl.arm(lambda rt: True)
        ctrl.suppress()
        ctrl.poll(None)
        assert not ctrl.fired
        ctrl.unsuppress()
        with pytest.raises(SuspendRequested):
            ctrl.poll(None)

    def test_unbalanced_unsuppress_rejected(self):
        with pytest.raises(RuntimeError):
            SuspendController().unsuppress()

    def test_disarm(self):
        ctrl = SuspendController()
        ctrl.arm(lambda rt: True)
        ctrl.disarm()
        ctrl.poll(None)
        assert not ctrl.fired


class TestSuspendTriggers:
    def test_trigger_fires_at_exact_buffer_fill(self):
        """The suspend exception lands at a safe point with the trigger
        condition exactly satisfied — e.g. the NLJ buffer at exactly half
        full, the paper's Figure 8 setup."""
        db = make_small_db()
        session = QuerySession(db, tiny_nlj_plan(buffer_tuples=40))
        session.execute(
            suspend_when=lambda rt: rt.op_named("nlj").buffer_fill() >= 20
        )
        assert session.status.value == "suspend_pending"
        assert session.op_named("nlj").buffer_fill() == 20

    def test_trigger_on_scan_position(self):
        db = make_small_db()
        session = QuerySession(db, tiny_nlj_plan())
        session.execute(
            suspend_when=lambda rt: rt.op_named("scan_R").tuples_consumed()
            >= 100
        )
        assert session.op_named("scan_R").tuples_consumed() == 100

    def test_trigger_never_firing_runs_to_completion(self):
        db = make_small_db()
        session = QuerySession(db, tiny_nlj_plan())
        result = session.execute(suspend_when=lambda rt: False)
        assert result.status.value == "completed"
