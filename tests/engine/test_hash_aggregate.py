"""Unit tests for hash-based grouping with aggregation."""

import pytest

from repro import Database, QuerySession, SuspendSpec
from repro.engine.plan import GroupAggSpec, HashGroupAggSpec, ScanSpec, SortSpec
from repro.relational.datagen import BASE_SCHEMA

from tests.conftest import reference_rows, suspend_resume_rows


def group_db():
    db = Database()
    rows = [(i % 13, (i % 5) / 10, i) for i in range(260)]
    db.create_table("G", BASE_SCHEMA, rows)
    return db


def hash_plan(func="count", agg_col=2, partitions=4):
    return HashGroupAggSpec(
        child=ScanSpec("G"),
        group_columns=(0,),
        agg_func=func,
        agg_column=agg_col,
        num_partitions=partitions,
        label="hagg",
    )


def sort_plan(func="count", agg_col=2):
    return GroupAggSpec(
        child=SortSpec(ScanSpec("G"), key_columns=(0,), buffer_tuples=64),
        group_columns=(0,),
        agg_func=func,
        agg_column=agg_col,
    )


class TestHashGroupAggregate:
    @pytest.mark.parametrize("func", ["count", "sum", "min", "max"])
    def test_matches_sort_based_aggregate(self, func):
        hashed = QuerySession(group_db(), hash_plan(func)).execute().rows
        sorted_ = QuerySession(group_db(), sort_plan(func)).execute().rows
        assert sorted(hashed) == sorted(sorted_)

    def test_one_row_per_group(self):
        rows = QuerySession(group_db(), hash_plan()).execute().rows
        assert len(rows) == 13
        assert len({r[0] for r in rows}) == 13

    def test_partition_writes_charged(self):
        db = group_db()
        before = db.disk.counters.pages_written
        QuerySession(db, hash_plan()).execute()
        assert db.disk.counters.pages_written >= before + 2

    def test_empty_input(self):
        db = Database()
        db.create_table("G", BASE_SCHEMA, [])
        assert QuerySession(db, hash_plan()).execute().rows == []

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            QuerySession(group_db(), hash_plan(func="median"))
        with pytest.raises(ValueError):
            QuerySession(group_db(), hash_plan(partitions=0))

    def test_deterministic_output_order(self):
        first = QuerySession(group_db(), hash_plan()).execute().rows
        second = QuerySession(group_db(), hash_plan()).execute().rows
        assert first == second


class TestHashGroupAggregateSuspendResume:
    @pytest.mark.parametrize("strategy", ["all_dump", "all_goback", "lp"])
    @pytest.mark.parametrize("point", [1, 5, 11])
    def test_equivalence(self, strategy, point):
        plan = hash_plan("sum")
        ref = reference_rows(group_db, plan)
        got = suspend_resume_rows(group_db, plan, point, strategy)
        if got is not None:
            assert got == ref

    def test_suspend_during_partitioning(self):
        db = group_db()
        plan = hash_plan("sum")
        ref = reference_rows(group_db, plan)
        session = QuerySession(db, plan)
        session.execute(
            suspend_when=lambda rt: rt.op_named("hagg").consumed >= 100
        )
        assert session.status.value == "suspend_pending"
        sq = session.suspend(SuspendSpec(strategy="lp"))
        resumed = QuerySession.resume(db, sq)
        assert resumed.execute().rows == ref

    def test_double_suspend(self):
        plan = hash_plan("max")
        ref = reference_rows(group_db, plan)
        db = group_db()
        session = QuerySession(db, plan)
        rows = session.execute(max_rows=3).rows
        sq = session.suspend(SuspendSpec(strategy="all_goback"))
        session = QuerySession.resume(db, sq)
        rows += session.execute(max_rows=4).rows
        if session.status.value != "completed":
            sq2 = session.suspend(SuspendSpec(strategy="lp"))
            session = QuerySession.resume(db, sq2)
            rows += session.execute().rows
        assert rows == ref
