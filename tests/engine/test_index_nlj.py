"""Unit tests for tuple-based NLJ with an index on the inner."""

import pytest

from repro import Database, QuerySession, SuspendSpec
from repro.engine.plan import FilterSpec, IndexNLJSpec, ScanSpec
from repro.relational.datagen import BASE_SCHEMA, generate_uniform_table
from repro.relational.expressions import UniformSelect

from tests.conftest import reference_rows, suspend_resume_rows


def inlj_db():
    db = Database()
    db.create_table("R", BASE_SCHEMA, generate_uniform_table(150, seed=1))
    # S keys overlap R keys 0..149 plus duplicates via a second copy
    s_rows = generate_uniform_table(100, seed=2) + generate_uniform_table(
        50, seed=3
    )
    db.create_table("S", BASE_SCHEMA, s_rows)
    db.create_index("idx_S", "S", 0)
    return db


def inlj_plan(selectivity=0.5):
    return IndexNLJSpec(
        outer=FilterSpec(ScanSpec("R"), UniformSelect(1, selectivity), label="f"),
        index="idx_S",
        outer_key_column=0,
        label="inlj",
    )


class TestIndexNLJ:
    def test_matches_oracle(self):
        db = inlj_db()
        rows = QuerySession(db, inlj_plan(0.5)).execute().rows
        outer = [r for r in db.catalog.table("R").all_rows() if r[1] < 0.5]
        inner = list(db.catalog.table("S").all_rows())
        expected = sorted(o + i for o in outer for i in inner if o[0] == i[0])
        assert sorted(rows) == expected

    def test_probe_charges_index_traversal(self):
        db = inlj_db()
        before = db.disk.counters.pages_read
        QuerySession(db, inlj_plan(0.2)).execute()
        assert db.disk.counters.pages_read > before

    def test_is_stateless_reactive(self):
        db = inlj_db()
        session = QuerySession(db, inlj_plan())
        assert session.op_named("inlj").STATEFUL is False

    @pytest.mark.parametrize("strategy", ["all_dump", "lp"])
    @pytest.mark.parametrize("point", [1, 10, 40])
    def test_suspend_resume_equivalence(self, strategy, point):
        plan = inlj_plan()
        ref = reference_rows(inlj_db, plan)
        got = suspend_resume_rows(inlj_db, plan, point, strategy)
        if got is not None:
            assert got == ref

    def test_suspend_mid_probe_resumes_exact_match_position(self):
        """Suspend between two matches of the same outer tuple."""
        db = inlj_db()
        plan = inlj_plan(1.0)
        ref = reference_rows(inlj_db, plan)
        session = QuerySession(db, plan)
        first = session.execute(max_rows=2)
        sq = session.suspend(SuspendSpec(strategy="all_dump"))
        resumed = QuerySession.resume(db, sq)
        assert first.rows + resumed.execute().rows == ref
