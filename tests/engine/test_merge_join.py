"""Unit tests for merge join with value packets."""

import pytest

from repro import Database, QuerySession, SuspendSpec
from repro.engine.plan import MergeJoinSpec, ScanSpec, SortSpec
from repro.relational.datagen import BASE_SCHEMA, generate_uniform_table
from repro.relational.expressions import EquiJoinCondition

from tests.conftest import (
    make_small_db,
    reference_rows,
    suspend_resume_rows,
    tiny_smj_plan,
)


def dup_db(l_dups=3, r_dups=2, keys=40):
    """Tables with controlled duplicate counts to exercise value packets."""
    db = Database()
    left_rows = [(k, i / 100, i) for k in range(keys) for i in range(l_dups)]
    right_rows = [(k, i / 100, i) for k in range(keys) for i in range(r_dups)]
    db.create_table("L", BASE_SCHEMA, left_rows)
    db.create_table("Rt", BASE_SCHEMA, right_rows)
    return db


def packet_plan():
    return MergeJoinSpec(
        left=SortSpec(ScanSpec("L"), key_columns=(0,), buffer_tuples=30, label="sl"),
        right=SortSpec(ScanSpec("Rt"), key_columns=(0,), buffer_tuples=30, label="sr"),
        condition=EquiJoinCondition(0, 0),
        label="mj",
    )


class TestMergeJoinExecution:
    def test_cross_product_per_key(self):
        db = dup_db(l_dups=3, r_dups=2, keys=10)
        rows = QuerySession(db, packet_plan()).execute().rows
        assert len(rows) == 10 * 3 * 2
        # every output row joins equal keys
        assert all(r[0] == r[3] for r in rows)

    def test_disjoint_keys_produce_nothing(self):
        db = Database()
        db.create_table("L", BASE_SCHEMA, [(i, 0.0, i) for i in range(10)])
        db.create_table("Rt", BASE_SCHEMA, [(i + 100, 0.0, i) for i in range(10)])
        assert QuerySession(db, packet_plan()).execute().rows == []

    def test_one_side_empty(self):
        db = Database()
        db.create_table("L", BASE_SCHEMA, [])
        db.create_table("Rt", BASE_SCHEMA, [(1, 0.0, 0)])
        assert QuerySession(db, packet_plan()).execute().rows == []

    def test_matches_sorted_nested_loop_oracle(self):
        db = make_small_db()
        plan = tiny_smj_plan(selectivity=0.6)
        rows = QuerySession(db, plan).execute().rows
        left = sorted(
            (r for r in db.catalog.table("R").all_rows() if r[1] < 0.6),
            key=lambda r: r[0],
        )
        right = sorted(db.catalog.table("S").all_rows(), key=lambda r: r[0])
        expected = [l + r for l in left for r in right if l[0] == r[0]]
        assert sorted(rows) == sorted(expected)


class TestMergeJoinCheckpoints:
    def test_checkpoints_between_packets(self):
        db = dup_db(keys=20)
        session = QuerySession(db, packet_plan())
        session.execute()
        mj = session.op_named("mj")
        latest = session.runtime.graph.latest_checkpoint(mj.op_id)
        assert latest.seq > 1  # one per exhausted packet pair (pruned set)

    def test_packet_is_heap_state(self):
        db = dup_db(l_dups=5, r_dups=4, keys=10)
        session = QuerySession(db, packet_plan())
        session.execute(max_rows=3)  # inside the first packet pair
        mj = session.op_named("mj")
        assert mj.heap_tuples() == 9  # 5 left + 4 right


class TestMergeJoinSuspendResume:
    @pytest.mark.parametrize("strategy", ["all_dump", "all_goback", "lp"])
    @pytest.mark.parametrize("point", [1, 13, 47])
    def test_equivalence_with_packets(self, strategy, point):
        ref = reference_rows(dup_db, packet_plan())
        got = suspend_resume_rows(dup_db, packet_plan(), point, strategy)
        if got is not None:
            assert got == ref

    @pytest.mark.parametrize("strategy", ["all_dump", "all_goback", "lp"])
    @pytest.mark.parametrize("point", [1, 20, 90])
    def test_equivalence_full_smj_plan(self, strategy, point):
        plan = tiny_smj_plan()
        ref = reference_rows(make_small_db, plan)
        got = suspend_resume_rows(make_small_db, plan, point, strategy)
        if got is not None:
            assert got == ref

    def test_suspend_mid_packet_emission(self):
        """Suspend lands in the middle of a packet's cross product; GoBack
        resume rebuilds the packet and skips to the exact cursor."""
        db = dup_db(l_dups=4, r_dups=3, keys=15)
        ref = reference_rows(lambda: dup_db(4, 3, 15), packet_plan())
        session = QuerySession(db, packet_plan())
        first = session.execute(max_rows=7)  # mid-first-packet (12 outputs)
        sq = session.suspend(SuspendSpec(strategy="all_goback"))
        resumed = QuerySession.resume(db, sq)
        assert first.rows + resumed.execute().rows == ref
