"""Unit tests for two-phase merge sort."""

import pytest

from repro import Database, QuerySession, SuspendSpec
from repro.engine.plan import ScanSpec, SortSpec
from repro.engine.sort import PHASE_BUILD, PHASE_MERGE
from repro.relational.datagen import BASE_SCHEMA, generate_uniform_table

from tests.conftest import reference_rows, suspend_resume_rows


def sort_db(n=250):
    db = Database()
    db.create_table("R", BASE_SCHEMA, generate_uniform_table(n, seed=1))
    return db


def sort_plan(buffer_tuples=60):
    return SortSpec(
        ScanSpec("R", label="scan_R"),
        key_columns=(0,),
        buffer_tuples=buffer_tuples,
        label="sort",
    )


class TestSortExecution:
    def test_output_is_sorted_and_complete(self):
        db = sort_db(250)
        rows = QuerySession(db, sort_plan(60)).execute().rows
        assert len(rows) == 250
        assert [r[0] for r in rows] == sorted(r[0] for r in rows)

    def test_single_sublist_when_buffer_fits_all(self):
        db = sort_db(50)
        session = QuerySession(db, sort_plan(100))
        session.execute()
        assert len(session.op_named("sort").sublists) == 1

    def test_sublist_count(self):
        db = sort_db(250)
        session = QuerySession(db, sort_plan(60))
        session.execute()
        assert len(session.op_named("sort").sublists) == 5  # ceil(250/60)

    def test_sublist_writes_charged(self):
        db = sort_db(200)
        before = db.disk.counters.pages_written
        QuerySession(db, sort_plan(50)).execute()
        # 200 tuples at 100/page spilled once = 2+ pages written (sublists
        # shorter than a page each still cost one page).
        assert db.disk.counters.pages_written - before >= 2

    def test_empty_input(self):
        db = sort_db(0)
        assert QuerySession(db, sort_plan()).execute().rows == []

    def test_composite_sort_key(self):
        db = sort_db(100)
        plan = SortSpec(ScanSpec("R"), key_columns=(1, 0), buffer_tuples=30)
        rows = QuerySession(db, plan).execute().rows
        keys = [(r[1], r[0]) for r in rows]
        assert keys == sorted(keys)


class TestSortCheckpoints:
    def test_checkpoint_at_each_sublist_boundary(self):
        db = sort_db(250)
        session = QuerySession(db, sort_plan(60))
        session.execute(max_rows=1)
        sort = session.op_named("sort")
        latest = session.runtime.graph.latest_checkpoint(sort.op_id)
        # open + 5 sublist boundaries + phase boundary
        assert latest.seq == 7
        assert latest.payload["phase"] == PHASE_MERGE

    def test_phase_boundary_is_materialization_point(self):
        """A contract signed during the merge phase never touches the
        child: its fulfilling checkpoint lists all sublists on disk."""
        db = sort_db(150)
        session = QuerySession(db, sort_plan(60))
        session.execute(max_rows=20)
        sort = session.op_named("sort")
        contract = sort.sign_contract(
            anchor_ckpt=session.runtime.graph.latest_checkpoint(sort.op_id)
        )
        ckpt = session.runtime.graph.checkpoint(contract.child_ckpt_id)
        assert ckpt.payload["phase"] == PHASE_MERGE
        assert len(ckpt.payload["sublists"]) == 3


class TestSortSuspendResume:
    @pytest.mark.parametrize("strategy", ["all_dump", "all_goback", "lp"])
    @pytest.mark.parametrize("point", [1, 100, 249])
    def test_equivalence(self, strategy, point):
        plan = sort_plan(60)
        ref = reference_rows(sort_db, plan)
        got = suspend_resume_rows(sort_db, plan, point, strategy)
        if got is not None:
            assert got == ref

    def test_suspend_during_build_phase(self):
        """Trigger fires while the sort buffer is mid-fill."""
        plan = sort_plan(60)
        ref = reference_rows(sort_db, plan)
        db = sort_db()
        session = QuerySession(db, plan)
        session.execute(
            suspend_when=lambda rt: rt.op_named("sort").buffer_fill() >= 30
        )
        assert session.op_named("sort").phase == PHASE_BUILD
        sq = session.suspend(SuspendSpec(strategy="lp"))
        resumed = QuerySession.resume(db, sq)
        assert resumed.execute().rows == ref

    def test_merge_phase_goback_repositions_without_rebuild(self):
        """GoBack in the merge phase re-reads a block per sublist instead
        of redoing the sort — the 'skipping' behavior for sort."""
        plan = sort_plan(60)
        db = sort_db(250)
        session = QuerySession(db, plan)
        session.execute(max_rows=100)
        before_writes = db.disk.counters.pages_written
        sq = session.suspend(SuspendSpec(strategy="all_goback"))
        resumed = QuerySession.resume(db, sq)
        resumed.execute(max_rows=1)
        # No sublists rewritten during resume.
        written = db.disk.counters.pages_written - before_writes
        assert written <= 1  # only the SuspendedQuery control page

    def test_sublists_retained_across_suspend(self):
        db = sort_db(250)
        session = QuerySession(db, sort_plan(60))
        session.execute(max_rows=10)
        handles = list(session.op_named("sort").sublists)
        sq = session.suspend(SuspendSpec(strategy="all_dump"))
        for handle in handles:
            assert db.state_store.peek(handle) is not None
