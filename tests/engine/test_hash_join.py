"""Unit tests for simple (Grace) and hybrid hash joins."""

import pytest

from repro import Database, QuerySession, SuspendSpec
from repro.engine.plan import (
    FilterSpec,
    HybridHashJoinSpec,
    ScanSpec,
    SimpleHashJoinSpec,
)
from repro.relational.datagen import BASE_SCHEMA, generate_uniform_table
from repro.relational.expressions import EquiJoinCondition, UniformSelect

from tests.conftest import make_small_db, reference_rows, suspend_resume_rows

COND = EquiJoinCondition(0, 0, modulus=40)


def shj_plan(partitions=4):
    return SimpleHashJoinSpec(
        build=FilterSpec(ScanSpec("R"), UniformSelect(1, 0.5), label="f"),
        probe=ScanSpec("S"),
        condition=COND,
        num_partitions=partitions,
        label="hj",
    )


def hhj_plan(partitions=4, memory=2):
    return HybridHashJoinSpec(
        build=FilterSpec(ScanSpec("R"), UniformSelect(1, 0.5), label="f"),
        probe=ScanSpec("S"),
        condition=COND,
        num_partitions=partitions,
        memory_partitions=memory,
        label="hj",
    )


def oracle_join(db, selectivity=0.5, modulus=40):
    build = [r for r in db.catalog.table("R").all_rows() if r[1] < selectivity]
    probe = list(db.catalog.table("S").all_rows())
    return sorted(
        b + p for b in build for p in probe if b[0] % modulus == p[0] % modulus
    )


class TestHashJoinExecution:
    @pytest.mark.parametrize("plan_fn", [shj_plan, hhj_plan])
    def test_matches_oracle(self, plan_fn):
        db = make_small_db()
        rows = QuerySession(db, plan_fn()).execute().rows
        assert sorted(rows) == oracle_join(db)

    def test_simple_and_hybrid_same_multiset(self):
        db1, db2 = make_small_db(), make_small_db()
        simple = QuerySession(db1, shj_plan()).execute().rows
        hybrid = QuerySession(db2, hhj_plan()).execute().rows
        assert sorted(simple) == sorted(hybrid)

    def test_hybrid_does_less_io_than_simple(self):
        """Memory partitions never spill, so hybrid charges less I/O."""
        db1, db2 = make_small_db(), make_small_db()
        QuerySession(db1, shj_plan()).execute()
        QuerySession(db2, hhj_plan(memory=3)).execute()
        assert db2.disk.counters.pages_written < db1.disk.counters.pages_written

    def test_all_memory_hybrid_writes_nothing_for_state(self):
        db = make_small_db()
        before = db.disk.counters.pages_written
        QuerySession(db, hhj_plan(partitions=2, memory=2)).execute()
        assert db.disk.counters.pages_written == before

    def test_rejects_bad_partition_counts(self):
        db = make_small_db()
        with pytest.raises(ValueError):
            QuerySession(db, shj_plan(partitions=0))
        with pytest.raises(ValueError):
            QuerySession(db, hhj_plan(partitions=2, memory=5))


class TestHashJoinSuspendResume:
    @pytest.mark.parametrize("plan_fn", [shj_plan, hhj_plan])
    @pytest.mark.parametrize("strategy", ["all_dump", "all_goback", "lp"])
    @pytest.mark.parametrize("point", [1, 30, 200])
    def test_equivalence(self, plan_fn, strategy, point):
        plan = plan_fn()
        ref = reference_rows(make_small_db, plan)
        got = suspend_resume_rows(make_small_db, plan, point, strategy)
        if got is not None:
            assert got == ref

    def test_partition_boundary_checkpoint_enables_cheap_goback(self):
        """GoBack in the join phase reloads the current partition instead
        of re-consuming the children (the materialization point)."""
        db = make_small_db()
        plan = shj_plan()
        session = QuerySession(db, plan)
        session.execute(max_rows=30)
        scan_reads_before = db.disk.counters.pages_read
        sq = session.suspend(SuspendSpec(strategy="all_goback"))
        resumed = QuerySession.resume(db, sq)
        resumed.execute(max_rows=1)
        redo_reads = db.disk.counters.pages_read - scan_reads_before
        # Reloading one partition of a 300/200-tuple join is a handful of
        # pages; re-consuming both children would be ~5+.
        assert redo_reads < 10

    def test_suspend_during_partition_phase(self):
        """Suspension while partitioning (no output yet)."""
        db = make_small_db()
        plan = shj_plan()
        ref = reference_rows(make_small_db, plan)
        session = QuerySession(db, plan)
        session.execute(
            suspend_when=lambda rt: rt.op_named("hj").build_consumed >= 50
        )
        assert session.status.value == "suspend_pending"
        sq = session.suspend(SuspendSpec(strategy="lp"))
        resumed = QuerySession.resume(db, sq)
        assert resumed.execute().rows == ref
