"""Unit tests for table and index scans (operators + suspend behavior)."""

import pytest

from repro import Database, QuerySession
from repro.engine.plan import IndexScanSpec, ScanSpec
from repro.relational.datagen import BASE_SCHEMA, generate_uniform_table

from tests.conftest import reference_rows, suspend_resume_rows


def scan_db(n=120):
    db = Database()
    db.create_table(
        "R",
        BASE_SCHEMA,
        generate_uniform_table(n, seed=1),
        tuples_per_page=10,
    )
    db.create_index("idx_R", "R", 0)
    return db


class TestTableScan:
    def test_returns_all_rows_in_order(self):
        db = scan_db(37)
        rows = QuerySession(db, ScanSpec("R")).execute().rows
        assert rows == list(db.catalog.table("R").all_rows())

    def test_charges_sequential_reads(self):
        db = scan_db(100)
        before = db.disk.counters.pages_read
        QuerySession(db, ScanSpec("R")).execute()
        assert db.disk.counters.pages_read - before == 10

    def test_work_attributed_to_scan(self):
        db = scan_db(100)
        session = QuerySession(db, ScanSpec("R", label="s"))
        session.execute()
        scan = session.op_named("s")
        # 10 page reads + 100 emission cpu charges
        assert scan.work == pytest.approx(10.0 + 100 * 0.001)

    @pytest.mark.parametrize("strategy", ["all_dump", "lp"])
    @pytest.mark.parametrize("point", [1, 55, 119])
    def test_suspend_resume_equivalence(self, strategy, point):
        plan = ScanSpec("R")
        ref = reference_rows(scan_db, plan)
        got = suspend_resume_rows(scan_db, plan, point, strategy)
        assert got == ref

    def test_control_state_is_cursor_position(self):
        db = scan_db()
        session = QuerySession(db, ScanSpec("R", label="s"))
        session.execute(max_rows=25)
        control = session.op_named("s").control_state()
        assert control == {"page_no": 2, "slot": 5}


class TestIndexScan:
    def test_returns_rows_in_key_order(self):
        db = scan_db(60)
        rows = QuerySession(db, IndexScanSpec("idx_R")).execute().rows
        keys = [r[0] for r in rows]
        assert keys == sorted(keys)
        assert len(rows) == 60

    def test_start_key_skips_prefix(self):
        db = scan_db(60)
        rows = QuerySession(db, IndexScanSpec("idx_R", start_key=50)).execute().rows
        assert [r[0] for r in rows] == list(range(50, 60))

    @pytest.mark.parametrize("strategy", ["all_dump", "lp"])
    def test_suspend_resume_equivalence(self, strategy):
        plan = IndexScanSpec("idx_R")
        ref = reference_rows(scan_db, plan)
        got = suspend_resume_rows(scan_db, plan, 31, strategy)
        assert got == ref
