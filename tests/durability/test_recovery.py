"""Recovery-scan classification and quarantine behavior."""

import os

from repro.core.lifecycle import QuerySession
from repro.durability import ImageStore, build_recipe
from repro.durability.format import MANIFEST_NAME


def committed_image(root, image_id="good"):
    db, plan = build_recipe("sort")
    session = QuerySession(db, plan)
    session.execute(max_rows=50)
    sq = session.suspend()
    return ImageStore(str(root)).save(sq, db.state_store, image_id=image_id)


class TestRecoveryScan:
    def test_committed_image_left_alone(self, tmp_path):
        committed_image(tmp_path)
        report = ImageStore(str(tmp_path)).recover()
        assert report.committed == ["good"]
        assert report.quarantined == []
        assert ImageStore(str(tmp_path)).validate("good") == []

    def test_manifestless_partial_is_torn(self, tmp_path):
        partial = tmp_path / "halfway"
        partial.mkdir()
        (partial / "blob-0000.bin").write_bytes(b"{}")
        (partial / "control.json.tmp").write_bytes(b"{")
        report = ImageStore(str(tmp_path)).recover()
        assert report.torn == ["halfway"]
        assert not partial.exists()
        assert (tmp_path / "quarantine" / "halfway").is_dir()

    def test_corrupt_manifest_is_torn(self, tmp_path):
        info = committed_image(tmp_path)
        with open(os.path.join(info.path, MANIFEST_NAME), "wb") as fh:
            fh.write(b"garbage")
        report = ImageStore(str(tmp_path)).recover()
        assert report.torn == ["good"]
        assert (tmp_path / "quarantine" / "good").is_dir()

    def test_checksum_failure_is_torn(self, tmp_path):
        info = committed_image(tmp_path)
        blob = next(
            n for n in os.listdir(info.path) if n.startswith("blob-")
        )
        with open(os.path.join(info.path, blob), "ab") as fh:
            fh.write(b"tail")
        report = ImageStore(str(tmp_path)).recover()
        assert report.torn == ["good"]

    def test_stray_file_and_empty_dir_are_orphaned(self, tmp_path):
        (tmp_path / "note.txt").write_text("not an image")
        (tmp_path / "emptydir").mkdir()
        report = ImageStore(str(tmp_path)).recover()
        assert sorted(report.orphaned) == ["emptydir", "note.txt"]
        assert sorted(os.listdir(tmp_path / "quarantine")) == [
            "emptydir",
            "note.txt",
        ]

    def test_scan_is_idempotent_and_names_do_not_collide(self, tmp_path):
        for _ in range(2):
            bad = tmp_path / "bad"
            bad.mkdir()
            (bad / "blob-0000.bin").write_bytes(b"x")
            report = ImageStore(str(tmp_path)).recover()
            assert report.torn == ["bad"]
        names = sorted(os.listdir(tmp_path / "quarantine"))
        assert names == ["bad", "bad.1"]
        # Nothing bad left at the root: a third scan is clean.
        report = ImageStore(str(tmp_path)).recover()
        assert report.torn == report.orphaned == report.quarantined == []

    def test_mixed_root(self, tmp_path):
        committed_image(tmp_path, image_id="keep")
        torn = tmp_path / "torn"
        torn.mkdir()
        (torn / "MANIFEST.json.tmp").write_bytes(b"{")
        (tmp_path / "stray").write_bytes(b"?")
        report = ImageStore(str(tmp_path)).recover()
        assert report.committed == ["keep"]
        assert report.torn == ["torn"]
        assert report.orphaned == ["stray"]
        # The committed image is still loadable after the scan.
        assert ImageStore(str(tmp_path)).load("keep").entries
