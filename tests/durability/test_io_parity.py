"""Simulated-disk cost parity: persisting an image charges no extra I/O.

The image is the durable form of bytes the simulation already charged
for — dump pages at dump time, the control record at suspend time — so
``suspend(persist_to=...)`` must produce byte-for-byte identical
IOCounters to a plain ``suspend()``. The importing side, by contrast,
pays page writes for re-homing the payloads (migration semantics).
"""

import dataclasses

import pytest

from repro.core.lifecycle import QuerySession
from repro.durability import ImageStore, build_recipe
from repro.core.lifecycle import SuspendSpec

# Rows to emit before suspending — hashagg only produces 16 groups.
SHAPES = {"sort": 60, "hashjoin": 60, "hashagg": 6}


def run_suspend(recipe, rows, persist_to=None):
    db, plan = build_recipe(recipe)
    session = QuerySession(db, plan)
    session.execute(max_rows=rows)
    before = db.disk.counters.snapshot()
    session.suspend(SuspendSpec(persist_to=persist_to))
    delta = db.disk.counters.minus(before)
    return session, delta


class TestPersistParity:
    @pytest.mark.parametrize("recipe", sorted(SHAPES))
    def test_persisting_charges_same_io_as_plain_suspend(
        self, recipe, tmp_path
    ):
        rows = SHAPES[recipe]
        _, plain = run_suspend(recipe, rows=rows)
        session, persisted = run_suspend(
            recipe, rows=rows, persist_to=str(tmp_path)
        )
        assert session.last_image is not None
        assert dataclasses.asdict(persisted) == dataclasses.asdict(plain)

    def test_virtual_clock_parity(self, tmp_path):
        plain_session, _ = run_suspend("sort", rows=60)
        persist_session, _ = run_suspend(
            "sort", rows=60, persist_to=str(tmp_path)
        )
        assert persist_session.last_suspend_cost == pytest.approx(
            plain_session.last_suspend_cost
        )


class TestImportCharges:
    def test_resume_from_image_charges_payload_writes(self, tmp_path):
        session, _ = run_suspend("sort", rows=120, persist_to=str(tmp_path))
        info = session.last_image
        assert info.blob_pages > 0

        fresh_db, _ = build_recipe("sort")
        sq = ImageStore(str(tmp_path)).load(info.image_id)
        before = fresh_db.disk.counters.snapshot()
        QuerySession.resume(fresh_db, sq)
        delta = fresh_db.disk.counters.minus(before)
        # Re-homing the image's payloads pays exactly their page count.
        assert delta.pages_written == info.blob_pages

    def test_in_process_resume_pays_no_import(self):
        db, plan = build_recipe("sort")
        session = QuerySession(db, plan)
        session.execute(max_rows=120)
        sq = session.suspend()
        before = db.disk.counters.snapshot()
        QuerySession.resume(db, sq)
        delta = db.disk.counters.minus(before)
        assert delta.pages_written == 0
