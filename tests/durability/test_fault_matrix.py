"""The parametrized crash matrix: every commit step, every torn write.

The fault list is enumerated from a clean recorder run (not hard-coded),
so these tests cannot drift out of sync with the commit protocol: adding
a step to ``ImageStore.save`` automatically adds its crash points here.
Each fault gets its own test case asserting the recovery classification
and — the core safety claim — the absence of silent corruption.
"""

import tempfile

from repro.core.lifecycle import QuerySession
from repro.durability import build_recipe, enumerate_faults, run_crash_matrix
from repro.durability.faults import FaultInjector
from repro.durability.harness import run_one_fault


def make_suspended():
    db, plan = build_recipe("sort")
    session = QuerySession(db, plan)
    session.execute(max_rows=150)
    sq = session.suspend()
    return sq, db.state_store


_FAULTS = None


def all_faults():
    global _FAULTS
    if _FAULTS is None:
        sq, store = make_suspended()
        scratch = tempfile.mkdtemp(prefix="fault-probe-")
        points, torn = enumerate_faults(sq, store, scratch)
        _FAULTS = [("crash", p) for p in points] + [
            ("torn", lb) for lb in torn
        ]
    return _FAULTS


def expected_classification(kind: str, name: str) -> set:
    if kind == "torn":
        return {"torn"}
    if name == "begin":
        return {"absent"}
    if name in ("renamed:MANIFEST.json", "committed"):
        return {"committed"}
    if name == "before:blob-0000.bin":
        # Crash before the first byte: the directory is empty.
        return {"orphaned"}
    return {"torn"}


def pytest_generate_tests(metafunc):
    if "fault" in metafunc.fixturenames:
        faults = all_faults()
        metafunc.parametrize(
            "fault", faults, ids=[f"{k}:{n}" for k, n in faults]
        )


class TestCrashMatrix:
    def test_fault_leaves_no_silent_corruption(self, fault, tmp_path):
        kind, name = fault
        injector = (
            FaultInjector.crashing_at(name)
            if kind == "crash"
            else FaultInjector.tearing(name)
        )
        sq, store = make_suspended()
        outcome = run_one_fault(
            sq, store, str(tmp_path), injector, fault=f"{kind}:{name}"
        )
        assert not outcome.silent_corruption, outcome.detail
        assert outcome.classification in expected_classification(kind, name)
        if outcome.classification == "committed":
            assert outcome.loaded
        # Every fault except the two post-commit points actually crashed.
        assert outcome.crashed


def test_matrix_covers_manifest_and_blob_torn_writes():
    """The enumerated matrix must include the satellite's required cells."""
    faults = set(all_faults())
    assert ("torn", "MANIFEST.json") in faults
    assert ("torn", "control.json") in faults
    assert any(k == "torn" and n.startswith("blob-") for k, n in faults)
    assert ("crash", "written:MANIFEST.json") in faults
    assert ("crash", "renamed:MANIFEST.json") in faults


def test_full_matrix_via_harness(tmp_path):
    """End-to-end harness sweep: zero silent-corruption outcomes."""
    outcomes = run_crash_matrix(make_suspended, str(tmp_path))
    assert len(outcomes) >= 10
    assert all(not o.silent_corruption for o in outcomes)
    committed = [o for o in outcomes if o.classification == "committed"]
    # Exactly the two post-commit crash points leave a committed image.
    assert sorted(o.fault for o in committed) == [
        "crash:committed",
        "crash:renamed:MANIFEST.json",
    ]
    assert all(o.loaded for o in committed)
