"""The parametrized crash matrix: every commit step, every torn write.

The fault list is enumerated from a clean recorder run (not hard-coded),
so these tests cannot drift out of sync with the commit protocol: adding
a step to ``ImageStore.save`` automatically adds its crash points here.
Each fault gets its own test case asserting the recovery classification
and — the core safety claim — the absence of silent corruption.

The matrix runs once per codec (v1 tagged JSON through ``atomic_write``,
v2 binary frames through ``atomic_write_stream`` — a v2 torn write
truncates *inside* a CRC'd frame), and again for delta commits, where
the base image must additionally survive every mid-chain crash.
"""

import tempfile

from repro.core.lifecycle import QuerySession
from repro.durability import (
    CODEC_V1,
    CODEC_V2,
    build_recipe,
    enumerate_faults,
    run_crash_matrix,
)
from repro.durability.faults import FaultInjector
from repro.durability.harness import (
    run_delta_crash_matrix,
    run_one_fault,
)

CODECS = (CODEC_V1, CODEC_V2)
CONTROL_FILE = {CODEC_V1: "control.json", CODEC_V2: "control.bin"}


def make_suspended():
    db, plan = build_recipe("sort")
    session = QuerySession(db, plan)
    session.execute(max_rows=150)
    sq = session.suspend()
    return sq, db.state_store


_FAULTS: dict = {}


def all_faults(codec_version: int):
    if codec_version not in _FAULTS:
        sq, store = make_suspended()
        scratch = tempfile.mkdtemp(prefix=f"fault-probe-v{codec_version}-")
        points, torn = enumerate_faults(
            sq, store, scratch, codec_version=codec_version
        )
        _FAULTS[codec_version] = [("crash", p) for p in points] + [
            ("torn", lb) for lb in torn
        ]
    return _FAULTS[codec_version]


def expected_classification(kind: str, name: str) -> set:
    if kind == "torn":
        return {"torn"}
    if name == "begin":
        return {"absent"}
    if name in ("renamed:MANIFEST.json", "committed"):
        return {"committed"}
    if name == "before:blob-0000.bin":
        # Crash before the first byte: the directory is empty.
        return {"orphaned"}
    return {"torn"}


def pytest_generate_tests(metafunc):
    if "codec_fault" in metafunc.fixturenames:
        cases = [
            (codec, fault) for codec in CODECS for fault in all_faults(codec)
        ]
        metafunc.parametrize(
            "codec_fault",
            cases,
            ids=[f"v{c}:{k}:{n}" for c, (k, n) in cases],
        )


class TestCrashMatrix:
    def test_fault_leaves_no_silent_corruption(self, codec_fault, tmp_path):
        codec_version, (kind, name) = codec_fault
        injector = (
            FaultInjector.crashing_at(name)
            if kind == "crash"
            else FaultInjector.tearing(name)
        )
        sq, store = make_suspended()
        outcome = run_one_fault(
            sq,
            store,
            str(tmp_path),
            injector,
            fault=f"{kind}:{name}",
            codec_version=codec_version,
        )
        assert not outcome.silent_corruption, outcome.detail
        assert outcome.classification in expected_classification(kind, name)
        if outcome.classification == "committed":
            assert outcome.loaded
        # Every fault except the two post-commit points actually crashed.
        assert outcome.crashed


def test_matrix_covers_manifest_and_blob_torn_writes():
    """The enumerated matrix must include the satellite's required cells."""
    for codec_version in CODECS:
        faults = set(all_faults(codec_version))
        assert ("torn", "MANIFEST.json") in faults
        assert ("torn", CONTROL_FILE[codec_version]) in faults
        assert any(k == "torn" and n.startswith("blob-") for k, n in faults)
        assert ("crash", "written:MANIFEST.json") in faults
        assert ("crash", "renamed:MANIFEST.json") in faults


def test_full_matrix_via_harness(tmp_path):
    """End-to-end harness sweep: zero silent-corruption outcomes."""
    for codec_version in CODECS:
        outcomes = run_crash_matrix(
            make_suspended,
            str(tmp_path / f"v{codec_version}"),
            codec_version=codec_version,
        )
        assert len(outcomes) >= 10
        assert all(not o.silent_corruption for o in outcomes)
        committed = [
            o for o in outcomes if o.classification == "committed"
        ]
        # Exactly the two post-commit crash points leave a committed image.
        assert sorted(o.fault for o in committed) == [
            "crash:committed",
            "crash:renamed:MANIFEST.json",
        ]
        assert all(o.loaded for o in committed)


def test_delta_matrix_base_survives_every_fault(tmp_path):
    """Mid-chain delta commit faults: delta torn/absent, base intact."""
    for codec_version in CODECS:
        outcomes = run_delta_crash_matrix(
            make_suspended,
            str(tmp_path / f"v{codec_version}"),
            codec_version=codec_version,
        )
        assert len(outcomes) >= 8
        for o in outcomes:
            assert not o.silent_corruption, f"{o.fault}: {o.detail}"
            assert o.base_intact, f"{o.fault}: base image lost"
        committed = [
            o for o in outcomes if o.classification == "committed"
        ]
        assert sorted(o.fault for o in committed) == [
            "crash:committed",
            "crash:renamed:MANIFEST.json",
        ]
        assert all(o.loaded for o in committed)
