"""ImageStore round trips, inventory management, and corruption checks."""

import os

import pytest

from repro.core.lifecycle import QuerySession
from repro.durability import ImageStore, SaveRequest, build_recipe
from repro.durability.format import ImageFormatError, MANIFEST_NAME
from repro.durability.store import ImageNotFoundError
from repro.core.lifecycle import SuspendSpec

SHAPES = ("sort", "hashjoin", "hashagg")


def suspend_partway(recipe, rows=60):
    db, plan = build_recipe(recipe)
    session = QuerySession(db, plan)
    result = session.execute(max_rows=rows)
    assert session.status.value == "suspend_pending" or result.rows
    sq = session.suspend()
    return db, sq, result.rows


class TestRoundTrip:
    @pytest.mark.parametrize("recipe", SHAPES)
    def test_save_load_resume_matches_reference(self, recipe, tmp_path):
        ref_db, ref_plan = build_recipe(recipe)
        reference = QuerySession(ref_db, ref_plan).execute().rows

        db, sq, prefix = suspend_partway(recipe, rows=max(1, len(reference) // 3))
        store = ImageStore(str(tmp_path))
        info = store.save(sq, db.state_store, meta={"recipe": recipe})

        # A brand-new database, as a fresh process would build it.
        fresh_db, _ = build_recipe(recipe)
        loaded = store.load(info.image_id)
        # Every persisted blob is staged for import (may be zero when the
        # LP chose goback for every operator).
        assert len(loaded.migrated_payloads) == info.num_blobs
        resumed = QuerySession.resume(fresh_db, loaded)
        rest = resumed.execute().rows
        assert prefix + rest == reference

    def test_persist_to_on_suspend_sets_last_image(self, tmp_path):
        db, plan = build_recipe("sort")
        session = QuerySession(db, plan)
        session.execute(max_rows=50)
        session.suspend(SuspendSpec(persist_to=str(tmp_path), image_meta={"k": "v"}))
        info = session.last_image
        assert info is not None
        assert info.meta == {"k": "v"}
        assert ImageStore(str(tmp_path)).validate(info.image_id) == []


class TestInventory:
    def test_list_validate_delete_gc(self, tmp_path):
        store = ImageStore(str(tmp_path))
        db, sq, _ = suspend_partway("sort")
        a = store.save(sq, db.state_store, image_id="img-a")
        db2, sq2, _ = suspend_partway("hashagg", rows=6)
        b = store.save(sq2, db2.state_store, image_id="img-b")

        listed = [i.image_id for i in store.list_images()]
        assert sorted(listed) == ["img-a", "img-b"]
        assert store.validate("img-a") == []
        assert store.info("img-b").num_blobs == b.num_blobs

        store.delete("img-a")
        assert [i.image_id for i in store.list_images()] == ["img-b"]
        with pytest.raises(ImageNotFoundError):
            store.load("img-a")

        assert store.gc(keep={"img-b"}) == []
        assert store.gc() == ["img-b"]
        assert store.list_images() == []

    def test_duplicate_image_id_rejected(self, tmp_path):
        store = ImageStore(str(tmp_path))
        db, sq, _ = suspend_partway("sort")
        store.save(sq, db.state_store, image_id="dup")
        with pytest.raises(ValueError):
            store.save(sq, db.state_store, image_id="dup")

    def test_bad_image_id_rejected(self, tmp_path):
        store = ImageStore(str(tmp_path))
        db, sq, _ = suspend_partway("sort")
        with pytest.raises(ValueError):
            store.save(sq, db.state_store, image_id="../escape")


class TestParallelCommit:
    def _requests(self):
        requests = []
        for recipe in SHAPES:
            db, sq, _ = suspend_partway(
                recipe, rows=6 if recipe == "hashagg" else 60
            )
            requests.append(
                SaveRequest(
                    sq, db.state_store, image_id=f"img-{recipe}"
                )
            )
        return requests

    def test_save_many_parallel_matches_serial_bytes(self, tmp_path):
        manifests = {}
        for label, workers in (("serial", 0), ("parallel", 3)):
            store = ImageStore(
                str(tmp_path / label), commit_workers=workers
            )
            infos = store.save_many(self._requests())
            assert [i.image_id for i in infos] == [
                f"img-{r}" for r in SHAPES
            ]
            assert all(store.validate(i.image_id) == [] for i in infos)
            manifests[label] = {
                i.image_id: store.manifest(i.image_id) for i in infos
            }
        # created_at is wall clock and blob epochs name the exporting
        # StateStore instance (each run built its own); everything else
        # (checksums included) must be byte-identical between the serial
        # and parallel paths.
        for mf in manifests.values():
            for m in mf.values():
                m.pop("created_at")
                for blob in m["blobs"]:
                    blob.pop("epoch", None)
        assert manifests["serial"] == manifests["parallel"]

    def test_save_many_parallel_images_load(self, tmp_path):
        store = ImageStore(str(tmp_path), commit_workers=3)
        store.save_many(self._requests())
        for recipe in SHAPES:
            loaded = store.load(f"img-{recipe}")
            fresh_db, _ = build_recipe(recipe)
            resumed = QuerySession.resume(fresh_db, loaded)
            assert resumed.execute().rows is not None


class TestCorruptionDetection:
    def _committed(self, tmp_path):
        store = ImageStore(str(tmp_path))
        db, sq, _ = suspend_partway("sort")
        info = store.save(sq, db.state_store, image_id="img")
        return store, info

    def test_corrupt_blob_detected(self, tmp_path):
        store, info = self._committed(tmp_path)
        blob = next(
            n for n in os.listdir(info.path) if n.startswith("blob-")
        )
        path = os.path.join(info.path, blob)
        with open(path, "r+b") as fh:
            fh.seek(0)
            fh.write(b"X")
        problems = store.validate("img")
        assert problems and "checksum" in problems[0]
        with pytest.raises(ImageFormatError):
            store.load("img")

    def test_truncated_control_detected(self, tmp_path):
        store, info = self._committed(tmp_path)
        control = store.manifest("img")["control_file"]
        path = os.path.join(info.path, control)
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[: len(data) // 2])
        assert store.validate("img")
        with pytest.raises(ImageFormatError):
            store.load("img")

    def test_missing_blob_detected(self, tmp_path):
        store, info = self._committed(tmp_path)
        blob = next(
            n for n in os.listdir(info.path) if n.startswith("blob-")
        )
        os.unlink(os.path.join(info.path, blob))
        assert any("missing" in p for p in store.validate("img"))

    def test_unmanifested_file_detected(self, tmp_path):
        store, info = self._committed(tmp_path)
        with open(os.path.join(info.path, "extra.bin"), "wb") as fh:
            fh.write(b"stray")
        assert any("unmanifested" in p for p in store.validate("img"))

    def test_garbage_manifest_detected(self, tmp_path):
        store, info = self._committed(tmp_path)
        with open(os.path.join(info.path, MANIFEST_NAME), "wb") as fh:
            fh.write(b"not json at all")
        with pytest.raises(ImageFormatError):
            store.load("img")
