"""Cross-process round trips: suspend in one interpreter, resume in another.

This is the acceptance test for the durability subsystem: the CLI's
``suspend`` subcommand runs a recipe partway and commits an image in one
Python process; ``resume-image`` is then run in a *brand-new* interpreter
that rebuilds the recipe's database from the image metadata and finishes
the query. The concatenated output must equal an uninterrupted run —
for every stateful plan shape (external sort, hash join, hash
aggregation).
"""

import json
import os
import subprocess
import sys

import pytest

from repro.core.lifecycle import QuerySession
from repro.durability import build_recipe

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)

SHAPES = ("sort", "hashjoin", "hashagg")


def run_cli(*argv: str) -> str:
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        REPO_SRC if not existing else REPO_SRC + os.pathsep + existing
    )
    out = subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        env=env,
        capture_output=True,
        text=True,
    )
    assert out.returncode == 0, out.stderr
    return out.stdout


@pytest.mark.parametrize("recipe", SHAPES)
def test_cross_process_round_trip(recipe, tmp_path):
    db, plan = build_recipe(recipe)
    reference = QuerySession(db, plan).execute().rows
    rows_before = max(1, len(reference) // 4)

    suspended = json.loads(
        run_cli(
            "suspend",
            "--recipe",
            recipe,
            "--images",
            str(tmp_path),
            "--rows",
            str(rows_before),
            "--json",
        )
    )
    prefix = [tuple(r) for r in suspended["rows"]]
    assert len(prefix) == rows_before

    resumed = json.loads(
        run_cli(
            "resume-image",
            "--images",
            str(tmp_path),
            "--id",
            suspended["image_id"],
            "--json",
        )
    )
    rest = [tuple(r) for r in resumed["rows"]]
    assert prefix + rest == reference
    assert resumed["resume_cost"] > 0


def test_images_listing_and_recover_cli(tmp_path):
    suspended = json.loads(
        run_cli(
            "suspend",
            "--recipe",
            "sort",
            "--images",
            str(tmp_path),
            "--rows",
            "30",
            "--json",
        )
    )
    listing = json.loads(run_cli("images", "--images", str(tmp_path), "--json"))
    assert [i["image_id"] for i in listing["images"]] == [
        suspended["image_id"]
    ]
    assert listing["images"][0]["valid"]

    # Drop a torn directory next to it; the recover subcommand quarantines.
    torn = tmp_path / "halfdone"
    torn.mkdir()
    (torn / "blob-0000.bin").write_bytes(b"{}")
    report = json.loads(
        run_cli("images", "--images", str(tmp_path), "--recover", "--json")
    )
    assert report["committed"] == [suspended["image_id"]]
    assert report["torn"] == ["halfdone"]
