"""Cross-codec-version compatibility.

A v1 image written by an earlier build (checked in under
``fixtures/v1-images``) must stay loadable and resumable forever, and a
query suspended today must resume to identical output regardless of
which codec wrote the image.
"""

import json
import os

import pytest

from repro.cli import run_images
from repro.core.lifecycle import QuerySession
from repro.durability import CODEC_V1, CODEC_V2, ImageStore, build_recipe
from repro.durability.format import manifest_codec_version

FIXTURE_ROOT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "fixtures", "v1-images"
)


def reference_rows(recipe="sort"):
    db, plan = build_recipe(recipe)
    return QuerySession(db, plan).execute().rows


def suspend_partway(recipe="sort", rows=40):
    db, plan = build_recipe(recipe)
    session = QuerySession(db, plan)
    session.execute(max_rows=rows)
    return db, session.suspend()


class TestV1Fixture:
    def test_fixture_validates_and_reports_codec_v1(self):
        store = ImageStore(FIXTURE_ROOT)
        assert store.validate("v1-fixture") == []
        assert store.info("v1-fixture").codec_version == CODEC_V1
        assert manifest_codec_version(store.manifest("v1-fixture")) == CODEC_V1

    def test_fixture_resumes_to_reference_output(self):
        store = ImageStore(FIXTURE_ROOT)
        loaded = store.load("v1-fixture")
        fresh_db, _ = build_recipe("sort")
        resumed = QuerySession.resume(fresh_db, loaded)
        rest = resumed.execute().rows
        reference = reference_rows("sort")
        assert rest == reference[40:]

    def test_images_cli_reports_codec_version(self):
        listing = json.loads(run_images(FIXTURE_ROOT, as_json=True))
        (row,) = listing["images"]
        assert row["codec_version"] == CODEC_V1
        assert row["valid"]
        text = run_images(FIXTURE_ROOT)
        assert "codec v1" in text


class TestCrossCodecEquivalence:
    @pytest.mark.parametrize("recipe", ("sort", "hashjoin"))
    def test_same_rows_from_either_codec(self, recipe, tmp_path):
        reference = reference_rows(recipe)
        prefix = max(1, len(reference) // 3)
        rests = {}
        for codec in (CODEC_V1, CODEC_V2):
            db, sq = suspend_partway(recipe, rows=prefix)
            store = ImageStore(
                str(tmp_path / f"v{codec}"), codec_version=codec
            )
            info = store.save(sq, db.state_store, image_id="img")
            assert info.codec_version == codec
            fresh_db, _ = build_recipe(recipe)
            resumed = QuerySession.resume(fresh_db, store.load("img"))
            rests[codec] = resumed.execute().rows
        assert rests[CODEC_V1] == rests[CODEC_V2]
        assert (
            reference[prefix:] == rests[CODEC_V2]
        ), "v2 resume must match the uninterrupted reference run"

    def test_v2_resume_of_v1_written_today(self, tmp_path):
        db, sq = suspend_partway("sort", rows=30)
        store_v1 = ImageStore(str(tmp_path), codec_version=CODEC_V1)
        store_v1.save(sq, db.state_store, image_id="img")
        # A default (v2) store reads the same root: dispatch is per-image.
        store_v2 = ImageStore(str(tmp_path))
        loaded = store_v2.load("img")
        fresh_db, _ = build_recipe("sort")
        rest = QuerySession.resume(fresh_db, loaded).execute().rows
        assert rest == reference_rows("sort")[30:]

    def test_v2_is_smaller_than_v1(self, tmp_path):
        db, sq = suspend_partway("sort", rows=40)
        sizes = {}
        for codec in (CODEC_V1, CODEC_V2):
            store = ImageStore(
                str(tmp_path / f"v{codec}"), codec_version=codec
            )
            sizes[codec] = store.save(
                sq, db.state_store, image_id="img"
            ).total_bytes
        assert sizes[CODEC_V2] * 3 <= sizes[CODEC_V1]
