"""Codec v2 unit and property tests.

Round-trip identity over the full value domain, the columnar rows fast
path, frame/CRC integrity, and — the PROTOCOL.md §7 determinism rule
extended to image bytes — byte-identical re-encode, including across two
interpreter processes.
"""

import hashlib
import os
import struct
import subprocess
import sys
import zlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.lifecycle import QuerySession
from repro.durability import build_recipe
from repro.durability.codec import CodecError
from repro.durability.codec2 import (
    FLAG_ZLIB,
    FRAME_HEADER,
    STREAM_MAGIC,
    T_ROWS,
    decode_bytes,
    decode_suspended_query,
    encode_bytes,
    encode_suspended_query,
    iter_frame_payloads,
)
from repro.engine.plan import ScanSpec, SortSpec
from repro.storage.statefile import DumpHandle

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)


def roundtrip(value, **kwargs):
    data = encode_bytes(value, **kwargs)
    return decode_bytes(data), data


class TestValueRoundTrip:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            2**70,
            -(2**70),
            0.0,
            -0.5,
            1e300,
            "",
            "hello",
            "x" * 2000,  # beyond INTERN_MAX_BYTES: the long-string path
            [],
            [1, "two", None, 3.0],
            (1, 2),
            {"a": 1, "b": [2, 3]},
            {(1, 2): "tuple key", 7: "int key"},
            {1, 2, 3},
            frozenset({"a", "b"}),
            [[1], [2, [3, {"deep": (4,)}]]],
        ],
    )
    def test_scalar_and_container_identity(self, value):
        decoded, _ = roundtrip(value)
        assert decoded == value
        assert type(decoded) is type(value)

    def test_bool_and_int_stay_distinct(self):
        decoded, _ = roundtrip([True, 1, False, 0])
        assert [type(v) for v in decoded] == [bool, int, bool, int]

    def test_dump_handle(self):
        decoded, _ = roundtrip(DumpHandle(store_id=3, key="sub#1", pages=9))
        assert decoded == DumpHandle(store_id=-1, key="sub#1", pages=9)

    def test_registered_dataclass(self):
        spec = SortSpec(ScanSpec("R"), key_columns=(0,), buffer_tuples=10)
        decoded, _ = roundtrip(spec)
        assert decoded == spec

    def test_string_interning_shrinks_repeats(self):
        repeated = ["the-same-label"] * 500
        _, data = roundtrip(repeated, compress=False)
        # One SDEF carries the bytes; 499 SREFs are ~2 bytes each.
        assert len(data) < 500 * len("the-same-label")


class TestColumnarRows:
    def test_i64_f64_str_rows(self):
        rows = [(i, i * 0.5, f"s{i % 3}") for i in range(100)]
        decoded, data = roundtrip(rows, compress=False)
        assert decoded == rows
        assert all(type(r) is tuple for r in decoded)
        payload = b"".join(iter_frame_payloads(data))
        assert payload[0] == T_ROWS

    def test_rows_use_bulk_packs(self):
        rows = [(i, float(i)) for i in range(1000)]
        _, data = roundtrip(rows, compress=False)
        payload = b"".join(iter_frame_payloads(data))
        # Two fixed-width column segments dominate: ~16 bytes per row,
        # nowhere near a per-cell tagged encoding.
        assert len(payload) < 1000 * 18

    def test_mixed_column_falls_back(self):
        rows = [(1, "a"), (2, "b"), ("three", "c"), (4, "d")]
        decoded, _ = roundtrip(rows)
        assert decoded == rows

    def test_huge_int_column_falls_back(self):
        rows = [(2**80 + i,) for i in range(8)]
        decoded, _ = roundtrip(rows)
        assert decoded == rows

    def test_bool_column_stays_bool(self):
        rows = [(True, 1), (False, 2), (True, 3), (False, 4)]
        decoded, _ = roundtrip(rows)
        assert decoded == rows
        assert type(decoded[0][0]) is bool

    def test_short_or_ragged_lists_take_generic_path(self):
        for value in ([(1,), (2,)], [(1,), (2, 3), (4,), (5,)]):
            decoded, _ = roundtrip(value)
            assert decoded == value


class TestFrames:
    def test_stream_magic_and_multiple_frames(self):
        rows = [(i, float(i), "payload") for i in range(5000)]
        data = encode_bytes(rows, chunk_bytes=4096, compress=False)
        assert data.startswith(STREAM_MAGIC)
        frames = 0
        pos = len(STREAM_MAGIC)
        while pos < len(data):
            _, _, _, stored, _ = FRAME_HEADER.unpack_from(data, pos)
            pos += FRAME_HEADER.size + stored
            frames += 1
        assert frames > 1
        assert decode_bytes(data) == rows

    def test_compression_marks_flag_and_shrinks(self):
        rows = [(i % 5, 0.25, "label") for i in range(2000)]
        plain = encode_bytes(rows, compress=False)
        packed = encode_bytes(rows, compress=True)
        assert len(packed) < len(plain)
        flags = packed[len(STREAM_MAGIC) + 2]
        assert flags & FLAG_ZLIB
        assert decode_bytes(packed) == rows

    def test_bad_magic_rejected(self):
        with pytest.raises(CodecError, match="magic"):
            decode_bytes(b"NOPE" + encode_bytes([1, 2, 3])[4:])

    def test_crc_flip_detected(self):
        data = bytearray(encode_bytes({"k": list(range(50))}))
        data[-1] ^= 0xFF
        with pytest.raises(CodecError, match="CRC"):
            decode_bytes(bytes(data))

    def test_truncation_detected_at_every_cut(self):
        data = encode_bytes([(i, float(i)) for i in range(64)])
        for cut in (3, len(STREAM_MAGIC) + 4, len(data) // 2, len(data) - 1):
            with pytest.raises(CodecError):
                decode_bytes(data[:cut])

    def test_trailing_garbage_detected(self):
        payload = zlib.compress(b"\x00", 1)  # valid frame, bogus tail value
        data = encode_bytes("x") + FRAME_HEADER.pack(
            b"F2", FLAG_ZLIB, 1, len(payload), zlib.crc32(payload)
        ) + payload
        with pytest.raises(CodecError):
            decode_bytes(data)


# ----------------------------------------------------------------------
# Property tests (PROTOCOL.md §7 determinism, extended to image bytes)
# ----------------------------------------------------------------------
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False),
    st.text(max_size=40),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=8),
        st.lists(
            st.tuples(
                st.integers(-(2**63), 2**63 - 1), st.floats(allow_nan=False)
            ),
            min_size=4,
            max_size=30,
        ),
        st.dictionaries(
            st.one_of(scalars.filter(lambda v: v == v)), children, max_size=6
        ),
        st.sets(
            st.integers() | st.text(max_size=10), max_size=6
        ),
        st.builds(
            DumpHandle,
            store_id=st.just(1),
            key=st.text(max_size=12),
            pages=st.integers(0, 1000),
        ),
    ),
    max_leaves=40,
)

PROP = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def normalize_handles(value):
    """Decoded DumpHandles carry store_id=-1 (unresolved); mirror that."""
    if isinstance(value, DumpHandle):
        return DumpHandle(store_id=-1, key=value.key, pages=value.pages)
    if isinstance(value, dict):
        return {
            normalize_handles(k): normalize_handles(v)
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple)):
        out = [normalize_handles(v) for v in value]
        return out if isinstance(value, list) else tuple(out)
    if isinstance(value, (set, frozenset)):
        rebuilt = {normalize_handles(v) for v in value}
        return rebuilt if isinstance(value, set) else frozenset(rebuilt)
    return value


@PROP
@given(value=values)
def test_property_roundtrip_identity_and_deterministic_reencode(value):
    data = encode_bytes(value)
    decoded = decode_bytes(data)
    assert decoded == normalize_handles(value)
    # Re-encoding the *decoded* value must reproduce the bytes exactly:
    # nothing about the trip through the codec may perturb the encoding.
    assert encode_bytes(decoded) == encode_bytes(normalize_handles(value))
    # And encoding is a pure function of the value.
    assert encode_bytes(value) == data


@PROP
@given(
    value=values,
    chunk=st.sampled_from([1024, 4096, 256 * 1024]),
    compress=st.booleans(),
)
def test_property_framing_never_changes_the_value(value, chunk, compress):
    data = encode_bytes(value, chunk_bytes=chunk, compress=compress)
    assert decode_bytes(data) == normalize_handles(value)


# ----------------------------------------------------------------------
# SuspendedQuery round trip + cross-process byte identity
# ----------------------------------------------------------------------
def make_suspended(recipe="sort", rows=150):
    db, plan = build_recipe(recipe)
    session = QuerySession(db, plan)
    session.execute(max_rows=rows)
    return session.suspend(), db


_ENCODE_SNIPPET = """
import hashlib
from repro.core.lifecycle import QuerySession
from repro.durability import build_recipe
from repro.durability.codec2 import encode_suspended_query
db, plan = build_recipe({recipe!r})
session = QuerySession(db, plan)
session.execute(max_rows={rows})
sq = session.suspend()
print(hashlib.sha256(encode_suspended_query(sq)).hexdigest())
"""


@pytest.mark.parametrize("recipe", ("sort", "hashjoin", "hashagg"))
def test_suspended_query_roundtrip(recipe):
    sq, _ = make_suspended(recipe, rows=6 if recipe == "hashagg" else 40)
    data = encode_suspended_query(sq)
    back = decode_suspended_query(data)
    assert back.root_rows_emitted == sq.root_rows_emitted
    assert back.suspended_at == sq.suspended_at
    assert set(back.entries) == set(sq.entries)
    assert back.suspend_plan.decisions == sq.suspend_plan.decisions
    for op_id, entry in sq.entries.items():
        other = back.entries[op_id]
        assert other.kind == entry.kind
        assert other.saved_rows == entry.saved_rows
    # Re-encode of the decoded structure is byte-identical.
    assert encode_suspended_query(back) == data


def test_cross_process_encode_is_byte_identical(tmp_path):
    sq, _ = make_suspended("sort", rows=150)
    local = hashlib.sha256(encode_suspended_query(sq)).hexdigest()
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        REPO_SRC if not existing else REPO_SRC + os.pathsep + existing
    )
    out = subprocess.run(
        [
            sys.executable,
            "-c",
            _ENCODE_SNIPPET.format(recipe="sort", rows=150),
        ],
        env=env,
        capture_output=True,
        text=True,
    )
    assert out.returncode == 0, out.stderr
    assert out.stdout.strip() == local
