"""Unit tests for the tagged-JSON image codec."""

import json

import pytest

from repro.core.strategies import OpDecision, SuspendPlan
from repro.core.suspended_query import (
    KIND_DUMP,
    KIND_GOBACK,
    OpSuspendEntry,
    SuspendedQuery,
)
from repro.durability import codec
from repro.durability.codec import CodecError, decode_value, encode_value
from repro.engine.plan import FilterSpec, NLJSpec, ScanSpec, SortSpec
from repro.relational.expressions import (
    EquiJoinCondition,
    UniformSelect,
    ValueIn,
)
from repro.storage.statefile import DumpHandle


def roundtrip(value):
    encoded = encode_value(value)
    # Must survive actual JSON, not just the in-memory encoding.
    return decode_value(json.loads(json.dumps(encoded)))


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -17,
            3.25,
            "text",
            [1, "two", None],
            {"plain": {"nested": [1, 2]}},
        ],
    )
    def test_scalars_and_containers(self, value):
        assert roundtrip(value) == value

    def test_tuple_stays_tuple(self):
        value = (1, ("a", 2.5), [3, (4,)])
        result = roundtrip(value)
        assert result == value
        assert isinstance(result, tuple)
        assert isinstance(result[1], tuple)
        assert isinstance(result[2][1], tuple)

    def test_int_keyed_dict(self):
        value = {0: [(1, 2)], 3: [(4, 5)]}
        result = roundtrip(value)
        assert result == value
        assert all(isinstance(k, int) for k in result)

    def test_frozenset_and_set(self):
        assert roundtrip(frozenset({3, 1, 2})) == frozenset({1, 2, 3})
        result = roundtrip({"a", "b"})
        assert result == {"a", "b"}
        assert isinstance(result, set)

    def test_dollar_keyed_dict_not_confused_with_tags(self):
        value = {"$t": "sneaky", "x": 1}
        assert roundtrip(value) == value

    def test_handle_reference(self):
        handle = DumpHandle(store_id=7, key="dump_sort#3", pages=12)
        result = roundtrip(handle)
        assert isinstance(result, DumpHandle)
        assert (result.key, result.pages) == ("dump_sort#3", 12)
        # Decoded handles are unhomed until import_payloads re-homes them.
        assert result.store_id == -1

    def test_handles_nested_in_control_dicts(self):
        control = {"sublists": [DumpHandle(1, "a", 2), DumpHandle(1, "b", 3)]}
        result = roundtrip(control)
        assert [h.key for h in result["sublists"]] == ["a", "b"]

    def test_predicate_dataclasses(self):
        assert roundtrip(UniformSelect(1, 0.25)) == UniformSelect(1, 0.25)
        vi = ValueIn(0, frozenset({5, 7}))
        assert roundtrip(vi) == vi

    def test_unencodable_value_rejected(self):
        with pytest.raises(CodecError):
            encode_value(object())

    def test_unknown_class_rejected(self):
        with pytest.raises(CodecError):
            decode_value({"$t": "obj", "cls": "NoSuchSpec", "fields": {}})

    def test_unknown_tag_rejected(self):
        with pytest.raises(CodecError):
            decode_value({"$t": "wat", "v": []})


def make_plan_spec():
    return NLJSpec(
        outer=FilterSpec(
            ScanSpec("R", label="scan_R"), UniformSelect(1, 0.5), label="f"
        ),
        inner=SortSpec(
            ScanSpec("S", label="scan_S"),
            key_columns=(0,),
            buffer_tuples=100,
            label="sort",
        ),
        condition=EquiJoinCondition(0, 0, modulus=40),
        buffer_tuples=50,
        label="nlj",
    )


class TestRecordCodecs:
    def test_plan_spec_roundtrip(self):
        spec = make_plan_spec()
        data = json.loads(json.dumps(codec.spec_to_dict(spec)))
        assert codec.spec_from_dict(data) == spec

    def test_suspend_plan_roundtrip(self):
        plan = SuspendPlan(
            decisions={
                0: OpDecision.dump(),
                1: OpDecision.goback(anchor=3),
            },
            source="lp",
        )
        data = json.loads(json.dumps(codec.suspend_plan_to_dict(plan)))
        result = codec.suspend_plan_from_dict(data)
        assert result.source == "lp"
        assert result.decisions[0].strategy == plan.decisions[0].strategy
        assert result.decisions[1].goback_anchor == 3

    def test_suspended_query_roundtrip(self):
        sq = SuspendedQuery(
            plan_spec=make_plan_spec(),
            suspend_plan=SuspendPlan(
                decisions={0: OpDecision.dump()}, source="manual"
            ),
            root_rows_emitted=42,
            suspended_at=10.5,
        )
        sq.add_entry(
            OpSuspendEntry(
                op_id=0,
                kind=KIND_DUMP,
                target_control={"cursor": (3, 1), "rows": [(1, 0.5, 2)]},
                dump_handle=DumpHandle(1, "dump_nlj#1", 4),
            )
        )
        sq.add_entry(
            OpSuspendEntry(
                op_id=1,
                kind=KIND_GOBACK,
                target_control={"pos": 7},
                ckpt_payload={"pos": 0},
                saved_rows=[(9, 0.1, 3)],
            )
        )
        data = json.loads(json.dumps(sq.to_dict()))
        back = SuspendedQuery.from_dict(data)
        assert back.plan_spec == sq.plan_spec
        assert back.root_rows_emitted == 42
        assert back.suspended_at == 10.5
        assert set(back.entries) == {0, 1}
        assert back.entries[0].target_control["cursor"] == (3, 1)
        assert back.entries[0].dump_handle.key == "dump_nlj#1"
        assert back.entries[1].saved_rows == [(9, 0.1, 3)]
        assert back.entries[1].ckpt_payload == {"pos": 0}

    def test_format_version_checked(self):
        sq = SuspendedQuery(
            plan_spec=make_plan_spec(),
            suspend_plan=SuspendPlan(decisions={}, source="manual"),
        )
        data = sq.to_dict()
        data["format_version"] = 999
        with pytest.raises(CodecError):
            SuspendedQuery.from_dict(data)

    def test_referenced_handles_walks_nested_state(self):
        sq = SuspendedQuery(
            plan_spec=make_plan_spec(),
            suspend_plan=SuspendPlan(decisions={}, source="manual"),
        )
        sq.add_entry(
            OpSuspendEntry(
                op_id=0,
                kind=KIND_DUMP,
                target_control={"sublists": [DumpHandle(1, "sub#1", 2)]},
                dump_handle=DumpHandle(1, "dump#1", 3),
            )
        )
        assert set(sq.referenced_handles()) == {"sub#1", "dump#1"}
