"""Unit tests for schemas."""

import pytest

from repro.relational.schema import Column, Schema


class TestSchema:
    def test_of_builds_int_columns(self):
        s = Schema.of(["a", "b", "c"])
        assert len(s) == 3
        assert s.names() == ["a", "b", "c"]

    def test_column_index(self):
        s = Schema.of(["a", "b"])
        assert s.column_index("b") == 1
        with pytest.raises(KeyError):
            s.column_index("z")

    def test_concat_widths_add(self):
        left = Schema.of(["a"], bytes_per_tuple=200)
        right = Schema.of(["b"], bytes_per_tuple=100)
        joined = left.concat(right)
        assert joined.bytes_per_tuple == 300
        assert joined.names() == ["a", "b"]

    def test_concat_renames_collisions(self):
        left = Schema.of(["k", "v"])
        right = Schema.of(["k", "v"])
        joined = left.concat(right)
        assert joined.names() == ["k", "v", "k_r", "v_r"]

    def test_concat_double_collision(self):
        left = Schema.of(["k", "k_r"])
        right = Schema.of(["k"])
        assert joined_names(left, right) == ["k", "k_r", "k_r_r"]

    def test_project(self):
        s = Schema.of(["a", "b", "c"], bytes_per_tuple=300)
        p = s.project([2, 0])
        assert p.names() == ["c", "a"]
        assert p.bytes_per_tuple == 200

    def test_project_empty_rejected(self):
        with pytest.raises(ValueError):
            Schema.of(["a"]).project([])

    def test_tuples_per_page(self):
        s = Schema.of(["a"], bytes_per_tuple=200)
        assert s.tuples_per_page(20_000) == 100
        assert s.tuples_per_page(100) == 1  # never zero


def joined_names(left, right):
    return left.concat(right).names()
