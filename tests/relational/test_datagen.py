"""Unit tests for deterministic data generation."""

import pytest

from repro.common.rng import hash_unit, stable_shuffle
from repro.relational.datagen import (
    FIGURE12_SKEW,
    SKEW_THRESHOLD,
    SkewRegion,
    effective_selectivity,
    generate_skewed_table,
    generate_uniform_table,
    region_of_position,
)


class TestRng:
    def test_hash_unit_in_range(self):
        for i in range(1000):
            assert 0.0 <= hash_unit(i) < 1.0

    def test_hash_unit_deterministic(self):
        assert hash_unit(42, salt=7) == hash_unit(42, salt=7)
        assert hash_unit(42, salt=7) != hash_unit(42, salt=8)

    def test_hash_unit_roughly_uniform(self):
        values = [hash_unit(i) for i in range(10_000)]
        mean = sum(values) / len(values)
        assert mean == pytest.approx(0.5, abs=0.02)

    def test_stable_shuffle_deterministic(self):
        items = list(range(100))
        assert stable_shuffle(items, 1) == stable_shuffle(items, 1)
        assert stable_shuffle(items, 1) != stable_shuffle(items, 2)
        assert sorted(stable_shuffle(items, 1)) == items


class TestUniformTable:
    def test_unique_keys(self):
        rows = generate_uniform_table(500, seed=1)
        keys = [r[0] for r in rows]
        assert len(set(keys)) == 500

    def test_shuffle_keys_off_gives_sorted(self):
        rows = generate_uniform_table(50, seed=1, shuffle_keys=False)
        assert [r[0] for r in rows] == list(range(50))

    def test_key_offset(self):
        rows = generate_uniform_table(10, key_offset=100, shuffle_keys=False)
        assert rows[0][0] == 100

    def test_deterministic(self):
        assert generate_uniform_table(100, seed=9) == generate_uniform_table(
            100, seed=9
        )

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            generate_uniform_table(-1)


class TestSkewedTable:
    def test_region_selectivities_realized(self):
        n = 30_000
        rows = generate_skewed_table(n, FIGURE12_SKEW, seed=3)
        boundary = round(2 / 3 * n)
        first = sum(1 for r in rows[:boundary] if r[1] < SKEW_THRESHOLD)
        second = sum(1 for r in rows[boundary:] if r[1] < SKEW_THRESHOLD)
        assert first / boundary == pytest.approx(0.1, abs=0.02)
        assert second / (n - boundary) == pytest.approx(0.9, abs=0.02)

    def test_effective_selectivity_matches_paper(self):
        # 2/3 * 0.1 + 1/3 * 0.9 ~= 0.367 (the paper reports ~0.385 with
        # "approximately two-thirds").
        assert effective_selectivity(FIGURE12_SKEW) == pytest.approx(
            0.3667, abs=0.001
        )

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            generate_skewed_table(10, (SkewRegion(0.5, 0.1),))

    def test_unique_keys(self):
        rows = generate_skewed_table(1000, seed=4)
        assert len({r[0] for r in rows}) == 1000

    def test_region_of_position(self):
        assert region_of_position(FIGURE12_SKEW, 300, 0).selectivity == 0.1
        assert region_of_position(FIGURE12_SKEW, 300, 250).selectivity == 0.9
