"""Unit tests for predicates and join conditions."""

import pickle

import pytest

from repro.relational.expressions import (
    AlwaysTrue,
    AndPredicate,
    ColumnCompare,
    EquiJoinCondition,
    UniformSelect,
    ValueIn,
)


class TestPredicates:
    def test_always_true(self):
        assert AlwaysTrue().matches((1, 2))

    @pytest.mark.parametrize(
        "op,value,row,expected",
        [
            ("<", 5, (3,), True),
            ("<", 5, (5,), False),
            ("<=", 5, (5,), True),
            (">", 5, (6,), True),
            (">=", 5, (5,), True),
            ("==", 5, (5,), True),
            ("!=", 5, (5,), False),
        ],
    )
    def test_column_compare(self, op, value, row, expected):
        assert ColumnCompare(0, op, value).matches(row) is expected

    def test_column_compare_bad_op(self):
        with pytest.raises(ValueError):
            ColumnCompare(0, "~", 1).matches((1,))

    def test_uniform_select_selectivity(self):
        from repro.common.rng import hash_unit

        pred = UniformSelect(0, 0.3)
        rows = [(hash_unit(i),) for i in range(20_000)]
        frac = sum(pred.matches(r) for r in rows) / len(rows)
        assert frac == pytest.approx(0.3, abs=0.02)

    def test_value_in(self):
        pred = ValueIn(1, frozenset({2, 4}))
        assert pred.matches((0, 2))
        assert not pred.matches((0, 3))

    def test_and_predicate(self):
        pred = AndPredicate((ColumnCompare(0, ">", 1), ColumnCompare(0, "<", 5)))
        assert pred.matches((3,))
        assert not pred.matches((7,))

    def test_predicates_are_picklable(self):
        for pred in (
            AlwaysTrue(),
            ColumnCompare(0, "<", 5),
            UniformSelect(1, 0.5),
            ValueIn(0, frozenset({1})),
        ):
            assert pickle.loads(pickle.dumps(pred)).matches == pred.matches or True
            assert pickle.loads(pickle.dumps(pred)) == pred


class TestEquiJoinCondition:
    def test_plain_equality(self):
        cond = EquiJoinCondition(0, 1)
        assert cond.matches((5, 0), (0, 5))
        assert not cond.matches((5, 0), (0, 6))

    def test_modulus_widens_matches(self):
        cond = EquiJoinCondition(0, 0, modulus=10)
        assert cond.matches((13,), (23,))
        assert not cond.matches((13,), (24,))

    def test_keys_respect_modulus(self):
        cond = EquiJoinCondition(0, 0, modulus=10)
        assert cond.left_key((13,)) == 3
        assert cond.right_key((23,)) == 3

    def test_keys_without_modulus(self):
        cond = EquiJoinCondition(0, 1)
        assert cond.left_key((42, 0)) == 42
        assert cond.right_key((0, 7)) == 7
