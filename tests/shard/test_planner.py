"""Shard planner: stage decomposition and refusal of unprovable shapes."""

import pytest

from repro.common.errors import ShardError
from repro.durability import build_recipe
from repro.engine.plan import (
    FilterSpec,
    HashGroupAggSpec,
    PartitionedScanSpec,
    ScanSpec,
    ShuffleReadSpec,
    SimpleHashJoinSpec,
)
from repro.relational.expressions import EquiJoinCondition, UniformSelect
from repro.shard import PartitionSpec, ShardedCatalog, plan_shards
from repro.shard.planner import GATHER, SHUFFLE


def make_catalog(n=4, **specs):
    return ShardedCatalog(num_shards=n, specs=specs)


class TestScanPipelines:
    def test_scan_becomes_one_gather_stage(self):
        db, _ = build_recipe("hashjoin", scale=4)
        plan = plan_shards(ScanSpec("B"), make_catalog(), db)
        assert len(plan.stages) == 1
        stage = plan.stages[0]
        assert stage.output == GATHER
        assert isinstance(stage.fragment, PartitionedScanSpec)
        assert stage.fragment.table == "B"

    def test_filter_wrappers_survive_localization(self):
        db, _ = build_recipe("sort", scale=4)
        spec = FilterSpec(ScanSpec("R"), UniformSelect(1, 0.6))
        plan = plan_shards(spec, make_catalog(n=3), db)
        frag = plan.stages[0].fragment_for(2, 3)
        assert isinstance(frag, FilterSpec)
        assert isinstance(frag.child, PartitionedScanSpec)
        assert frag.child.shard == 2
        assert frag.child.num_shards == 3


class TestHashJoin:
    def test_general_join_is_three_stages(self):
        db, plan_spec = build_recipe("hashjoin", scale=4)
        # modulus=64 folds keys before comparison, so raw-key
        # co-partitioning cannot be proven: the general path applies.
        plan = plan_shards(plan_spec, make_catalog(), db)
        assert [s.output for s in plan.stages] == [SHUFFLE, SHUFFLE, GATHER]
        build, probe, join = plan.stages
        assert build.key_modulus == 64
        assert probe.key_modulus == 64
        assert join.consumes == (build.channel, probe.channel)
        assert isinstance(join.fragment.build, ShuffleReadSpec)
        assert isinstance(join.fragment.probe, ShuffleReadSpec)

    def test_co_partitioned_join_collapses_to_one_stage(self):
        db, plan_spec = build_recipe("hashjoin", scale=4)
        import dataclasses

        local = dataclasses.replace(
            plan_spec, condition=EquiJoinCondition(0, 0, modulus=0)
        )
        plan = plan_shards(local, make_catalog(), db)
        assert len(plan.stages) == 1
        frag = plan.stages[0].fragment
        assert isinstance(frag, SimpleHashJoinSpec)
        assert isinstance(frag.build, PartitionedScanSpec)

    def test_misaligned_partitioning_blocks_the_shortcut(self):
        db, plan_spec = build_recipe("hashjoin", scale=4)
        import dataclasses

        local = dataclasses.replace(
            plan_spec, condition=EquiJoinCondition(0, 0, modulus=0)
        )
        catalog = make_catalog(B=PartitionSpec(kind="hash", column=1))
        plan = plan_shards(local, catalog, db)
        assert len(plan.stages) == 3


class TestAggregation:
    def test_partial_final_split(self):
        db, _ = build_recipe("hashagg", scale=4)
        # Group by column 1: G is hash-partitioned on column 0, so groups
        # span shards and the partial/final split is required.
        spec = HashGroupAggSpec(
            ScanSpec("G"), group_columns=(1,), agg_func="count", agg_column=0
        )
        plan = plan_shards(spec, make_catalog(), db)
        assert [s.output for s in plan.stages] == [SHUFFLE, GATHER]
        partial, final = plan.stages
        assert partial.key_column == 0  # first column of the partial rows
        assert isinstance(final.fragment, HashGroupAggSpec)
        # Partial counts fold by summation.
        assert final.fragment.agg_func == "sum"
        assert final.fragment.group_columns == (0,)
        assert final.fragment.agg_column == 1

    def test_co_located_groups_skip_the_shuffle(self):
        db, plan_spec = build_recipe("hashagg", scale=4)
        plan = plan_shards(plan_spec, make_catalog(), db)
        assert len(plan.stages) == 1
        assert isinstance(plan.stages[0].fragment, HashGroupAggSpec)
        assert isinstance(
            plan.stages[0].fragment.child, PartitionedScanSpec
        )


class TestRefusals:
    @pytest.mark.parametrize("recipe", ["sort", "nlj", "smj"])
    def test_unsupported_roots_raise(self, recipe):
        db, plan_spec = build_recipe(recipe, scale=4)
        with pytest.raises(ShardError):
            plan_shards(plan_spec, make_catalog(), db)
