"""Process-backed shard workers: same protocol, real process death."""

import pytest

from repro.common.errors import InconsistentCutError, ShardError
from repro.durability import build_recipe
from repro.shard import ShardCoordinator, classify_shardsets
from repro.shard.worker_proc import CRASH_EXIT_CODE


def make_coordinator(worker_mode, shards=2, quantum_rows=32):
    db, plan = build_recipe("hashjoin", scale=4)
    return ShardCoordinator(
        db,
        plan,
        num_shards=shards,
        worker_mode=worker_mode,
        quantum_rows=quantum_rows,
    )


class TestProcessWorkers:
    def test_process_output_matches_inprocess(self):
        inproc = make_coordinator("inproc")
        proc = make_coordinator("process")
        try:
            assert proc.run() == inproc.run()
        finally:
            proc.close()

    def test_suspend_resume_across_processes(self, tmp_path):
        full_coord = make_coordinator("process")
        try:
            full = full_coord.run()
        finally:
            full_coord.close()

        coord = make_coordinator("process")
        try:
            before = coord.run(max_rows=len(full) // 2)
            assert not coord.done
            coord.suspend_global(str(tmp_path), gid="pcut")
        finally:
            coord.close()

        db, _ = build_recipe("hashjoin", scale=4)
        resumed = ShardCoordinator.resume(
            db, str(tmp_path), "pcut", worker_mode="process"
        )
        try:
            assert before + resumed.run() == full
        finally:
            resumed.close()

    def test_child_death_mid_commit_is_a_real_crash(self, tmp_path):
        coord = make_coordinator("process")
        try:
            coord.run(max_rows=10)
            coord.arm_shard_fault(1, "crash", "written:MANIFEST.json")
            with pytest.raises(ShardError, match="died"):
                coord.suspend_global(str(tmp_path), gid="pdead")
            assert coord.workers[1].proc.returncode == CRASH_EXIT_CODE
        finally:
            coord.close()
        from repro.durability import ImageStore

        store = ImageStore(str(tmp_path))
        store.recover()
        cuts = classify_shardsets(store)
        assert "pdead" in cuts.torn
        db, _ = build_recipe("hashjoin", scale=4)
        with pytest.raises(InconsistentCutError):
            ShardCoordinator.resume(db, str(tmp_path), "pdead")

    def test_killed_worker_surfaces_as_shard_error(self):
        coord = make_coordinator("process")
        try:
            coord.run(max_rows=5)
            coord.workers[0].kill()
            with pytest.raises(ShardError, match="dead|died"):
                coord.run_pass()
        finally:
            coord.close()
