"""Distributed obs wiring: shard traces, merge, and cross-mode equality."""

import pytest

from repro.durability import build_recipe
from repro.obs import (
    COORDINATOR_LANE,
    Tracer,
    merge_shard_trace,
    merge_traces,
    shard_lane,
    split_by_shard,
    strip_lanes,
    trace_lines,
)
from repro.shard import ShardCoordinator


def run_traced(recipe="hashjoin", shards=2, mode="inproc", scale=2):
    tracer = Tracer()
    db, plan = build_recipe(recipe, scale=scale, seed=1)
    coord = ShardCoordinator(
        db,
        plan,
        num_shards=shards,
        worker_mode=mode,
        quantum_rows=16,
        tracer=tracer,
    )
    coord.run()
    coord.close()
    return tracer, coord


class TestTraceIdentity:
    def test_trace_id_is_deterministic_and_bound_everywhere(self):
        tracer_a, coord_a = run_traced()
        tracer_b, coord_b = run_traced()
        assert coord_a.trace_id == coord_b.trace_id
        ids = {
            r.get("trace_id")
            for r in tracer_a.records
            if r["type"] != "trace.meta"
        }
        assert ids == {coord_a.trace_id}

    def test_trace_id_differs_per_plan_and_shard_count(self):
        _, join2 = run_traced("hashjoin", shards=2)
        _, join4 = run_traced("hashjoin", shards=4)
        _, agg2 = run_traced("hashagg", shards=2)
        assert len({join2.trace_id, join4.trace_id, agg2.trace_id}) == 3

    def test_trace_id_survives_suspend_resume(self, tmp_path):
        tracer = Tracer()
        db, plan = build_recipe("hashjoin", scale=2, seed=1)
        coord = ShardCoordinator(
            db, plan, num_shards=2, quantum_rows=16, tracer=tracer
        )
        coord.run(max_rows=16)
        coord.suspend_global(str(tmp_path), gid="g1")
        db2, _ = build_recipe("hashjoin", scale=2, seed=1)
        resumed = ShardCoordinator.resume(
            db2, str(tmp_path), "g1", tracer=Tracer()
        )
        assert resumed.trace_id == coord.trace_id
        resumed.run()
        resumed.close()


class TestDeterminism:
    @pytest.mark.parametrize("mode", ["inproc", "process"])
    def test_two_runs_are_byte_identical(self, mode):
        tracer_a, coord_a = run_traced(mode=mode)
        tracer_b, coord_b = run_traced(mode=mode)
        assert trace_lines(tracer_a.records) == trace_lines(
            tracer_b.records
        )
        if mode == "process":
            merged_a = merge_shard_trace(
                tracer_a.records, coord_a.shard_traces
            )
            merged_b = merge_shard_trace(
                tracer_b.records, coord_b.shard_traces
            )
            assert trace_lines(merged_a) == trace_lines(merged_b)


class TestCrossModeEquality:
    def test_process_merge_equals_inproc_merge_modulo_lanes(self):
        tracer_in, _ = run_traced(mode="inproc")
        tracer_pr, coord_pr = run_traced(mode="process")
        merged_in = merge_traces(split_by_shard(tracer_in.records))
        merged_pr = merge_shard_trace(
            tracer_pr.records, coord_pr.shard_traces
        )
        assert strip_lanes(merged_in) == strip_lanes(merged_pr)

    def test_four_shard_merged_trace_covers_every_lane(self):
        # The acceptance shape: a 4-shard process-worker query whose
        # merged trace has spans from all 4 children plus the
        # coordinator, all under one trace_id.
        tracer, coord = run_traced(shards=4, mode="process")
        merged = merge_shard_trace(tracer.records, coord.shard_traces)
        meta = merged[0]
        assert meta["lanes"] == [COORDINATOR_LANE] + [
            shard_lane(k) for k in range(4)
        ]
        assert meta["trace_id"] == coord.trace_id
        lanes_seen = {r["lane"] for r in merged[1:]}
        assert lanes_seen == set(meta["lanes"])
        for k in range(4):
            spans = [
                r
                for r in merged
                if r.get("lane") == shard_lane(k)
                and r["type"] == "query.execute"
            ]
            assert spans, f"no execute spans from shard {k}"


class TestShardProgress:
    def test_coordinator_progress_is_monotone_per_pass(self):
        tracer = Tracer()
        db, plan = build_recipe("hashjoin", scale=2, seed=1)
        coord = ShardCoordinator(
            db, plan, num_shards=2, quantum_rows=16, tracer=tracer
        )
        coord.run()
        coord.close()
        records = [
            r for r in tracer.records if r["type"] == "query.progress"
        ]
        fractions = [r["fraction"] for r in records]
        assert len(fractions) > 2
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0
        assert all(0.0 <= f <= 1.0 for f in fractions)
        rows = [r["rows_total"] for r in records]
        assert rows == sorted(rows)

    def test_progress_monotone_across_suspend_resume(self, tmp_path):
        tracer = Tracer()
        db, plan = build_recipe("hashjoin", scale=2, seed=1)
        coord = ShardCoordinator(
            db, plan, num_shards=2, quantum_rows=16, tracer=tracer
        )
        coord.run(max_rows=16)
        before = [
            r["fraction"]
            for r in tracer.records
            if r["type"] == "query.progress"
        ]
        coord.suspend_global(str(tmp_path), gid="g1")
        db2, _ = build_recipe("hashjoin", scale=2, seed=1)
        tracer2 = Tracer()
        resumed = ShardCoordinator.resume(
            db2, str(tmp_path), "g1", tracer=tracer2
        )
        resumed.run()
        resumed.close()
        after = [
            r["fraction"]
            for r in tracer2.records
            if r["type"] == "query.progress"
        ]
        combined = before + after
        assert combined == sorted(combined)
        assert combined[-1] == 1.0

    def test_worker_progress_shape(self):
        db, plan = build_recipe("hashjoin", scale=2, seed=1)
        coord = ShardCoordinator(db, plan, num_shards=2, quantum_rows=16)
        coord.run_pass()
        for worker in coord.workers:
            snapshot = worker.progress()
            assert set(snapshot) >= {
                "shard",
                "fraction",
                "rows_total",
                "est_rows",
            }
            assert 0.0 <= snapshot["fraction"] <= 1.0
        coord.close()
