"""Partitioning: deterministic routing and shard-database construction."""

import pytest

from repro.common.errors import ShardError
from repro.durability import build_recipe
from repro.shard import (
    PartitionSpec,
    ShardedCatalog,
    build_sharded_database,
    shard_of_value,
)


class TestShardOfValue:
    def test_ints_route_by_value(self):
        assert [shard_of_value(v, 4) for v in range(8)] == [
            0, 1, 2, 3, 0, 1, 2, 3,
        ]

    def test_non_ints_route_deterministically(self):
        for value in ("abc", 1.5, (1, 2), None, True):
            first = shard_of_value(value, 5)
            assert 0 <= first < 5
            assert shard_of_value(value, 5) == first

    def test_bool_does_not_alias_int(self):
        # bool is an int subclass; routing it by CRC of repr keeps True
        # from silently colocating with integer key 1.
        assert shard_of_value(True, 1000) != 1 or shard_of_value(
            False, 1000
        ) != 0


class TestPartitionSpec:
    def test_hash_routing(self):
        spec = PartitionSpec(kind="hash", column=1)
        assert spec.shard_of((99, 6, "x"), 4) == 2

    def test_range_routing(self):
        spec = PartitionSpec(kind="range", bounds=(10, 20, 30))
        owners = [spec.shard_of((v,), 4) for v in (0, 9, 10, 25, 30, 999)]
        assert owners == [0, 0, 1, 2, 3, 3]

    def test_range_bounds_must_match_shard_count(self):
        spec = PartitionSpec(kind="range", bounds=(10,))
        with pytest.raises(ShardError):
            spec.shard_of((5,), 4)

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ShardError):
            PartitionSpec(kind="range", bounds=(20, 10))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ShardError):
            PartitionSpec(kind="round-robin")

    def test_replicated_not_row_routable(self):
        with pytest.raises(ShardError):
            PartitionSpec(kind="replicated").shard_of((1,), 2)

    def test_dict_round_trip(self):
        spec = PartitionSpec(kind="range", column=2, bounds=(5, 9))
        assert PartitionSpec.from_dict(spec.to_dict()) == spec


class TestShardedCatalog:
    def test_route_conserves_and_places_rows(self):
        catalog = ShardedCatalog(num_shards=3)
        rows = [(i, i * 10) for i in range(30)]
        parts = catalog.route("T", rows)
        assert sorted(r for part in parts for r in part) == rows
        for k, part in enumerate(parts):
            assert all(row[0] % 3 == k for row in part)

    def test_replicated_copies_to_every_shard(self):
        catalog = ShardedCatalog(
            num_shards=3, specs={"dim": PartitionSpec(kind="replicated")}
        )
        rows = [(1, "a"), (2, "b")]
        assert catalog.route("dim", rows) == [rows, rows, rows]

    def test_is_partitioned_on(self):
        catalog = ShardedCatalog(
            num_shards=2,
            specs={
                "R": PartitionSpec(kind="hash", column=1),
                "dim": PartitionSpec(kind="replicated"),
            },
        )
        assert catalog.is_partitioned_on("R", 1)
        assert not catalog.is_partitioned_on("R", 0)
        assert catalog.is_partitioned_on("unlisted", 0)  # default spec
        assert not catalog.is_partitioned_on("dim", 0)

    def test_dict_round_trip(self):
        catalog = ShardedCatalog(
            num_shards=4, specs={"R": PartitionSpec(kind="hash", column=2)}
        )
        assert ShardedCatalog.from_dict(catalog.to_dict()) == catalog

    def test_rejects_zero_shards(self):
        with pytest.raises(ShardError):
            ShardedCatalog(num_shards=0)


class TestBuildShardedDatabase:
    def test_partitions_cover_the_source_exactly(self):
        db, _ = build_recipe("hashjoin", scale=4)
        catalog = ShardedCatalog(num_shards=3)
        shards = build_sharded_database(db, catalog)
        assert len(shards) == 3
        for name in ("B", "P"):
            source = sorted(db.catalog.table(name).all_rows())
            union = sorted(
                row
                for shard in shards
                for row in shard.catalog.table(name).all_rows()
            )
            assert union == source

    def test_geometry_and_stats_carry_over(self):
        db, _ = build_recipe("sort", scale=4)
        catalog = ShardedCatalog(num_shards=2)
        shards = build_sharded_database(db, catalog)
        source = db.catalog.table("R")
        for shard in shards:
            table = shard.catalog.table("R")
            assert table.tuples_per_page == source.tuples_per_page
            assert (
                shard.catalog.stats("R").predicate_selectivity
                == db.catalog.stats("R").predicate_selectivity
            )
