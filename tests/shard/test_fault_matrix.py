"""Shard crash matrix: every cut is committed or torn, never wrong.

Two fault surfaces exist in a global suspend: a *member* image commit
(one shard's ordinary durable image) and the *shard-set* commit (channel
state + manifest, whose rename is the global commit point). For every
injected crash the invariant is the same: after ``ImageStore.recover()``
plus :func:`classify_shardsets`, the cut is either fully committed and
resumable, or classified torn with its surviving members listed as
stranded — and a torn cut can never be resumed.
"""

import pytest

from repro.common.errors import InconsistentCutError
from repro.durability import ImageStore, build_recipe
from repro.durability.faults import FaultInjector, InjectedCrash
from repro.shard import ShardCoordinator, classify_shardsets

SHARDS = 4

#: Shard-set commit crash points, in protocol order. The cut exists iff
#: the crash struck after the manifest rename.
SHARDSET_POINTS = [
    ("shardset:begin", False),
    ("before:CHANNELS.json", False),
    ("written:CHANNELS.json", False),
    ("renamed:CHANNELS.json", False),
    ("before:SHARDSET.json", False),
    ("written:SHARDSET.json", False),
    ("renamed:SHARDSET.json", True),
    ("shardset:committed", True),
]


def make_running_coordinator(shards=SHARDS):
    db, plan = build_recipe("hashjoin", scale=2)
    coord = ShardCoordinator(db, plan, num_shards=shards, quantum_rows=16)
    coord.run(max_rows=20)
    assert not coord.done
    return coord


def classify(root):
    store = ImageStore(str(root))
    report = store.recover()
    return report, classify_shardsets(store)


def assert_resume_refused(root, gid):
    db, _ = build_recipe("hashjoin", scale=2)
    with pytest.raises(InconsistentCutError):
        ShardCoordinator.resume(db, str(root), gid)


class TestMemberCommitCrash:
    @pytest.mark.parametrize("victim", range(SHARDS))
    def test_shard_crash_mid_member_commit_tears_the_cut(
        self, tmp_path, victim
    ):
        coord = make_running_coordinator()
        coord.arm_shard_fault(victim, "crash", "written:MANIFEST.json")
        with pytest.raises(InjectedCrash):
            coord.suspend_global(str(tmp_path), gid="g1")
        report, cuts = classify(tmp_path)
        # Earlier members committed individually; the cut never did.
        assert "g1" not in cuts.committed
        expected_members = [f"g1--s{k}" for k in range(victim)]
        assert sorted(report.committed) == expected_members
        assert cuts.stranded.get("g1", []) == expected_members
        if victim > 0:
            assert "g1" in cuts.torn
        assert_resume_refused(tmp_path, "g1")

    def test_torn_member_blob_write_tears_the_cut(self, tmp_path):
        coord = make_running_coordinator(shards=2)
        coord.arm_shard_fault(1, "torn", "MANIFEST.json")
        with pytest.raises(InjectedCrash):
            coord.suspend_global(str(tmp_path), gid="g2")
        report, cuts = classify(tmp_path)
        assert "g2" in cuts.torn
        assert report.committed == ["g2--s0"]
        assert_resume_refused(tmp_path, "g2")


class TestShardSetCommitCrash:
    @pytest.mark.parametrize("point,committed", SHARDSET_POINTS)
    def test_every_commit_step(self, tmp_path, point, committed):
        coord = make_running_coordinator(shards=2)
        coord.arm_shardset_fault(FaultInjector.crashing_at(point))
        with pytest.raises(InjectedCrash):
            coord.suspend_global(str(tmp_path), gid="g3")
        report, cuts = classify(tmp_path)
        # Every member image committed before the shard-set step began.
        assert sorted(report.committed) == ["g3--s0", "g3--s1"]
        if committed:
            # The crash struck after the global commit point: the cut
            # survived whole and resumes normally.
            assert cuts.committed == ["g3"]
            db, _ = build_recipe("hashjoin", scale=2)
            resumed = ShardCoordinator.resume(db, str(tmp_path), "g3")
            assert resumed.run()  # runs to completion
        else:
            assert "g3" in cuts.torn
            assert cuts.stranded["g3"] == ["g3--s0", "g3--s1"]
            assert_resume_refused(tmp_path, "g3")

    @pytest.mark.parametrize("label", ["CHANNELS.json", "SHARDSET.json"])
    def test_torn_shardset_files(self, tmp_path, label):
        coord = make_running_coordinator(shards=2)
        coord.arm_shardset_fault(FaultInjector.tearing(label))
        with pytest.raises(InjectedCrash):
            coord.suspend_global(str(tmp_path), gid="g4")
        _, cuts = classify(tmp_path)
        assert "g4" in cuts.torn
        assert cuts.stranded["g4"] == ["g4--s0", "g4--s1"]
        assert_resume_refused(tmp_path, "g4")


class TestNoSilentCorruption:
    def test_every_gid_under_the_root_is_classified(self, tmp_path):
        # One committed cut, one torn cut, side by side in one root.
        good = make_running_coordinator(shards=2)
        good.suspend_global(str(tmp_path), gid="good")
        bad = make_running_coordinator(shards=2)
        bad.arm_shardset_fault(
            FaultInjector.crashing_at("before:SHARDSET.json")
        )
        with pytest.raises(InjectedCrash):
            bad.suspend_global(str(tmp_path), gid="bad")
        _, cuts = classify(tmp_path)
        assert cuts.committed == ["good"]
        assert set(cuts.torn) == {"bad"}
        assert cuts.stranded == {"bad": ["bad--s0", "bad--s1"]}

    def test_recover_leaves_shardset_directories_alone(self, tmp_path):
        coord = make_running_coordinator(shards=2)
        coord.suspend_global(str(tmp_path), gid="keep")
        store = ImageStore(str(tmp_path))
        report = store.recover()
        assert report.shardsets == ["keep"]
        assert report.quarantined == []
        # Recovery did not damage the cut: it still resumes.
        db, _ = build_recipe("hashjoin", scale=2)
        assert ShardCoordinator.resume(db, str(tmp_path), "keep").run()
