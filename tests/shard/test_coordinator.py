"""Coordinator: sharded equivalence and the consistent-cut round trip."""

import math

import pytest

from repro.common.errors import (
    InconsistentCutError,
    ShardError,
    SuspendBudgetInfeasibleError,
)
from repro.core.lifecycle import QuerySession
from repro.durability import ImageStore, build_recipe
from repro.engine.plan import ScanSpec
from repro.shard import ShardCoordinator, shard_image_id
from repro.shard.manifest import MEMBER_DONE, MEMBER_RUNNING, load_shardset


def single_engine_rows(recipe, scale=2):
    db, plan = build_recipe(recipe, scale=scale)
    return QuerySession(db, plan).execute().rows


def make_coordinator(recipe, shards, scale=2, quantum_rows=16, spec=None):
    db, plan = build_recipe(recipe, scale=scale)
    return ShardCoordinator(
        db, spec or plan, num_shards=shards, quantum_rows=quantum_rows
    )


class TestEquivalence:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("recipe", ["hashjoin", "hashagg"])
    def test_sharded_output_matches_single_engine(self, recipe, shards):
        rows = make_coordinator(recipe, shards).run()
        assert sorted(rows) == sorted(single_engine_rows(recipe))

    def test_partitioned_scan_gathers_every_row(self):
        db, _ = build_recipe("hashjoin", scale=2)
        coord = ShardCoordinator(db, ScanSpec("P"), num_shards=3)
        rows = coord.run()
        assert sorted(rows) == sorted(db.catalog.table("P").all_rows())

    def test_makespan_not_sum(self):
        coord = make_coordinator("hashjoin", 4)
        coord.run()
        times = [w.now() for w in coord.workers]
        assert coord.global_now() == max(times)
        assert coord.global_now() < sum(times)


class TestGlobalSuspendResume:
    def test_four_shard_join_round_trip_under_budget(self, tmp_path):
        """The acceptance scenario: a 4-shard shuffle join suspended
        under a finite global budget resumes from the shard-manifest
        image to delivery byte-identical to an uninterrupted run."""
        full = make_coordinator("hashjoin", 4).run()

        coord = make_coordinator("hashjoin", 4)
        before = coord.run(max_rows=len(full) // 3)
        assert not coord.done
        budget = 60.0
        report = coord.suspend_global(
            str(tmp_path), budget=budget, gid="cut1"
        )
        # Every shard got at least its floor and respected its slice.
        assert sum(report.budgets.values()) <= budget + 1e-9
        for k, cost in report.costs.items():
            assert cost <= report.budgets[k] + 1e-9
        assert report.latency == max(report.costs.values())

        db, _ = build_recipe("hashjoin", scale=2)
        resumed = ShardCoordinator.resume(db, str(tmp_path), "cut1")
        assert resumed.delivered_before == len(before)
        after = resumed.run()
        assert before + after == full

    def test_suspend_during_shuffle_stage(self, tmp_path):
        full = make_coordinator("hashjoin", 3).run()
        coord = make_coordinator("hashjoin", 3)
        for _ in range(2):  # still inside the build-shuffle stage
            coord.run_pass()
        assert coord.stage_idx == 0
        coord.suspend_global(str(tmp_path), gid="cut2")
        db, _ = build_recipe("hashjoin", scale=2)
        resumed = ShardCoordinator.resume(db, str(tmp_path), "cut2")
        assert resumed.run() == full

    def test_suspend_with_finished_shards_records_done_members(
        self, tmp_path
    ):
        # Shard fragments finish at different passes; cut once at least
        # one is done and check the manifest distinguishes the statuses.
        coord = make_coordinator("hashagg", 2, quantum_rows=4)
        full = make_coordinator("hashagg", 2, quantum_rows=4).run()
        while not any(coord.frag_done) and not coord.done:
            coord.run_pass()
        if coord.done:
            pytest.skip("both fragments finished in the same pass")
        before = list(coord.output_rows)
        coord.suspend_global(str(tmp_path), gid="cut3")
        doc, _ = load_shardset(ImageStore(str(tmp_path)), "cut3")
        statuses = {m["shard"]: m["status"] for m in doc["members"]}
        assert MEMBER_DONE in statuses.values()
        assert MEMBER_RUNNING in statuses.values()
        db, _ = build_recipe("hashagg", scale=2)
        resumed = ShardCoordinator.resume(db, str(tmp_path), "cut3")
        assert before + resumed.run() == full

    def test_infeasible_global_budget_raises(self, tmp_path):
        coord = make_coordinator("hashjoin", 4)
        coord.run(max_rows=10)
        with pytest.raises(SuspendBudgetInfeasibleError):
            coord.suspend_global(str(tmp_path), budget=0.1)
        # Nothing was committed by the refused cut.
        assert ImageStore(str(tmp_path)).list_images() == []

    def test_suspend_requires_inflight_stage(self, tmp_path):
        coord = make_coordinator("hashjoin", 2)
        coord.run()
        with pytest.raises(ShardError):
            coord.suspend_global(str(tmp_path))

    def test_member_images_carry_group_metadata(self, tmp_path):
        coord = make_coordinator("hashjoin", 2)
        coord.run(max_rows=5)
        coord.suspend_global(str(tmp_path), gid="cut4")
        store = ImageStore(str(tmp_path))
        for k in range(2):
            meta = store.info(shard_image_id("cut4", k)).meta
            assert meta["shard_group"] == "cut4"
            assert meta["shard"] == k


class TestCutVerification:
    def make_cut(self, tmp_path, gid="cutv"):
        coord = make_coordinator("hashjoin", 2)
        coord.run(max_rows=5)
        coord.suspend_global(str(tmp_path), gid=gid)
        return gid

    def test_tampered_channel_state_refused(self, tmp_path):
        gid = self.make_cut(tmp_path)
        channels = tmp_path / gid / "CHANNELS.json"
        channels.write_bytes(channels.read_bytes() + b" ")
        db, _ = build_recipe("hashjoin", scale=2)
        with pytest.raises(InconsistentCutError):
            ShardCoordinator.resume(db, str(tmp_path), gid)

    def test_damaged_member_image_refused(self, tmp_path):
        gid = self.make_cut(tmp_path)
        member_dir = tmp_path / shard_image_id(gid, 1)
        victim = sorted(p for p in member_dir.iterdir() if p.is_file())[0]
        victim.unlink()
        db, _ = build_recipe("hashjoin", scale=2)
        with pytest.raises(InconsistentCutError):
            ShardCoordinator.resume(db, str(tmp_path), gid)

    def test_unknown_gid_refused(self, tmp_path):
        db, _ = build_recipe("hashjoin", scale=2)
        with pytest.raises(InconsistentCutError):
            ShardCoordinator.resume(db, str(tmp_path), "never-written")

    def test_interrupted_resume_can_be_retried(self, tmp_path, monkeypatch):
        """A shard dying mid-resume leaves the cut untouched: the next
        resume attempt starts from the same committed shard-set."""
        full = make_coordinator("hashjoin", 2).run()
        coord = make_coordinator("hashjoin", 2)
        before = coord.run(max_rows=len(full) // 2)
        coord.suspend_global(str(tmp_path), gid="cutr")

        from repro.shard.worker import InProcessShardWorker

        original = InProcessShardWorker.resume_fragment
        calls = []

        def dying_resume(self, root, image_id):
            calls.append(self.shard_id)
            if self.shard_id == 1:
                raise ShardError("injected crash: shard 1 died mid-resume")
            return original(self, root, image_id)

        monkeypatch.setattr(
            InProcessShardWorker, "resume_fragment", dying_resume
        )
        db, _ = build_recipe("hashjoin", scale=2)
        with pytest.raises(ShardError):
            ShardCoordinator.resume(db, str(tmp_path), "cutr")
        monkeypatch.setattr(
            InProcessShardWorker, "resume_fragment", original
        )
        db, _ = build_recipe("hashjoin", scale=2)
        resumed = ShardCoordinator.resume(db, str(tmp_path), "cutr")
        assert before + resumed.run() == full
        assert calls == [0, 1]


class TestBudgetAllocation:
    def test_infinite_budget_is_unconstrained(self, tmp_path):
        coord = make_coordinator("hashjoin", 2)
        coord.run(max_rows=5)
        report = coord.suspend_global(str(tmp_path), budget=math.inf)
        assert all(math.isinf(b) for b in report.budgets.values())

    def test_surplus_flows_to_needier_shards(self):
        coord = make_coordinator("hashjoin", 2)
        coord.run(max_rows=5)
        estimates = {
            0: {"est": 30.0, "floor": 10.0},
            1: {"est": 10.0, "floor": 10.0},
        }
        coord.workers = [
            type(
                "W", (), {"estimate_suspend_cost": lambda self, e=e: e}
            )()
            for e in estimates.values()
        ]
        budgets = coord._allocate_budgets(30.0, [0, 1])
        # Floor covered everywhere; all surplus goes to shard 0.
        assert budgets == {0: 20.0, 1: 10.0}
