"""The load generator: report shape, determinism, and reproducibility."""

from repro.obs import Tracer
from repro.serve import run_loadgen


def test_loadgen_report(tmp_path):
    tracer = Tracer()
    report = run_loadgen(
        str(tmp_path), sessions=12, scale=16, quantum_rows=32, tracer=tracer
    )
    assert report["sessions"] == 12
    assert report["completed"] == 12
    # Every session that survived its opening quantum held a token at
    # once — that is the serving layer's concurrency.
    assert report["concurrent_peak"] >= 8
    assert report["requests"] > report["sessions"]

    latency = report["latency"]
    assert latency["count"] == report["requests"]
    assert 0 < latency["p50"] <= latency["p90"] <= latency["p99"]

    fairness = report["fairness"]
    assert 0 < fairness["jain_service_time"] <= 1
    # Identical plans get identical virtual-clock service: perfectly fair.
    assert all(v == 1.0 for v in fairness["per_plan"].values())

    assert report["determinism"]["ok"]
    assert report["determinism"]["divergent_sessions"] == []
    # Repeat suspends committed deltas, not full images.
    assert report["images"]["delta_commits"] > 0

    # The SLO gauges landed in the tracer's registry.
    text = tracer.metrics.render_text()
    assert "serve_jain_index" in text
    assert "serve_latency_p99" in text


def test_loadgen_is_reproducible(tmp_path):
    a = run_loadgen(str(tmp_path / "a"), sessions=6, scale=16)
    b = run_loadgen(str(tmp_path / "b"), sessions=6, scale=16)
    assert a == b


def test_loadgen_single_plan_subset(tmp_path):
    report = run_loadgen(
        str(tmp_path),
        sessions=4,
        scale=16,
        plan_names=["sorted-join"],
    )
    assert report["plans"] == ["sorted-join"]
    assert report["determinism"]["ok"]
    assert report["fairness"]["jain_service_time"] == 1.0
