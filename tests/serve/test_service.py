"""QueryService: one request = one quantum, resumable anywhere.

The acceptance invariants live here: a query driven to completion
through continuation tokens emits byte-identical rows to an
uninterrupted run; repeat suspends commit delta images; a token minted
by one service instance resumes on a fresh instance over the same image
root (the server keeps no per-request state); completion collects the
whole image chain.
"""

import pytest

from repro.common.errors import ReproError
from repro.core.lifecycle import QuerySession, QueryStatus, SuspendSpec
from repro.serve import QueryService, ServeConfig
from repro.serve.tokens import TokenRedeemedError
from repro.workloads.plans import serve_catalog

QUANTUM = 16
SCALE = 16


def make_service(image_root, **kwargs):
    db_factory, catalog = serve_catalog(scale=SCALE, seed=1)
    config = ServeConfig(
        quantum_rows=QUANTUM,
        suspend=kwargs.pop("suspend", SuspendSpec(persist_to=image_root)),
        **kwargs,
    )
    return QueryService(db_factory(), config), catalog


def solo_rows(plan):
    db_factory, _ = serve_catalog(scale=SCALE, seed=1)
    session = QuerySession(db_factory(), plan, name="solo")
    rows = []
    while True:
        result = session.execute(max_rows=4096)
        rows.extend(result.rows)
        if result.status is QueryStatus.COMPLETED:
            break
    session.close()
    return rows


def drive_to_completion(service, result, continue_fn=None):
    continue_fn = continue_fn or service.continue_query
    rows = list(result.rows)
    results = [result]
    while not result.done:
        result = continue_fn(result.token)
        rows.extend(result.rows)
        results.append(result)
    return rows, results


class TestRequestLoop:
    def test_token_driven_run_matches_uninterrupted_run(self, tmp_path):
        service, catalog = make_service(str(tmp_path))
        first = service.begin("q1", catalog["sorted-join"])
        rows, results = drive_to_completion(service, first)
        assert rows == solo_rows(catalog["sorted-join"])
        assert len(results) > 2  # actually exercised the token loop

    def test_repeat_suspends_commit_delta_images(self, tmp_path):
        service, catalog = make_service(str(tmp_path))
        result = service.begin("q1", catalog["sorted-join"])
        assert result.base_image_id is None  # first suspend: full image
        result = service.continue_query(result.token)
        assert result.base_image_id is not None  # second: delta
        manifest = service.image_store.manifest(result.image_id)
        assert manifest["base_image_id"] == result.base_image_id

    def test_requests_interleave_across_queries(self, tmp_path):
        service, catalog = make_service(str(tmp_path))
        a = service.begin("a", catalog["sorted-join"])
        b = service.begin("b", catalog["mixed-join"])
        collected = {"a": list(a.rows), "b": list(b.rows)}
        pending = [r for r in (a, b) if not r.done]
        while pending:
            result = service.continue_query(pending.pop(0).token)
            collected[result.query].extend(result.rows)
            if not result.done:
                pending.append(result)
        assert collected["a"] == solo_rows(catalog["sorted-join"])
        assert collected["b"] == solo_rows(catalog["mixed-join"])

    def test_duplicate_session_name_rejected(self, tmp_path):
        service, catalog = make_service(str(tmp_path))
        service.begin("q1", catalog["sorted-join"])
        with pytest.raises(ReproError, match="already in use"):
            service.begin("q1", catalog["mixed-join"])

    def test_service_without_image_store_rejected(self):
        db_factory, _ = serve_catalog(scale=SCALE, seed=1)
        with pytest.raises(ReproError, match="image store"):
            QueryService(db_factory(), ServeConfig())


class TestStatelessness:
    def test_token_resumes_on_a_fresh_service_instance(self, tmp_path):
        """Simulates a server restart (or a load-balanced peer): the
        token plus the shared image root is all the state there is."""
        first_service, catalog = make_service(str(tmp_path))
        result = first_service.begin("q1", catalog["sorted-join"])
        rows = list(result.rows)
        while not result.done:
            service, _ = make_service(str(tmp_path))  # fresh every hop
            result = service.continue_query(result.token)
            rows.extend(result.rows)
        assert rows == solo_rows(catalog["sorted-join"])

    def test_no_suspended_query_retained_in_memory(self, tmp_path):
        service, catalog = make_service(str(tmp_path))
        result = service.begin("q1", catalog["sorted-join"])
        assert not result.done
        record = service.record_named("q1")
        assert record.sq is None  # image is the only resume path
        assert record.session is None

    def test_old_token_rejected_after_continue(self, tmp_path):
        service, catalog = make_service(str(tmp_path))
        first = service.begin("q1", catalog["sorted-join"])
        service.continue_query(first.token)
        with pytest.raises(TokenRedeemedError):
            service.continue_query(first.token)


class TestImageChainHygiene:
    def test_completion_collects_the_chain(self, tmp_path):
        service, catalog = make_service(str(tmp_path))
        result = service.begin("q1", catalog["sorted-join"])
        drive_to_completion(service, result)
        assert service.image_store.list_images() == []
        assert service.image_store.pins() == set()

    def test_outstanding_token_survives_gc(self, tmp_path):
        service, catalog = make_service(str(tmp_path))
        result = service.begin("q1", catalog["sorted-join"])
        result = service.continue_query(result.token)  # now a delta tip
        deleted = service.image_store.gc()
        assert deleted == []  # pinned tip + chain expansion keep all
        follow = service.continue_query(result.token)
        assert follow.query == "q1"


class TestDeltaVersusFullEquivalence:
    def test_delta_chain_resumes_identically_to_full_images(
        self, tmp_path
    ):
        outputs = {}
        for mode, delta in (("delta", True), ("full", False)):
            root = str(tmp_path / mode)
            service, catalog = make_service(
                root,
                suspend=SuspendSpec(persist_to=root, delta=delta),
            )
            first = service.begin("q1", catalog["sorted-join"])
            rows, results = drive_to_completion(service, first)
            outputs[mode] = rows
            bases = [r.base_image_id for r in results if not r.done]
            if delta:
                assert any(b is not None for b in bases[1:])
            else:
                assert all(b is None for b in bases)
        assert outputs["delta"] == outputs["full"]
