"""The continuation-token wire format and the at-most-once ledger."""

import subprocess
import sys

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.lifecycle import QuerySession, SuspendSpec
from repro.durability import ImageStore
from repro.serve.tokens import (
    TOKEN_PREFIX,
    ContinuationToken,
    TokenError,
    TokenExpiredError,
    TokenManager,
    TokenRedeemedError,
)
from tests.conftest import make_small_db, tiny_nlj_plan

names = st.text(
    alphabet=st.characters(
        whitelist_categories=("L", "N"), whitelist_characters="-_."
    ),
    min_size=1,
    max_size=40,
)


class TestWireFormat:
    @given(query=names, image_id=names, seq=st.integers(0, 10_000))
    def test_encode_decode_round_trip(self, query, image_id, seq):
        token = ContinuationToken(query=query, image_id=image_id, seq=seq)
        assert ContinuationToken.decode(token.encode()) == token

    @given(query=names, image_id=names, seq=st.integers(0, 10_000))
    def test_encoding_is_deterministic(self, query, image_id, seq):
        a = ContinuationToken(query, image_id, seq).encode()
        b = ContinuationToken(query, image_id, seq).encode()
        assert a == b
        assert a.startswith(TOKEN_PREFIX + ".")

    def test_cross_process_bytes_are_identical(self):
        """The same fields encode to the same bytes in a fresh
        interpreter — tokens survive server restarts and load
        balancing across processes."""
        token = ContinuationToken("q-7", "q-7-s3", 3)
        script = (
            "from repro.serve.tokens import ContinuationToken;"
            "print(ContinuationToken('q-7','q-7-s3',3).encode())"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.strip() == token.encode()

    def test_malformed_tokens_rejected(self):
        for bad in (
            None,
            42,
            "",
            "nope",
            "rst1.onlytwo",
            "rst2.cGF5bG9hZA.00000000",
            "rst1.!!!.00000000",
        ):
            with pytest.raises(TokenError):
                ContinuationToken.decode(bad)

    def test_corruption_fails_integrity_check(self):
        text = ContinuationToken("q", "img", 1).encode()
        prefix, payload, crc = text.split(".")
        flipped = ("A" if payload[0] != "A" else "B") + payload[1:]
        with pytest.raises(TokenError, match="integrity"):
            ContinuationToken.decode(f"{prefix}.{flipped}.{crc}")

    def test_crc_must_match_payload(self):
        text = ContinuationToken("q", "img", 1).encode()
        prefix, payload, _ = text.split(".")
        with pytest.raises(TokenError):
            ContinuationToken.decode(f"{prefix}.{payload}.deadbeef")


def commit_image(store, image_id):
    db = make_small_db()
    session = QuerySession(db, tiny_nlj_plan())
    session.execute(max_rows=10)
    session.suspend(SuspendSpec(persist_to=store, image_id=image_id))
    session.close()


class TestTokenManagerLifecycle:
    def test_redeem_consumes_the_token(self, tmp_path):
        store = ImageStore(str(tmp_path))
        commit_image(store, "img-1")
        manager = TokenManager(store)
        text = manager.issue("q1", "img-1", 1)
        assert manager.redeem(text).image_id == "img-1"
        with pytest.raises(TokenRedeemedError):
            manager.redeem(text)

    def test_double_redeem_rejected_across_managers(self, tmp_path):
        """The ledger is durable: a second manager over the same root
        (another process, a restarted server) sees the redeem."""
        store = ImageStore(str(tmp_path))
        commit_image(store, "img-1")
        text = TokenManager(store).issue("q1", "img-1", 1)
        TokenManager(store).redeem(text)
        with pytest.raises(TokenRedeemedError):
            TokenManager(ImageStore(str(tmp_path))).redeem(text)

    def test_redeem_after_gc_is_a_clean_typed_error(self, tmp_path):
        store = ImageStore(str(tmp_path))
        commit_image(store, "img-1")
        manager = TokenManager(store)
        text = manager.issue("q1", "img-1", 1)
        manager.release("img-1")
        assert store.gc() == ["img-1"]
        with pytest.raises(TokenExpiredError, match="no longer exists"):
            manager.redeem(text)

    def test_token_for_unknown_image_expires(self, tmp_path):
        manager = TokenManager(ImageStore(str(tmp_path)))
        text = ContinuationToken("q", "never-committed", 1).encode()
        with pytest.raises(TokenExpiredError):
            manager.redeem(text)

    def test_issue_pins_and_supersede_unpins(self, tmp_path):
        store = ImageStore(str(tmp_path))
        commit_image(store, "img-1")
        commit_image(store, "img-2")
        manager = TokenManager(store)
        manager.issue("q1", "img-1", 1)
        assert store.pins() == {"img-1"}
        manager.issue("q1", "img-2", 2, release="img-1")
        assert store.pins() == {"img-2"}
        # gc spares the pinned image only.
        assert store.gc() == ["img-1"]
        assert store.list_images()[0].image_id == "img-2"


class TestTraceFields:
    """trace_id and cumulative row count riding in the token."""

    def test_tid_and_rows_round_trip(self):
        token = ContinuationToken(
            "q", "img", 3, trace_id="ab12cd34ef56ab78", rows_total=420
        )
        back = ContinuationToken.decode(token.encode())
        assert back.trace_id == "ab12cd34ef56ab78"
        assert back.rows_total == 420
        assert (back.query, back.image_id, back.seq) == ("q", "img", 3)

    def test_optional_fields_are_omitted_when_unset(self):
        # A token without trace fields encodes exactly as before this
        # schema extension, so pre-extension tokens stay redeemable.
        plain = ContinuationToken("q", "img", 1)
        assert plain.encode() == ContinuationToken("q", "img", 1).encode()
        back = ContinuationToken.decode(plain.encode())
        assert back.trace_id is None and back.rows_total == 0
        with_rows = ContinuationToken("q", "img", 1, rows_total=7)
        assert with_rows.encode() != plain.encode()

    def test_non_string_tid_rejected(self):
        import base64
        import json
        import zlib

        doc = {"img": "i", "q": "q", "seq": 1, "tid": 123}
        payload = (
            base64.urlsafe_b64encode(
                json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()
            )
            .rstrip(b"=")
            .decode("ascii")
        )
        crc = format(zlib.crc32(payload.encode("ascii")) & 0xFFFFFFFF, "08x")
        with pytest.raises(TokenError):
            ContinuationToken.decode(f"rst1.{payload}.{crc}")
