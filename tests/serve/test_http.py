"""The HTTP front end: routing, error mapping, and a live socket test."""

import asyncio
import http.client
import json
import threading

import pytest

from repro.core.lifecycle import SuspendSpec
from repro.obs import Tracer
from repro.serve import QueryService, ServeApp, ServeConfig, serve_async
from repro.workloads.plans import serve_catalog


def make_app(image_root, tracer=None):
    db_factory, catalog = serve_catalog(scale=16, seed=1)
    config = ServeConfig(
        quantum_rows=16,
        suspend=SuspendSpec(persist_to=image_root),
        tracer=tracer,
    )
    return ServeApp(QueryService(db_factory(), config), catalog)


class TestRoutes:
    def test_healthz_and_catalog(self, tmp_path):
        app = make_app(str(tmp_path))
        status, payload = app.handle("GET", "/healthz", None)
        assert status == 200 and payload["ok"]
        status, payload = app.handle("GET", "/catalog", None)
        assert status == 200
        assert payload["queries"] == sorted(app.catalog)

    def test_metrics_route(self, tmp_path):
        # Tracing off: a typed 404 error, never a branch-dependent body.
        status, payload = make_app(str(tmp_path)).handle(
            "GET", "/metrics", None
        )
        assert status == 404
        assert payload["code"] == "metrics_disabled"
        assert "text" not in payload

        app = make_app(str(tmp_path / "traced"), tracer=Tracer())
        app.handle("POST", "/queries", {"query": "sorted-join"})
        status, payload = app.handle("GET", "/metrics", None)
        assert status == 200
        assert "serve_requests_total" in payload["text"]

    def test_full_session_through_the_app(self, tmp_path):
        app = make_app(str(tmp_path))
        status, payload = app.handle(
            "POST", "/queries", {"query": "sorted-join", "as": "demo"}
        )
        assert status == 200 and payload["status"] == "running"
        hops = 1
        while payload["status"] == "running":
            status, payload = app.handle(
                "POST", "/continue", {"token": payload["token"]}
            )
            assert status == 200
            hops += 1
        assert payload["status"] == "done" and payload["token"] is None
        assert hops > 2

    def test_auto_session_names_are_unique(self, tmp_path):
        app = make_app(str(tmp_path))
        _, first = app.handle("POST", "/queries", {"query": "hot-sort"})
        _, second = app.handle("POST", "/queries", {"query": "hot-sort"})
        assert first["query"] != second["query"]

    def test_error_mapping(self, tmp_path):
        app = make_app(str(tmp_path))
        assert app.handle("POST", "/queries", {"query": "nope"})[0] == 404
        assert app.handle("GET", "/nothing", None)[0] == 404

        app.handle("POST", "/queries", {"query": "sorted-join", "as": "d"})
        # duplicate session name
        assert (
            app.handle(
                "POST", "/queries", {"query": "sorted-join", "as": "d"}
            )[0]
            == 409
        )
        # malformed token
        assert app.handle("POST", "/continue", {"token": "junk"})[0] == 400
        assert app.handle("POST", "/continue", {})[0] == 400

    def test_redeemed_and_expired_tokens(self, tmp_path):
        app = make_app(str(tmp_path))
        _, payload = app.handle(
            "POST", "/queries", {"query": "sorted-join", "as": "d"}
        )
        token = payload["token"]
        status, follow = app.handle("POST", "/continue", {"token": token})
        assert status == 200
        # replaying the consumed token: 409
        assert app.handle("POST", "/continue", {"token": token})[0] == 409
        # collecting the image out from under the live token: 410
        service = app.service
        service.tokens.release(follow["image_id"])
        service.image_store.gc()
        assert (
            app.handle("POST", "/continue", {"token": follow["token"]})[0]
            == 410
        )


@pytest.fixture
def live_server(tmp_path):
    """serve_async on an OS-assigned port, in a background loop."""
    app = make_app(str(tmp_path))
    loop = asyncio.new_event_loop()
    started = threading.Event()
    info = {}

    async def main():
        server = await serve_async(app, "127.0.0.1", 0)
        info["port"] = server.sockets[0].getsockname()[1]
        started.set()
        async with server:
            await server.serve_forever()

    def run():
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(main())
        except RuntimeError:
            pass  # loop.stop() during shutdown
        finally:
            loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(10), "server failed to start"
    yield info["port"]
    loop.call_soon_threadsafe(loop.stop)
    thread.join(10)


def request(port, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    payload = json.dumps(body) if body is not None else None
    conn.request(method, path, body=payload)
    response = conn.getresponse()
    raw = response.read()
    conn.close()
    if response.getheader("Content-Type", "").startswith("text/plain"):
        return response.status, raw.decode("utf-8")
    return response.status, json.loads(raw)


class TestLiveServer:
    def test_end_to_end_session_over_sockets(self, live_server):
        port = live_server
        status, payload = request(port, "GET", "/healthz")
        assert status == 200 and payload["ok"]

        status, payload = request(
            port, "POST", "/queries", {"query": "sorted-join", "as": "e2e"}
        )
        assert status == 200 and payload["status"] == "running"
        rows = list(payload["rows"])
        while payload["status"] == "running":
            status, payload = request(
                port, "POST", "/continue", {"token": payload["token"]}
            )
            assert status == 200
            rows.extend(payload["rows"])
        assert len(rows) > 16  # more than one quantum's worth

    def test_http_error_statuses(self, live_server):
        port = live_server
        assert request(port, "POST", "/queries", {"query": "x"})[0] == 404
        assert (
            request(port, "POST", "/continue", {"token": "bad"})[0] == 400
        )
        status, _ = request(port, "GET", "/absent")
        assert status == 404

    def test_non_json_body_is_a_400(self, live_server):
        conn = http.client.HTTPConnection("127.0.0.1", live_server, timeout=30)
        conn.request("POST", "/queries", body=b"not json {")
        assert conn.getresponse().status == 400
        conn.close()


class TestObsRoutes:
    """The live-introspection endpoints: /obs/metrics, progress, health."""

    def test_obs_metrics_works_with_tracing_off(self, tmp_path):
        app = make_app(str(tmp_path))
        app.handle("POST", "/queries", {"query": "sorted-join"})
        status, payload = app.handle("GET", "/obs/metrics", None)
        assert status == 200
        assert payload["tracing"] is False
        assert isinstance(payload["metrics"], dict)

    def test_obs_metrics_carries_registry_snapshot_when_traced(
        self, tmp_path
    ):
        app = make_app(str(tmp_path), tracer=Tracer())
        app.handle("POST", "/queries", {"query": "sorted-join"})
        status, payload = app.handle("GET", "/obs/metrics", None)
        assert status == 200 and payload["tracing"] is True
        counters = payload["metrics"]["counters"]
        assert any("serve_requests_total" in k for k in counters)

    def test_obs_health(self, tmp_path):
        app = make_app(str(tmp_path))
        app.handle("POST", "/queries", {"query": "sorted-join", "as": "h"})
        status, payload = app.handle("GET", "/obs/health", None)
        assert status == 200 and payload["ok"]
        assert payload["queries_admitted"] == 1
        assert payload["now"] > 0

    def test_obs_progress_monotone_across_hops(self, tmp_path):
        app = make_app(str(tmp_path))
        _, payload = app.handle(
            "POST", "/queries", {"query": "sorted-join", "as": "p"}
        )
        fractions = []
        while payload["status"] == "running":
            status, doc = app.handle(
                "GET", f"/obs/progress/{payload['token']}", None
            )
            assert status == 200
            assert doc["query"] == "p" and doc["current"] is True
            fractions.append(doc["fraction"])
            _, payload = app.handle(
                "POST", "/continue", {"token": payload["token"]}
            )
        assert len(fractions) > 2
        # Monotonically non-decreasing fraction-complete across hops.
        assert all(a <= b for a, b in zip(fractions, fractions[1:]))
        assert 0.0 < fractions[0] < 1.0

    def test_obs_progress_reports_done(self, tmp_path):
        app = make_app(str(tmp_path))
        _, payload = app.handle(
            "POST", "/queries", {"query": "sorted-join", "as": "d"}
        )
        last_token = payload["token"]
        while payload["status"] == "running":
            last_token = payload["token"]
            _, payload = app.handle(
                "POST", "/continue", {"token": payload["token"]}
            )
        status, doc = app.handle(
            "GET", f"/obs/progress/{last_token}", None
        )
        assert status == 200
        assert doc["status"] == "done" and doc["fraction"] == 1.0
        assert doc["est_remaining_work"] == 0.0
        # The redeemed token is no longer the latest one for the query.
        assert doc["current"] is False

    def test_obs_progress_error_mapping(self, tmp_path):
        app = make_app(str(tmp_path))
        status, doc = app.handle("GET", "/obs/progress/garbage", None)
        assert status == 400 and doc["code"] == "bad_token"
        # A well-formed token for a query this server never saw: 404.
        other = make_app(str(tmp_path / "other"))
        _, payload = other.handle(
            "POST", "/queries", {"query": "sorted-join", "as": "elsewhere"}
        )
        status, doc = app.handle(
            "GET", f"/obs/progress/{payload['token']}", None
        )
        assert status == 404 and doc["code"] == "unknown_query"

    def test_progress_trace_id_matches_serve_trace(self, tmp_path):
        tracer = Tracer()
        app = make_app(str(tmp_path), tracer=tracer)
        _, payload = app.handle(
            "POST", "/queries", {"query": "sorted-join", "as": "t"}
        )
        _, doc = app.handle(
            "GET", f"/obs/progress/{payload['token']}", None
        )
        trace_ids = {
            r["trace_id"]
            for r in tracer.records
            if r.get("query") == "t" and "trace_id" in r
        }
        assert trace_ids == {doc["trace_id"]}
