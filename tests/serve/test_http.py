"""The HTTP front end: routing, error mapping, and a live socket test."""

import asyncio
import http.client
import json
import threading

import pytest

from repro.core.lifecycle import SuspendSpec
from repro.obs import Tracer
from repro.serve import QueryService, ServeApp, ServeConfig, serve_async
from repro.workloads.plans import serve_catalog


def make_app(image_root, tracer=None):
    db_factory, catalog = serve_catalog(scale=16, seed=1)
    config = ServeConfig(
        quantum_rows=16,
        suspend=SuspendSpec(persist_to=image_root),
        tracer=tracer,
    )
    return ServeApp(QueryService(db_factory(), config), catalog)


class TestRoutes:
    def test_healthz_and_catalog(self, tmp_path):
        app = make_app(str(tmp_path))
        status, payload = app.handle("GET", "/healthz", None)
        assert status == 200 and payload["ok"]
        status, payload = app.handle("GET", "/catalog", None)
        assert status == 200
        assert payload["queries"] == sorted(app.catalog)

    def test_metrics_route(self, tmp_path):
        status, payload = make_app(str(tmp_path)).handle(
            "GET", "/metrics", None
        )
        assert status == 200 and "disabled" in payload["text"]

        app = make_app(str(tmp_path / "traced"), tracer=Tracer())
        app.handle("POST", "/queries", {"query": "sorted-join"})
        status, payload = app.handle("GET", "/metrics", None)
        assert status == 200
        assert "serve_requests_total" in payload["text"]

    def test_full_session_through_the_app(self, tmp_path):
        app = make_app(str(tmp_path))
        status, payload = app.handle(
            "POST", "/queries", {"query": "sorted-join", "as": "demo"}
        )
        assert status == 200 and payload["status"] == "running"
        hops = 1
        while payload["status"] == "running":
            status, payload = app.handle(
                "POST", "/continue", {"token": payload["token"]}
            )
            assert status == 200
            hops += 1
        assert payload["status"] == "done" and payload["token"] is None
        assert hops > 2

    def test_auto_session_names_are_unique(self, tmp_path):
        app = make_app(str(tmp_path))
        _, first = app.handle("POST", "/queries", {"query": "hot-sort"})
        _, second = app.handle("POST", "/queries", {"query": "hot-sort"})
        assert first["query"] != second["query"]

    def test_error_mapping(self, tmp_path):
        app = make_app(str(tmp_path))
        assert app.handle("POST", "/queries", {"query": "nope"})[0] == 404
        assert app.handle("GET", "/nothing", None)[0] == 404

        app.handle("POST", "/queries", {"query": "sorted-join", "as": "d"})
        # duplicate session name
        assert (
            app.handle(
                "POST", "/queries", {"query": "sorted-join", "as": "d"}
            )[0]
            == 409
        )
        # malformed token
        assert app.handle("POST", "/continue", {"token": "junk"})[0] == 400
        assert app.handle("POST", "/continue", {})[0] == 400

    def test_redeemed_and_expired_tokens(self, tmp_path):
        app = make_app(str(tmp_path))
        _, payload = app.handle(
            "POST", "/queries", {"query": "sorted-join", "as": "d"}
        )
        token = payload["token"]
        status, follow = app.handle("POST", "/continue", {"token": token})
        assert status == 200
        # replaying the consumed token: 409
        assert app.handle("POST", "/continue", {"token": token})[0] == 409
        # collecting the image out from under the live token: 410
        service = app.service
        service.tokens.release(follow["image_id"])
        service.image_store.gc()
        assert (
            app.handle("POST", "/continue", {"token": follow["token"]})[0]
            == 410
        )


@pytest.fixture
def live_server(tmp_path):
    """serve_async on an OS-assigned port, in a background loop."""
    app = make_app(str(tmp_path))
    loop = asyncio.new_event_loop()
    started = threading.Event()
    info = {}

    async def main():
        server = await serve_async(app, "127.0.0.1", 0)
        info["port"] = server.sockets[0].getsockname()[1]
        started.set()
        async with server:
            await server.serve_forever()

    def run():
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(main())
        except RuntimeError:
            pass  # loop.stop() during shutdown
        finally:
            loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(10), "server failed to start"
    yield info["port"]
    loop.call_soon_threadsafe(loop.stop)
    thread.join(10)


def request(port, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    payload = json.dumps(body) if body is not None else None
    conn.request(method, path, body=payload)
    response = conn.getresponse()
    raw = response.read()
    conn.close()
    if response.getheader("Content-Type", "").startswith("text/plain"):
        return response.status, raw.decode("utf-8")
    return response.status, json.loads(raw)


class TestLiveServer:
    def test_end_to_end_session_over_sockets(self, live_server):
        port = live_server
        status, payload = request(port, "GET", "/healthz")
        assert status == 200 and payload["ok"]

        status, payload = request(
            port, "POST", "/queries", {"query": "sorted-join", "as": "e2e"}
        )
        assert status == 200 and payload["status"] == "running"
        rows = list(payload["rows"])
        while payload["status"] == "running":
            status, payload = request(
                port, "POST", "/continue", {"token": payload["token"]}
            )
            assert status == 200
            rows.extend(payload["rows"])
        assert len(rows) > 16  # more than one quantum's worth

    def test_http_error_statuses(self, live_server):
        port = live_server
        assert request(port, "POST", "/queries", {"query": "x"})[0] == 404
        assert (
            request(port, "POST", "/continue", {"token": "bad"})[0] == 400
        )
        status, _ = request(port, "GET", "/absent")
        assert status == 404

    def test_non_json_body_is_a_400(self, live_server):
        conn = http.client.HTTPConnection("127.0.0.1", live_server, timeout=30)
        conn.request("POST", "/queries", body=b"not json {")
        assert conn.getresponse().status == 400
        conn.close()
