"""Integration: the tracer hooks across engine, core, service, durability.

One traced suspend/resume cycle must surface every lifecycle phase the
paper describes — proactive checkpoints, contract signing, the MIP's
per-operator decisions, dump/goback suspend entries, redo work on resume
— and a traced scheduler run must add quanta, pressure decisions, and
durable-image commits, all cross-referenced by query and operator ids.
"""

import pytest

from repro.core.lifecycle import (
    QuerySession,
    SuspendSpec,
    SuspendStrategy,
)
from repro.engine.config import EngineConfig
from repro.obs import Tracer, use_tracer
from repro.service import QueryScheduler, SchedulerConfig
from repro.workloads.plans import build_nlj_s, mixed_priority_trace


def traced_cycle(tracer, max_rows=20):
    db, plan = build_nlj_s(0.5, scale=200)
    session = QuerySession(db, plan, name="nlj", tracer=tracer)
    first = session.execute(max_rows=max_rows)
    sq = session.suspend(SuspendSpec(strategy=SuspendStrategy.LP))
    resumed = QuerySession.resume(db, sq, name="nlj", tracer=tracer)
    rest = resumed.execute()
    return first.rows + rest.rows


@pytest.fixture(scope="module")
def cycle():
    tracer = Tracer()
    rows = traced_cycle(tracer)
    return tracer, rows


def types_of(tracer):
    return {r["type"] for r in tracer.records}


class TestSessionWiring:
    def test_every_lifecycle_phase_is_traced(self, cycle):
        tracer, _ = cycle
        assert {
            "trace.meta",
            "checkpoint.taken",
            "contract.signed",
            "suspend.plan",
            "mip.solve",
            "mip.decision",
            "op.suspend",
            "op.resume",
            "query.execute",
            "query.suspend",
            "query.resume",
        } <= types_of(tracer)

    def test_records_carry_query_and_operator_context(self, cycle):
        tracer, _ = cycle
        checkpoints = [
            r for r in tracer.records if r["type"] == "checkpoint.taken"
        ]
        assert checkpoints
        for r in checkpoints:
            assert r["query"] == "nlj"
            assert isinstance(r["op"], int) and r["op_name"]
            assert r["ckpt_seq"] >= 0

    def test_mip_decisions_cover_every_operator_with_cost_terms(self, cycle):
        tracer, _ = cycle
        decisions = [
            r for r in tracer.records if r["type"] == "mip.decision"
        ]
        (plan_record,) = [
            r for r in tracer.records if r["type"] == "suspend.plan"
        ]
        assert len(decisions) == plan_record["num_ops"]
        assert {d["op"] for d in decisions} == set(
            range(plan_record["num_ops"])
        )
        for d in decisions:
            assert d["strategy"] in ("dump", "goback")
            assert d["dump_suspend_cost"] >= 0.0
            assert d["dump_resume_cost"] >= 0.0
            if d["strategy"] == "goback":
                assert "goback_anchor" in d

    def test_suspend_and_resume_metrics_recorded(self, cycle):
        tracer, _ = cycle
        metrics = tracer.metrics
        assert metrics.total("checkpoints_taken_total") == len(
            [r for r in tracer.records if r["type"] == "checkpoint.taken"]
        )
        assert metrics.total("contracts_signed_total") == len(
            [r for r in tracer.records if r["type"] == "contract.signed"]
        )
        assert metrics.total("suspend_decisions_total") == len(
            [r for r in tracer.records if r["type"] == "mip.decision"]
        )
        assert metrics.histogram("suspend_cost").count == 1
        assert metrics.histogram("resume_cost").count == 1
        assert metrics.gauge("contract_graph_theorem1_bound").value > 0

    def test_suspend_budget_vs_actual(self):
        tracer = Tracer()
        db, plan = build_nlj_s(0.5, scale=200)
        session = QuerySession(db, plan, name="nlj", tracer=tracer)
        session.execute(max_rows=20)
        session.suspend(
            SuspendSpec(strategy=SuspendStrategy.LP, budget=10_000.0)
        )
        (record,) = [
            r for r in tracer.records if r["type"] == "query.suspend"
        ]
        assert record["budget"] == 10_000.0
        assert record["actual_cost"] <= record["budget"]

    def test_tracing_does_not_change_results(self, cycle):
        _, traced_rows = cycle
        db, plan = build_nlj_s(0.5, scale=200)
        reference = QuerySession(db, plan).execute().rows
        assert traced_rows == reference

    def test_checkpoint_skips_traced_under_ablation(self):
        tracer = Tracer()
        db, plan = build_nlj_s(0.5, scale=200)
        config = EngineConfig(proactive_checkpointing=False)
        session = QuerySession(db, plan, config, name="nlj", tracer=tracer)
        session.execute()
        skips = [
            r for r in tracer.records if r["type"] == "checkpoint.skipped"
        ]
        assert skips
        assert all(
            r["reason"] == "proactive_checkpointing_disabled" for r in skips
        )
        # Only the initial checkpoints survive the ablation.
        taken = [
            r for r in tracer.records if r["type"] == "checkpoint.taken"
        ]
        assert len(taken) <= len(skips)


class TestNextSampling:
    def test_sampled_next_spans(self):
        tracer = Tracer(next_sample_every=8)
        traced_cycle(tracer)
        spans = [r for r in tracer.records if r["type"] == "op.next"]
        assert spans
        for r in spans:
            assert "dur" in r and "op" in r

    def test_no_next_spans_by_default(self, cycle):
        tracer, _ = cycle
        assert "op.next" not in types_of(tracer)


class TestCurrentTracerPickup:
    def test_runtime_uses_process_default(self):
        tracer = Tracer()
        with use_tracer(tracer):
            db, plan = build_nlj_s(0.5, scale=200)
            session = QuerySession(db, plan, name="nlj")
            session.execute(max_rows=5)
        assert "checkpoint.taken" in types_of(tracer)


class TestSchedulerWiring:
    @pytest.fixture(scope="class")
    def traced_run(self, tmp_path_factory):
        workload = mixed_priority_trace(scale=4, seed=1)
        tracer = Tracer()
        config = SchedulerConfig(
            policy="suspend-resume",
            memory_budget=workload.memory_budget,
            suspend=SuspendSpec(
                budget=workload.suspend_budget,
                persist_to=str(tmp_path_factory.mktemp("images")),
            ),
            tracer=tracer,
        )
        scheduler = QueryScheduler(workload.db_factory(), config)
        scheduler.submit_trace(workload.trace)
        stats = scheduler.run()
        return tracer, stats

    def test_scheduler_events_present(self, traced_run):
        tracer, _ = traced_run
        assert {
            "sched.admit",
            "sched.start",
            "sched.quantum",
            "sched.pressure",
            "sched.suspend",
            "sched.resume",
            "sched.complete",
            "image.commit",
            "image.commit_step",
        } <= types_of(tracer)

    def test_pressure_decision_names_victims(self, traced_run):
        tracer, _ = traced_run
        pressures = [
            r for r in tracer.records if r["type"] == "sched.pressure"
        ]
        assert pressures
        for r in pressures:
            assert r["action"] == "suspend"
            assert r["query"] == "q_hi"
            assert r["victims"] == ["q_lo"]
            assert r["excess"] > 0

    def test_quanta_cross_reference_queries(self, traced_run):
        tracer, stats = traced_run
        quanta = [r for r in tracer.records if r["type"] == "sched.quantum"]
        assert {r["query"] for r in quanta} == set(stats.per_query)
        total_rows = sum(r["rows"] for r in quanta)
        assert total_rows >= sum(
            q.rows_emitted for q in stats.per_query.values()
        )

    def test_stats_and_tracer_share_one_registry(self, traced_run):
        tracer, stats = traced_run
        assert stats.durable_spills == tracer.metrics.total(
            "query_durable_spills_total"
        )
        assert stats.suspends == tracer.metrics.total("query_suspends_total")
        assert stats.durable_spills == len(
            [r for r in tracer.records if r["type"] == "image.commit"]
        )
