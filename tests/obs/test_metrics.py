"""Metrics registry unit tests: counters, gauges, histograms, snapshots."""

import pytest

from repro.obs import DEFAULT_BUCKETS, MetricsRegistry


class TestCounter:
    def test_inc_and_set(self):
        reg = MetricsRegistry()
        c = reg.counter("rows_total")
        c.inc()
        c.inc(4)
        assert c.value == 5
        c.set(2)
        assert c.value == 2

    def test_labels_make_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("rows_total", query="a").inc(1)
        reg.counter("rows_total", query="b").inc(2)
        assert reg.counter("rows_total", query="a").value == 1
        assert reg.counter("rows_total", query="b").value == 2

    def test_total_sums_all_series_of_a_name(self):
        reg = MetricsRegistry()
        reg.counter("rows_total", query="a").inc(1)
        reg.counter("rows_total", query="b").inc(2)
        reg.counter("other_total").inc(100)
        reg.gauge("rows_total_gauge").set(50)
        assert reg.total("rows_total") == 3
        assert reg.total("missing") == 0


class TestGauge:
    def test_set_and_max(self):
        reg = MetricsRegistry()
        g = reg.gauge("live_bytes")
        g.set(10)
        g.max(5)
        assert g.value == 10
        g.max(20)
        assert g.value == 20


class TestHistogram:
    def test_observe_buckets_and_overflow(self):
        reg = MetricsRegistry()
        h = reg.histogram("cost", boundaries=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 100.0):
            h.observe(v)
        assert h.bucket_counts == [2, 1, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(106.5)
        assert h.value == {"count": 4, "sum": 106.5}

    def test_default_buckets_are_sorted_and_fixed(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        h = MetricsRegistry().histogram("cost")
        assert h.boundaries == tuple(float(b) for b in DEFAULT_BUCKETS)

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("cost", boundaries=(5.0, 1.0))


class TestRegistrySnapshots:
    def test_same_name_different_kind_coexist(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.gauge("x").set(7)
        assert reg.counter("x").value == 1
        assert reg.gauge("x").value == 7

    def test_as_dict_shape(self):
        reg = MetricsRegistry()
        reg.counter("c_total", query="q").inc(3)
        reg.gauge("g").set(9)
        reg.histogram("h", boundaries=(1.0,)).observe(0.5)
        snap = reg.as_dict()
        assert snap["counters"] == {'c_total{query="q"}': 3}
        assert snap["gauges"] == {"g": 9}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["histograms"]["h"]["buckets"] == {"1.0": 1, "+inf": 0}

    def test_render_text_is_sorted_and_cumulative(self):
        reg = MetricsRegistry()
        reg.counter("b_total").inc(2)
        reg.counter("a_total", query="q").inc(1)
        h = reg.histogram("h", boundaries=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        text = reg.render_text()
        assert text.splitlines() == [
            'a_total{query="q"} 1',
            "b_total 2",
            'h_bucket{le="1.0"} 1',
            'h_bucket{le="2.0"} 2',
            'h_bucket{le="+Inf"} 2',
            "h_sum 2.0",
            "h_count 2",
        ]

    def test_render_text_is_deterministic(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("z_total").inc(1)
            reg.counter("a_total").inc(2)
            reg.histogram("h").observe(3.0)
            return reg.render_text()

        assert build() == build()

    def test_len_counts_series(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.counter("a", q="1")
        reg.gauge("b")
        assert len(reg) == 3
