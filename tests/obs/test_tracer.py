"""Tracer unit tests: records, binding, spans, and the null path."""

import pytest

from repro.obs import (
    NULL_TRACER,
    TRACE_FORMAT_VERSION,
    NullTracer,
    Tracer,
    current_tracer,
    set_current_tracer,
    use_tracer,
)
from repro.storage.disk import VirtualClock


class TestTracer:
    def test_root_opens_with_versioned_meta(self):
        tracer = Tracer()
        assert tracer.records[0] == {
            "type": "trace.meta",
            "ts": 0.0,
            "seq": 0,
            "version": TRACE_FORMAT_VERSION,
        }

    def test_event_envelope_and_sequence(self):
        tracer = Tracer()
        a = tracer.event("a", ts=1.5, detail="x")
        b = tracer.event("b", ts=2.0)
        assert a["type"] == "a" and a["detail"] == "x"
        assert b["seq"] == a["seq"] + 1
        assert tracer.records[-2:] == [a, b]

    def test_bind_shares_sink_and_merges_fields(self):
        tracer = Tracer()
        bound = tracer.bind(query="q1")
        nested = bound.bind(op=3)
        nested.event("x", ts=0.0)
        record = tracer.records[-1]
        assert record["query"] == "q1" and record["op"] == 3

    def test_bind_ignores_none_fields(self):
        bound = Tracer().bind(query=None)
        record = bound.event("x", ts=0.0)
        assert "query" not in record

    def test_bound_clock_drives_timestamps(self):
        clock = VirtualClock()
        tracer = Tracer().bind(clock=clock)
        clock.advance(4.25)
        assert tracer.event("x")["ts"] == 4.25

    def test_span_measures_virtual_time_and_takes_result_fields(self):
        clock = VirtualClock()
        tracer = Tracer().bind(clock=clock)
        with tracer.span("work", op=1) as rec:
            clock.advance(3.0)
            rec["rows"] = 7
        record = tracer.records[-1]
        assert record["dur"] == 3.0
        assert record["rows"] == 7 and record["op"] == 1

    def test_span_records_even_when_block_raises(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("work"):
                raise RuntimeError("interrupted")
        assert tracer.records[-1]["type"] == "work"

    def test_metrics_registry_is_shared_across_bindings(self):
        tracer = Tracer()
        tracer.bind(query="q").metrics.counter("c").inc()
        assert tracer.metrics.counter("c").value == 1


class TestNullTracer:
    def test_singleton_is_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.bind(query="q") is NULL_TRACER
        assert NULL_TRACER.event("x") is None
        assert NULL_TRACER.records == []
        assert NULL_TRACER.trace_next is False
        assert NULL_TRACER.next_sample_every == 0
        with NULL_TRACER.span("x") as rec:
            rec["anything"] = 1  # must tolerate writes

    def test_metrics_are_throwaway(self):
        NULL_TRACER.metrics.counter("c").inc()
        assert NULL_TRACER.metrics.counter("c").value == 0

    def test_null_is_a_tracer(self):
        assert isinstance(NullTracer(), Tracer)


class TestCurrentTracer:
    def test_default_is_null(self):
        assert current_tracer() is NULL_TRACER

    def test_use_tracer_scopes_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER

    def test_set_current_tracer_none_clears(self):
        tracer = Tracer()
        set_current_tracer(tracer)
        assert current_tracer() is tracer
        set_current_tracer(None)
        assert current_tracer() is NULL_TRACER
