"""Deterministic merge of distributed trace streams."""

from repro.obs import (
    COORDINATOR_LANE,
    Tracer,
    merge_shard_trace,
    merge_traces,
    shard_lane,
    split_by_shard,
    strip_lanes,
)
from repro.obs.merge import _lane_rank
from repro.obs.tracer import TRACE_FORMAT_VERSION


def ev(etype, ts, **fields):
    return {"type": etype, "ts": ts, **fields}


class TestOrdering:
    def test_primary_key_is_virtual_time(self):
        merged = merge_traces(
            [
                (COORDINATOR_LANE, [ev("a", 2.0)]),
                (shard_lane(0), [ev("b", 1.0)]),
            ]
        )
        assert [r["type"] for r in merged[1:]] == ["b", "a"]

    def test_tiebreak_is_lane_rank(self):
        # Same timestamp everywhere: coordinator first, shards by id.
        merged = merge_traces(
            [
                (shard_lane(1), [ev("s1", 5.0)]),
                (COORDINATOR_LANE, [ev("c", 5.0)]),
                (shard_lane(0), [ev("s0", 5.0)]),
                (shard_lane(10), [ev("s10", 5.0)]),
            ]
        )
        assert [r["type"] for r in merged[1:]] == ["c", "s0", "s1", "s10"]

    def test_shard_lanes_rank_numerically_not_lexically(self):
        assert _lane_rank(shard_lane(2)) < _lane_rank(shard_lane(10))
        assert _lane_rank(COORDINATOR_LANE) < _lane_rank(shard_lane(0))

    def test_tiebreak_within_lane_preserves_emission_order(self):
        merged = merge_traces(
            [(shard_lane(0), [ev("first", 1.0), ev("second", 1.0)])]
        )
        assert [r["type"] for r in merged[1:]] == ["first", "second"]

    def test_merged_seq_is_fresh_and_contiguous(self):
        merged = merge_traces(
            [
                (COORDINATOR_LANE, [ev("a", 1.0, seq=99)]),
                (shard_lane(0), [ev("b", 2.0, seq=99)]),
            ]
        )
        assert [r["seq"] for r in merged] == [0, 1, 2]

    def test_merge_is_deterministic(self):
        streams = [
            (COORDINATOR_LANE, [ev("a", 1.0), ev("b", 3.0)]),
            (shard_lane(0), [ev("c", 2.0)]),
            (shard_lane(1), [ev("d", 2.0)]),
        ]
        assert merge_traces(streams) == merge_traces(streams)


class TestMeta:
    def test_single_meta_lists_lanes(self):
        merged = merge_traces(
            [
                (COORDINATOR_LANE, [ev("trace.meta", 0.0), ev("a", 1.0)]),
                (shard_lane(0), [ev("trace.meta", 0.0), ev("b", 1.0)]),
            ]
        )
        metas = [r for r in merged if r["type"] == "trace.meta"]
        assert len(metas) == 1
        assert metas[0]["merged"] is True
        assert metas[0]["version"] == TRACE_FORMAT_VERSION
        assert metas[0]["lanes"] == [COORDINATOR_LANE, shard_lane(0)]

    def test_unique_trace_id_is_promoted(self):
        merged = merge_traces(
            [
                (COORDINATOR_LANE, [ev("a", 1.0, trace_id="t1")]),
                (shard_lane(0), [ev("b", 1.0, trace_id="t1")]),
            ]
        )
        assert merged[0]["trace_id"] == "t1"

    def test_conflicting_trace_ids_are_not_promoted(self):
        merged = merge_traces(
            [
                (COORDINATOR_LANE, [ev("a", 1.0, trace_id="t1")]),
                (shard_lane(0), [ev("b", 1.0, trace_id="t2")]),
            ]
        )
        assert "trace_id" not in merged[0]


class TestSplitAndStrip:
    def test_split_by_shard_routes_by_field(self):
        records = [
            ev("c", 1.0),
            ev("s", 1.0, shard=1),
            ev("s", 2.0, shard=0),
        ]
        lanes = dict(split_by_shard(records))
        assert [r["type"] for r in lanes[COORDINATOR_LANE]] == ["c"]
        assert lanes[shard_lane(0)][0]["ts"] == 2.0
        assert lanes[shard_lane(1)][0]["ts"] == 1.0

    def test_split_then_merge_equals_direct_merge_modulo_lanes(self):
        tracer = Tracer()
        shard0 = tracer.bind(shard=0)
        shard1 = tracer.bind(shard=1)
        shard0.event("x", ts=1.0)
        shard1.event("y", ts=1.0)
        tracer.event("z", ts=2.0)
        merged = merge_traces(split_by_shard(tracer.records))
        assert [r["lane"] for r in merged[1:]] == [
            shard_lane(0),
            shard_lane(1),
            COORDINATOR_LANE,
        ]
        assert all("lane" not in r for r in strip_lanes(merged))
        assert all("seq" not in r for r in strip_lanes(merged))

    def test_merge_shard_trace_orders_shard_dict_by_id(self):
        merged = merge_shard_trace(
            [ev("c", 0.5)],
            {1: [ev("s1", 1.0)], 0: [ev("s0", 1.0)]},
        )
        assert merged[0]["lanes"] == [
            COORDINATOR_LANE,
            shard_lane(0),
            shard_lane(1),
        ]
        assert [r["type"] for r in merged[1:]] == ["c", "s0", "s1"]

    def test_input_records_are_not_mutated(self):
        record = ev("a", 1.0)
        merge_traces([(COORDINATOR_LANE, [record])])
        assert record == {"type": "a", "ts": 1.0}
