"""Trace determinism: identical runs produce byte-identical JSONL.

Determinism is the load-bearing property of the whole observability
layer — it is what lets a trace serve as a regression artifact. Two
threats are covered here:

- in-process: global counters (checkpoint/contract/store ids) leaking
  into records, dict ordering, floating-point formatting;
- cross-process: anything environment-dependent (``id()``, hash seeds,
  wall-clock time) leaking in. The CLI runs the same suspend→image and
  image→resume commands twice in fresh interpreters and the traces must
  match byte for byte.
"""

import json

from repro.core.lifecycle import QuerySession, SuspendSpec, SuspendStrategy
from repro.obs import Tracer, trace_lines
from repro.service import QueryScheduler, SchedulerConfig
from repro.workloads.plans import build_nlj_s, mixed_priority_trace

from tests.durability.test_cross_process import run_cli


def session_trace():
    tracer = Tracer(next_sample_every=16)
    db, plan = build_nlj_s(0.5, scale=200)
    session = QuerySession(db, plan, name="nlj", tracer=tracer)
    session.execute(max_rows=20)
    sq = session.suspend(SuspendSpec(strategy=SuspendStrategy.LP))
    resumed = QuerySession.resume(db, sq, name="nlj", tracer=tracer)
    resumed.execute()
    return trace_lines(tracer.records), tracer.metrics.render_text()


def scheduler_trace(image_root):
    workload = mixed_priority_trace(scale=4, seed=1)
    tracer = Tracer()
    config = SchedulerConfig(
        policy="suspend-resume",
        memory_budget=workload.memory_budget,
        suspend=SuspendSpec(
            budget=workload.suspend_budget,
            persist_to=image_root,
        ),
        tracer=tracer,
    )
    scheduler = QueryScheduler(workload.db_factory(), config)
    scheduler.submit_trace(workload.trace)
    scheduler.run()
    return trace_lines(tracer.records), tracer.metrics.render_text()


class TestInProcessDeterminism:
    def test_session_runs_are_byte_identical(self):
        (lines_a, metrics_a) = session_trace()
        (lines_b, metrics_b) = session_trace()
        assert lines_a == lines_b
        assert metrics_a == metrics_b

    def test_scheduler_runs_are_byte_identical(self, tmp_path):
        a = scheduler_trace(str(tmp_path / "a"))
        b = scheduler_trace(str(tmp_path / "b"))
        assert a == b

    def test_no_global_counters_leak_into_records(self):
        # Burn some global ids; the trace must not shift.
        baseline, _ = session_trace()
        db, plan = build_nlj_s(0.5, scale=200)
        extra = QuerySession(db, plan)
        extra.execute(max_rows=10)
        extra.suspend(SuspendSpec(strategy=SuspendStrategy.LP))
        again, _ = session_trace()
        assert again == baseline


class TestCrossProcessDeterminism:
    def run_pair(self, root, tag):
        """Suspend to an image and resume it, tracing both processes."""
        images = str(root / f"images-{tag}")
        strace = str(root / f"suspend-{tag}.jsonl")
        rtrace = str(root / f"resume-{tag}.jsonl")
        run_cli(
            "suspend",
            "--recipe",
            "sort",
            "--images",
            images,
            "--rows",
            "30",
            "--id",
            "img",
            "--trace",
            strace,
        )
        run_cli(
            "resume-image",
            "--images",
            images,
            "--id",
            "img",
            "--trace",
            rtrace,
        )
        with open(strace, "rb") as fh:
            suspend_bytes = fh.read()
        with open(rtrace, "rb") as fh:
            resume_bytes = fh.read()
        return suspend_bytes, resume_bytes

    def test_fresh_interpreters_produce_identical_traces(self, tmp_path):
        first = self.run_pair(tmp_path, "a")
        second = self.run_pair(tmp_path, "b")
        assert first == second
        # Sanity: the suspend trace is substantive, not trivially equal.
        types = {
            json.loads(line)["type"]
            for line in first[0].decode().splitlines()
        }
        assert {"checkpoint.taken", "mip.decision", "image.commit"} <= types
