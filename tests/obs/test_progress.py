"""Progress estimation, its trace/metric publication, and trace loading."""

import pytest

from repro.cli import main as cli_main
from repro.common.errors import TraceFileError
from repro.core.lifecycle import QuerySession, QueryStatus
from repro.durability import build_recipe
from repro.obs import (
    MetricsRegistry,
    Tracer,
    emit_progress,
    estimate_cardinalities,
    load_trace,
    progress_timeline,
    query_progress,
    render_progress,
)


def session_for(recipe, scale=2):
    db, plan = build_recipe(recipe, scale=scale)
    return QuerySession(db, plan)


class TestCardinalities:
    def test_scan_estimates_are_exact(self):
        session = session_for("hashjoin")
        estimates = estimate_cardinalities(session.root)
        tables = {
            name: session.db.catalog.table(name).num_tuples
            for name in session.db.catalog.table_names()
        }
        # Every leaf estimate equals some base table's true cardinality.
        leaf_ests = sorted(
            v
            for op_id, v in estimates.items()
            if not list(session.runtime.ops[op_id].children)
        )
        assert set(leaf_ests) <= set(tables.values())

    def test_every_operator_gets_a_positive_estimate(self):
        for recipe in ("hashjoin", "hashagg", "sort"):
            session = session_for(recipe)
            estimates = estimate_cardinalities(session.root)
            assert set(estimates) == set(session.runtime.ops)
            assert all(v >= 1.0 for v in estimates.values())


class TestQueryProgress:
    def test_fraction_grows_and_caps_at_one(self):
        session = session_for("hashjoin")
        fractions = []
        while True:
            result = session.execute(max_rows=64)
            snapshot = query_progress(session)
            fractions.append(snapshot.fraction)
            if result.status is QueryStatus.COMPLETED:
                break
        assert fractions == sorted(fractions)
        assert 0.0 <= fractions[0] <= 1.0
        assert fractions[-1] == 1.0
        assert snapshot.est_remaining_work == 0.0
        assert snapshot.est_remaining_bytes == 0

    def test_rows_offset_keeps_fraction_monotone(self):
        session = session_for("hashjoin")
        session.execute(max_rows=64)
        plain = query_progress(session)
        offset = query_progress(session, rows_offset=100)
        assert offset.rows_total == plain.rows_total + 100
        assert offset.fraction >= plain.fraction

    def test_operator_breakdown_covers_the_plan(self):
        session = session_for("hashagg")
        session.execute(max_rows=32)
        snapshot = query_progress(session)
        assert len(snapshot.operators) == len(session.runtime.ops)
        doc = snapshot.as_dict()
        assert len(doc["operators"]) == len(session.runtime.ops)
        assert "operators" not in snapshot.as_dict(include_operators=False)


class TestPublication:
    def test_emit_progress_writes_record_and_gauges(self):
        tracer = Tracer()
        session = session_for("hashjoin")
        session.execute(max_rows=64)
        snapshot = query_progress(session)
        snapshot.query = "q1"
        emit_progress(tracer.bind(query="q1"), snapshot)
        records = [
            r for r in tracer.records if r["type"] == "query.progress"
        ]
        assert len(records) == 1
        assert records[0]["query"] == "q1"
        assert records[0]["fraction"] == snapshot.fraction
        gauges = tracer.metrics.as_dict()["gauges"]
        assert any("query_progress_fraction" in k for k in gauges)

    def test_emit_progress_is_free_when_disabled(self):
        from repro.obs import NULL_TRACER

        session = session_for("hashjoin")
        session.execute(max_rows=64)
        snapshot = query_progress(session)
        emit_progress(NULL_TRACER, snapshot)  # must not raise

    def test_timeline_and_render(self):
        tracer = Tracer()
        session = session_for("hashjoin")
        while True:
            result = session.execute(max_rows=64)
            snapshot = query_progress(session)
            snapshot.query = "q1"
            emit_progress(tracer.bind(query="q1"), snapshot)
            if result.status is QueryStatus.COMPLETED:
                break
        timeline = progress_timeline(tracer.records)
        assert "q1" in timeline and len(timeline["q1"]) > 1
        text = render_progress(tracer.records)
        assert "q1" in text and "1.0" in text
        assert "no query.progress records" in render_progress([])

    def test_publish_uses_registry_gauges(self):
        from repro.obs import publish_progress

        registry = MetricsRegistry()
        session = session_for("hashjoin")
        session.execute(max_rows=64)
        snapshot = query_progress(session)
        snapshot.query = "q9"
        publish_progress(snapshot, registry)
        doc = registry.as_dict()["gauges"]
        key = [k for k in doc if "query_progress_fraction" in k]
        assert len(key) == 1 and "q9" in key[0]


class TestTraceFileLoading:
    """load_trace and the trace CLI on empty/torn/corrupt files."""

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFileError, match="no such"):
            load_trace(str(tmp_path / "absent.jsonl"))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceFileError, match="empty trace file"):
            load_trace(str(path))

    def test_torn_tail(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(
            '{"type":"a","ts":0.0,"seq":0}\n{"type":"b","ts":1.'
        )
        with pytest.raises(TraceFileError, match="torn tail"):
            load_trace(str(path))

    def test_corrupt_mid_file_names_the_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"type":"a","ts":0.0}\nnot json\n{"type":"b","ts":1.0}\n'
        )
        with pytest.raises(TraceFileError, match=":2:"):
            load_trace(str(path))

    def test_valid_file_round_trips(self, tmp_path):
        from repro.obs import write_jsonl

        tracer = Tracer()
        tracer.event("a", ts=1.0)
        path = str(tmp_path / "ok.jsonl")
        write_jsonl(tracer.records, path)
        assert load_trace(path) == tracer.records

    @pytest.mark.parametrize("command", ["summary", "convert", "progress"])
    def test_cli_exits_cleanly_on_empty_file(
        self, tmp_path, capsys, command
    ):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(SystemExit) as err:
            cli_main(["trace", command, str(path)])
        assert "empty trace file" in str(err.value)

    def test_cli_exits_cleanly_on_torn_tail(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"type":"a","ts":0.0,"seq":0}\n{"truncat')
        with pytest.raises(SystemExit) as err:
            cli_main(["trace", "summary", str(path)])
        assert "torn tail" in str(err.value)
