"""Exporter tests: JSONL round-trip, Chrome conversion, summaries."""

import json
import math

from repro.obs import (
    Tracer,
    read_jsonl,
    render_summary,
    summarize,
    to_chrome_trace,
    trace_lines,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.export import TS_SCALE, _jsonable


class TestJsonl:
    def test_round_trip(self, tmp_path):
        tracer = Tracer()
        tracer.event("a", ts=1.0, detail="x")
        path = str(tmp_path / "t.jsonl")
        assert write_jsonl(tracer.records, path) == 2
        assert read_jsonl(path) == tracer.records

    def test_lines_sort_keys_and_are_compact(self):
        (line,) = trace_lines([{"b": 1, "a": 2, "type": "x", "ts": 0.0}])
        assert line == '{"a":2,"b":1,"ts":0.0,"type":"x"}'

    def test_jsonable_strips_inf_and_nan(self):
        assert _jsonable(
            {"a": math.inf, "b": [math.nan, 1.5], "c": (2,)}
        ) == {"a": None, "b": [None, 1.5], "c": [2]}
        # An infinite suspend budget must not produce invalid JSON.
        (line,) = trace_lines([{"type": "x", "ts": 0.0, "budget": math.inf}])
        json.loads(line)


class TestChromeTrace:
    def records(self):
        return [
            {"type": "trace.meta", "ts": 0.0, "seq": 0, "version": 1},
            {
                "type": "sched.quantum",
                "ts": 1.0,
                "dur": 2.0,
                "seq": 1,
                "query": "q1",
            },
            {
                "type": "checkpoint.taken",
                "ts": 4.0,
                "seq": 2,
                "query": "q1",
                "op": 3,
                "op_name": "join",
            },
            {
                "type": "sched.start",
                "ts": 5.0,
                "seq": 3,
                "query": "q1",
                "memory_bytes": 128,
            },
        ]

    def test_conversion_shapes(self):
        events = to_chrome_trace(self.records())["traceEvents"]
        by_ph = {}
        for e in events:
            by_ph.setdefault(e["ph"], []).append(e)
        # meta record skipped; M names for process + 2 threads.
        names = {e["args"]["name"] for e in by_ph["M"]}
        assert "query:q1" in names and "op 3 join" in names
        (span,) = by_ph["X"]
        assert span["name"] == "sched.quantum"
        assert span["ts"] == 1.0 * TS_SCALE and span["dur"] == 2.0 * TS_SCALE
        assert {e["name"] for e in by_ph["i"]} == {
            "checkpoint.taken",
            "sched.start",
        }
        (counter,) = by_ph["C"]
        assert counter["args"] == {"bytes": 128}

    def test_operator_and_scheduler_records_share_query_process(self):
        events = to_chrome_trace(self.records())["traceEvents"]
        pids = {
            e["name"]: e["pid"] for e in events if e["ph"] in ("X", "i")
        }
        assert pids["sched.quantum"] == pids["checkpoint.taken"]

    def test_zero_duration_span_gets_minimum_width(self):
        events = to_chrome_trace(
            [{"type": "op.next", "ts": 0.0, "dur": 0.0, "seq": 0, "op": 1}]
        )["traceEvents"]
        (span,) = [e for e in events if e["ph"] == "X"]
        assert span["dur"] == 1.0

    def test_write_is_valid_json(self, tmp_path):
        path = str(tmp_path / "t.chrome.json")
        n = write_chrome_trace(self.records(), path)
        with open(path) as fh:
            doc = json.load(fh)
        assert len(doc["traceEvents"]) == n
        assert doc["displayTimeUnit"] == "ms"


class TestSummaries:
    def test_summarize_counts_types_queries_and_range(self):
        records = [
            {"type": "trace.meta", "ts": 0.0, "seq": 0},
            {"type": "a", "ts": 1.0, "seq": 1, "query": "q1"},
            {"type": "a", "ts": 2.0, "dur": 3.0, "seq": 2, "query": "q2"},
        ]
        info = summarize(records)
        assert info["records"] == 3
        assert info["types"] == {"a": 2, "trace.meta": 1}
        assert info["queries"] == ["q1", "q2"]
        assert info["time_range"] == [1.0, 5.0]

    def test_render_summary_lists_each_type(self):
        text = render_summary(
            [{"type": "a", "ts": 0.0, "seq": 0, "query": "q"}]
        )
        assert "1 records" in text and "queries: q" in text
        assert any(line.strip().startswith("a") for line in text.splitlines())
