"""The Section 7 analytical model must match the paper's arithmetic."""

import pytest

from repro.planning.cost_model import (
    Example9Scenario,
    Example10Scenario,
    hhj_costs,
    nlj_costs,
    smj_costs,
    smj_costs_presorted_inner,
)


class TestExample10Arithmetic:
    """Every number here is stated explicitly in the paper."""

    def test_nlj_run_cost_is_10000(self):
        assert nlj_costs(Example10Scenario()).run_io == pytest.approx(10_000)

    def test_smj_run_cost_is_10100(self):
        sc = Example10Scenario()
        assert smj_costs_presorted_inner(sc).run_io == pytest.approx(10_100)

    def test_nlj_suspend_overhead_at_80k_is_1333(self):
        sc = Example10Scenario()
        got = nlj_costs(sc, suspend_at_buffer_fill=80_000).suspend_overhead_io
        assert got == pytest.approx(1_333.33, abs=0.5)

    def test_smj_worst_case_overhead_is_167(self):
        sc = Example10Scenario()
        assert smj_costs_presorted_inner(sc).suspend_overhead_io == 167

    def test_totals_with_suspend(self):
        sc = Example10Scenario()
        nlj = nlj_costs(sc, suspend_at_buffer_fill=80_000)
        smj = smj_costs_presorted_inner(sc)
        assert nlj.total_with_suspend == pytest.approx(11_333.33, abs=0.5)
        assert smj.total_with_suspend == pytest.approx(10_267)

    def test_two_outer_batches(self):
        """180,000 filtered tuples / 90,000 buffer = 2 scans of S."""
        sc = Example10Scenario()
        assert nlj_costs(sc).run_io == 3_000 + 2 * 3_500


class TestExample9Shape:
    def test_hhj_cheaper_without_suspend(self):
        sc = Example9Scenario()
        assert hhj_costs(sc).run_io < smj_costs(sc).run_io

    def test_smj_cheaper_with_suspend(self):
        sc = Example9Scenario()
        assert (
            smj_costs(sc).total_with_suspend < hhj_costs(sc).total_with_suspend
        )

    def test_hhj_suspend_overhead_dominated_by_build_rescan(self):
        sc = Example9Scenario()
        assert hhj_costs(sc).suspend_overhead_io >= sc.r_tuples / sc.tuples_per_page

    def test_smj_suspend_overhead_is_a_few_blocks(self):
        sc = Example9Scenario()
        assert smj_costs(sc).suspend_overhead_io <= 10

    def test_all_in_memory_build_never_spills(self):
        sc = Example9Scenario(memory_tuples=1_000_000)
        costs = hhj_costs(sc)
        # no spill I/O at all: just scan R and S
        assert costs.run_io == pytest.approx(22_000 + 2_500)
