"""Unit tests for suspend-aware plan choice (Section 7)."""

import pytest

from repro.planning.cost_model import Example9Scenario, Example10Scenario
from repro.planning.planner import (
    choose_plan_example9,
    choose_plan_example10,
    nlj_smj_crossover_suspend_point,
)


class TestExample9Choice:
    def test_flip(self):
        choice = choose_plan_example9()
        assert choice.without_suspend == "HHJ"
        assert choice.with_suspend == "SMJ"
        assert choice.flipped


class TestExample10Choice:
    def test_flip_at_paper_suspend_point(self):
        choice = choose_plan_example10(suspend_at_buffer_fill=80_000)
        assert choice.without_suspend == "NLJ"
        assert choice.with_suspend == "SMJ"
        assert choice.flipped

    def test_no_flip_for_early_suspend(self):
        choice = choose_plan_example10(suspend_at_buffer_fill=1_000)
        assert choice.with_suspend == "NLJ"
        assert not choice.flipped

    def test_crossover_is_16020(self):
        """The paper: 'for any suspend point beyond 16,020 tuples in the
        NLJ buffer, SMJ is expected to outperform NLJ'."""
        assert nlj_smj_crossover_suspend_point() == pytest.approx(16_020)

    def test_choice_flips_exactly_at_crossover(self):
        crossover = nlj_smj_crossover_suspend_point()
        below = choose_plan_example10(suspend_at_buffer_fill=crossover - 100)
        above = choose_plan_example10(suspend_at_buffer_fill=crossover + 100)
        assert below.with_suspend == "NLJ"
        assert above.with_suspend == "SMJ"

    def test_average_suspend_point_favors_smj(self):
        """'On average, suspends may occur halfway through the buffer;
        therefore, SMJ is better than NLJ on the average.'"""
        sc = Example10Scenario()
        halfway = sc.nlj_buffer_tuples / 2
        assert halfway > nlj_smj_crossover_suspend_point()
        assert choose_plan_example10(
            suspend_at_buffer_fill=halfway
        ).with_suspend == "SMJ"
