"""Unit tests for the operational suspend-aware plan advisor."""

import pytest

from repro import Database, QuerySession, SuspendSpec
from repro.planning.advisor import JoinQuery, candidate_plans, choose_join_plan
from repro.relational.datagen import BASE_SCHEMA, generate_uniform_table
from repro.relational.expressions import EquiJoinCondition, UniformSelect


def example9_db(scale=100):
    """Example 9's tables, scaled: |R|=2.2M/scale, |S|=250k/scale."""
    db = Database()
    db.create_table(
        "R", BASE_SCHEMA, generate_uniform_table(2_200_000 // scale, seed=1)
    )
    db.create_table(
        "S", BASE_SCHEMA, generate_uniform_table(250_000 // scale, seed=2)
    )
    return db


def example9_query(sel=0.1):
    return JoinQuery(
        left_table="R",
        right_table="S",
        predicate=UniformSelect(1, sel),
        filter_selectivity=sel,
        join_condition=EquiJoinCondition(0, 0),
    )


def example10_db(scale=100):
    db = Database()
    db.create_table(
        "R", BASE_SCHEMA, generate_uniform_table(300_000 // scale, seed=3)
    )
    db.create_table(
        "S",
        BASE_SCHEMA,
        generate_uniform_table(350_000 // scale, seed=4, shuffle_keys=False),
    )
    return db


def example10_query():
    return JoinQuery(
        left_table="R",
        right_table="S",
        predicate=UniformSelect(1, 0.6),
        filter_selectivity=0.6,
        join_condition=EquiJoinCondition(0, 0),
        right_sorted=True,
    )


class TestAdvisorExample9:
    def test_choice_flips_under_suspends(self):
        """HHJ wins without suspends; SMJ with (Example 9 at 1/100 —
        restricted to the example's two candidates)."""
        db = example9_db()
        choice = choose_join_plan(
            db, example9_query(), memory_tuples=1_500,
            allowed={"HHJ", "SMJ"},
        )
        assert choice.without_suspend.name == "HHJ"
        assert choice.with_suspend.name == "SMJ"
        assert choice.flipped

    def test_all_candidates_costed(self):
        db = example9_db()
        cands = candidate_plans(db, example9_query(), memory_tuples=1_500)
        assert {c.name for c in cands} == {"NLJ", "SMJ", "HHJ"}
        assert all(c.run_io > 0 for c in cands)
        assert all(c.suspend_overhead_io >= 0 for c in cands)


class TestAdvisorExample10:
    def test_choice_flips_under_suspends(self):
        """NLJ wins without suspends; SMJ with (Example 10 at 1/100)."""
        db = example10_db()
        choice = choose_join_plan(
            db, example10_query(), memory_tuples=900,
            suspend_point_fraction=80_000 / 90_000,
            sort_buffer_tuples=100,  # the example grants SMJ 10k tuples
            allowed={"NLJ", "SMJ"},
        )
        assert choice.without_suspend.name == "NLJ"
        assert choice.with_suspend.name == "SMJ"

    def test_early_expected_suspend_keeps_nlj(self):
        db = example10_db()
        choice = choose_join_plan(
            db, example10_query(), memory_tuples=900,
            suspend_point_fraction=0.01,
            sort_buffer_tuples=100,
            allowed={"NLJ", "SMJ"},
        )
        assert choice.with_suspend.name == "NLJ"


class TestChosenPlansExecute:
    """The advisor's specs are executable and agree on output multisets."""

    @pytest.mark.parametrize("expect_suspend", [False, True])
    def test_example9_choice_runs(self, expect_suspend):
        db = example9_db(scale=1000)
        choice = choose_join_plan(db, example9_query(), memory_tuples=150)
        cand = (
            choice.with_suspend if expect_suspend else choice.without_suspend
        )
        rows = QuerySession(db, cand.spec).execute().rows
        assert rows  # modulus join guarantees matches

    def test_all_candidates_agree_on_output(self):
        results = []
        for cand in candidate_plans(
            example9_db(scale=1000), example9_query(), memory_tuples=150
        ):
            db = example9_db(scale=1000)
            rows = QuerySession(db, cand.spec).execute().rows
            results.append(sorted(rows))
        assert results[0] == results[1] == results[2]

    def test_chosen_plan_supports_suspend_resume(self):
        db = example9_db(scale=1000)
        choice = choose_join_plan(db, example9_query(), memory_tuples=150)
        spec = choice.with_suspend.spec
        ref = QuerySession(example9_db(scale=1000), spec).execute().rows
        session = QuerySession(db, spec)
        first = session.execute(max_rows=10)
        sq = session.suspend(SuspendSpec(strategy="lp"))
        resumed = QuerySession.resume(db, sq)
        assert first.rows + resumed.execute().rows == ref
