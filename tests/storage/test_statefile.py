"""Unit tests for the state store (dumps, sublists, SuspendedQuery)."""

import pytest

from repro.common.errors import StorageError
from repro.storage.disk import SimulatedDisk
from repro.storage.statefile import DumpHandle, StateStore


class TestStateStore:
    def test_dump_charges_page_writes(self):
        disk = SimulatedDisk()
        store = StateStore(disk)
        store.dump("k", [1, 2, 3], pages=4)
        assert disk.counters.pages_written == 4
        assert disk.now == pytest.approx(4 * disk.cost_model.page_write_cost)

    def test_load_charges_page_reads(self):
        disk = SimulatedDisk()
        store = StateStore(disk)
        handle = store.dump("k", ["payload"], pages=3)
        before = disk.counters.pages_read
        assert store.load(handle) == ["payload"]
        assert disk.counters.pages_read - before == 3

    def test_dump_tuples_page_math(self):
        disk = SimulatedDisk()
        store = StateStore(disk)
        handle = store.dump_tuples("k", list(range(25)), tuples_per_page=10)
        assert handle.pages == 3

    def test_dump_tuples_empty(self):
        store = StateStore(SimulatedDisk())
        handle = store.dump_tuples("k", [], tuples_per_page=10)
        assert handle.pages == 0

    def test_peek_uncharged(self):
        disk = SimulatedDisk()
        store = StateStore(disk)
        handle = store.dump("k", [1], pages=2)
        before = disk.now
        assert store.peek(handle) == [1]
        assert disk.now == before

    def test_load_pages_range_charges_suffix_only(self):
        disk = SimulatedDisk()
        store = StateStore(disk)
        handle = store.dump("k", list(range(40)), pages=4)
        before = disk.counters.pages_read
        store.load_pages_range(handle, first_page=3)
        assert disk.counters.pages_read - before == 1

    def test_free_releases(self):
        store = StateStore(SimulatedDisk())
        handle = store.dump("k", [1], pages=1)
        store.free(handle)
        with pytest.raises(StorageError):
            store.load(handle)

    def test_foreign_handle_rejected(self):
        disk = SimulatedDisk()
        store_a = StateStore(disk)
        store_b = StateStore(disk)
        handle = store_a.dump("k", [1], pages=1)
        with pytest.raises(StorageError):
            store_b.load(handle)

    def test_fresh_keys_are_unique(self):
        store = StateStore(SimulatedDisk())
        keys = {store.fresh_key("x") for _ in range(100)}
        assert len(keys) == 100

    def test_negative_pages_rejected(self):
        store = StateStore(SimulatedDisk())
        with pytest.raises(ValueError):
            store.dump("k", [], pages=-1)

    def test_len_and_exists(self):
        store = StateStore(SimulatedDisk())
        store.dump("a", 1, pages=0)
        assert len(store) == 1
        assert store.exists("a")
        assert not store.exists("b")


class TestFreeEdgeCases:
    def test_double_free_raises_storage_error(self):
        store = StateStore(SimulatedDisk())
        handle = store.dump("k", [1], pages=1)
        store.free(handle)
        with pytest.raises(StorageError):
            store.free(handle)

    def test_free_unknown_handle_raises_storage_error(self):
        store = StateStore(SimulatedDisk())
        bogus = DumpHandle(store_id=store._store_id, key="never", pages=1)
        with pytest.raises(StorageError):
            store.free(bogus)

    def test_freed_handle_fails_every_access_with_storage_error(self):
        store = StateStore(SimulatedDisk())
        handle = store.dump("k", [1, 2], pages=2)
        store.free(handle)
        for access in (
            store.load,
            store.peek,
            store.export_payload,
            lambda h: store.load_pages_range(h, 0),
        ):
            with pytest.raises(StorageError):
                access(handle)

    def test_orphaned_handle_raises_storage_error_not_key_error(self):
        """A decoded image handle (store_id=-1) must fail cleanly."""
        store = StateStore(SimulatedDisk())
        orphan = DumpHandle(store_id=-1, key="dump#1", pages=3)
        with pytest.raises(StorageError):
            store.load(orphan)

    def test_resume_with_freed_dump_handle_raises_storage_error(self):
        from repro.core.lifecycle import QuerySession, SuspendSpec
        from tests.conftest import make_small_db, tiny_nlj_plan

        db = make_small_db()
        session = QuerySession(db, tiny_nlj_plan())
        session.execute(max_rows=30)
        sq = session.suspend(SuspendSpec(strategy="all_dump"))
        handles = sq.referenced_handles()
        assert handles, "all_dump suspend must reference dumped state"
        db.state_store.free(next(iter(handles.values())))
        with pytest.raises(StorageError):
            QuerySession.resume(db, sq)


class TestExportImport:
    def test_export_payload_is_uncharged(self):
        disk = SimulatedDisk()
        store = StateStore(disk)
        handle = store.dump("k", [1, 2, 3], pages=3)
        before = disk.now
        payload, pages = store.export_payload(handle)
        assert (payload, pages) == ([1, 2, 3], 3)
        assert disk.now == before

    def test_import_payload_charges_writes(self):
        disk = SimulatedDisk()
        store = StateStore(disk)
        before = disk.counters.pages_written
        handle = store.import_payload("shipped", ["rows"], pages=5)
        assert disk.counters.pages_written - before == 5
        assert store.load(handle) == ["rows"]
