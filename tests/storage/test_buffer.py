"""Unit tests for the optional LRU buffer pool."""

import pytest

from repro import Database, QuerySession, SuspendSpec
from repro.engine.plan import ScanSpec
from repro.relational.datagen import BASE_SCHEMA, generate_uniform_table
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk

from tests.conftest import tiny_nlj_plan


class TestBufferPool:
    def test_miss_charges_read_hit_does_not(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, capacity_pages=4)
        miss_cost = pool.read_page(("t", 0))
        assert miss_cost == pytest.approx(1.0)
        hit_cost = pool.read_page(("t", 0))
        assert hit_cost < 0.01
        assert pool.hits == 1 and pool.misses == 1

    def test_lru_eviction(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, capacity_pages=2)
        pool.read_page(("t", 0))
        pool.read_page(("t", 1))
        pool.read_page(("t", 0))  # refresh page 0
        pool.read_page(("t", 2))  # evicts page 1
        assert ("t", 0) in pool
        assert ("t", 1) not in pool
        assert pool.evictions == 1

    def test_invalidate_and_clear(self):
        pool = BufferPool(SimulatedDisk(), capacity_pages=4)
        pool.read_page(("t", 0))
        pool.invalidate(("t", 0))
        assert ("t", 0) not in pool
        pool.read_page(("t", 1))
        pool.clear()
        assert len(pool) == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BufferPool(SimulatedDisk(), capacity_pages=0)

    def test_hit_rate(self):
        pool = BufferPool(SimulatedDisk(), capacity_pages=4)
        assert pool.hit_rate == 0.0
        pool.read_page(("t", 0))
        pool.read_page(("t", 0))
        assert pool.hit_rate == pytest.approx(0.5)


class TestPooledDatabase:
    def make_db(self, pool_pages):
        db = Database(buffer_pool_pages=pool_pages)
        db.create_table(
            "R", BASE_SCHEMA, generate_uniform_table(300, seed=1)
        )
        db.create_table(
            "S", BASE_SCHEMA, generate_uniform_table(200, seed=2)
        )
        return db

    def test_default_database_has_no_pool(self):
        assert Database().buffer_pool is None

    def test_repeated_scan_hits_pool(self):
        db = self.make_db(pool_pages=16)
        QuerySession(db, ScanSpec("R")).execute()
        cold = db.disk.counters.pages_read
        QuerySession(db, ScanSpec("R")).execute()
        assert db.disk.counters.pages_read == cold  # fully cached
        assert db.buffer_pool.hit_rate > 0

    def test_pool_reduces_nlj_inner_rescans(self):
        """The NLJ re-scans its inner every pass; with a pool large enough
        for the inner table, later passes are free."""
        cold_db = self.make_db(pool_pages=0) if False else None
        plain = Database()
        plain.create_table("R", BASE_SCHEMA, generate_uniform_table(300, seed=1))
        plain.create_table("S", BASE_SCHEMA, generate_uniform_table(200, seed=2))
        pooled = self.make_db(pool_pages=8)

        plan = tiny_nlj_plan(selectivity=1.0, buffer_tuples=50)
        QuerySession(plain, plan).execute()
        QuerySession(pooled, plan).execute()
        assert (
            pooled.disk.counters.pages_read < plain.disk.counters.pages_read
        )

    def test_suspend_resume_correct_with_pool(self):
        """The pool changes costs, never results."""
        plan = tiny_nlj_plan()
        ref = QuerySession(self.make_db(16), plan).execute().rows
        db = self.make_db(16)
        session = QuerySession(db, plan)
        first = session.execute(max_rows=40)
        sq = session.suspend(SuspendSpec(strategy="lp"))
        resumed = QuerySession.resume(db, sq)
        assert first.rows + resumed.execute().rows == ref
