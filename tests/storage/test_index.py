"""Unit tests for the ordered index."""

import pytest

from repro.relational.schema import Schema
from repro.storage.disk import SimulatedDisk
from repro.storage.heapfile import HeapFile
from repro.storage.index import OrderedIndex

SCHEMA = Schema.of(["k", "v"])


def make_index(n=100, dup_every=0):
    disk = SimulatedDisk()
    hf = HeapFile("t", SCHEMA, disk, tuples_per_page=10)
    rows = []
    for i in range(n):
        key = i // 2 if dup_every else i
        rows.append((key, i))
    # store in a scrambled physical order to exercise tuple_index mapping
    rows = rows[::2] + rows[1::2]
    hf.bulk_load(rows)
    idx = OrderedIndex("idx", hf, 0, disk, entries_per_page=16, fanout=4)
    return idx, disk


class TestOrderedIndex:
    def test_num_entries(self):
        idx, _ = make_index(100)
        assert idx.num_entries == 100

    def test_height_grows_with_size(self):
        small, _ = make_index(10)
        large, _ = make_index(100)
        assert large.height >= small.height >= 1

    def test_probe_finds_unique_key(self):
        idx, _ = make_index(100)
        rows = idx.lookup_rows(42)
        assert [r[0] for r in rows] == [42]

    def test_probe_finds_duplicates(self):
        idx, _ = make_index(100, dup_every=2)
        rows = idx.lookup_rows(10)
        assert sorted(r[1] for r in rows) == [20, 21]

    def test_probe_missing_key(self):
        idx, _ = make_index(50)
        assert idx.lookup_rows(1234) == []

    def test_probe_charges_traversal(self):
        idx, disk = make_index(100)
        before = disk.counters.pages_read
        idx.probe_range(5)
        assert disk.counters.pages_read - before == idx.height

    def test_fetch_charges_base_page(self):
        idx, disk = make_index(100)
        lo, hi = idx.probe_range(7)
        before = disk.counters.pages_read
        entries = list(idx.entries_between(lo, hi))
        row = idx.fetch(entries[0])
        assert row[0] == 7
        assert disk.counters.pages_read > before

    def test_first_ge(self):
        idx, _ = make_index(20)
        assert idx.first_ge(0) == 0
        assert idx.first_ge(19) == 19
        assert idx.first_ge(20) is None

    def test_entry_at_uncharged(self):
        idx, disk = make_index(20)
        before = disk.now
        entry = idx.entry_at(3)
        assert entry.key == 3
        assert disk.now == before

    def test_rejects_bad_parameters(self):
        disk = SimulatedDisk()
        hf = HeapFile("t", SCHEMA, disk)
        with pytest.raises(ValueError):
            OrderedIndex("i", hf, 0, disk, entries_per_page=0)
        with pytest.raises(ValueError):
            OrderedIndex("i", hf, 0, disk, fanout=1)
