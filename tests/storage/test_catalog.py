"""Unit tests for the catalog and table statistics."""

import pytest

from repro.common.errors import StorageError
from repro.relational.schema import Schema
from repro.storage.catalog import Catalog, TableStats
from repro.storage.disk import SimulatedDisk
from repro.storage.heapfile import HeapFile
from repro.storage.index import OrderedIndex

SCHEMA = Schema.of(["k", "v"])


def make_table(name="t", n=30):
    disk = SimulatedDisk()
    hf = HeapFile(name, SCHEMA, disk, tuples_per_page=10)
    hf.bulk_load((i, i) for i in range(n))
    return hf, disk


class TestCatalog:
    def test_register_and_lookup(self):
        cat = Catalog()
        hf, _ = make_table()
        cat.register_table(hf)
        assert cat.table("t") is hf
        assert cat.has_table("t")
        assert cat.table_names() == ["t"]

    def test_duplicate_registration_rejected(self):
        cat = Catalog()
        hf, _ = make_table()
        cat.register_table(hf)
        with pytest.raises(StorageError):
            cat.register_table(hf)

    def test_unknown_table(self):
        with pytest.raises(StorageError):
            Catalog().table("missing")

    def test_stats_initialized_from_table(self):
        cat = Catalog()
        hf, _ = make_table(n=30)
        cat.register_table(hf)
        stats = cat.stats("t")
        assert stats.num_tuples == 30
        assert stats.num_pages == 3

    def test_predicate_selectivity_roundtrip(self):
        cat = Catalog()
        hf, _ = make_table()
        cat.register_table(hf)
        cat.set_predicate_selectivity("t", "uniform", 0.25)
        assert cat.stats("t").selectivity_of("uniform") == 0.25
        assert cat.stats("t").selectivity_of("missing", default=1.0) == 1.0

    def test_selectivity_bounds_checked(self):
        cat = Catalog()
        hf, _ = make_table()
        cat.register_table(hf)
        with pytest.raises(ValueError):
            cat.set_predicate_selectivity("t", "x", 1.5)

    def test_index_registration(self):
        cat = Catalog()
        hf, disk = make_table()
        cat.register_table(hf)
        idx = OrderedIndex("idx", hf, 0, disk)
        cat.register_index(idx)
        assert cat.index("idx") is idx
        assert cat.index_names() == ["idx"]
        with pytest.raises(StorageError):
            cat.register_index(idx)
        with pytest.raises(StorageError):
            cat.index("nope")

    def test_refresh_stats(self):
        cat = Catalog()
        hf, _ = make_table(n=10)
        cat.register_table(hf)
        hf.bulk_load([(100, 100)])
        cat.refresh_stats("t")
        assert cat.stats("t").num_tuples == 11
