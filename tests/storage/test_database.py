"""Unit tests for the Database container and replication."""

import pytest

from repro.relational.datagen import BASE_SCHEMA, generate_uniform_table
from repro.storage.database import Database
from repro.storage.disk import IOCostModel


class TestDatabase:
    def test_create_table_registers_and_loads(self):
        db = Database()
        rows = generate_uniform_table(50, seed=3)
        db.create_table("R", BASE_SCHEMA, rows)
        assert db.catalog.table("R").num_tuples == 50

    def test_default_tuples_per_page_from_schema(self):
        db = Database()
        db.create_table("R", BASE_SCHEMA, generate_uniform_table(10))
        # 20,000-byte pages / 200-byte tuples = 100 tuples per page.
        assert db.catalog.table("R").tuples_per_page == 100

    def test_create_index(self):
        db = Database()
        db.create_table("R", BASE_SCHEMA, generate_uniform_table(50))
        idx = db.create_index("idx_r", "R", 0)
        assert idx.num_entries == 50
        assert db.catalog.index("idx_r") is idx

    def test_clock_exposed(self):
        db = Database()
        assert db.now == 0.0
        db.disk.read_pages(2)
        assert db.now == pytest.approx(2.0)

    def test_custom_cost_model(self):
        db = Database(cost_model=IOCostModel(page_read_cost=2.0))
        db.disk.read_pages(1)
        assert db.now == pytest.approx(2.0)


class TestReplicate:
    def test_replica_has_same_tables(self):
        db = Database()
        db.create_table("R", BASE_SCHEMA, generate_uniform_table(40, seed=5))
        db.catalog.set_predicate_selectivity("R", "uniform", 0.3)
        db.create_index("idx", "R", 0)
        replica = db.replicate()
        assert list(replica.catalog.table("R").all_rows()) == list(
            db.catalog.table("R").all_rows()
        )
        assert replica.catalog.stats("R").selectivity_of("uniform") == 0.3
        assert replica.catalog.index("idx").num_entries == 40

    def test_replica_clock_is_fresh(self):
        db = Database()
        db.disk.read_pages(10)
        replica = db.replicate()
        assert replica.now == 0.0

    def test_replica_state_store_is_independent(self):
        db = Database()
        handle = db.state_store.dump("k", [1], pages=1)
        replica = db.replicate()
        assert not replica.state_store.exists("k")
        assert db.state_store.peek(handle) == [1]
