"""Unit tests for the virtual clock and simulated disk."""

import pytest

from repro.storage.disk import IOCostModel, IOCounters, SimulatedDisk, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(2.5)
        clock.advance(1.0)
        assert clock.now == pytest.approx(3.5)

    def test_advance_returns_amount(self):
        assert VirtualClock().advance(4.0) == 4.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_custom_start(self):
        assert VirtualClock(start=10.0).now == 10.0


class TestIOCostModel:
    def test_default_write_read_ratio_matches_paper_crossover(self):
        """w/r = 2.5 places the GoBack/DumpState crossover at ~0.286,
        matching the paper's observed ~0.28 (Figure 8)."""
        m = IOCostModel()
        crossover = m.page_read_cost / (m.page_read_cost + m.page_write_cost)
        assert crossover == pytest.approx(1 / 3.5)

    def test_pages_for_bytes_rounds_up(self):
        m = IOCostModel(page_bytes=1000)
        assert m.pages_for_bytes(1) == 1
        assert m.pages_for_bytes(1000) == 1
        assert m.pages_for_bytes(1001) == 2

    def test_pages_for_zero_bytes(self):
        assert IOCostModel().pages_for_bytes(0) == 0


class TestSimulatedDisk:
    def test_read_pages_charges_clock(self):
        disk = SimulatedDisk()
        cost = disk.read_pages(4)
        assert cost == pytest.approx(4.0)
        assert disk.now == pytest.approx(4.0)
        assert disk.counters.pages_read == 4

    def test_write_pages_costs_more_than_reads(self):
        disk = SimulatedDisk()
        read = disk.read_pages(10)
        write = disk.write_pages(10)
        assert write > read
        assert disk.counters.pages_written == 10

    def test_control_bytes_charged_as_pages(self):
        disk = SimulatedDisk()
        disk.write_control_bytes(100)
        assert disk.counters.control_bytes_written == 100
        assert disk.counters.pages_written == 1

    def test_cpu_tuple_charge_small_relative_to_io(self):
        disk = SimulatedDisk()
        cpu = disk.charge_cpu_tuples(1)
        assert cpu < disk.cost_model.page_read_cost / 100

    def test_cost_estimation_does_not_charge(self):
        disk = SimulatedDisk()
        assert disk.cost_of_page_reads(5) == pytest.approx(5.0)
        assert disk.cost_of_page_writes(2) == pytest.approx(5.0)
        assert disk.now == 0.0

    def test_negative_counts_rejected(self):
        disk = SimulatedDisk()
        with pytest.raises(ValueError):
            disk.read_pages(-1)
        with pytest.raises(ValueError):
            disk.write_pages(-1)
        with pytest.raises(ValueError):
            disk.charge_cpu_tuples(-2)


class TestIOCounters:
    def test_snapshot_is_independent(self):
        disk = SimulatedDisk()
        disk.read_pages(3)
        snap = disk.counters.snapshot()
        disk.read_pages(2)
        assert snap.pages_read == 3
        assert disk.counters.pages_read == 5

    def test_minus_gives_delta(self):
        disk = SimulatedDisk()
        disk.read_pages(3)
        before = disk.counters.snapshot()
        disk.read_pages(4)
        disk.write_pages(1)
        delta = disk.counters.minus(before)
        assert delta.pages_read == 4
        assert delta.pages_written == 1
