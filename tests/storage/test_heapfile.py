"""Unit tests for heap files and scan cursors."""

import pytest

from repro.common.errors import StorageError
from repro.relational.schema import Schema
from repro.storage.disk import SimulatedDisk
from repro.storage.heapfile import HeapFile, TuplePosition

SCHEMA = Schema.of(["a", "b"])


def make_file(n=25, tpp=10):
    disk = SimulatedDisk()
    hf = HeapFile("t", SCHEMA, disk, tuples_per_page=tpp)
    hf.bulk_load((i, i * 2) for i in range(n))
    return hf, disk


class TestHeapFile:
    def test_bulk_load_counts(self):
        hf, _ = make_file(25, 10)
        assert hf.num_tuples == 25
        assert hf.num_pages == 3  # 10 + 10 + 5

    def test_bulk_load_is_not_charged(self):
        hf, disk = make_file()
        assert disk.now == 0.0

    def test_read_page_charges_one_read(self):
        hf, disk = make_file()
        rows = hf.read_page(0)
        assert len(rows) == 10
        assert disk.counters.pages_read == 1

    def test_read_page_out_of_range(self):
        hf, _ = make_file()
        with pytest.raises(StorageError):
            hf.read_page(3)

    def test_position_of_maps_page_and_slot(self):
        hf, _ = make_file(25, 10)
        assert hf.position_of(0) == TuplePosition(0, 0)
        assert hf.position_of(9) == TuplePosition(0, 9)
        assert hf.position_of(10) == TuplePosition(1, 0)
        assert hf.position_of(24) == TuplePosition(2, 4)

    def test_position_of_out_of_range(self):
        hf, _ = make_file()
        with pytest.raises(StorageError):
            hf.position_of(25)

    def test_all_rows_uncharged(self):
        hf, disk = make_file()
        assert len(list(hf.all_rows())) == 25
        assert disk.now == 0.0


class TestScanCursor:
    def test_sequential_read_returns_all_rows(self):
        hf, _ = make_file(25, 10)
        cur = hf.cursor()
        rows = []
        while (row := cur.next()) is not None:
            rows.append(row)
        assert rows == [(i, i * 2) for i in range(25)]

    def test_charges_one_read_per_page(self):
        hf, disk = make_file(25, 10)
        cur = hf.cursor()
        while cur.next() is not None:
            pass
        assert disk.counters.pages_read == 3
        assert cur.pages_fetched == 3

    def test_position_tracks_next_tuple(self):
        hf, _ = make_file(25, 10)
        cur = hf.cursor()
        assert cur.position() == TuplePosition(0, 0)
        for _ in range(12):
            cur.next()
        assert cur.position() == TuplePosition(1, 2)
        assert cur.tuples_consumed() == 12

    def test_seek_and_reread_charges_again(self):
        hf, disk = make_file(25, 10)
        cur = hf.cursor()
        for _ in range(15):
            cur.next()
        charged = disk.counters.pages_read
        cur.seek(TuplePosition(0, 5))
        assert cur.next() == (5, 10)
        assert disk.counters.pages_read == charged + 1

    def test_rewind(self):
        hf, _ = make_file()
        cur = hf.cursor()
        for _ in range(7):
            cur.next()
        cur.rewind()
        assert cur.next() == (0, 0)

    def test_exhausted_cursor_keeps_returning_none(self):
        hf, _ = make_file(5, 10)
        cur = hf.cursor()
        for _ in range(5):
            cur.next()
        assert cur.next() is None
        assert cur.next() is None

    def test_empty_file(self):
        disk = SimulatedDisk()
        hf = HeapFile("empty", SCHEMA, disk)
        assert hf.cursor().next() is None

    def test_short_final_page_boundary(self):
        hf, _ = make_file(21, 10)
        cur = hf.cursor()
        count = sum(1 for _ in iter(cur.next, None))
        assert count == 21
