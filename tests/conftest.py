"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import Database, QuerySession, SuspendSpec
from repro.engine.plan import (
    FilterSpec,
    MergeJoinSpec,
    NLJSpec,
    ScanSpec,
    SortSpec,
)
from repro.relational.datagen import BASE_SCHEMA, generate_uniform_table
from repro.relational.expressions import EquiJoinCondition, UniformSelect


def make_small_db(r_tuples: int = 300, s_tuples: int = 200) -> Database:
    """A database with two small deterministic tables R and S."""
    db = Database()
    db.create_table("R", BASE_SCHEMA, generate_uniform_table(r_tuples, seed=1))
    db.create_table("S", BASE_SCHEMA, generate_uniform_table(s_tuples, seed=2))
    return db


def tiny_nlj_plan(
    selectivity: float = 0.5, buffer_tuples: int = 40, modulus: int = 40
) -> NLJSpec:
    """NLJ(filter(scan R), scan S) used across the engine tests."""
    return NLJSpec(
        outer=FilterSpec(
            ScanSpec("R", label="scan_R"),
            UniformSelect(1, selectivity),
            label="filter",
        ),
        inner=ScanSpec("S", label="scan_S"),
        condition=EquiJoinCondition(0, 0, modulus=modulus),
        buffer_tuples=buffer_tuples,
        label="nlj",
    )


def tiny_smj_plan(selectivity: float = 0.6) -> MergeJoinSpec:
    """MJ(sort(filter(scan R)), sort(scan S)) on exact key equality."""
    return MergeJoinSpec(
        left=SortSpec(
            FilterSpec(
                ScanSpec("R", label="scan_R"),
                UniformSelect(1, selectivity),
                label="filter",
            ),
            key_columns=(0,),
            buffer_tuples=50,
            label="sort_R",
        ),
        right=SortSpec(
            ScanSpec("S", label="scan_S"),
            key_columns=(0,),
            buffer_tuples=60,
            label="sort_S",
        ),
        condition=EquiJoinCondition(0, 0),
        label="mj",
    )


def reference_rows(db_factory, plan) -> list:
    """Output of an uninterrupted run."""
    db = db_factory()
    return QuerySession(db, plan).execute().rows


def suspend_resume_rows(
    db_factory, plan, point: int, strategy: str, **suspend_kwargs
) -> list:
    """Output of run-to-point, suspend, resume, run-to-completion.

    Returns None when the query completed before the suspend point.
    """
    db = db_factory()
    session = QuerySession(db, plan)
    first = session.execute(max_rows=point)
    if session.status.value == "completed":
        return None
    sq = session.suspend(SuspendSpec(strategy=strategy, **suspend_kwargs))
    resumed = QuerySession.resume(db, sq)
    rest = resumed.execute()
    return first.rows + rest.rows


@pytest.fixture
def small_db() -> Database:
    return make_small_db()
