"""Scheduler durable spill: evicted queries persist their suspend image.

With ``SchedulerConfig(image_store=...)`` every memory-pressure eviction
also commits the victim's SuspendedQuery to disk, so a crashed scheduler
process could re-admit the victim from the image. The spill must not
change scheduling outcomes, and completed queries must garbage-collect
their images.
"""

import pytest

from repro.durability import ImageStore
from repro.service import QueryScheduler, SchedulerConfig
from repro.workloads.plans import mixed_priority_trace

SCALE = 4
SEED = 1


@pytest.fixture(scope="module")
def workload():
    return mixed_priority_trace(scale=SCALE, seed=SEED)


def run_trace(workload, image_store=None):
    config = SchedulerConfig(
        policy="suspend-resume",
        memory_budget=workload.memory_budget,
        suspend_budget=workload.suspend_budget,
        image_store=image_store,
    )
    scheduler = QueryScheduler(workload.db_factory(), config)
    scheduler.submit_trace(workload.trace)
    return scheduler, scheduler.run()


class TestDurableSpill:
    def test_evictions_spill_images(self, workload, tmp_path):
        scheduler, stats = run_trace(workload, image_store=str(tmp_path))
        assert stats.suspends >= 1
        assert stats.durable_spills == stats.suspends
        per_query = sum(
            q.durable_spills for q in stats.per_query.values()
        )
        assert per_query == stats.durable_spills
        assert any(e.event == "spill" for e in stats.timeline)

    def test_spill_does_not_change_outcomes(self, workload, tmp_path):
        _, plain = run_trace(workload)
        _, spilled = run_trace(workload, image_store=str(tmp_path))
        assert plain.durable_spills == 0
        assert spilled.queries_completed == plain.queries_completed
        assert {
            q.name: q.rows_emitted for q in spilled.per_query.values()
        } == {q.name: q.rows_emitted for q in plain.per_query.values()}
        assert spilled.total_turnaround() == pytest.approx(
            plain.total_turnaround()
        )

    def test_completed_queries_gc_their_images(self, workload, tmp_path):
        run_trace(workload, image_store=str(tmp_path))
        assert ImageStore(str(tmp_path)).list_images() == []

    def test_spilled_image_is_valid_while_query_is_suspended(
        self, workload, tmp_path
    ):
        store = ImageStore(str(tmp_path))
        config = SchedulerConfig(
            policy="suspend-resume",
            memory_budget=workload.memory_budget,
            suspend_budget=workload.suspend_budget,
            image_store=store,
        )
        scheduler = QueryScheduler(workload.db_factory(), config)
        assert scheduler.image_store is store
        scheduler.submit_trace(workload.trace)
        stats = scheduler.run()

        spills = [e for e in stats.timeline if e.event == "spill"]
        assert spills, "trace must trigger at least one eviction"
        # The image named by the first spill was superseded or GC'd by
        # the end of the run, but its id follows the documented scheme.
        victim = spills[0].query
        record = next(r for r in scheduler.records if r.name == victim)
        assert record.stats.durable_spills >= 1
