"""Scheduler durable spill: evicted queries persist their suspend image.

With ``SchedulerConfig(suspend=SuspendSpec(persist_to=...))`` every
memory-pressure eviction
also commits the victim's SuspendedQuery to disk, so a crashed scheduler
process could re-admit the victim from the image. The spill must not
change scheduling outcomes, and completed queries must garbage-collect
their images.
"""

import json

import pytest

from repro.core.lifecycle import SuspendSpec
from repro.durability import CODEC_V1, CODEC_V2, ImageStore
from repro.obs import Tracer
from repro.service import QueryScheduler, SchedulerConfig
from repro.workloads.plans import mixed_priority_trace, repeat_suspend_trace

SCALE = 4
SEED = 1


@pytest.fixture(scope="module")
def workload():
    return mixed_priority_trace(scale=SCALE, seed=SEED)


@pytest.fixture(scope="module")
def repeat():
    # Suspends the long-running q_nlj_sort twice while its sort sublists
    # sit unchanged on disk: the repeat-suspend (delta image) workload.
    return repeat_suspend_trace(scale=1, seed=1)


def run_trace(
    workload,
    image_store=None,
    tracer=None,
    image_codec=None,
    delta_spill=True,
    commit_workers=0,
):
    config = SchedulerConfig(
        policy="suspend-resume",
        memory_budget=workload.memory_budget,
        suspend=SuspendSpec(
            budget=workload.suspend_budget,
            persist_to=image_store,
            codec=image_codec,
            delta=delta_spill,
            commit_workers=commit_workers,
        ),
        tracer=tracer,
    )
    scheduler = QueryScheduler(workload.db_factory(), config)
    scheduler.submit_trace(workload.trace)
    return scheduler, scheduler.run()


def commit_records(tracer):
    return [r for r in tracer.records if r["type"] == "image.commit"]


class TestDurableSpill:
    def test_evictions_spill_images(self, workload, tmp_path):
        scheduler, stats = run_trace(workload, image_store=str(tmp_path))
        assert stats.suspends >= 1
        assert stats.durable_spills == stats.suspends
        per_query = sum(
            q.durable_spills for q in stats.per_query.values()
        )
        assert per_query == stats.durable_spills
        assert any(e.event == "spill" for e in stats.timeline)

    def test_spill_does_not_change_outcomes(self, workload, tmp_path):
        _, plain = run_trace(workload)
        _, spilled = run_trace(workload, image_store=str(tmp_path))
        assert plain.durable_spills == 0
        assert spilled.queries_completed == plain.queries_completed
        assert {
            q.name: q.rows_emitted for q in spilled.per_query.values()
        } == {q.name: q.rows_emitted for q in plain.per_query.values()}
        assert spilled.total_turnaround() == pytest.approx(
            plain.total_turnaround()
        )

    def test_completed_queries_gc_their_images(self, workload, tmp_path):
        run_trace(workload, image_store=str(tmp_path))
        assert ImageStore(str(tmp_path)).list_images() == []

    def test_spilled_image_is_valid_while_query_is_suspended(
        self, workload, tmp_path
    ):
        store = ImageStore(str(tmp_path))
        config = SchedulerConfig(
            policy="suspend-resume",
            memory_budget=workload.memory_budget,
            suspend=SuspendSpec(
                budget=workload.suspend_budget, persist_to=store
            ),
        )
        scheduler = QueryScheduler(workload.db_factory(), config)
        assert scheduler.image_store is store
        scheduler.submit_trace(workload.trace)
        stats = scheduler.run()

        spills = [e for e in stats.timeline if e.event == "spill"]
        assert spills, "trace must trigger at least one eviction"
        # The image named by the first spill was superseded or GC'd by
        # the end of the run, but its id follows the documented scheme.
        victim = spills[0].query
        record = next(r for r in scheduler.records if r.name == victim)
        assert record.stats.durable_spills >= 1


class TestFastPathSpill:
    """Codec v2, delta images, and parallel commit on the spill path."""

    def _outcome(self, stats):
        return (
            stats.queries_completed,
            {q.name: q.rows_emitted for q in stats.per_query.values()},
            stats.total_turnaround(),
        )

    def test_delta_spill_reuses_blobs_and_shrinks_bytes(
        self, repeat, tmp_path
    ):
        tracer = Tracer()
        _, stats = run_trace(
            repeat, image_store=str(tmp_path / "delta"), tracer=tracer
        )
        assert stats.suspends > 1, "trace must suspend repeatedly"
        commits = commit_records(tracer)
        assert commits and all(c["codec_version"] == CODEC_V2 for c in commits)
        deltas = [c for c in commits if c["base_image_id"]]
        assert deltas, "repeat suspends must commit delta images"
        assert any(c["reused_blobs"] > 0 for c in deltas)
        # The unchanged sort sublists dominate the image: the delta must
        # be a small fraction of a full re-commit.
        assert min(c["delta_ratio"] for c in deltas) < 0.25

        plain = Tracer()
        _, full_stats = run_trace(
            repeat,
            image_store=str(tmp_path / "full"),
            tracer=plain,
            delta_spill=False,
        )
        full = commit_records(plain)
        assert all(c["base_image_id"] is None for c in full)
        assert sum(c["bytes_written"] for c in commits) < sum(
            c["bytes_written"] for c in full
        )
        # Durability never perturbs the simulation itself.
        assert self._outcome(stats) == self._outcome(full_stats)

    @pytest.mark.parametrize("codec", (CODEC_V1, CODEC_V2))
    def test_codec_choice_does_not_change_outcomes(
        self, workload, tmp_path, codec
    ):
        _, plain = run_trace(workload)
        _, spilled = run_trace(
            workload, image_store=str(tmp_path), image_codec=codec
        )
        assert self._outcome(spilled) == self._outcome(plain)

    def test_parallel_commit_matches_serial_byte_for_byte(
        self, repeat, tmp_path
    ):
        traces = {}
        for label, workers in (("serial", 0), ("parallel", 4)):
            tracer = Tracer()
            _, stats = run_trace(
                repeat,
                image_store=str(tmp_path / label),
                tracer=tracer,
                commit_workers=workers,
            )
            traces[label] = (
                [json.dumps(r, sort_keys=True) for r in tracer.records],
                tracer.metrics.render_text(),
                self._outcome(stats),
            )
        assert traces["serial"] == traces["parallel"]

    def test_parallel_commit_images_validate(self, workload, tmp_path):
        store = ImageStore(str(tmp_path), commit_workers=4)
        scheduler, stats = run_trace(workload, image_store=store)
        assert stats.durable_spills == stats.suspends
        # Completed queries GC their chains; nothing may linger.
        assert store.list_images() == []
