"""Stats-on-metrics parity: the public stats are views over a registry.

``SchedulerStats``/``QueryStats`` keep their public fields, but every
counter now lives in one :class:`~repro.obs.MetricsRegistry` and the
scheduler-wide aggregates are *derived* by summing the per-query series.
That makes the historical ``durable_spills`` double-count (the scheduler
used to bump both a per-query and an aggregate counter by hand) is
structurally impossible: there is only one counter per quantity.
"""

import os

import pytest

from repro.obs import MetricsRegistry, Tracer
from repro.service import QueryScheduler, SchedulerConfig
from repro.service.stats import QueryStats, SchedulerStats
from repro.service.trace import ArrivalTrace
from repro.core.lifecycle import SuspendSpec
from repro.workloads.plans import (
    mixed_priority_trace,
    mixed_q_hi_plan,
    mixed_q_lo_plan,
)

AGGREGATES = (
    "suspends",
    "resumes",
    "kills",
    "discarded_resumes",
    "durable_spills",
)


def run_mixed(policy, image_store=None, tracer=None):
    workload = mixed_priority_trace(scale=4, seed=1)
    config = SchedulerConfig(
        policy=policy,
        memory_budget=workload.memory_budget,
        suspend=SuspendSpec(
            budget=workload.suspend_budget,
            persist_to=image_store,
        ),
        tracer=tracer,
    )
    scheduler = QueryScheduler(workload.db_factory(), config)
    scheduler.submit_trace(workload.trace)
    return scheduler.run()


class TestUnitViews:
    def test_query_counters_live_in_the_registry(self):
        registry = MetricsRegistry()
        stats = QueryStats("q", 1, 0.0, registry=registry)
        stats.suspends += 1
        stats.rows_emitted += 10
        assert registry.counter("query_suspends_total", query="q").value == 1
        assert (
            registry.counter("query_rows_emitted_total", query="q").value
            == 10
        )
        stats.rows_emitted = 0  # kill-restart resets the emitted count
        assert stats.rows_emitted == 0

    def test_scheduler_aggregates_are_derived_sums(self):
        stats = SchedulerStats(policy="x")
        a = stats.track("a", 0, 0.0)
        b = stats.track("b", 1, 0.0)
        a.suspends += 2
        b.suspends += 1
        b.durable_spills += 1
        assert stats.suspends == 3
        assert stats.durable_spills == 1

    def test_aggregates_are_read_only(self):
        stats = SchedulerStats(policy="x")
        for field in AGGREGATES:
            with pytest.raises(AttributeError):
                setattr(stats, field, 99)


@pytest.mark.parametrize("policy", ("suspend-resume", "kill-restart", "wait"))
class TestParityAcrossPolicies:
    def test_aggregates_equal_per_query_sums(self, policy, tmp_path):
        stats = run_mixed(policy, image_store=str(tmp_path))
        for field in AGGREGATES:
            per_query = sum(
                getattr(q, field) for q in stats.per_query.values()
            )
            assert getattr(stats, field) == per_query, field

    def test_tracer_metrics_and_stats_are_one_set_of_numbers(
        self, policy, tmp_path
    ):
        tracer = Tracer()
        stats = run_mixed(policy, image_store=str(tmp_path), tracer=tracer)
        for field in AGGREGATES:
            assert getattr(stats, field) == tracer.metrics.total(
                f"query_{field}_total"
            ), field
        assert stats.queries_completed == tracer.metrics.total(
            "scheduler_queries_completed_total"
        )


class TestSpillCountedExactlyOnce:
    """A query spilled twice supersedes its first image; each spill must
    count exactly once, and completion garbage-collects the image."""

    @pytest.fixture()
    def double_suspend_run(self, tmp_path):
        workload = mixed_priority_trace(scale=4, seed=1)
        hi_at = [
            a.arrival_time
            for a in workload.trace.arrivals
            if a.name == "q_hi"
        ][0]
        solo = hi_at / 0.45
        trace = ArrivalTrace(name="double")
        trace.add("q_lo", mixed_q_lo_plan(4), arrival_time=0.0, priority=0)
        trace.add(
            "q_hi1", mixed_q_hi_plan(4), arrival_time=0.3 * solo, priority=10
        )
        trace.add(
            "q_hi2", mixed_q_hi_plan(4), arrival_time=0.7 * solo, priority=10
        )
        config = SchedulerConfig(
            policy="suspend-resume",
            memory_budget=workload.memory_budget,
            suspend=SuspendSpec(
                budget=workload.suspend_budget,
                persist_to=str(tmp_path),
            ),
        )
        scheduler = QueryScheduler(workload.db_factory(), config)
        scheduler.submit_trace(trace)
        return scheduler.run(), tmp_path

    def test_supersede_counts_each_spill_once(self, double_suspend_run):
        stats, _ = double_suspend_run
        victim = stats.per_query["q_lo"]
        assert victim.suspends == 2
        assert victim.durable_spills == 2
        assert stats.durable_spills == 2
        assert stats.durable_spills == sum(
            q.durable_spills for q in stats.per_query.values()
        )
        assert (
            sum(1 for e in stats.timeline if e.event == "spill")
            == stats.durable_spills
        )

    def test_completion_gc_leaves_no_images(self, double_suspend_run):
        stats, image_root = double_suspend_run
        assert stats.queries_completed == 3
        leftover = [
            name
            for name in os.listdir(image_root)
            if not name.startswith(".")
        ]
        assert leftover == []
