"""The multi-query scheduler: policies, pressure, and edge cases."""

import pytest

from repro.common.errors import ReproError
from repro.harness.scheduling import compare_policies
from repro.service import (
    QueryScheduler,
    QueryState,
    SchedulerConfig,
)
from repro.service.policies import select_victims
from repro.core.lifecycle import SuspendSpec
from repro.workloads.plans import (
    mixed_priority_trace,
    mixed_q_hi_plan,
)

SCALE = 4
SEED = 1


@pytest.fixture(scope="module")
def workload():
    return mixed_priority_trace(scale=SCALE, seed=SEED)


@pytest.fixture(scope="module")
def policy_results(workload):
    return compare_policies(workload)


class TestSectionOneComparison:
    """The paper's motivating claim, as an executable assertion."""

    def test_suspend_resume_beats_both_other_policies(self, policy_results):
        combined = {
            policy: stats.total_turnaround()
            for policy, stats in policy_results.items()
        }
        assert combined["suspend-resume"] < combined["kill-restart"]
        assert combined["suspend-resume"] < combined["wait"]

    def test_every_policy_completes_every_query(self, policy_results):
        for stats in policy_results.values():
            assert stats.queries_admitted == 2
            assert stats.queries_completed == 2

    def test_output_rows_identical_across_policies(self, policy_results):
        per_policy = [
            {q.name: q.rows_emitted for q in stats.per_query.values()}
            for stats in policy_results.values()
        ]
        assert per_policy[0] == per_policy[1] == per_policy[2]

    def test_policies_act_as_advertised(self, policy_results):
        sr = policy_results["suspend-resume"]
        assert sr.suspends >= 1 and sr.resumes == sr.suspends
        assert sr.kills == 0
        kr = policy_results["kill-restart"]
        assert kr.kills >= 1 and kr.suspends == 0
        w = policy_results["wait"]
        assert w.suspends == 0 and w.kills == 0


class TestMidResumeDiscard:
    """Paper Section 2: a suspend request during resume discards the
    half-resumed state and keeps the old SuspendedQuery."""

    def test_arrival_inside_resume_window_discards(self, workload):
        # Calibrate: replay the plain two-query trace and locate q_lo's
        # resume window (from q_hi's completion to the resume mark).
        config = SchedulerConfig(
            policy="suspend-resume",
            memory_budget=workload.memory_budget,
            suspend=SuspendSpec(budget=workload.suspend_budget),
        )
        baseline = QueryScheduler(workload.db_factory(), config)
        baseline.submit_trace(workload.trace)
        ref = baseline.run()
        resume_end = next(
            e.time
            for e in ref.timeline
            if e.event == "resume" and e.query == "q_lo"
        )
        resume_start = max(
            e.time for e in ref.timeline if e.time < resume_end
        )
        assert resume_start < resume_end

        # Replay with a third, higher-priority query arriving strictly
        # inside that window. Scheduling before the window is unchanged,
        # so the resume really is in flight when q_hi2 arrives.
        config2 = SchedulerConfig(
            policy="suspend-resume",
            memory_budget=workload.memory_budget,
            suspend=SuspendSpec(budget=workload.suspend_budget),
        )
        scheduler = QueryScheduler(workload.db_factory(), config2)
        scheduler.submit_trace(workload.trace)
        scheduler.submit(
            "q_hi2",
            mixed_q_hi_plan(SCALE),
            arrival_time=(resume_start + resume_end) / 2,
            priority=10,
        )
        stats = scheduler.run()

        assert stats.discarded_resumes == 1
        assert stats.per_query["q_lo"].discarded_resumes == 1
        # Only the wasted resume I/O is paid: no extra suspend phase.
        assert stats.suspends == ref.suspends
        assert stats.queries_completed == 3
        # q_lo loses no work: same output as the undisturbed run.
        assert (
            stats.per_query["q_lo"].rows_emitted
            == ref.per_query["q_lo"].rows_emitted
        )

    def test_discard_keeps_old_suspended_query(self, workload):
        # The timeline shows discard-resume strictly between the suspend
        # and the (single) successful resume.
        config = SchedulerConfig(
            policy="suspend-resume",
            memory_budget=workload.memory_budget,
            suspend=SuspendSpec(budget=workload.suspend_budget),
        )
        baseline = QueryScheduler(workload.db_factory(), config)
        baseline.submit_trace(workload.trace)
        ref = baseline.run()
        resume_end = next(
            e.time
            for e in ref.timeline
            if e.event == "resume" and e.query == "q_lo"
        )
        resume_start = max(
            e.time for e in ref.timeline if e.time < resume_end
        )

        scheduler = QueryScheduler(workload.db_factory(), config)
        # Reusing the config is fine: it is read-only to the scheduler.
        scheduler.submit_trace(workload.trace)
        scheduler.submit(
            "q_hi2",
            mixed_q_hi_plan(SCALE),
            arrival_time=(resume_start + resume_end) / 2,
            priority=10,
        )
        stats = scheduler.run()
        events = [
            e.event for e in stats.timeline if e.query == "q_lo"
        ]
        i_suspend = events.index("suspend")
        i_discard = events.index("discard-resume")
        i_resume = events.index("resume")
        assert i_suspend < i_discard < i_resume
        assert events[-1] == "complete"


class TestZeroMemoryBudget:
    """budget=0 degenerates to one resident query, never a livelock."""

    def test_all_queries_complete_with_suspends(self, workload):
        config = SchedulerConfig(
            policy="suspend-resume",
            memory_budget=0,
            suspend=SuspendSpec(budget=workload.suspend_budget),
        )
        stats = QueryScheduler.run_workload(workload, config=config)
        assert stats.queries_completed == 2
        assert stats.suspends >= 1
        assert all(
            q.turnaround is not None for q in stats.per_query.values()
        )


class TestDeterminism:
    def test_two_runs_produce_identical_stats(self, workload):
        runs = [
            QueryScheduler.run_workload(workload, policy="suspend-resume")
            for _ in range(2)
        ]
        assert runs[0].as_dict() == runs[1].as_dict()
        assert runs[0].query_rows() == runs[1].query_rows()
        assert runs[0].timeline_rows() == runs[1].timeline_rows()


class TestSubmissionRules:
    def test_duplicate_names_rejected(self, workload):
        scheduler = QueryScheduler(workload.db_factory())
        scheduler.submit("q", mixed_q_hi_plan(SCALE))
        with pytest.raises(ReproError, match="duplicate"):
            scheduler.submit("q", mixed_q_hi_plan(SCALE))

    def test_scheduler_runs_only_once(self, workload):
        scheduler = QueryScheduler(workload.db_factory())
        scheduler.submit("q", mixed_q_hi_plan(SCALE))
        scheduler.run()
        with pytest.raises(ReproError):
            scheduler.run()
        with pytest.raises(ReproError):
            scheduler.submit("late", mixed_q_hi_plan(SCALE))

    def test_single_query_completes_without_pressure(self, workload):
        scheduler = QueryScheduler(workload.db_factory())
        record = scheduler.submit("q", mixed_q_hi_plan(SCALE))
        stats = scheduler.run()
        assert record.state is QueryState.DONE
        assert stats.suspends == stats.kills == 0
        assert stats.per_query["q"].rows_emitted == len(record.rows) > 0


class TestVictimSelection:
    class _Fake:
        def __init__(self, name, priority, memory):
            self.name = name
            self.priority = priority
            self._memory = memory

        def memory_in_use(self):
            return self._memory

    def test_lowest_priority_largest_memory_first(self):
        a = self._Fake("a", priority=0, memory=100)
        b = self._Fake("b", priority=0, memory=500)
        c = self._Fake("c", priority=5, memory=900)
        assert select_victims([a, b, c], excess=400) == [b]
        assert select_victims([a, b, c], excess=550) == [b, a]
        assert select_victims([a, b, c], excess=700) == [b, a, c]

    def test_insufficient_candidates_returns_all(self):
        a = self._Fake("a", priority=0, memory=10)
        assert select_victims([a], excess=10_000) == [a]
