"""Properties of the suspend-plan optimizer.

The MIP solution must always equal the exhaustive optimum, satisfy the
validity rules, and respect the budget — for random runtime states.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import QuerySession
from repro.common.errors import SuspendBudgetInfeasibleError
from repro.core.costs import build_cost_model
from repro.core.optimizer import (
    build_lp_plan,
    estimate_plan_cost,
    exhaustive_best_plan,
)
from repro.core.strategies import validate_suspend_plan

from tests.properties.test_property_suspend_resume import build_db, build_plan

FAST = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@FAST
@given(
    kind=st.sampled_from(["nlj", "smj", "nlj_over_sort"]),
    seed=st.integers(0, 10_000),
    selectivity=st.floats(0.1, 1.0),
    point=st.integers(1, 250),
    budget=st.one_of(st.just(math.inf), st.floats(0.1, 80.0)),
)
def test_lp_equals_exhaustive_optimum(kind, seed, selectivity, point, budget):
    plan = build_plan(kind, selectivity, 20, 15)
    db = build_db(110, 60, seed)
    session = QuerySession(db, plan)
    session.execute(max_rows=point)
    if session.status.value == "completed":
        return
    model = build_cost_model(session.runtime)
    try:
        lp = build_lp_plan(model, budget=budget)
        lp_cost = estimate_plan_cost(lp, model)
    except SuspendBudgetInfeasibleError:
        lp = lp_cost = None
    try:
        ex = exhaustive_best_plan(model, budget=budget)
        ex_cost = estimate_plan_cost(ex, model)
    except SuspendBudgetInfeasibleError:
        ex = ex_cost = None

    assert (lp is None) == (ex is None)
    if lp is None:
        return
    validate_suspend_plan(lp, model.topology())
    assert lp_cost.total <= ex_cost.total + 1e-6
    assert lp_cost.total >= ex_cost.total - 1e-6
    if budget != math.inf:
        assert lp_cost.suspend <= budget + 1e-6


@FAST
@given(
    seed=st.integers(0, 10_000),
    point=st.integers(1, 200),
)
def test_estimated_costs_are_nonnegative(seed, point):
    plan = build_plan("smj", 0.5, 25, 10)
    db = build_db(120, 70, seed)
    session = QuerySession(db, plan)
    session.execute(max_rows=point)
    if session.status.value == "completed":
        return
    model = build_cost_model(session.runtime)
    assert all(v >= 0 for v in model.d_s.values())
    assert all(v >= 0 for v in model.d_r.values())
    assert all(v >= 0 for v in model.g_s.values())
    assert all(v >= 0 for v in model.g_r.values())
