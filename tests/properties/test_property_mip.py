"""Property: the two MIP backends agree on random binary programs."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.core.mip import solve_binary_program

FAST = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@FAST
@given(
    n=st.integers(1, 6),
    m=st.integers(0, 4),
    seed=st.integers(0, 100_000),
)
def test_highs_and_fallback_agree(n, m, seed):
    rng = np.random.default_rng(seed)
    c = rng.normal(size=n)
    a = rng.normal(size=(m, n))
    b = rng.uniform(-0.5, n, size=m)
    highs = solve_binary_program(
        c, sparse.csr_matrix(a), b, use_highs_mip=True
    )
    bnb = solve_binary_program(c, a, b, use_highs_mip=False)
    assert highs.feasible == bnb.feasible
    if highs.feasible:
        assert highs.objective == pytest.approx(bnb.objective, abs=1e-6)
        # both solutions must actually satisfy the constraints
        for res in (highs, bnb):
            assert np.all(a @ res.x <= b + 1e-6)
            assert set(np.unique(res.x)).issubset({0.0, 1.0})


@FAST
@given(
    n=st.integers(1, 8),
    seed=st.integers(0, 100_000),
)
def test_unconstrained_optimum_is_sign_pattern(n, seed):
    rng = np.random.default_rng(seed)
    c = rng.normal(size=n)
    res = solve_binary_program(c, np.zeros((0, n)), np.zeros(0))
    expected = (c < 0).astype(float)
    assert list(res.x) == list(expected)
