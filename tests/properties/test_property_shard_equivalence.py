"""Properties of the sharded execution subsystem.

1. Sharded output equals single-engine output (as a multiset, for any
   shard count) and delivery is deterministic for a fixed configuration.
2. A global suspend at *any* pass boundary resumes to delivery
   byte-identical to the uninterrupted sharded run, and the per-shard
   images (plus the shard-set) it commits are byte-deterministic: two
   identical runs cut at the same boundary produce identical bytes,
   modulo the wall-clock ``created_at`` stamp in each image manifest.
"""

import hashlib
import json
import os

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.lifecycle import QuerySession
from repro.durability import build_recipe
from repro.shard import ShardCoordinator

SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_coordinator(recipe, shards, quantum_rows):
    db, plan = build_recipe(recipe, scale=4)
    return ShardCoordinator(
        db, plan, num_shards=shards, quantum_rows=quantum_rows
    )


def root_fingerprint(root):
    """Hash of every committed byte under an image root, keyed by path.

    The image manifest's ``created_at`` is wall clock by design; it is
    the only field allowed to differ between identical runs.
    """
    fingerprint = {}
    for dirpath, _, files in os.walk(root):
        for name in files:
            path = os.path.join(dirpath, name)
            with open(path, "rb") as fh:
                data = fh.read()
            if name == "MANIFEST.json":
                doc = json.loads(data)
                doc.pop("created_at", None)
                data = json.dumps(doc, sort_keys=True).encode()
            rel = os.path.relpath(path, root)
            fingerprint[rel] = hashlib.sha256(data).hexdigest()
    return fingerprint


@SLOW
@given(
    recipe=st.sampled_from(["hashjoin", "hashagg"]),
    shards=st.integers(min_value=1, max_value=5),
    quantum=st.sampled_from([4, 16, 64]),
)
def test_sharded_equals_single_engine(recipe, shards, quantum):
    db, plan = build_recipe(recipe, scale=4)
    single = sorted(QuerySession(db, plan).execute().rows)
    rows = make_coordinator(recipe, shards, quantum).run()
    assert sorted(rows) == single
    # Delivery is deterministic: a second identical run matches exactly.
    assert make_coordinator(recipe, shards, quantum).run() == rows


@SLOW
@given(
    recipe=st.sampled_from(["hashjoin", "hashagg"]),
    shards=st.integers(min_value=2, max_value=4),
    quantum=st.sampled_from([4, 16]),
    cut_pass=st.integers(min_value=1, max_value=60),
)
def test_suspend_at_any_pass_boundary(
    recipe, shards, quantum, cut_pass, tmp_path_factory
):
    full = make_coordinator(recipe, shards, quantum).run()

    def run_to_boundary():
        coord = make_coordinator(recipe, shards, quantum)
        for _ in range(cut_pass):
            coord.run_pass()
            if coord.done:
                break
        return coord

    coord = run_to_boundary()
    # A boundary after completion is not a legal cut point; let
    # hypothesis shrink toward in-flight boundaries instead.
    assume(not coord.done)
    before = list(coord.output_rows)

    root_a = str(tmp_path_factory.mktemp("cut-a"))
    coord.suspend_global(root_a, gid="prop")

    # Byte-determinism: the identical run cut at the identical boundary
    # commits identical bytes (modulo the manifest wall-clock stamp).
    twin = run_to_boundary()
    root_b = str(tmp_path_factory.mktemp("cut-b"))
    twin.suspend_global(root_b, gid="prop")
    assert root_fingerprint(root_a) == root_fingerprint(root_b)

    db, _ = build_recipe(recipe, scale=4)
    resumed = ShardCoordinator.resume(db, root_a, "prop")
    assert before + resumed.run() == full
