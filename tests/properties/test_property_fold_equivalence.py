"""Property: shared-work folding is invisible to every folded member.

Hypothesis drives random plan pairs/triples over shared tables, random
interleavings, and random suspend points; the invariants are the fold
contract — byte-identical per-query outputs, identical as-if-solo lane
clocks and counters, and byte-identical durable suspend images versus
an unfolded run, including a fold split fired mid-drain.
"""

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.core.checkpoint as checkpoint_module
from repro import Database, QuerySession, SuspendSpec
from repro.core.lifecycle import QueryStatus
from repro.durability.codec2 import encode_suspended_query
from repro.engine.plan import (
    FilterSpec,
    ProjectSpec,
    ScanSpec,
    SimpleHashJoinSpec,
)
from repro.fold.manager import FoldManager
from repro.relational.datagen import BASE_SCHEMA, generate_uniform_table
from repro.relational.expressions import EquiJoinCondition, UniformSelect

SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build_db(r_size, s_size, seed):
    db = Database()
    db.create_table("R", BASE_SCHEMA, generate_uniform_table(r_size, seed=seed))
    db.create_table(
        "S", BASE_SCHEMA, generate_uniform_table(s_size, seed=seed + 1)
    )
    return db


def build_plan(kind, selectivity, modulus):
    filtered = FilterSpec(ScanSpec("R"), UniformSelect(1, selectivity))
    if kind == "sfp":
        return ProjectSpec(filtered, columns=(0, 2))
    return SimpleHashJoinSpec(
        build=ScanSpec("S"),
        probe=filtered,
        condition=EquiJoinCondition(0, 0, modulus=modulus),
        num_partitions=4,
    )


def reset_id_counters():
    checkpoint_module._ckpt_ids = itertools.count(1)
    checkpoint_module._contract_ids = itertools.count(1)


def lane_state(session):
    lane = session.runtime.lane
    return (repr(lane.now), lane.counters.snapshot())


def run_solo(db_factory, plan, name):
    reset_id_counters()
    db = db_factory()
    session = QuerySession(db, plan, name=name)
    rows = session.execute().rows
    return rows, lane_state(session)


def run_solo_suspended(db_factory, plan, name, point):
    """Solo drain-to-point, suspend, resume, finish; None if completed."""
    reset_id_counters()
    db = db_factory()
    session = QuerySession(db, plan, name=name)
    first = session.execute(max_rows=point)
    if session.status is QueryStatus.COMPLETED:
        return None
    sq = session.suspend(SuspendSpec(strategy="all_dump"))
    image = encode_suspended_query(sq)
    resumed = QuerySession.resume(db, sq, name=name)
    return first.rows + resumed.execute().rows, image


plans_strategy = st.lists(
    st.tuples(
        st.sampled_from(["sfp", "shj"]),
        st.floats(0.1, 1.0),
        st.integers(5, 40),
    ),
    min_size=2,
    max_size=3,
)


@SLOW
@given(
    specs=plans_strategy,
    r_size=st.integers(60, 200),
    s_size=st.integers(40, 100),
    seed=st.integers(0, 10_000),
    chunk=st.integers(5, 60),
)
def test_folded_members_match_solo_runs(specs, r_size, s_size, seed, chunk):
    def db_factory():
        return build_db(r_size, s_size, seed)

    plans = [build_plan(*spec) for spec in specs]
    solo = [
        run_solo(db_factory, plan, f"q{i}") for i, plan in enumerate(plans)
    ]

    reset_id_counters()
    db = db_factory()
    manager = FoldManager(db)
    sessions = [
        QuerySession(
            db, plan, name=f"q{i}", fold=manager.admit(f"q{i}", plan)
        )
        for i, plan in enumerate(plans)
    ]
    rows = [[] for _ in sessions]
    live = list(range(len(sessions)))
    while live:
        for i in list(live):
            rows[i].extend(sessions[i].execute(max_rows=chunk).rows)
            if sessions[i].status is QueryStatus.COMPLETED:
                live.remove(i)
    for i in range(len(plans)):
        assert rows[i] == solo[i][0]
        assert lane_state(sessions[i]) == solo[i][1]


@SLOW
@given(
    specs=plans_strategy,
    r_size=st.integers(60, 200),
    s_size=st.integers(40, 100),
    seed=st.integers(0, 10_000),
    chunk=st.integers(5, 40),
    point=st.integers(1, 60),
)
def test_fold_split_image_matches_unfolded(
    specs, r_size, s_size, seed, chunk, point
):
    """Suspending a folded member mid-drain must leave the same durable
    image bytes and final output as the identical unfolded suspend."""

    def db_factory():
        return build_db(r_size, s_size, seed)

    plans = [build_plan(*spec) for spec in specs]
    ref = run_solo_suspended(db_factory, plans[0], "q0", point)
    if ref is None:
        return  # query finished before the suspend point; nothing to split

    reset_id_counters()
    db = db_factory()
    manager = FoldManager(db)
    victim = QuerySession(
        db, plans[0], name="q0", fold=manager.admit("q0", plans[0])
    )
    siblings = [
        QuerySession(
            db, plan, name=f"q{i}", fold=manager.admit(f"q{i}", plan)
        )
        for i, plan in enumerate(plans[1:], start=1)
    ]
    first = []
    while len(first) < point and victim.status is not QueryStatus.COMPLETED:
        first.extend(
            victim.execute(max_rows=min(chunk, point - len(first))).rows
        )
        for sibling in siblings:
            if sibling.status is not QueryStatus.COMPLETED:
                sibling.execute(max_rows=chunk)
    assert victim.status is not QueryStatus.COMPLETED
    sq = victim.suspend(SuspendSpec(strategy="all_dump"))
    manager.note_split("q0")
    assert encode_suspended_query(sq) == ref[1]

    resumed = QuerySession.resume(db, sq, name="q0")
    got = first + resumed.execute().rows
    assert got == ref[0]
    # The surviving members are untouched by the split.
    for i, sibling in enumerate(siblings, start=1):
        solo_rows = run_solo(db_factory, plans[i], f"q{i}")[0]
        if sibling.status is not QueryStatus.COMPLETED:
            sibling.execute()
        assert sibling.rows == solo_rows
