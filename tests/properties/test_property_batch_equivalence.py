"""Property: the vectorized batch path is bit-identical to the row path.

Hypothesis drives random plan shapes, data sizes, drain patterns, and
suspend points; the invariants are byte-for-byte equality of output rows,
virtual-clock totals, I/O counters, per-operator work/emitted bookkeeping,
and serialized suspend images — including a suspend condition that fires
mid-batch.
"""

import itertools
import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.core.checkpoint as checkpoint_module
from repro import Database, QuerySession, SuspendSpec
from repro.core.lifecycle import QueryStatus
from repro.engine.config import EngineConfig
from repro.engine.plan import (
    FilterSpec,
    HashGroupAggSpec,
    MergeJoinSpec,
    NLJSpec,
    ProjectSpec,
    ScanSpec,
    SimpleHashJoinSpec,
    SortSpec,
)
from repro.relational.datagen import BASE_SCHEMA, generate_uniform_table
from repro.relational.expressions import EquiJoinCondition, UniformSelect

SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

PLAN_KINDS = ("sfp", "nlj", "smj", "shj", "agg")


def build_db(r_size, s_size, seed, pool_pages=0):
    db = Database(buffer_pool_pages=pool_pages)
    db.create_table("R", BASE_SCHEMA, generate_uniform_table(r_size, seed=seed))
    db.create_table(
        "S", BASE_SCHEMA, generate_uniform_table(s_size, seed=seed + 1)
    )
    return db


def build_plan(kind, selectivity, buffer_tuples, modulus):
    filtered = FilterSpec(ScanSpec("R"), UniformSelect(1, selectivity))
    if kind == "sfp":
        return ProjectSpec(filtered, columns=(2, 0))
    if kind == "nlj":
        return NLJSpec(
            outer=filtered,
            inner=ScanSpec("S"),
            condition=EquiJoinCondition(0, 0, modulus=modulus),
            buffer_tuples=buffer_tuples,
        )
    if kind == "smj":
        return MergeJoinSpec(
            left=SortSpec(
                filtered, key_columns=(0,), buffer_tuples=buffer_tuples
            ),
            right=SortSpec(
                ScanSpec("S"), key_columns=(0,), buffer_tuples=buffer_tuples + 7
            ),
            condition=EquiJoinCondition(0, 0),
        )
    if kind == "shj":
        return SimpleHashJoinSpec(
            build=ScanSpec("S"),
            probe=filtered,
            condition=EquiJoinCondition(0, 0, modulus=modulus),
            num_partitions=4,
        )
    return HashGroupAggSpec(
        filtered,
        group_columns=(2,),
        agg_func="sum",
        agg_column=0,
        num_partitions=3,
    )


def reset_id_counters():
    """Checkpoint/contract ids are process-global; reset them so the two
    runs under comparison serialize with identical ids."""
    checkpoint_module._ckpt_ids = itertools.count(1)
    checkpoint_module._contract_ids = itertools.count(1)


def fingerprint(db, session):
    ops = {
        op_id: (repr(op.work), op.tuples_emitted)
        for op_id, op in sorted(session.runtime.ops.items())
    }
    return (repr(db.now), db.disk.counters.snapshot(), ops)


def run_drained(db, plan, batch, drains):
    config = EngineConfig(batch_execution=batch)
    session = QuerySession(db, plan, config=config)
    rows = []
    for drain in drains:
        if session.status is QueryStatus.COMPLETED:
            break
        rows.extend(session.execute(max_rows=drain).rows)
    if session.status is not QueryStatus.COMPLETED:
        rows.extend(session.execute().rows)
    return rows, fingerprint(db, session)


@SLOW
@given(
    kind=st.sampled_from(PLAN_KINDS),
    r_size=st.integers(40, 160),
    s_size=st.integers(30, 90),
    seed=st.integers(0, 10_000),
    selectivity=st.floats(0.05, 1.0),
    buffer_tuples=st.integers(5, 60),
    modulus=st.integers(5, 40),
    pool_pages=st.sampled_from([0, 0, 4]),
    drains=st.lists(st.integers(1, 200), max_size=4),
)
def test_batch_row_identical(
    kind,
    r_size,
    s_size,
    seed,
    selectivity,
    buffer_tuples,
    modulus,
    pool_pages,
    drains,
):
    plan = build_plan(kind, selectivity, buffer_tuples, modulus)
    ref_rows, ref_fp = run_drained(
        build_db(r_size, s_size, seed, pool_pages), plan, False, ()
    )
    got_rows, got_fp = run_drained(
        build_db(r_size, s_size, seed, pool_pages), plan, True, drains
    )
    assert got_rows == ref_rows
    assert got_fp == ref_fp


def run_suspended(db, plan, batch, trigger, strategy):
    reset_id_counters()
    config = EngineConfig(batch_execution=batch)
    session = QuerySession(db, plan, config=config)
    first = session.execute(suspend_when=trigger)
    if session.status is QueryStatus.COMPLETED:
        return first.rows, None, fingerprint(db, session)
    sq = session.suspend(SuspendSpec(strategy=strategy))
    image = json.dumps(sq.to_dict(), sort_keys=True, default=repr)
    resumed = QuerySession.resume(db, sq, config=config)
    rest = resumed.execute()
    return first.rows + rest.rows, image, fingerprint(db, resumed)


@SLOW
@given(
    kind=st.sampled_from(PLAN_KINDS),
    seed=st.integers(0, 10_000),
    selectivity=st.floats(0.2, 1.0),
    buffer_tuples=st.integers(10, 50),
    fire_at=st.integers(1, 80),
    strategy=st.sampled_from(["all_dump", "all_goback", "lp"]),
)
def test_mid_batch_suspend_image_identical(
    kind, seed, selectivity, buffer_tuples, fire_at, strategy
):
    """A suspend condition firing mid-batch must leave the same image,
    clock, and output as the row path (where it fires between rows)."""
    plan = build_plan(kind, selectivity, buffer_tuples, 15)

    def trigger(rt):
        return rt.root().tuples_emitted >= fire_at

    ref = run_suspended(build_db(110, 60, seed), plan, False, trigger, strategy)
    got = run_suspended(build_db(110, 60, seed), plan, True, trigger, strategy)
    assert got[0] == ref[0]
    assert got[1] == ref[1]
    assert got[2] == ref[2]
