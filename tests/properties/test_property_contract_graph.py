"""Properties of contract-graph maintenance (Theorem 1, prune fixpoint)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import QuerySession
from repro.core.checkpoint import Checkpoint, Contract
from repro.core.contract_graph import ContractGraph

from tests.conftest import make_small_db
from tests.properties.test_property_suspend_resume import build_db, build_plan

FAST = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@FAST
@given(
    kind=st.sampled_from(["nlj", "smj", "nlj_over_sort"]),
    seed=st.integers(0, 10_000),
    buffer_tuples=st.integers(5, 40),
    point=st.integers(1, 300),
)
def test_theorem1_bound_at_random_execution_points(
    kind, seed, buffer_tuples, point
):
    plan = build_plan(kind, 0.8, buffer_tuples, 15)
    db = build_db(130, 70, seed)
    session = QuerySession(db, plan)
    session.execute(max_rows=point)
    graph = session.runtime.graph
    graph.check_theorem1_bound(
        num_operators=len(session.runtime.ops),
        height=session.runtime.plan_height(),
    )


@FAST
@given(
    kind=st.sampled_from(["nlj", "smj"]),
    seed=st.integers(0, 10_000),
    point=st.integers(1, 200),
)
def test_prune_is_idempotent_and_preserves_latest(kind, seed, point):
    plan = build_plan(kind, 0.7, 20, 15)
    db = build_db(100, 60, seed)
    session = QuerySession(db, plan)
    session.execute(max_rows=point)
    graph = session.runtime.graph
    latest_before = {
        op_id: graph.latest_checkpoint(op_id).ckpt_id
        for op_id in session.runtime.ops
        if graph.latest_checkpoint(op_id) is not None
    }
    graph.prune()
    assert graph.prune() == 0  # fixpoint
    for op_id, ckpt_id in latest_before.items():
        assert graph.latest_checkpoint(op_id).ckpt_id == ckpt_id


@FAST
@given(
    num_ops=st.integers(2, 6),
    events=st.lists(st.integers(0, 5), min_size=1, max_size=40),
)
def test_synthetic_chain_graph_stays_bounded(num_ops, events):
    """Simulate a chain of operators checkpointing in random order; after
    pruning, the live graph respects the O(nh) bound."""
    graph = ContractGraph()
    latest = {}
    for op_id in reversed(range(num_ops)):  # leaves first
        ck = Checkpoint(
            op_id=op_id,
            seq=graph.next_seq(op_id),
            payload={},
            work_at=0.0,
            emitted_at=0,
        )
        graph.add_checkpoint(ck)
        latest[op_id] = ck
        if op_id + 1 < num_ops:
            graph.add_contract(
                Contract(
                    parent_op_id=op_id,
                    child_op_id=op_id + 1,
                    control={},
                    child_ckpt_id=latest[op_id + 1].ckpt_id,
                    anchor_ckpt_id=ck.ckpt_id,
                )
            )
    for event in events:
        op_id = event % num_ops
        ck = Checkpoint(
            op_id=op_id,
            seq=graph.next_seq(op_id),
            payload={},
            work_at=0.0,
            emitted_at=0,
        )
        graph.add_checkpoint(ck)
        latest[op_id] = ck
        if op_id + 1 < num_ops:
            graph.add_contract(
                Contract(
                    parent_op_id=op_id,
                    child_op_id=op_id + 1,
                    control={},
                    child_ckpt_id=latest[op_id + 1].ckpt_id,
                    anchor_ckpt_id=ck.ckpt_id,
                )
            )
        graph.prune()
        graph.check_theorem1_bound(num_operators=num_ops, height=num_ops)
