"""Property: suspend/resume never changes query output.

Hypothesis drives random plan shapes, data sizes, selectivities, suspend
points, budgets, and strategies; the invariant is always byte-identical
output versus the uninterrupted run.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Database, QuerySession, SuspendSpec
from repro.engine.plan import (
    FilterSpec,
    MergeJoinSpec,
    NLJSpec,
    ScanSpec,
    SortSpec,
)
from repro.relational.datagen import BASE_SCHEMA, generate_uniform_table
from repro.relational.expressions import EquiJoinCondition, UniformSelect

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build_db(r_size, s_size, seed):
    db = Database()
    db.create_table("R", BASE_SCHEMA, generate_uniform_table(r_size, seed=seed))
    db.create_table(
        "S", BASE_SCHEMA, generate_uniform_table(s_size, seed=seed + 1)
    )
    return db


plan_strategy = st.sampled_from(["nlj", "smj", "nlj_over_sort"])


def build_plan(kind, selectivity, buffer_tuples, modulus):
    filtered = FilterSpec(ScanSpec("R"), UniformSelect(1, selectivity))
    if kind == "nlj":
        return NLJSpec(
            outer=filtered,
            inner=ScanSpec("S"),
            condition=EquiJoinCondition(0, 0, modulus=modulus),
            buffer_tuples=buffer_tuples,
        )
    if kind == "smj":
        return MergeJoinSpec(
            left=SortSpec(filtered, key_columns=(0,), buffer_tuples=buffer_tuples),
            right=SortSpec(
                ScanSpec("S"), key_columns=(0,), buffer_tuples=buffer_tuples + 7
            ),
            condition=EquiJoinCondition(0, 0),
        )
    return NLJSpec(
        outer=filtered,
        inner=SortSpec(ScanSpec("S"), key_columns=(0,), buffer_tuples=23),
        condition=EquiJoinCondition(0, 0, modulus=modulus),
        buffer_tuples=buffer_tuples,
    )


@SLOW
@given(
    kind=plan_strategy,
    r_size=st.integers(40, 160),
    s_size=st.integers(30, 90),
    seed=st.integers(0, 10_000),
    selectivity=st.floats(0.05, 1.0),
    buffer_tuples=st.integers(5, 60),
    modulus=st.integers(5, 40),
    point=st.integers(1, 400),
    strategy=st.sampled_from(["all_dump", "all_goback", "lp", "dp"]),
)
def test_output_equivalence(
    kind, r_size, s_size, seed, selectivity, buffer_tuples, modulus, point, strategy
):
    plan = build_plan(kind, selectivity, buffer_tuples, modulus)
    ref = QuerySession(build_db(r_size, s_size, seed), plan).execute().rows

    db = build_db(r_size, s_size, seed)
    session = QuerySession(db, plan)
    first = session.execute(max_rows=point)
    if session.status.value == "completed":
        assert first.rows == ref
        return
    sq = session.suspend(SuspendSpec(strategy=strategy))
    resumed = QuerySession.resume(db, sq)
    assert first.rows + resumed.execute().rows == ref


@SLOW
@given(
    kind=plan_strategy,
    seed=st.integers(0, 10_000),
    selectivity=st.floats(0.1, 1.0),
    point=st.integers(1, 120),
    budget=st.floats(0.5, 50.0),
)
def test_budgeted_lp_equivalence(kind, seed, selectivity, point, budget):
    """Even under tight budgets (possibly infeasible ones), a successful
    suspend must preserve output."""
    from repro.common.errors import SuspendBudgetInfeasibleError

    plan = build_plan(kind, selectivity, 20, 15)
    ref = QuerySession(build_db(90, 60, seed), plan).execute().rows
    db = build_db(90, 60, seed)
    session = QuerySession(db, plan)
    first = session.execute(max_rows=point)
    if session.status.value == "completed":
        return
    try:
        sq = session.suspend(SuspendSpec(strategy="lp", budget=budget))
    except SuspendBudgetInfeasibleError:
        return
    resumed = QuerySession.resume(db, sq)
    assert first.rows + resumed.execute().rows == ref


@SLOW
@given(
    seed=st.integers(0, 10_000),
    points=st.lists(st.integers(1, 40), min_size=2, max_size=4),
    strategies=st.lists(
        st.sampled_from(["all_dump", "all_goback", "lp"]),
        min_size=2,
        max_size=4,
    ),
)
def test_repeated_suspend_resume(seed, points, strategies):
    """Any sequence of suspend/resume cycles preserves output."""
    plan = build_plan("nlj", 0.6, 25, 20)
    ref = QuerySession(build_db(120, 70, seed), plan).execute().rows
    db = build_db(120, 70, seed)
    session = QuerySession(db, plan)
    rows = []
    for point, strategy in zip(points, strategies):
        rows += session.execute(max_rows=point).rows
        if session.status.value == "completed":
            break
        sq = session.suspend(SuspendSpec(strategy=strategy))
        session = QuerySession.resume(db, sq)
    if session.status.value != "completed":
        rows += session.execute().rows
    assert rows == ref
