"""The workload subcommand, in-process and as a real subprocess."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main

SRC = Path(__file__).resolve().parents[1] / "src"


class TestWorkloadCommand:
    def test_workload_compares_all_policies(self, capsys):
        assert main(["workload", "--trace", "mixed", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "suspend-resume" in out
        assert "kill-restart" in out
        assert "wait" in out
        assert "policy comparison" in out
        assert "memory-pressure timeline" in out

    def test_single_policy_skips_comparison_table(self, capsys):
        assert (
            main(["workload", "--policy", "wait", "--trace", "mixed"]) == 0
        )
        out = capsys.readouterr().out
        assert "policy wait - per-query latency" in out
        assert "policy comparison" not in out

    def test_serve_alias(self, capsys):
        assert main(["serve", "--policy", "wait"]) == 0
        assert "per-query latency" in capsys.readouterr().out

    def test_unknown_trace_rejected(self):
        with pytest.raises(SystemExit):
            main(["workload", "--trace", "nope"])


class TestWorkloadSubprocess:
    def test_module_invocation_end_to_end(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(SRC)] + env.get("PYTHONPATH", "").split(os.pathsep)
        ).rstrip(os.pathsep)
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "workload",
                "--trace",
                "mixed",
                "--seed",
                "1",
            ],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "suspend-resume" in proc.stdout
        assert "policy comparison" in proc.stdout
        # The motivating result survives the round trip: suspend-resume
        # ranks first in the comparison table (best-first ordering).
        table_lines = proc.stdout.splitlines()
        header = next(
            i
            for i, line in enumerate(table_lines)
            if line.startswith("policy comparison")
        )
        first_row = table_lines[header + 3]
        assert "suspend-resume" in first_row
