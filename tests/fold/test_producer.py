"""FoldProducer: window residency, eviction, refetch accounting."""

import pytest

from repro.fold.manager import FoldManager, FoldProducer, FoldStats
from repro.relational.datagen import BASE_SCHEMA, generate_uniform_table
from repro.storage.database import Database
from repro.storage.heapfile import TuplePosition


def make_db(rows=500, tpp=100):
    db = Database()
    db.create_table(
        "R", BASE_SCHEMA, generate_uniform_table(rows, seed=1),
        tuples_per_page=tpp,
    )
    return db


class FakeCursor:
    """Just enough cursor for attach/position bookkeeping."""

    def __init__(self, page_no=0):
        self._page_no = page_no

    def position(self):
        return TuplePosition(self._page_no, 0)


def make_producer(db, window_pages=4):
    return FoldProducer(
        db.catalog.table("R"), db.disk, FoldStats(), window_pages
    )


class TestAcquire:
    def test_miss_fetches_and_charges_global_only(self):
        db = make_db()
        producer = make_producer(db)
        rows = producer.acquire(0)
        assert rows == list(db.catalog.table("R").peek_page(0))
        assert db.disk.counters.pages_read == 1
        assert db.disk.fold_shared_pages == 1
        assert producer.stats.pages_shared == 1

    def test_hit_is_free(self):
        db = make_db()
        producer = make_producer(db)
        producer.acquire(2)
        before = db.disk.counters.pages_read
        producer.acquire(2)
        assert db.disk.counters.pages_read == before
        assert producer.stats.pages_shared == 1

    def test_window_cap_evicts_lowest(self):
        db = make_db(900)
        producer = make_producer(db, window_pages=3)
        for page in range(5):
            producer.acquire(page)
        assert producer.window_size == 3
        # Pages 0 and 1 evicted; re-acquiring one is a counted refetch.
        producer.acquire(0)
        assert producer.stats.refetches == 1

    def test_forward_progress_is_not_a_refetch(self):
        db = make_db(900)
        producer = make_producer(db, window_pages=2)
        for page in range(5):
            producer.acquire(page)
        assert producer.stats.refetches == 0

    def test_window_retained_after_detach(self):
        db = make_db()
        producer = make_producer(db)
        cursor = FakeCursor()
        producer.attach(cursor)
        producer.acquire(0)
        producer.detach(cursor)
        before = db.disk.counters.pages_read
        producer.acquire(0)  # served from the retained window
        assert db.disk.counters.pages_read == before


class TestManager:
    def test_buffer_pool_refuses_folding(self):
        db = Database(buffer_pool_pages=8)
        db.create_table(
            "R", BASE_SCHEMA, generate_uniform_table(100, seed=1)
        )
        manager = FoldManager(db)
        from repro.engine.plan import ScanSpec

        assert manager.admit("q1", ScanSpec("R")) is None

    def test_admit_grafts_mutually(self):
        db = make_db()
        manager = FoldManager(db)
        from repro.engine.plan import ScanSpec

        b1 = manager.admit("q1", ScanSpec("R"))
        assert b1 is not None
        assert not manager.is_grafted("q1")  # lone candidate
        b2 = manager.admit("q2", ScanSpec("R"))
        assert b2 is not None
        assert manager.is_grafted("q1") and manager.is_grafted("q2")
        assert manager.stats.candidates == 2
        assert manager.stats.grafted == 2

    def test_note_split_unfolds_once(self):
        db = make_db()
        manager = FoldManager(db)
        from repro.engine.plan import ScanSpec

        manager.admit("q1", ScanSpec("R"))
        manager.admit("q2", ScanSpec("R"))
        manager.note_split("q1")
        manager.note_split("q1")  # idempotent: already split
        assert manager.stats.splits == 1
        assert not manager.is_grafted("q1")
        assert manager.is_grafted("q2")

    def test_absorbed_requires_lane(self):
        db = make_db()
        with pytest.raises(RuntimeError):
            db.disk.absorbed_read_pages(1)

    def test_publish_metrics(self):
        from repro.obs.metrics import MetricsRegistry

        db = make_db()
        manager = FoldManager(db)
        manager.stats.candidates = 3
        manager.stats.grafted = 2
        manager.stats.splits = 1
        db.disk.fold_pages_saved = 10
        db.disk.fold_shared_pages = 4
        registry = MetricsRegistry()
        manager.publish_metrics(registry)
        snapshot = registry.as_dict()
        assert snapshot["counters"]["fold.candidates"] == 3
        assert snapshot["counters"]["fold.grafted"] == 2
        assert snapshot["counters"]["fold.splits"] == 1
        assert (
            snapshot["gauges"]["fold.scan_bytes_saved"]
            == 6 * db.disk.cost_model.page_bytes
        )
