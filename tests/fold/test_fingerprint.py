"""Structural fingerprints: label-free, semantically exhaustive."""

from repro.engine.plan import (
    FilterSpec,
    HybridHashJoinSpec,
    IndexScanSpec,
    ProjectSpec,
    ScanSpec,
    SimpleHashJoinSpec,
)
from repro.fold.fingerprint import (
    build_side_fingerprint,
    plan_fingerprint,
    scan_tables,
)
from repro.relational.expressions import EquiJoinCondition, UniformSelect


def sfp(table="R", sel=0.5, label=None, flabel=None):
    return FilterSpec(
        ScanSpec(table, label=label), UniformSelect(1, sel), label=flabel
    )


class TestPlanFingerprint:
    def test_labels_do_not_matter(self):
        a = sfp(label="scan_q1", flabel="filter_q1")
        b = sfp(label="scan_q7", flabel=None)
        assert plan_fingerprint(a) == plan_fingerprint(b)

    def test_table_matters(self):
        assert plan_fingerprint(sfp("R")) != plan_fingerprint(sfp("S"))

    def test_predicate_matters(self):
        assert plan_fingerprint(sfp(sel=0.5)) != plan_fingerprint(sfp(sel=0.6))

    def test_operator_type_matters(self):
        scan = ScanSpec("R")
        assert plan_fingerprint(scan) != plan_fingerprint(
            ProjectSpec(scan, columns=(0,))
        )

    def test_nested_children_participate(self):
        a = ProjectSpec(sfp(sel=0.3), columns=(0, 1))
        b = ProjectSpec(sfp(sel=0.4), columns=(0, 1))
        assert plan_fingerprint(a) != plan_fingerprint(b)


class TestScanTables:
    def test_collects_plain_scan_leaves(self):
        plan = SimpleHashJoinSpec(
            build=ScanSpec("S"),
            probe=sfp("R"),
            condition=EquiJoinCondition(0, 0),
        )
        assert scan_tables(plan) == {"R", "S"}

    def test_index_scans_excluded(self):
        assert scan_tables(IndexScanSpec("R_idx")) == set()


class TestBuildSideFingerprint:
    def cond(self, modulus=40):
        return EquiJoinCondition(0, 0, modulus=modulus)

    def test_probe_side_is_irrelevant(self):
        a = SimpleHashJoinSpec(
            build=ScanSpec("S"), probe=sfp("R", 0.2), condition=self.cond()
        )
        b = SimpleHashJoinSpec(
            build=ScanSpec("S"), probe=sfp("R", 0.9), condition=self.cond()
        )
        assert build_side_fingerprint(a) == build_side_fingerprint(b)

    def test_build_plan_matters(self):
        a = SimpleHashJoinSpec(
            build=ScanSpec("S"), probe=sfp(), condition=self.cond()
        )
        b = SimpleHashJoinSpec(
            build=ScanSpec("R"), probe=sfp(), condition=self.cond()
        )
        assert build_side_fingerprint(a) != build_side_fingerprint(b)

    def test_partitioning_matters(self):
        a = SimpleHashJoinSpec(
            build=ScanSpec("S"), probe=sfp(), condition=self.cond(),
            num_partitions=4,
        )
        b = SimpleHashJoinSpec(
            build=ScanSpec("S"), probe=sfp(), condition=self.cond(),
            num_partitions=8,
        )
        assert build_side_fingerprint(a) != build_side_fingerprint(b)

    def test_simple_and_hybrid_never_collide(self):
        # memory_partitions=0 still loads partitions differently enough
        # to keep the keys apart (mem= field differs only by class when
        # hybrid uses >0, so the spec type guards the rest).
        a = SimpleHashJoinSpec(
            build=ScanSpec("S"), probe=sfp(), condition=self.cond()
        )
        b = HybridHashJoinSpec(
            build=ScanSpec("S"), probe=sfp(), condition=self.cond(),
            memory_partitions=2,
        )
        assert build_side_fingerprint(a) != build_side_fingerprint(b)

    def test_non_joins_have_no_key(self):
        assert build_side_fingerprint(sfp()) is None
