"""Engine-level folding: per-query determinism under shared-work drains.

The invariants come straight from the fold contract: a folded member's
output rows, as-if-solo lane clock, lane counters, and serialized
suspend image are byte-identical to an unfolded run of the same query —
only the *global* disk traffic changes. Fold split on suspend is the
same property applied mid-flight.
"""

import itertools

import repro.core.checkpoint as checkpoint_module
from repro import Database, QuerySession, SuspendSpec
from repro.core.lifecycle import QueryStatus
from repro.durability.codec2 import encode_suspended_query
from repro.engine.plan import (
    FilterSpec,
    HybridHashJoinSpec,
    ProjectSpec,
    ScanSpec,
    SimpleHashJoinSpec,
)
from repro.fold.manager import FoldManager
from repro.relational.datagen import BASE_SCHEMA, generate_uniform_table
from repro.relational.expressions import EquiJoinCondition, UniformSelect


def build_db(r_size=300, s_size=200):
    db = Database()
    db.create_table("R", BASE_SCHEMA, generate_uniform_table(r_size, seed=1))
    db.create_table("S", BASE_SCHEMA, generate_uniform_table(s_size, seed=2))
    return db


def filter_plan(selectivity):
    return ProjectSpec(
        FilterSpec(ScanSpec("R"), UniformSelect(1, selectivity)),
        columns=(0, 2),
    )


def shj_plan(selectivity, hybrid=False):
    kwargs = {"memory_partitions": 2} if hybrid else {}
    cls = HybridHashJoinSpec if hybrid else SimpleHashJoinSpec
    return cls(
        build=ScanSpec("S"),
        probe=FilterSpec(ScanSpec("R"), UniformSelect(1, selectivity)),
        condition=EquiJoinCondition(0, 0, modulus=40),
        num_partitions=4,
        **kwargs,
    )


def reset_id_counters():
    checkpoint_module._ckpt_ids = itertools.count(1)
    checkpoint_module._contract_ids = itertools.count(1)


def lane_state(session):
    lane = session.runtime.lane
    return (repr(lane.now), lane.counters.snapshot())


def run_solo(plan, name):
    """One query alone on a fresh db: rows + lane fingerprint."""
    db = build_db()
    session = QuerySession(db, plan, name=name)
    rows = session.execute().rows
    return rows, lane_state(session), db.disk.counters.pages_read


def run_folded(plans, chunk=25):
    """All plans interleaved on one db under a FoldManager."""
    db = build_db()
    manager = FoldManager(db)
    sessions = []
    for i, plan in enumerate(plans):
        name = f"q{i}"
        binding = manager.admit(name, plan)
        assert binding is not None
        sessions.append(QuerySession(db, plan, name=name, fold=binding))
    rows = [[] for _ in sessions]
    live = list(range(len(sessions)))
    while live:
        for i in list(live):
            rows[i].extend(sessions[i].execute(max_rows=chunk).rows)
            if sessions[i].status is QueryStatus.COMPLETED:
                live.remove(i)
    lanes = [lane_state(s) for s in sessions]
    return rows, lanes, db.disk.counters.pages_read, manager


class TestSharedScanEquivalence:
    def test_folded_pair_matches_solo(self):
        plans = [filter_plan(0.5), filter_plan(0.3)]
        solo = [run_solo(p, f"q{i}") for i, p in enumerate(plans)]
        rows, lanes, pages, manager = run_folded(plans)
        for i in range(len(plans)):
            assert rows[i] == solo[i][0]
            assert lanes[i] == solo[i][1]
        # Shared drain: global reads well under the sum of solo runs.
        assert pages < sum(s[2] for s in solo)
        assert manager.stats.pages_absorbed > 0
        assert manager.stats.grafted == 2

    def test_identical_triple_reads_table_once(self):
        plans = [filter_plan(0.5) for _ in range(3)]
        solo_pages = run_solo(plans[0], "q0")[2]
        rows, lanes, pages, _ = run_folded(plans)
        assert rows[0] == rows[1] == rows[2]
        assert lanes[0] == lanes[1] == lanes[2]
        # Three grafted members cost (about) one solo drain, not three.
        assert pages <= solo_pages + 1

    def test_bytes_saved_reported(self):
        plans = [filter_plan(0.5), filter_plan(0.5)]
        _, _, _, manager = run_folded(plans)
        assert manager.bytes_saved() > 0


class TestFoldSplitOnSuspend:
    def run_solo_suspend(self, plan, point):
        reset_id_counters()
        db = build_db()
        session = QuerySession(db, plan, name="victim")
        first = session.execute(max_rows=point)
        sq = session.suspend(SuspendSpec(strategy="all_dump"))
        return first.rows, encode_suspended_query(sq)

    def run_folded_suspend(self, plan, sibling_plan, point, chunk=10):
        reset_id_counters()
        db = build_db()
        manager = FoldManager(db)
        victim = QuerySession(
            db, plan, name="victim", fold=manager.admit("victim", plan)
        )
        sibling = QuerySession(
            db,
            sibling_plan,
            name="sibling",
            fold=manager.admit("sibling", sibling_plan),
        )
        assert manager.is_grafted("victim")
        first = []
        while len(first) < point:
            first.extend(
                victim.execute(max_rows=min(chunk, point - len(first))).rows
            )
            sibling.execute(max_rows=chunk)
        sq = victim.suspend(SuspendSpec(strategy="all_dump"))
        manager.note_split("victim")
        return first, encode_suspended_query(sq), db, sibling, manager

    def test_victim_image_byte_identical_to_unfolded(self):
        plan = filter_plan(0.5)
        ref_rows, ref_image = self.run_solo_suspend(plan, 20)
        rows, image, db, sibling, manager = self.run_folded_suspend(
            plan, filter_plan(0.5), 20
        )
        assert rows == ref_rows
        assert image == ref_image
        assert manager.stats.splits == 1
        assert not manager.is_grafted("victim")
        assert manager.is_grafted("sibling")

    def test_victim_resumes_unfolded_and_completes(self):
        plan = filter_plan(0.5)
        solo_rows = run_solo(plan, "victim")[0]
        rows, image, db, sibling, manager = self.run_folded_suspend(
            plan, filter_plan(0.3), 20
        )
        from repro.durability.codec2 import decode_suspended_query

        resumed = QuerySession.resume(
            db, decode_suspended_query(image), name="victim"
        )
        rows = rows + resumed.execute().rows
        rest = sibling.execute().rows
        assert rows == solo_rows
        assert sibling.status is QueryStatus.COMPLETED


class TestSharedBuildEquivalence:
    def check(self, hybrid):
        plans = [shj_plan(0.4, hybrid), shj_plan(0.8, hybrid)]
        solo = [run_solo(p, f"q{i}") for i, p in enumerate(plans)]
        rows, lanes, pages, manager = run_folded(plans)
        for i in range(len(plans)):
            assert rows[i] == solo[i][0]
            assert lanes[i] == solo[i][1]
        assert manager.stats.build_hits > 0
        assert pages < sum(s[2] for s in solo)

    def test_simple_hash_join_shares_build_tables(self):
        self.check(hybrid=False)

    def test_hybrid_hash_join_shares_build_tables(self):
        self.check(hybrid=True)

    def test_different_build_sides_do_not_share(self):
        a = shj_plan(0.4)
        b = SimpleHashJoinSpec(
            build=FilterSpec(ScanSpec("S"), UniformSelect(1, 0.5)),
            probe=FilterSpec(ScanSpec("R"), UniformSelect(1, 0.4)),
            condition=EquiJoinCondition(0, 0, modulus=40),
            num_partitions=4,
        )
        solo = [run_solo(p, f"q{i}") for i, p in enumerate([a, b])]
        rows, lanes, _, manager = run_folded([a, b])
        assert rows[0] == solo[0][0] and rows[1] == solo[1][0]
        assert lanes[0] == solo[0][1] and lanes[1] == solo[1][1]
        assert manager.stats.build_hits == 0
