"""Folding through the service layers: scheduler, serve path, metrics.

The scheduler tests drive K-query bursts with folding on and off and
check that folding is invisible to outputs while collapsing global scan
I/O; the serve tests do the same over the continuation-token protocol
(the fold producers live on the service core, so serial token hops still
share pages). Victim selection and metrics publication are covered at
their own seams.
"""

import shutil
import tempfile

from repro.engine.plan import FilterSpec, ProjectSpec, ScanSpec
from repro.fold.manager import FoldManager
from repro.relational.datagen import BASE_SCHEMA, generate_uniform_table
from repro.relational.expressions import UniformSelect
from repro.serve.service import QueryService, ServeConfig
from repro.service.core import SchedulerConfig
from repro.service.policies import select_victims
from repro.service.scheduler import QueryScheduler
from repro.storage.database import Database


def build_db(rows=400):
    db = Database()
    db.create_table("R", BASE_SCHEMA, generate_uniform_table(rows, seed=1))
    return db


def filter_plan(selectivity):
    return ProjectSpec(
        FilterSpec(ScanSpec("R"), UniformSelect(1, selectivity)),
        columns=(0, 2),
    )


def run_burst(k, fold, quantum_rows=32):
    db = build_db()
    config = SchedulerConfig(fold=fold, quantum_rows=quantum_rows)
    scheduler = QueryScheduler(db, config)
    for i in range(k):
        scheduler.submit(f"q{i}", filter_plan(0.5))
    stats = scheduler.run()
    rows = {r.name: list(r.rows) for r in scheduler.records}
    return rows, stats, db.disk.counters.pages_read


class TestSchedulerFolding:
    def test_outputs_identical_with_and_without_fold(self):
        base_rows, base_stats, base_pages = run_burst(4, fold=False)
        fold_rows, fold_stats, fold_pages = run_burst(4, fold=True)
        assert fold_rows == base_rows
        assert fold_pages < base_pages

    def test_k8_burst_close_to_single_query_io(self):
        solo_pages = run_burst(1, fold=False)[2]
        _, stats, pages = run_burst(8, fold=True)
        # The acceptance bar: a K=8 identical-scan burst costs at most
        # twice the scan I/O of one query (empirically ~1.03x).
        assert pages <= 2 * solo_pages
        assert stats.fold is not None
        assert stats.fold["grafted"] == 8

    def test_stats_expose_fold_block_only_when_folding(self):
        _, base_stats, _ = run_burst(2, fold=False)
        _, fold_stats, _ = run_burst(2, fold=True)
        assert "fold" not in base_stats.as_dict()
        block = fold_stats.as_dict()["fold"]
        assert block["candidates"] == 2
        assert block["pages_absorbed"] > 0


class TestVictimSelection:
    class FakeRecord:
        def __init__(self, name, priority, memory):
            self.name = name
            self.priority = priority
            self._memory = memory

        def memory_in_use(self):
            return self._memory

    def test_ungrafted_evicted_before_fold_members(self):
        db = build_db()
        db.create_table(
            "S", BASE_SCHEMA, generate_uniform_table(100, seed=2)
        )
        manager = FoldManager(db)
        manager.admit("a", filter_plan(0.5))
        manager.admit("b", filter_plan(0.5))  # a and b now grafted
        manager.admit("c", FilterSpec(ScanSpec("S"), UniformSelect(1, 0.9)))
        records = [
            self.FakeRecord("a", 0, 100),
            self.FakeRecord("b", 0, 100),
            self.FakeRecord("c", 0, 50),
        ]
        victims = select_victims(records, excess=10, fold_manager=manager)
        assert [v.name for v in victims] == ["c"]

    def test_priority_still_dominates_grafting(self):
        db = build_db()
        manager = FoldManager(db)
        manager.admit("lo", filter_plan(0.5))
        manager.admit("lo2", filter_plan(0.5))
        records = [
            self.FakeRecord("lo", 0, 100),
            self.FakeRecord("hi", 1, 100),
        ]
        victims = select_victims(records, excess=10, fold_manager=manager)
        assert victims[0].name == "lo"


class TestServePathFolding:
    def drain(self, fold):
        """Serve two similar queries by alternating token hops."""
        image_root = tempfile.mkdtemp(prefix="fold-serve-")
        try:
            from repro import SuspendSpec

            db = build_db()
            config = ServeConfig(
                fold=fold,
                quantum_rows=40,
                suspend=SuspendSpec(persist_to=image_root),
            )
            service = QueryService(db, config)
            results = {
                "q0": service.begin("q0", filter_plan(0.5)),
                "q1": service.begin("q1", filter_plan(0.3)),
            }
            rows = {name: list(r.rows) for name, r in results.items()}
            live = {n: r for n, r in results.items() if not r.done}
            while live:
                for name in list(live):
                    result = service.continue_query(live[name].token)
                    rows[name].extend(result.rows)
                    if result.done:
                        del live[name]
                    else:
                        live[name] = result
            return rows, db.disk.counters.pages_read
        finally:
            shutil.rmtree(image_root, ignore_errors=True)

    def test_token_hops_share_scan_pages(self):
        base_rows, base_pages = self.drain(fold=False)
        fold_rows, fold_pages = self.drain(fold=True)
        assert fold_rows == base_rows
        assert fold_pages < base_pages


class TestFoldMetrics:
    def test_metrics_published_through_registry(self):
        from repro.obs.tracer import Tracer

        db = build_db()
        tracer = Tracer()
        config = SchedulerConfig(fold=True, tracer=tracer)
        scheduler = QueryScheduler(db, config)
        scheduler.submit("q0", filter_plan(0.5))
        scheduler.submit("q1", filter_plan(0.5))
        scheduler.run()
        snapshot = tracer.metrics.as_dict()
        assert snapshot["counters"]["fold.candidates"] == 2
        assert snapshot["counters"]["fold.grafted"] == 2
        assert snapshot["gauges"]["fold.scan_bytes_saved"] > 0
