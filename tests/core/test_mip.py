"""Unit tests for the binary-program solver (HiGHS path and fallback)."""

import numpy as np
import pytest
from scipy import sparse

from repro.core.mip import MIPResult, solve_binary_program


def solve_both(c, a, b):
    """Solve with the HiGHS MIP and the fallback branch-and-bound."""
    c = np.asarray(c, dtype=float)
    a = sparse.csr_matrix(np.asarray(a, dtype=float).reshape(len(b), len(c)))
    b = np.asarray(b, dtype=float)
    highs = solve_binary_program(c, a, b, use_highs_mip=True)
    bnb = solve_binary_program(c, a.toarray(), b, use_highs_mip=False)
    return highs, bnb


class TestSolver:
    def test_unconstrained_picks_negative_costs(self):
        highs, bnb = solve_both([-1.0, 2.0, -3.0], np.zeros((0, 3)), [])
        for res in (highs, bnb):
            assert res.feasible
            assert list(res.x) == [1, 0, 1]
            assert res.objective == pytest.approx(-4.0)

    def test_at_most_one_constraint(self):
        # min -5x0 -3x1 st x0 + x1 <= 1
        highs, bnb = solve_both([-5.0, -3.0], [[1.0, 1.0]], [1.0])
        for res in (highs, bnb):
            assert list(res.x) == [1, 0]

    def test_knapsack_style(self):
        # min -(6x0 + 5x1 + 4x2) st 3x0 + 2x1 + 2x2 <= 4 -> pick x1,x2
        highs, bnb = solve_both(
            [-6.0, -5.0, -4.0], [[3.0, 2.0, 2.0]], [4.0]
        )
        for res in (highs, bnb):
            assert res.objective == pytest.approx(-9.0)

    def test_infeasible_detected(self):
        # x0 <= -1 impossible for binary x0
        highs, bnb = solve_both([1.0], [[1.0], [-1.0]], [-1.0, -0.5])
        # constraint -x0 <= -0.5 forces x0 >= 0.5; x0 <= -1 impossible
        for res in (highs, bnb):
            assert not res.feasible

    def test_implication_constraints(self):
        # min x0 - 2x1 st x1 - x0 <= 0 (x1 implies x0)
        highs, bnb = solve_both([1.0, -2.0], [[-1.0, 1.0]], [0.0])
        for res in (highs, bnb):
            assert list(res.x) == [1, 1]
            assert res.objective == pytest.approx(-1.0)

    def test_empty_program(self):
        res = solve_binary_program(
            np.zeros(0), np.zeros((0, 0)), np.zeros(0)
        )
        assert res.feasible
        assert res.objective == 0.0

    def test_solvers_agree_on_random_programs(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            n = int(rng.integers(2, 7))
            m = int(rng.integers(1, 5))
            c = rng.normal(size=n)
            a = rng.normal(size=(m, n))
            b = rng.uniform(0.5, n, size=m)
            highs, bnb = solve_both(c, a, b)
            assert highs.feasible == bnb.feasible
            if highs.feasible:
                assert highs.objective == pytest.approx(
                    bnb.objective, abs=1e-6
                )
