"""Unit tests for the SuspendedQuery structure."""

import pickle

import pytest

from repro import Database, QuerySession, SuspendSpec
from repro.common.errors import StorageError
from repro.core.suspended_query import (
    KIND_DUMP,
    KIND_GOBACK,
    OpSuspendEntry,
    SuspendedQuery,
)
from repro.core.strategies import SuspendPlan

from tests.conftest import make_small_db, tiny_nlj_plan


class TestOpSuspendEntry:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            OpSuspendEntry(op_id=0, kind="teleport", target_control={})

    def test_nominal_bytes_grow_with_saved_rows(self):
        plain = OpSuspendEntry(0, KIND_DUMP, {"a": 1})
        saved = OpSuspendEntry(0, KIND_DUMP, {"a": 1}, saved_rows=[(1,)] * 5)
        assert saved.nominal_bytes() - plain.nominal_bytes() == 5 * 200

    def test_nominal_bytes_include_ckpt_payload(self):
        bare = OpSuspendEntry(0, KIND_GOBACK, {}, ckpt_payload=None)
        loaded = OpSuspendEntry(
            0, KIND_GOBACK, {}, ckpt_payload={"sublists": [1, 2, 3]}
        )
        assert loaded.nominal_bytes() > bare.nominal_bytes()


class TestSuspendedQuery:
    def test_duplicate_entry_rejected(self):
        sq = SuspendedQuery(plan_spec=None, suspend_plan=SuspendPlan())
        sq.add_entry(OpSuspendEntry(0, KIND_DUMP, {}))
        with pytest.raises(StorageError):
            sq.add_entry(OpSuspendEntry(0, KIND_DUMP, {}))

    def test_missing_entry_rejected(self):
        sq = SuspendedQuery(plan_spec=None, suspend_plan=SuspendPlan())
        with pytest.raises(StorageError):
            sq.entry(3)

    def test_structure_is_picklable(self):
        """The structure can be written to disk / shipped to a replica."""
        db = make_small_db()
        session = QuerySession(db, tiny_nlj_plan())
        session.execute(max_rows=20)
        sq = session.suspend(SuspendSpec(strategy="all_goback"))
        clone = pickle.loads(pickle.dumps(sq))
        assert clone.root_rows_emitted == sq.root_rows_emitted
        assert set(clone.entries) == set(sq.entries)

    def test_nominal_bytes_small_for_goback_plans(self):
        """All-GoBack suspension writes control state only: the whole
        SuspendedQuery is a few KB even with a large buffer in play."""
        db = make_small_db()
        session = QuerySession(
            db, tiny_nlj_plan(selectivity=1.0, buffer_tuples=250)
        )
        session.execute(
            suspend_when=lambda rt: rt.op_named("nlj").buffer_fill() >= 250
        )
        sq = session.suspend(SuspendSpec(strategy="all_goback"))
        assert sq.nominal_bytes() < 5_000


class TestMigrationPayloads:
    def test_export_import_roundtrip_to_replica(self):
        """The Grid scenario: dump payloads travel inside the structure
        and are re-homed (and charged) on the replica."""
        db = make_small_db()
        plan = tiny_nlj_plan()
        ref = QuerySession(make_small_db(), plan).execute().rows

        session = QuerySession(db, plan)
        first = session.execute(max_rows=20)
        sq = session.suspend(SuspendSpec(strategy="all_dump"))
        sq.export_payloads(db.state_store)

        replica = db.replicate()
        shipped = pickle.loads(pickle.dumps(sq))
        before_writes = replica.disk.counters.pages_written
        resumed = QuerySession.resume(replica, shipped)
        assert replica.disk.counters.pages_written > before_writes
        assert first.rows + resumed.execute().rows == ref

    def test_import_without_payload_rejected(self):
        db = make_small_db()
        session = QuerySession(db, tiny_nlj_plan(selectivity=1.0))
        session.execute(max_rows=20)
        sq = session.suspend(SuspendSpec(strategy="all_dump"))
        replica = db.replicate()
        # forgot export_payloads: resume on the replica must fail loudly
        with pytest.raises(StorageError):
            QuerySession.resume(replica, sq)
