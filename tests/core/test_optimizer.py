"""Unit tests for the online suspend-plan optimizer (Section 5)."""

import math

import pytest

from repro import QuerySession
from repro.common.errors import SuspendBudgetInfeasibleError
from repro.core.costs import build_cost_model
from repro.core.optimizer import (
    build_lp_plan,
    choose_suspend_plan,
    enumerate_valid_plans,
    estimate_plan_cost,
    exhaustive_best_plan,
)
from repro.core.strategies import Strategy, validate_suspend_plan

from tests.conftest import make_small_db, tiny_nlj_plan, tiny_smj_plan


def session_at(plan, point):
    db = make_small_db()
    session = QuerySession(db, plan)
    session.execute(max_rows=point)
    return session


class TestCostModel:
    def test_every_operator_has_dump_costs(self):
        session = session_at(tiny_nlj_plan(), 20)
        model = build_cost_model(session.runtime)
        assert set(model.d_s) == set(session.runtime.ops)
        assert set(model.d_r) == set(session.runtime.ops)

    def test_links_cover_chain_from_every_stateful_anchor(self):
        session = session_at(tiny_smj_plan(), 20)
        model = build_cost_model(session.runtime)
        anchors = {j for (_, j) in model.links}
        stateful_ids = {
            op.op_id for op in session.runtime.ops.values() if op.STATEFUL
        }
        assert anchors == stateful_ids

    def test_goback_suspend_cost_negligible(self):
        """g^s is control state only — orders of magnitude below d^s for
        an operator holding real heap state."""
        session = session_at(tiny_nlj_plan(selectivity=1.0, buffer_tuples=200), 0)
        db_session = session
        db_session.execute(
            suspend_when=lambda rt: rt.op_named("nlj").buffer_fill() >= 200
        )
        model = build_cost_model(session.runtime)
        nlj = session.op_named("nlj").op_id
        assert model.g_s[(nlj, nlj)] < model.d_s[nlj] / 2

    def test_stateless_cannot_dump_under_chain(self):
        session = session_at(tiny_nlj_plan(), 20)
        model = build_cost_model(session.runtime)
        filt = session.op_named("filter").op_id
        nlj = session.op_named("nlj").op_id
        assert (filt, nlj) in model.cannot_dump_under


class TestLPPlan:
    @pytest.mark.parametrize("point", [1, 40, 200])
    def test_lp_matches_exhaustive(self, point):
        for plan in (tiny_nlj_plan(), tiny_smj_plan()):
            session = session_at(plan, point)
            if session.status.value == "completed":
                continue
            model = build_cost_model(session.runtime)
            lp = estimate_plan_cost(build_lp_plan(model), model)
            ex = estimate_plan_cost(exhaustive_best_plan(model), model)
            assert lp.total == pytest.approx(ex.total)

    @pytest.mark.parametrize("budget", [5.0, 15.0, 60.0])
    def test_budget_respected_and_optimal(self, budget):
        session = session_at(tiny_nlj_plan(), 40)
        model = build_cost_model(session.runtime)
        try:
            lp = build_lp_plan(model, budget=budget)
        except SuspendBudgetInfeasibleError:
            with pytest.raises(SuspendBudgetInfeasibleError):
                exhaustive_best_plan(model, budget=budget)
            return
        cost = estimate_plan_cost(lp, model)
        assert cost.suspend <= budget + 1e-9
        ex = estimate_plan_cost(
            exhaustive_best_plan(model, budget=budget), model
        )
        assert cost.total == pytest.approx(ex.total)

    def test_zero_budget_infeasible(self):
        session = session_at(tiny_nlj_plan(), 40)
        model = build_cost_model(session.runtime)
        with pytest.raises(SuspendBudgetInfeasibleError):
            build_lp_plan(model, budget=0.0)

    def test_lp_plan_is_valid(self):
        session = session_at(tiny_smj_plan(), 30)
        model = build_cost_model(session.runtime)
        plan = build_lp_plan(model)
        validate_suspend_plan(plan, model.topology())

    def test_tight_budget_prefers_goback(self):
        """With a budget below the dump cost the LP must choose GoBack for
        the heap-holding operator (Figure 14's low-budget regime)."""
        session = session_at(tiny_nlj_plan(selectivity=0.9, buffer_tuples=200), 0)
        session.execute(
            suspend_when=lambda rt: rt.op_named("nlj").buffer_fill() >= 200
        )
        model = build_cost_model(session.runtime)
        nlj = session.op_named("nlj").op_id
        tight = build_lp_plan(model, budget=model.d_s[nlj] * 0.5)
        assert tight.decisions[nlj].strategy is Strategy.GOBACK


class TestEnumeration:
    def test_every_enumerated_plan_is_valid(self):
        session = session_at(tiny_smj_plan(), 30)
        model = build_cost_model(session.runtime)
        plans = list(enumerate_valid_plans(model))
        assert len(plans) >= 4
        # distinct decision vectors
        frozen = {
            tuple(sorted((k, str(v)) for k, v in p.decisions.items()))
            for p in plans
        }
        assert len(frozen) == len(plans)


class TestChooseSuspendPlan:
    def test_all_strategies_produce_valid_plans(self):
        session = session_at(tiny_nlj_plan(), 40)
        for strategy in ("lp", "all_dump", "all_goback", "exhaustive"):
            plan = choose_suspend_plan(session.runtime, strategy=strategy)
            validate_suspend_plan(
                plan, build_cost_model(session.runtime).topology()
            )

    def test_unknown_strategy_rejected(self):
        session = session_at(tiny_nlj_plan(), 40)
        with pytest.raises(ValueError):
            choose_suspend_plan(session.runtime, strategy="bogus")
