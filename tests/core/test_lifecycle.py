"""Unit tests for the execute/suspend/resume lifecycle."""

import pytest

from repro import Database, QuerySession, QueryStatus, SuspendSpec
from repro.common.errors import ReproError
from repro.engine.plan import ScanSpec

from tests.conftest import make_small_db, tiny_nlj_plan


class TestExecute:
    def test_runs_to_completion(self):
        db = make_small_db()
        session = QuerySession(db, tiny_nlj_plan())
        result = session.execute()
        assert result.status is QueryStatus.COMPLETED
        assert result.rows

    def test_max_rows_pauses(self):
        db = make_small_db()
        session = QuerySession(db, tiny_nlj_plan())
        result = session.execute(max_rows=10)
        assert len(result.rows) == 10
        assert session.status is QueryStatus.RUNNING
        more = session.execute(max_rows=5)
        assert len(more.rows) == 5
        assert more.rows[0] != result.rows[0]

    def test_collect_false_counts_without_storing(self):
        db = make_small_db()
        session = QuerySession(db, tiny_nlj_plan())
        result = session.execute(max_rows=10, collect=False)
        assert result.rows == []
        assert session.rows == []

    def test_elapsed_reports_virtual_time(self):
        db = make_small_db()
        session = QuerySession(db, tiny_nlj_plan())
        result = session.execute(max_rows=10)
        assert result.elapsed > 0

    def test_cannot_execute_after_completion(self):
        db = make_small_db()
        session = QuerySession(db, ScanSpec("R"))
        session.execute()
        with pytest.raises(ReproError):
            session.execute()


class TestSuspendPhase:
    def test_suspend_releases_operators(self):
        db = make_small_db()
        session = QuerySession(db, tiny_nlj_plan())
        session.execute(max_rows=10)
        session.suspend(SuspendSpec(strategy="all_dump"))
        assert session.status is QueryStatus.SUSPENDED
        assert session.runtime.ops == {}

    def test_cannot_suspend_twice(self):
        db = make_small_db()
        session = QuerySession(db, tiny_nlj_plan())
        session.execute(max_rows=5)
        session.suspend()
        with pytest.raises(ReproError):
            session.suspend()

    def test_suspend_cost_recorded(self):
        db = make_small_db()
        session = QuerySession(db, tiny_nlj_plan())
        session.execute(max_rows=5)
        session.suspend(SuspendSpec(strategy="all_dump"))
        assert session.last_suspend_cost > 0

    def test_goback_suspend_much_cheaper_than_dump(self):
        """The core Figure 8 suspend-time claim."""
        costs = {}
        for strategy in ("all_dump", "all_goback"):
            db = make_small_db()
            session = QuerySession(
                db, tiny_nlj_plan(selectivity=1.0, buffer_tuples=250)
            )
            session.execute(
                suspend_when=lambda rt: rt.op_named("nlj").buffer_fill() >= 250
            )
            session.suspend(SuspendSpec(strategy=strategy))
            costs[strategy] = session.last_suspend_cost
        assert costs["all_goback"] < costs["all_dump"] / 2

    def test_suspended_query_records_plans(self):
        db = make_small_db()
        plan = tiny_nlj_plan()
        session = QuerySession(db, plan)
        session.execute(max_rows=5)
        sq = session.suspend(SuspendSpec(strategy="all_dump"))
        assert sq.plan_spec == plan
        assert sq.suspend_plan.source == "all_dump"
        assert sq.root_rows_emitted == 5
        assert len(sq.entries) == 4


class TestResumePhase:
    def test_resume_continues_exactly(self):
        db = make_small_db()
        plan = tiny_nlj_plan()
        ref = QuerySession(make_small_db(), plan).execute().rows
        session = QuerySession(db, plan)
        first = session.execute(max_rows=33)
        sq = session.suspend(SuspendSpec(strategy="lp"))
        resumed = QuerySession.resume(db, sq)
        assert resumed.status is QueryStatus.RUNNING
        assert first.rows + resumed.execute().rows == ref

    def test_resume_cost_recorded(self):
        db = make_small_db()
        session = QuerySession(db, tiny_nlj_plan())
        session.execute(max_rows=5)
        sq = session.suspend(SuspendSpec(strategy="all_dump"))
        resumed = QuerySession.resume(db, sq)
        assert resumed.last_resume_cost > 0

    def test_resume_twice_from_same_sq(self):
        """Suspend during resume: discard the half-resumed query and
        resume again later from the same SuspendedQuery (Section 3.3)."""
        db = make_small_db()
        plan = tiny_nlj_plan()
        ref = QuerySession(make_small_db(), plan).execute().rows
        session = QuerySession(db, plan)
        first = session.execute(max_rows=12)
        sq = session.suspend(SuspendSpec(strategy="lp"))
        discarded = QuerySession.resume(db, sq)
        del discarded
        resumed = QuerySession.resume(db, sq)
        assert first.rows + resumed.execute().rows == ref

    def test_suspend_immediately_after_resume(self):
        db = make_small_db()
        plan = tiny_nlj_plan()
        ref = QuerySession(make_small_db(), plan).execute().rows
        session = QuerySession(db, plan)
        first = session.execute(max_rows=12)
        sq = session.suspend(SuspendSpec(strategy="all_goback"))
        resumed = QuerySession.resume(db, sq)
        sq2 = resumed.suspend(SuspendSpec(strategy="lp"))  # no execution in between
        final = QuerySession.resume(db, sq2)
        assert first.rows + final.execute().rows == ref
