"""Unit tests for session introspection (stats rows, plan rendering)."""

import pytest

from repro import QuerySession
from repro.harness.report import format_table

from tests.conftest import make_small_db, tiny_nlj_plan, tiny_smj_plan


class TestStatsRows:
    def test_one_row_per_operator(self):
        db = make_small_db()
        session = QuerySession(db, tiny_smj_plan())
        session.execute(max_rows=30)
        rows = session.stats_rows()
        assert len(rows) == 6
        assert {r["op"] for r in rows} >= {"mj", "sort_R", "sort_S"}

    def test_work_and_emitted_populated(self):
        db = make_small_db()
        session = QuerySession(db, tiny_nlj_plan())
        session.execute(max_rows=50)
        rows = {r["op"]: r for r in session.stats_rows()}
        assert rows["nlj"]["emitted"] == 50
        assert rows["scan_R"]["work"] > 0
        assert rows["nlj"]["heap_tuples"] > 0

    def test_checkpoint_counts_visible(self):
        db = make_small_db()
        session = QuerySession(db, tiny_nlj_plan(buffer_tuples=30))
        session.execute()
        rows = {r["op"]: r for r in session.stats_rows()}
        assert rows["nlj"]["latest_ckpt_seq"] >= 2
        assert rows["nlj"]["checkpoints"] >= 1

    def test_renders_as_table(self):
        db = make_small_db()
        session = QuerySession(db, tiny_nlj_plan())
        session.execute(max_rows=5)
        text = format_table(session.stats_rows())
        assert "emitted" in text and "nlj" in text


class TestDescribePlan:
    def test_tree_indentation(self):
        db = make_small_db()
        session = QuerySession(db, tiny_nlj_plan())
        text = session.describe_plan()
        lines = text.splitlines()
        assert lines[0].startswith("nlj")
        assert lines[1].startswith("  filter")
        assert lines[2].startswith("    scan_R")
        assert lines[3].startswith("  scan_S")
