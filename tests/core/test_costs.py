"""Unit tests for the suspend-time cost model (chain links, c_{i,j})."""

import pytest

from repro import QuerySession
from repro.core.costs import build_cost_model

from tests.conftest import make_small_db, tiny_nlj_plan, tiny_smj_plan


class TestChainLinks:
    def test_anchor_link_targets_latest_checkpoint(self):
        db = make_small_db()
        session = QuerySession(db, tiny_nlj_plan())
        session.execute(max_rows=30)
        model = build_cost_model(session.runtime)
        nlj = session.op_named("nlj").op_id
        link = model.links[(nlj, nlj)]
        latest = session.runtime.graph.latest_checkpoint(nlj)
        assert link.fulfilling_ckpt_id == latest.ckpt_id

    def test_stream_child_gets_fresh_link_under_own_anchor(self):
        """Block NLJ's inner scan keeps its current position when the NLJ
        goes back to its own checkpoint — a zero-cost 'fresh' link."""
        db = make_small_db()
        session = QuerySession(db, tiny_nlj_plan())
        session.execute(max_rows=30)
        model = build_cost_model(session.runtime)
        nlj = session.op_named("nlj").op_id
        inner = session.op_named("scan_S").op_id
        link = model.links[(inner, nlj)]
        assert link.fresh
        assert model.g_r[(inner, nlj)] <= 1.0  # reposition only

    def test_heap_child_redo_grows_with_scan_progress(self):
        """The scan's g^r is its exact redo: pages between the contract
        position and now — the 'online statistics' the paper leans on."""
        redos = []
        for fill in (30, 120):
            db = make_small_db()
            session = QuerySession(
                db, tiny_nlj_plan(selectivity=1.0, buffer_tuples=150)
            )
            session.execute(
                suspend_when=lambda rt: rt.op_named("nlj").buffer_fill()
                >= fill
            )
            model = build_cost_model(session.runtime)
            scan = session.op_named("scan_R").op_id
            nlj = session.op_named("nlj").op_id
            redos.append(model.g_r[(scan, nlj)])
        assert redos[1] > redos[0]

    def test_dump_cost_tracks_heap_pages(self):
        db = make_small_db()
        session = QuerySession(db, tiny_nlj_plan(selectivity=1.0, buffer_tuples=250))
        session.execute(
            suspend_when=lambda rt: rt.op_named("nlj").buffer_fill() >= 250
        )
        model = build_cost_model(session.runtime)
        nlj = session.op_named("nlj")
        write_cost = db.cost_model.page_write_cost
        assert model.d_s[nlj.op_id] >= nlj.heap_pages() * write_cost

    def test_cannot_dump_set_when_checkpoint_advanced(self):
        """Run long enough for the NLJ to checkpoint past the root-anchored
        contract: c_{i,j} must then force GoBack."""
        db = make_small_db()
        plan = tiny_smj_plan()
        session = QuerySession(db, plan)
        session.execute(max_rows=80)
        model = build_cost_model(session.runtime)
        mj = session.op_named("mj").op_id
        sort_r = session.op_named("sort_R").op_id
        link = model.links.get((sort_r, mj))
        if link is not None:
            latest = session.runtime.graph.latest_checkpoint(sort_r)
            fulfilling = session.runtime.graph.checkpoint(
                link.fulfilling_ckpt_id
            )
            expected = latest.seq > fulfilling.seq
            assert ((sort_r, mj) in model.cannot_dump_under) == expected

    def test_topology_reflects_plan(self):
        db = make_small_db()
        session = QuerySession(db, tiny_smj_plan())
        session.execute(max_rows=5)
        model = build_cost_model(session.runtime)
        topo = model.topology()
        assert topo.root_id() == session.root.op_id
        assert topo.height() == 4
