"""Unit tests for the offline/static optimizer baseline (Figure 12)."""

import pytest

from repro import QuerySession
from repro.core.static_optimizer import choose_static_plan
from repro.core.strategies import Strategy
from repro.workloads import build_nlj_s, build_skewed_nlj_s


def plan_kind(plan):
    kinds = {d.strategy for d in plan.decisions.values()}
    if kinds == {Strategy.DUMP}:
        return "all_dump"
    return "mostly_goback" if Strategy.GOBACK in kinds else "all_dump"


class TestStaticOptimizer:
    def test_low_table_selectivity_chooses_dump(self):
        db, plan = build_nlj_s(selectivity=0.05, scale=400)
        session = QuerySession(db, plan)
        session.execute(max_rows=1)
        chosen = choose_static_plan(session.runtime)
        assert plan_kind(chosen) == "all_dump"
        assert chosen.source == "static"

    def test_high_table_selectivity_chooses_goback(self):
        db, plan = build_nlj_s(selectivity=0.9, scale=400)
        session = QuerySession(db, plan)
        session.execute(max_rows=1)
        chosen = choose_static_plan(session.runtime)
        assert plan_kind(chosen) == "mostly_goback"

    def test_skewed_table_fools_static_optimizer(self):
        """The Figure 12 core claim: table-level effective selectivity
        (~0.37) exceeds the crossover, so the static optimizer picks
        all-GoBack regardless of which region execution is in."""
        db, plan = build_skewed_nlj_s(scale=400)
        session = QuerySession(db, plan)
        # Execution is inside the low-selectivity (0.1) prefix, where
        # all-DumpState would be the right call.
        session.execute(
            suspend_when=lambda rt: rt.op_named("scan_R").tuples_consumed()
            >= 1000
        )
        chosen = choose_static_plan(session.runtime)
        assert plan_kind(chosen) == "mostly_goback"

    def test_static_choice_is_suspend_point_independent(self):
        db, plan = build_skewed_nlj_s(scale=400)
        kinds = set()
        for point in (500, 2000, 5000):
            db2, plan2 = build_skewed_nlj_s(scale=400)
            session = QuerySession(db2, plan2)
            session.execute(
                suspend_when=lambda rt: rt.op_named(
                    "scan_R"
                ).tuples_consumed()
                >= point
            )
            kinds.add(plan_kind(choose_static_plan(session.runtime)))
        assert len(kinds) == 1
