"""Unit tests for the DP suspend-plan optimizer (budget-free exact)."""

import math
import time

import pytest

from repro import QuerySession, SuspendSpec
from repro.core.costs import build_cost_model
from repro.core.optimizer import (
    build_lp_plan,
    choose_suspend_plan,
    estimate_plan_cost,
    exhaustive_best_plan,
)
from repro.core.strategies import validate_suspend_plan
from repro.core.tree_optimizer import build_dp_plan
from repro.workloads import build_nlj_chain

from tests.conftest import make_small_db, tiny_nlj_plan, tiny_smj_plan


def session_at(plan, point):
    db = make_small_db()
    session = QuerySession(db, plan)
    session.execute(max_rows=point)
    return session


class TestDPOptimizer:
    @pytest.mark.parametrize("point", [1, 30, 150])
    @pytest.mark.parametrize("plan_fn", [tiny_nlj_plan, tiny_smj_plan])
    def test_dp_matches_exhaustive_and_lp(self, plan_fn, point):
        session = session_at(plan_fn(), point)
        if session.status.value == "completed":
            return
        model = build_cost_model(session.runtime)
        dp = estimate_plan_cost(build_dp_plan(model), model)
        lp = estimate_plan_cost(build_lp_plan(model), model)
        ex = estimate_plan_cost(exhaustive_best_plan(model), model)
        assert dp.total == pytest.approx(ex.total)
        assert dp.total == pytest.approx(lp.total)

    def test_dp_plan_is_valid(self):
        session = session_at(tiny_smj_plan(), 40)
        model = build_cost_model(session.runtime)
        plan = build_dp_plan(model)
        validate_suspend_plan(plan, model.topology())
        assert plan.source == "dp"

    def test_dp_strategy_via_lifecycle(self):
        db = make_small_db()
        plan = tiny_nlj_plan()
        ref = QuerySession(make_small_db(), plan).execute().rows
        session = QuerySession(db, plan)
        first = session.execute(max_rows=25)
        sq = session.suspend(SuspendSpec(strategy="dp"))
        resumed = QuerySession.resume(db, sq)
        assert first.rows + resumed.execute().rows == ref

    def test_dp_with_budget_falls_back_to_lp(self):
        session = session_at(tiny_nlj_plan(), 40)
        plan = choose_suspend_plan(session.runtime, strategy="dp", budget=5.0)
        model = build_cost_model(session.runtime)
        assert estimate_plan_cost(plan, model).suspend <= 5.0 + 1e-9

    def test_dp_much_faster_than_mip_on_large_chains(self):
        db, chain = build_nlj_chain(61)
        session = QuerySession(db, chain)
        session.execute(max_rows=2)
        model = build_cost_model(session.runtime)

        start = time.perf_counter()
        dp = build_dp_plan(model)
        dp_time = time.perf_counter() - start

        start = time.perf_counter()
        lp = build_lp_plan(model)
        lp_time = time.perf_counter() - start

        assert estimate_plan_cost(dp, model).total == pytest.approx(
            estimate_plan_cost(lp, model).total, rel=1e-9
        )
        assert dp_time < lp_time
