"""Unit tests for checkpoints, contracts, and contract-graph maintenance."""

import pytest

from repro import QuerySession
from repro.common.errors import ContractError
from repro.core.checkpoint import Checkpoint, Contract, control_state_bytes
from repro.core.contract_graph import ContractGraph

from tests.conftest import make_small_db, tiny_nlj_plan, tiny_smj_plan


def ckpt(graph, op_id, payload=None, reactive=False):
    c = Checkpoint(
        op_id=op_id,
        seq=graph.next_seq(op_id),
        payload=payload or {},
        work_at=0.0,
        emitted_at=0,
        reactive=reactive,
    )
    return graph.add_checkpoint(c)


def contract(graph, parent_ckpt, child_op, child_ckpt, control=None):
    c = Contract(
        parent_op_id=parent_ckpt.op_id,
        child_op_id=child_op,
        control=control or {},
        child_ckpt_id=child_ckpt.ckpt_id,
        anchor_ckpt_id=parent_ckpt.ckpt_id,
    )
    return graph.add_contract(c)


class TestContractBasics:
    def test_contract_requires_exactly_one_anchor(self):
        with pytest.raises(ValueError):
            Contract(
                parent_op_id=0, child_op_id=1, control={}, child_ckpt_id=1
            )

    def test_contract_against_unknown_checkpoint_rejected(self):
        graph = ContractGraph()
        parent = ckpt(graph, 0)
        with pytest.raises(ContractError):
            graph.add_contract(
                Contract(
                    parent_op_id=0,
                    child_op_id=1,
                    control={},
                    child_ckpt_id=999,
                    anchor_ckpt_id=parent.ckpt_id,
                )
            )

    def test_control_state_bytes_small_for_scalars(self):
        assert control_state_bytes({"page": 1, "slot": 2}) < 200

    def test_control_state_bytes_charges_saved_rows(self):
        small = control_state_bytes({"saved_rows": []})
        big = control_state_bytes({"saved_rows": [(1, 2, 3)] * 10})
        assert big - small == 10 * 200

    def test_control_state_bytes_charges_full_state_heap(self):
        flat = control_state_bytes({"heap": [(1,)] * 5})
        nested = control_state_bytes({"heap": {"a": [(1,)] * 3, "b": [(2,)] * 2}})
        assert flat >= 5 * 200
        assert nested >= 5 * 200


class TestLookups:
    def test_latest_checkpoint_tracks_newest(self):
        graph = ContractGraph()
        first = ckpt(graph, 7)
        second = ckpt(graph, 7)
        assert graph.latest_checkpoint(7) is second
        assert first.seq < second.seq

    def test_contract_from(self):
        graph = ContractGraph()
        p = ckpt(graph, 0)
        c = ckpt(graph, 1)
        ctr = contract(graph, p, 1, c)
        assert graph.contract_from(p, 1) is ctr
        assert graph.has_contract_from(p, 1)
        assert not graph.has_contract_from(p, 2)

    def test_contracts_of_child(self):
        graph = ContractGraph()
        p = ckpt(graph, 0)
        c = ckpt(graph, 1)
        contract(graph, p, 1, c)
        assert len(graph.contracts_of_child(1)) == 1
        assert graph.contracts_of_child(2) == []


class TestPruning:
    def test_unreferenced_old_checkpoint_pruned(self):
        graph = ContractGraph()
        old = ckpt(graph, 3)
        new = ckpt(graph, 3)
        removed = graph.prune()
        assert removed == 1
        with pytest.raises(ContractError):
            graph.checkpoint(old.ckpt_id)
        assert graph.checkpoint(new.ckpt_id) is new

    def test_referenced_checkpoint_survives(self):
        graph = ContractGraph()
        parent = ckpt(graph, 0)
        child_old = ckpt(graph, 1)
        contract(graph, parent, 1, child_old)
        ckpt(graph, 1)  # newer child checkpoint
        graph.prune()
        # old child checkpoint still referenced by the live contract
        assert graph.checkpoint(child_old.ckpt_id) is child_old

    def test_cascade_prune(self):
        """Deleting a parent checkpoint kills its contracts and then the
        child checkpoints those contracts kept alive (Example 8)."""
        graph = ContractGraph()
        p_old = ckpt(graph, 0)
        c_old = ckpt(graph, 1)
        contract(graph, p_old, 1, c_old)
        ckpt(graph, 0)  # new parent ckpt
        c_new = ckpt(graph, 1)  # new child ckpt
        removed = graph.prune()
        assert removed >= 3  # old parent ckpt, contract, old child ckpt
        assert graph.latest_checkpoint(1) is c_new
        assert graph.num_contracts == 0

    def test_nested_contract_keeps_chain_alive(self):
        graph = ContractGraph()
        p = ckpt(graph, 0)
        q_ck = ckpt(graph, 1)
        outer = Contract(
            parent_op_id=0,
            child_op_id=1,
            control={},
            child_ckpt_id=q_ck.ckpt_id,
            anchor_ckpt_id=p.ckpt_id,
        )
        s_ck = ckpt(graph, 2)
        nested = Contract(
            parent_op_id=1,
            child_op_id=2,
            control={},
            child_ckpt_id=s_ck.ckpt_id,
            anchor_contract_id=outer.contract_id,
        )
        outer.nested[2] = nested
        graph.add_contract(outer)
        ckpt(graph, 2)  # newer ckpt for op 2
        graph.prune()
        # nested contract anchored in the live outer contract keeps s_ck
        assert graph.checkpoint(s_ck.ckpt_id) is s_ck
        # now kill the anchor checkpoint: everything cascades
        ckpt(graph, 0)
        graph.prune()
        with pytest.raises(ContractError):
            graph.checkpoint(s_ck.ckpt_id)


class TestMigration:
    def test_migrates_when_no_output_since_signing(self):
        graph = ContractGraph()
        p = ckpt(graph, 0)
        c_old = ckpt(graph, 1)
        ctr = contract(graph, p, 1, c_old, control={"pos": 5})
        c_new = ckpt(graph, 1)
        moved = graph.migrate_contracts(
            1, c_new, tuples_emitted=0, new_control={"pos": 9}, work_now=3.0
        )
        assert moved == 1
        assert ctr.child_ckpt_id == c_new.ckpt_id
        assert ctr.control == {"pos": 9}

    def test_no_migration_after_output(self):
        graph = ContractGraph()
        p = ckpt(graph, 0)
        c_old = ckpt(graph, 1)
        ctr = Contract(
            parent_op_id=0,
            child_op_id=1,
            control={},
            child_ckpt_id=c_old.ckpt_id,
            anchor_ckpt_id=p.ckpt_id,
            emitted_at_signing=4,
        )
        graph.add_contract(ctr)
        c_new = ckpt(graph, 1)
        moved = graph.migrate_contracts(1, c_new, 9, {}, 0.0)
        assert moved == 0
        assert ctr.child_ckpt_id == c_old.ckpt_id

    def test_saved_rows_block_migration(self):
        graph = ContractGraph()
        p = ckpt(graph, 0)
        c_old = ckpt(graph, 1)
        ctr = contract(graph, p, 1, c_old)
        ctr.saved_rows = [(1,)]
        c_new = ckpt(graph, 1)
        assert graph.migrate_contracts(1, c_new, 0, {}, 0.0) == 0


class TestTheorem1:
    def test_bound_holds_during_nlj_execution(self):
        db = make_small_db()
        session = QuerySession(db, tiny_nlj_plan(selectivity=1.0, buffer_tuples=30))
        session.execute()  # invariant checked after every checkpoint
        graph = session.runtime.graph
        graph.check_theorem1_bound(
            num_operators=4, height=session.runtime.plan_height()
        )

    def test_bound_holds_during_smj_execution(self):
        db = make_small_db()
        session = QuerySession(db, tiny_smj_plan())
        session.execute()
        session.runtime.graph.check_theorem1_bound(6, 4)

    def test_violation_detected(self):
        graph = ContractGraph()
        for _ in range(5):
            # five live checkpoints of one operator, all kept alive by
            # contracts from distinct parents
            c = ckpt(graph, 9)
            p = ckpt(graph, 100 + c.ckpt_id)
            contract(graph, p, 9, c)
        with pytest.raises(ContractError):
            graph.check_theorem1_bound(num_operators=2, height=2)

    def test_graph_stays_kilobytes_sized(self):
        """Section 3.4: the whole graph is typically a few KB."""
        db = make_small_db()
        session = QuerySession(db, tiny_smj_plan())
        session.execute(max_rows=50)
        assert session.runtime.graph.total_nominal_bytes() < 20_000
