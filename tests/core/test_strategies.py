"""Unit tests for suspend plans and their validity rules (Eqs. 3-6)."""

import pytest

from repro.common.errors import InvalidSuspendPlanError
from repro.core.strategies import (
    OpDecision,
    PlanTopology,
    Strategy,
    SuspendPlan,
    all_dump_plan,
    all_goback_plan,
    validate_suspend_plan,
)


def chain_topology(stateful=(True, True, True), cannot_dump=()):
    """A 3-operator chain: 0 <- 1 <- 2 (0 is root)."""
    return PlanTopology(
        parent={1: 0, 2: 1},
        stateful={i: s for i, s in enumerate(stateful)},
        has_checkpoint={i: s for i, s in enumerate(stateful)},
        cannot_dump_under=frozenset(cannot_dump),
    )


def plan(*decisions):
    return SuspendPlan(decisions={i: d for i, d in enumerate(decisions)})


D = OpDecision.dump
G = OpDecision.goback


class TestOpDecision:
    def test_goback_requires_anchor(self):
        with pytest.raises(InvalidSuspendPlanError):
            OpDecision(Strategy.GOBACK)

    def test_dump_rejects_anchor(self):
        with pytest.raises(InvalidSuspendPlanError):
            OpDecision(Strategy.DUMP, goback_anchor=1)


class TestTopology:
    def test_root_and_ancestors(self):
        topo = chain_topology()
        assert topo.root_id() == 0
        assert topo.ancestors_and_self(2) == [2, 1, 0]
        assert topo.height() == 3


class TestValidation:
    def test_all_dump_valid(self):
        validate_suspend_plan(plan(D(), D(), D()), chain_topology())

    def test_full_chain_valid(self):
        validate_suspend_plan(plan(G(0), G(0), G(0)), chain_topology())

    def test_chain_then_dump_valid_when_c_allows(self):
        validate_suspend_plan(plan(G(0), G(0), D()), chain_topology())

    def test_rule3_missing_decision(self):
        with pytest.raises(InvalidSuspendPlanError):
            validate_suspend_plan(SuspendPlan(decisions={0: D()}), chain_topology())

    def test_rule4_chain_must_pass_through_parent(self):
        # op2 anchors at 0 but op1 dumps: invalid
        with pytest.raises(InvalidSuspendPlanError):
            validate_suspend_plan(plan(G(0), D(), G(0)), chain_topology())

    def test_rule5_own_chain_needs_dumping_parent(self):
        # op1 starts its own chain under a GoBack parent: invalid
        with pytest.raises(InvalidSuspendPlanError):
            validate_suspend_plan(plan(G(0), G(1), G(1)), chain_topology())

    def test_own_chain_after_dumping_parent_valid(self):
        validate_suspend_plan(plan(D(), G(1), G(1)), chain_topology())

    def test_rule6_forced_propagation(self):
        topo = chain_topology(cannot_dump={(2, 0)})
        with pytest.raises(InvalidSuspendPlanError):
            validate_suspend_plan(plan(G(0), G(0), D()), topo)
        validate_suspend_plan(plan(G(0), G(0), G(0)), topo)

    def test_stateless_cannot_start_chain(self):
        topo = chain_topology(stateful=(True, False, True))
        with pytest.raises(InvalidSuspendPlanError):
            validate_suspend_plan(plan(D(), G(1), G(1)), topo)

    def test_anchor_must_be_ancestor(self):
        with pytest.raises(InvalidSuspendPlanError):
            validate_suspend_plan(plan(D(), D(), G(5)), chain_topology())

    def test_goback_requires_live_checkpoint(self):
        topo = PlanTopology(
            parent={1: 0},
            stateful={0: True, 1: True},
            has_checkpoint={0: False, 1: True},
            cannot_dump_under=frozenset(),
        )
        with pytest.raises(InvalidSuspendPlanError):
            validate_suspend_plan(
                SuspendPlan(decisions={0: G(0), 1: G(0)}), topo
            )


class TestCannedPlans:
    def test_all_dump(self):
        p = all_dump_plan(chain_topology())
        assert p.is_all(Strategy.DUMP)
        validate_suspend_plan(p, chain_topology())

    def test_all_goback_full_chain(self):
        topo = chain_topology()
        p = all_goback_plan(topo)
        assert p.decisions[0] == G(0)
        assert p.decisions[1] == G(0)
        assert p.decisions[2] == G(0)

    def test_all_goback_with_stateless_root(self):
        topo = chain_topology(stateful=(False, True, True))
        p = all_goback_plan(topo)
        # stateless root dumps (control only); op1 starts the chain
        assert p.decisions[0] == D()
        assert p.decisions[1] == G(1)
        assert p.decisions[2] == G(1)
        validate_suspend_plan(p, topo)

    def test_describe_renders_strategies(self):
        p = plan(G(0), G(0), D())
        text = p.describe({0: "nlj0", 1: "nlj1", 2: "scan"})
        assert "nlj0: GoBack(to self)" in text
        assert "nlj1: GoBack(to nlj0)" in text
        assert "scan: DumpState" in text
