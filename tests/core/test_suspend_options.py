"""The SuspendSpec API and its deprecation shims.

One dataclass — :class:`SuspendSpec` — now carries every suspend knob
(strategy, budget, explicit plan, durable persistence). These tests pin
the new contract:

- ``SuspendSpec`` itself is warning-free and validates its fields;
- ``SuspendOptions`` still constructs (it *is* a SuspendSpec) but warns;
- the PR-1 string/keyword forms (``suspend("lp")``,
  ``strategy=/budget=/plan=``) are **removed** and raise TypeError;
- the persistence keywords (``persist_to=/image_id=/image_meta=``) warn
  and fold into the spec;
- ``SchedulerConfig``'s legacy per-field spellings warn and fold into
  ``config.suspend``.
"""

import math
import warnings

import pytest

from repro import QuerySession, SuspendStrategy
from repro.core import lifecycle
from repro.core.lifecycle import SuspendOptions, SuspendSpec
from repro.durability import ImageStore
from repro.service.core import SchedulerConfig
from tests.conftest import make_small_db, tiny_nlj_plan


def mid_flight_session():
    db = make_small_db()
    session = QuerySession(db, tiny_nlj_plan())
    session.execute(max_rows=20)
    return db, session


class TestSuspendSpec:
    def test_defaults_are_unbudgeted_lp(self):
        spec = SuspendSpec()
        assert spec.strategy is SuspendStrategy.LP
        assert spec.budget == math.inf
        assert spec.plan is None
        assert spec.persist_to is None
        assert spec.delta is True

    def test_strategy_strings_are_coerced(self):
        assert (
            SuspendSpec(strategy="all_dump").strategy
            is SuspendStrategy.ALL_DUMP
        )

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            SuspendSpec(strategy="made_up")

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            SuspendSpec(budget=-1.0)

    def test_suspend_with_spec_emits_no_warning(self):
        db, session = mid_flight_session()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            sq = session.suspend(
                SuspendSpec(strategy=SuspendStrategy.ALL_DUMP)
            )
        assert sq.suspend_plan is not None

    def test_suspend_with_no_arguments_emits_no_warning(self):
        db, session = mid_flight_session()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            session.suspend()

    def test_spec_drives_persistence(self, tmp_path):
        db, session = mid_flight_session()
        store = ImageStore(str(tmp_path))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            session.suspend(
                SuspendSpec(persist_to=store, image_id="spec-img")
            )
        assert session.last_image.image_id == "spec-img"
        assert store.manifest("spec-img")


class TestSuspendOptionsShim:
    @pytest.fixture(autouse=True)
    def _fresh_warning_latch(self):
        # The deprecation fires once per process; rearm it so each test
        # observes the first-use behaviour.
        lifecycle._SUSPEND_OPTIONS_WARNED = False
        yield
        lifecycle._SUSPEND_OPTIONS_WARNED = False

    def test_construction_warns_but_works(self):
        with pytest.warns(DeprecationWarning, match="SuspendSpec"):
            options = SuspendOptions(strategy="all_dump")
        assert isinstance(options, SuspendSpec)
        assert options.strategy is SuspendStrategy.ALL_DUMP

    def test_warns_exactly_once_per_process(self):
        with pytest.warns(DeprecationWarning, match="SuspendSpec"):
            SuspendOptions()
        # Every later construction — even with warning filters wide open —
        # must stay silent: the latch is per-process, not per-filter.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            SuspendOptions(strategy="all_dump")
            SuspendOptions(budget=10.0)

    def test_suspend_accepts_the_deprecated_subclass(self):
        db, session = mid_flight_session()
        with pytest.warns(DeprecationWarning):
            options = SuspendOptions()
        sq = session.suspend(options)
        resumed = QuerySession.resume(db, sq)
        assert resumed.execute().rows is not None


class TestRemovedKeywordForms:
    def test_strategy_keyword_raises(self):
        db, session = mid_flight_session()
        with pytest.raises(TypeError, match="SuspendSpec"):
            session.suspend(strategy="all_dump")

    def test_budget_and_plan_keywords_raise(self):
        db, session = mid_flight_session()
        with pytest.raises(TypeError):
            session.suspend(budget=200.0)
        with pytest.raises(TypeError):
            session.suspend(plan=None)

    def test_positional_string_raises(self):
        db, session = mid_flight_session()
        with pytest.raises(TypeError):
            session.suspend("all_goback")

    def test_mixing_spec_and_removed_keywords_rejected(self):
        db, session = mid_flight_session()
        with pytest.raises(TypeError):
            session.suspend(SuspendSpec(), strategy="lp")


class TestLegacyPersistenceKeywords:
    def test_persist_to_keyword_warns_and_folds(self, tmp_path):
        db, session = mid_flight_session()
        store = ImageStore(str(tmp_path))
        with pytest.warns(DeprecationWarning, match="SuspendSpec"):
            session.suspend(persist_to=store, image_id="legacy-img")
        assert session.last_image.image_id == "legacy-img"

    def test_legacy_and_spec_forms_are_equivalent(self, tmp_path):
        rows = {}
        for form in ("legacy", "spec"):
            db = make_small_db()
            session = QuerySession(db, tiny_nlj_plan())
            first = session.execute(max_rows=20)
            store = ImageStore(str(tmp_path / form))
            if form == "legacy":
                with pytest.warns(DeprecationWarning):
                    session.suspend(persist_to=store, image_id="img")
            else:
                session.suspend(
                    SuspendSpec(persist_to=store, image_id="img")
                )
            sq = store.load("img")
            rest = QuerySession.resume(db, sq).execute()
            rows[form] = first.rows + rest.rows
        assert rows["legacy"] == rows["spec"]


class TestSchedulerConfigShim:
    def test_legacy_fields_warn_and_fold(self, tmp_path):
        with pytest.warns(DeprecationWarning, match="suspend="):
            config = SchedulerConfig(
                suspend_budget=120.0, image_store=str(tmp_path)
            )
        assert config.suspend.budget == 120.0
        assert config.suspend.persist_to == str(tmp_path)
        # The mirrors stay readable for straggler call sites.
        assert config.suspend_budget == 120.0
        assert config.image_store == str(tmp_path)

    def test_spec_field_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            config = SchedulerConfig(suspend=SuspendSpec(budget=75.0))
        assert config.suspend.budget == 75.0
