"""The SuspendOptions API and the legacy-keyword deprecation shim."""

import math
import warnings

import pytest

from repro import QuerySession, SuspendOptions, SuspendStrategy
from tests.conftest import make_small_db, tiny_nlj_plan


def mid_flight_session():
    db = make_small_db()
    session = QuerySession(db, tiny_nlj_plan())
    session.execute(max_rows=20)
    return db, session


class TestSuspendOptions:
    def test_defaults_are_unbudgeted_lp(self):
        options = SuspendOptions()
        assert options.strategy is SuspendStrategy.LP
        assert options.budget == math.inf
        assert options.plan is None

    def test_strategy_strings_are_coerced(self):
        assert (
            SuspendOptions(strategy="all_dump").strategy
            is SuspendStrategy.ALL_DUMP
        )

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            SuspendOptions(strategy="made_up")

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            SuspendOptions(budget=-1.0)

    def test_suspend_with_options_emits_no_warning(self):
        db, session = mid_flight_session()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            sq = session.suspend(
                SuspendOptions(strategy=SuspendStrategy.ALL_DUMP)
            )
        assert sq.suspend_plan is not None

    def test_suspend_with_no_arguments_emits_no_warning(self):
        db, session = mid_flight_session()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            session.suspend()


class TestDeprecatedKeywordForm:
    def test_strategy_keyword_warns_and_still_works(self):
        db, session = mid_flight_session()
        with pytest.warns(DeprecationWarning, match="SuspendOptions"):
            sq = session.suspend(strategy="all_dump", budget=200.0)
        resumed = QuerySession.resume(db, sq)
        assert resumed.execute().rows is not None

    def test_positional_string_warns(self):
        db, session = mid_flight_session()
        with pytest.warns(DeprecationWarning):
            session.suspend("all_goback")

    def test_mixing_options_and_keywords_rejected(self):
        db, session = mid_flight_session()
        with pytest.raises(TypeError):
            session.suspend(SuspendOptions(), strategy="lp")

    def test_legacy_and_options_forms_are_equivalent(self):
        rows = {}
        for form in ("legacy", "options"):
            db = make_small_db()
            session = QuerySession(db, tiny_nlj_plan())
            first = session.execute(max_rows=20)
            if form == "legacy":
                with pytest.warns(DeprecationWarning):
                    sq = session.suspend(strategy="lp")
            else:
                sq = session.suspend(
                    SuspendOptions(strategy=SuspendStrategy.LP)
                )
            rest = QuerySession.resume(db, sq).execute()
            rows[form] = first.rows + rest.rows
        assert rows["legacy"] == rows["options"]
