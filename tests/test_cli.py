"""Unit tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main, run_demo


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestDemo:
    def test_demo_narrates_a_full_cycle(self, capsys):
        assert main(["demo", "--rows", "5"]) == 0
        out = capsys.readouterr().out
        assert "executed: 5 rows" in out
        assert "suspended in" in out
        assert "resumed in" in out
        assert "finished:" in out

    def test_run_demo_returns_text(self):
        text = run_demo(rows_before_suspend=3)
        assert "suspend plan:" in text


class TestExperiments:
    def test_analytical_experiments_run_fast(self, capsys):
        assert main(["experiment", "fig15"]) == 0
        out = capsys.readouterr().out
        assert "HHJ" in out and "SMJ" in out

        assert main(["experiment", "ex10"]) == 0
        out = capsys.readouterr().out
        assert "16020" in out.replace(",", "")

    def test_fig8_at_reduced_scale(self, capsys):
        assert main(["experiment", "fig8", "--scale", "400"]) == 0
        out = capsys.readouterr().out
        assert "selectivity" in out
        assert "all_dump_overhead" in out

    def test_fig13_prints_hybrid_plan(self, capsys):
        assert main(["experiment", "fig13", "--scale", "400"]) == 0
        out = capsys.readouterr().out
        assert "Figure 11" in out
        assert "GoBack" in out and "DumpState" in out
