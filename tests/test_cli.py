"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main, run_demo
from repro.obs import NULL_TRACER, current_tracer, read_jsonl


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestDemo:
    def test_demo_narrates_a_full_cycle(self, capsys):
        assert main(["demo", "--rows", "5"]) == 0
        out = capsys.readouterr().out
        assert "executed: 5 rows" in out
        assert "suspended in" in out
        assert "resumed in" in out
        assert "finished:" in out

    def test_run_demo_returns_text(self):
        text = run_demo(rows_before_suspend=3)
        assert "suspend plan:" in text


class TestExperiments:
    def test_analytical_experiments_run_fast(self, capsys):
        assert main(["experiment", "fig15"]) == 0
        out = capsys.readouterr().out
        assert "HHJ" in out and "SMJ" in out

        assert main(["experiment", "ex10"]) == 0
        out = capsys.readouterr().out
        assert "16020" in out.replace(",", "")

    def test_fig8_at_reduced_scale(self, capsys):
        assert main(["experiment", "fig8", "--scale", "400"]) == 0
        out = capsys.readouterr().out
        assert "selectivity" in out
        assert "all_dump_overhead" in out

    def test_fig13_prints_hybrid_plan(self, capsys):
        assert main(["experiment", "fig13", "--scale", "400"]) == 0
        out = capsys.readouterr().out
        assert "Figure 11" in out
        assert "GoBack" in out and "DumpState" in out


class TestObservabilityFlags:
    def test_experiment_serve_writes_trace_and_metrics(self, tmp_path):
        trace_path = tmp_path / "out.jsonl"
        metrics_path = tmp_path / "out.metrics"
        assert (
            main(
                [
                    "experiment",
                    "serve",
                    "--trace",
                    str(trace_path),
                    "--metrics",
                    str(metrics_path),
                ]
            )
            == 0
        )
        records = read_jsonl(str(trace_path))
        types = {r["type"] for r in records}
        # The acceptance criterion: checkpoints, per-operator MIP
        # decisions, and scheduler quanta in one trace file.
        assert {
            "checkpoint.taken",
            "mip.decision",
            "sched.quantum",
        } <= types
        assert records[0]["type"] == "trace.meta"
        assert "query_suspends_total" in metrics_path.read_text()
        # The process default tracer is cleared after the run.
        assert current_tracer() is NULL_TRACER

    def test_workload_keeps_arrival_trace_flag(self, tmp_path):
        trace_path = tmp_path / "wl.jsonl"
        assert (
            main(
                [
                    "workload",
                    "--trace",
                    "mixed",
                    "--policy",
                    "wait",
                    "--trace-out",
                    str(trace_path),
                ]
            )
            == 0
        )
        assert any(
            r["type"].startswith("sched.")
            for r in read_jsonl(str(trace_path))
        )

    def test_trace_summary_and_convert(self, tmp_path, capsys):
        trace_path = tmp_path / "out.jsonl"
        assert main(["demo", "--rows", "5", "--trace", str(trace_path)]) == 0
        capsys.readouterr()

        assert main(["trace", "summary", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "records" in out and "checkpoint.taken" in out

        chrome_path = tmp_path / "out.chrome.json"
        assert (
            main(
                [
                    "trace",
                    "convert",
                    str(trace_path),
                    "-o",
                    str(chrome_path),
                ]
            )
            == 0
        )
        doc = json.loads(chrome_path.read_text())
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"M", "X", "i"} <= phases

    def test_untraced_run_installs_no_tracer(self, capsys):
        assert main(["demo", "--rows", "5"]) == 0
        assert current_tracer() is NULL_TRACER
