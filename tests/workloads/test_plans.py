"""Unit tests for the paper-workload builders."""

import pytest

from repro import QuerySession
from repro.engine.plan import plan_operator_count
from repro.relational.datagen import SKEW_THRESHOLD
from repro.workloads import (
    build_complex_plan,
    build_left_deep_nlj,
    build_nlj_chain,
    build_nlj_s,
    build_skewed_nlj_s,
    build_smj_s,
)


class TestNLJS:
    def test_scaled_sizes(self):
        db, plan = build_nlj_s(selectivity=0.5, scale=100)
        assert db.catalog.table("R").num_tuples == 22_000
        assert plan.buffer_tuples == 2_000

    def test_catalog_knows_selectivity(self):
        db, _ = build_nlj_s(selectivity=0.3, scale=400)
        assert db.catalog.stats("R").selectivity_of("uniform") == 0.3

    def test_runs_and_produces_output(self):
        db, plan = build_nlj_s(selectivity=0.5, scale=1000)
        result = QuerySession(db, plan).execute(max_rows=5)
        assert len(result.rows) == 5


class TestSMJS:
    def test_structure(self):
        _, plan = build_smj_s(selectivity=0.5, scale=200)
        assert plan_operator_count(plan) == 6
        assert plan.label == "mj"

    def test_output_sorted_on_join_key(self):
        db, plan = build_smj_s(selectivity=0.5, scale=1000)
        rows = QuerySession(db, plan).execute(max_rows=50).rows
        keys = [r[0] for r in rows]
        assert keys == sorted(keys)


class TestSkewedNLJS:
    def test_regional_selectivity(self):
        db, _ = build_skewed_nlj_s(scale=100)
        rows = list(db.catalog.table("R").all_rows())
        n = len(rows)
        boundary = round(2 / 3 * n)
        first = sum(1 for r in rows[:boundary] if r[1] < SKEW_THRESHOLD)
        assert first / boundary == pytest.approx(0.1, abs=0.02)

    def test_static_stats_record_effective_selectivity(self):
        db, _ = build_skewed_nlj_s(scale=100)
        est = db.catalog.stats("R").selectivity_of("column_compare")
        assert est == pytest.approx(0.3667, abs=0.001)


class TestComplexPlan:
    def test_ten_operators(self):
        _, plan = build_complex_plan(scale=400)
        assert plan_operator_count(plan) == 10

    def test_executes(self):
        db, plan = build_complex_plan(scale=400)
        result = QuerySession(db, plan).execute(max_rows=3)
        assert len(result.rows) == 3


class TestLeftDeepNLJ:
    def test_buffer_sizes_differ(self):
        _, plan = build_left_deep_nlj(scale=100)
        buffers = []
        node = plan
        while hasattr(node, "buffer_tuples"):
            buffers.append(node.buffer_tuples)
            node = node.outer
        assert len(set(buffers)) == 3

    def test_executes(self):
        db, plan = build_left_deep_nlj(scale=400)
        assert QuerySession(db, plan).execute(max_rows=2).rows


class TestNLJChain:
    @pytest.mark.parametrize("k", [3, 11, 21])
    def test_operator_count(self, k):
        _, plan = build_nlj_chain(k)
        assert plan_operator_count(plan) == k

    def test_rejects_even_counts(self):
        with pytest.raises(ValueError):
            build_nlj_chain(10)
        with pytest.raises(ValueError):
            build_nlj_chain(1)

    def test_chain_executes(self):
        db, plan = build_nlj_chain(7)
        session = QuerySession(db, plan)
        session.execute(max_rows=1)
        assert session.rows
