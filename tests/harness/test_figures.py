"""Smoke tests for the figure-series library at reduced scale."""

import math

import pytest

from repro.harness import figures


class TestFigureSeries:
    def test_table2_small_chains(self):
        rows = figures.table2_rows(plan_sizes=(3, 5))
        assert [r["operators"] for r in rows] == [3, 5]
        assert all(r["optimize_ms"] > 0 for r in rows)
        assert all(r["dp_ms"] > 0 for r in rows)

    def test_fig8_reduced(self):
        rows = figures.fig8_rows(selectivities=(0.1, 0.9), scale=400)
        assert len(rows) == 2
        assert rows[0]["all_dump_overhead"] > 0
        # LP matches the better purist at both ends.
        for r in rows:
            best = min(r["all_dump_overhead"], r["all_goback_overhead"])
            assert r["lp_overhead"] <= best + 1.0

    def test_fig9_reduced(self):
        rows = figures.fig9_rows(fill_fractions=(0.2, 0.9), scale=400)
        assert rows[0]["buffer_filled"] == "20%"
        assert (
            rows[1]["all_dump_suspend"] > rows[0]["all_dump_suspend"]
        )

    def test_fig10_reduced(self):
        rows = figures.fig10_rows(
            selectivities=(0.1, 1.0), fill_fractions=(0.5,), scale=400
        )
        winners = {r["selectivity"]: r["winner"] for r in rows}
        assert winners[0.1] == "dump"
        assert winners[1.0] == "goback"

    def test_fig12_reduced(self):
        rows = figures.fig12_rows(suspend_points=(1_000, 6_500), scale=400)
        assert rows[0]["online_choice"] == "dump"
        assert rows[1]["online_choice"] == "goback"
        assert all(r["static_choice"] == "goback" for r in rows)

    def test_fig13_reduced(self):
        results, names = figures.fig13_results(scale=400)
        assert set(results) == {"all_dump", "all_goback", "lp"}
        assert len(names) == 10
        assert results["lp"].total_overhead <= min(
            results["all_dump"].total_overhead,
            results["all_goback"].total_overhead,
        )

    def test_fig14_reduced(self):
        rows = figures.fig14_rows(budgets=(1.0, math.inf), scale=400)
        numeric = [
            r for r in rows if r["total_overhead"] != "infeasible"
        ]
        assert numeric
        assert numeric[-1]["budget"] == "unlimited"

    def test_fig15_and_ex10_exact(self):
        rows, choice = figures.fig15_rows()
        assert {r["plan"] for r in rows} == {"HHJ", "SMJ"}
        assert choice.flipped
        rows, crossover = figures.ex10_rows(suspend_points=(0, 80_000))
        assert crossover == pytest.approx(16_020)
