"""Unit tests for the text-table renderer."""

from repro.harness.report import format_table


class TestFormatTable:
    def test_aligns_columns(self):
        rows = [{"a": 1, "bb": 22}, {"a": 333, "bb": 4}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].endswith("bb")
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_title_prepended(self):
        text = format_table([{"x": 1}], title="Table 2")
        assert text.startswith("Table 2")

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="t")

    def test_explicit_column_order(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b", "a"])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_missing_cells_render_blank(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "3" in text
