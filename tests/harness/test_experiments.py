"""Unit tests for the overhead-measurement harness."""

import math

import pytest

from repro.harness.experiments import (
    measure_suspend_overhead,
    nlj_buffer_trigger,
    root_rows_trigger,
    run_reference_to_milestone,
    scan_position_trigger,
)
from repro.workloads import build_nlj_s


def factory():
    return build_nlj_s(selectivity=0.5, scale=250)


TRIGGER = nlj_buffer_trigger("nlj", 400)


class TestHarness:
    def test_reference_is_deterministic(self):
        db1, plan1 = factory()
        db2, plan2 = factory()
        c1, _ = run_reference_to_milestone(db1, plan1, TRIGGER)
        c2, _ = run_reference_to_milestone(db2, plan2, TRIGGER)
        assert c1 == c2

    def test_overhead_decomposition(self):
        result = measure_suspend_overhead(factory, TRIGGER, "all_dump")
        assert result.suspend_cost > 0
        assert result.resume_cost > 0
        assert result.total_overhead > 0
        assert result.strategy == "all_dump"

    def test_goback_suspend_time_near_zero(self):
        result = measure_suspend_overhead(factory, TRIGGER, "all_goback")
        dump = measure_suspend_overhead(factory, TRIGGER, "all_dump")
        assert result.suspend_cost < dump.suspend_cost / 3

    def test_lp_never_worse_than_both_purists(self):
        results = {
            s: measure_suspend_overhead(factory, TRIGGER, s)
            for s in ("all_dump", "all_goback", "lp")
        }
        best_purist = min(
            results["all_dump"].total_overhead,
            results["all_goback"].total_overhead,
        )
        assert results["lp"].total_overhead <= best_purist + 1.0

    def test_reference_reuse_matches_fresh(self):
        db, plan = factory()
        ref, _ = run_reference_to_milestone(db, plan, TRIGGER)
        reused = measure_suspend_overhead(
            factory, TRIGGER, "all_dump", reference_cost=ref
        )
        fresh = measure_suspend_overhead(factory, TRIGGER, "all_dump")
        assert reused.total_overhead == pytest.approx(fresh.total_overhead)

    def test_never_firing_trigger_raises(self):
        with pytest.raises(RuntimeError):
            measure_suspend_overhead(factory, lambda rt: False, "all_dump")

    def test_budget_constrains_suspend_cost(self):
        constrained = measure_suspend_overhead(
            factory, TRIGGER, "lp", budget=1.0
        )
        assert constrained.suspend_cost <= 5.0  # control-state write only

    def test_trigger_helpers(self):
        from repro import QuerySession

        db, plan = factory()
        session = QuerySession(db, plan)
        session.execute(suspend_when=scan_position_trigger("scan_R", 50))
        assert session.op_named("scan_R").tuples_consumed() == 50
