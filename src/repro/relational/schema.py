"""Schemas and rows.

Rows are plain Python tuples for speed; a :class:`Schema` names the
columns, records a nominal per-tuple byte width (the paper uses 200-byte
tuples), and supports concatenation for join outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass(frozen=True)
class Column:
    """A named column. ``dtype`` is informational ('int', 'float', 'str')."""

    name: str
    dtype: str = "int"


@dataclass(frozen=True)
class Schema:
    """An ordered list of columns plus a nominal tuple width in bytes.

    ``bytes_per_tuple`` drives the page math: with the default 200-byte
    tuples and 20,000-byte pages, 100 tuples fit on a page — exactly the
    paper's Example 9/10 setting.
    """

    columns: tuple[Column, ...]
    bytes_per_tuple: int = 200

    @staticmethod
    def of(names: Sequence[str], bytes_per_tuple: int = 200) -> "Schema":
        """Build a schema of integer columns from a list of names."""
        return Schema(
            columns=tuple(Column(n) for n in names),
            bytes_per_tuple=bytes_per_tuple,
        )

    def __len__(self) -> int:
        return len(self.columns)

    def column_index(self, name: str) -> int:
        for i, col in enumerate(self.columns):
            if col.name == name:
                return i
        raise KeyError(f"no column named {name!r} in schema {self.names()}")

    def names(self) -> list[str]:
        return [c.name for c in self.columns]

    def concat(self, other: "Schema") -> "Schema":
        """Schema of the concatenation of a row of self with a row of other.

        Column names from ``other`` that collide get a ``_r`` suffix, as a
        join output would produce.
        """
        taken = set(self.names())
        renamed = []
        for col in other.columns:
            name = col.name
            while name in taken:
                name = f"{name}_r"
            taken.add(name)
            renamed.append(Column(name, col.dtype))
        return Schema(
            columns=self.columns + tuple(renamed),
            bytes_per_tuple=self.bytes_per_tuple + other.bytes_per_tuple,
        )

    def project(self, indexes: Sequence[int]) -> "Schema":
        """Schema restricted to the given column indexes (in order)."""
        cols = tuple(self.columns[i] for i in indexes)
        if not cols:
            raise ValueError("projection must keep at least one column")
        per_col = max(1, self.bytes_per_tuple // max(1, len(self.columns)))
        return Schema(columns=cols, bytes_per_tuple=per_col * len(cols))

    def tuples_per_page(self, page_bytes: int) -> int:
        """How many of this schema's tuples fit on a page of ``page_bytes``."""
        return max(1, page_bytes // self.bytes_per_tuple)
