"""Relational layer: schemas, rows, predicates, and data generators."""

from repro.relational.schema import Column, Schema
from repro.relational.expressions import (
    AlwaysTrue,
    AndPredicate,
    ColumnCompare,
    EquiJoinCondition,
    Predicate,
    UniformSelect,
    ValueIn,
)
from repro.relational.datagen import (
    SkewRegion,
    generate_skewed_table,
    generate_uniform_table,
)

__all__ = [
    "AlwaysTrue",
    "AndPredicate",
    "Column",
    "ColumnCompare",
    "EquiJoinCondition",
    "Predicate",
    "Schema",
    "SkewRegion",
    "UniformSelect",
    "ValueIn",
    "generate_skewed_table",
    "generate_uniform_table",
]
