"""Deterministic table generators for the paper's workloads.

Standard row layout: ``(key, u, payload)`` where

- ``key`` is a unique integer (shuffled when ``shuffle_keys`` is set, since
  the paper populates R "with random unique integer key values"),
- ``u`` is a deterministic pseudo-uniform value in [0, 1) used by
  :class:`repro.relational.expressions.UniformSelect` to realize any target
  filter selectivity on the same table,
- ``payload`` is a filler integer standing in for the rest of the 200-byte
  tuple.

``generate_skewed_table`` builds the Figure 12 table: the pass/fail column
``u`` is arranged so a fixed threshold predicate has different selectivity
in different regions of the table (0.1 for the first two-thirds, 0.9 for
the rest, in the paper's setup).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.common.rng import hash_unit, stable_shuffle
from repro.relational.schema import Schema

#: Schema shared by all generated base tables.
BASE_SCHEMA = Schema.of(["key", "u", "payload"], bytes_per_tuple=200)


def generate_uniform_table(
    num_tuples: int,
    seed: int = 0,
    shuffle_keys: bool = True,
    key_offset: int = 0,
) -> list[tuple]:
    """Rows with unique keys and a pseudo-uniform selection column."""
    if num_tuples < 0:
        raise ValueError(f"negative table size {num_tuples}")
    keys = list(range(key_offset, key_offset + num_tuples))
    if shuffle_keys:
        keys = stable_shuffle(keys, seed)
    return [
        (keys[i], hash_unit(i, salt=seed), i)
        for i in range(num_tuples)
    ]


@dataclass(frozen=True)
class SkewRegion:
    """A contiguous region of the table with its own pass probability.

    ``fraction`` is the fraction of the table the region covers;
    ``selectivity`` is the probability that a threshold-0.5 predicate
    passes a row inside the region.
    """

    fraction: float
    selectivity: float


#: The paper's Figure 12 skew: ~2/3 of the table at selectivity 0.1,
#: the remainder at 0.9 (effective selectivity ~0.385 per the paper).
FIGURE12_SKEW = (SkewRegion(2 / 3, 0.1), SkewRegion(1 / 3, 0.9))

#: Threshold that the skew-aware filter predicate uses over column ``u``.
SKEW_THRESHOLD = 0.5


def generate_skewed_table(
    num_tuples: int,
    regions: Sequence[SkewRegion] = FIGURE12_SKEW,
    seed: int = 0,
    shuffle_keys: bool = True,
) -> list[tuple]:
    """Rows whose ``u < SKEW_THRESHOLD`` selectivity varies by position.

    Within a region of selectivity ``s``, a row passes (u drawn below the
    threshold) iff its deterministic hash draw is below ``s``; passing rows
    get ``u`` in [0, 0.5) and failing rows get ``u`` in [0.5, 1), so the
    fixed predicate ``u < 0.5`` realizes the per-region selectivity.
    """
    if abs(sum(r.fraction for r in regions) - 1.0) > 1e-9:
        raise ValueError("region fractions must sum to 1")
    boundaries = []
    start = 0
    for region in regions:
        end = start + round(region.fraction * num_tuples)
        boundaries.append((start, min(end, num_tuples), region.selectivity))
        start = end
    if boundaries:
        first, last_end, sel = boundaries[-1]
        boundaries[-1] = (first, num_tuples, sel)

    keys = list(range(num_tuples))
    if shuffle_keys:
        keys = stable_shuffle(keys, seed)

    rows = []
    for region_start, region_end, sel in boundaries:
        for i in range(region_start, region_end):
            draw = hash_unit(i, salt=seed)
            if draw < sel:
                u = (draw / max(sel, 1e-12)) * SKEW_THRESHOLD
            else:
                remaining = max(1.0 - sel, 1e-12)
                u = SKEW_THRESHOLD + ((draw - sel) / remaining) * SKEW_THRESHOLD
            rows.append((keys[i], u, i))
    return rows


def effective_selectivity(regions: Sequence[SkewRegion]) -> float:
    """Table-level selectivity a static optimizer would estimate."""
    return sum(r.fraction * r.selectivity for r in regions)


def region_of_position(
    regions: Sequence[SkewRegion], num_tuples: int, position: int
) -> SkewRegion:
    """Which skew region a tuple position falls into."""
    start = 0
    for region in regions:
        end = start + round(region.fraction * num_tuples)
        if position < end:
            return region
        start = end
    return regions[-1]
