"""Simulated storage manager (the PREDATOR/SHORE substitute).

All I/O in the reproduction flows through :class:`SimulatedDisk`, which
charges deterministic costs against a :class:`VirtualClock`. Experiments
therefore measure *accounted* time, not wall-clock time; see DESIGN.md
section 2 for why this substitution preserves the paper's results.
"""

from repro.storage.catalog import Catalog, TableStats
from repro.storage.database import Database
from repro.storage.disk import IOCostModel, IOCounters, SimulatedDisk, VirtualClock
from repro.storage.heapfile import HeapFile, ScanCursor
from repro.storage.index import OrderedIndex
from repro.storage.statefile import DumpHandle, StateStore

__all__ = [
    "Catalog",
    "Database",
    "DumpHandle",
    "HeapFile",
    "IOCostModel",
    "IOCounters",
    "OrderedIndex",
    "ScanCursor",
    "SimulatedDisk",
    "StateStore",
    "TableStats",
    "VirtualClock",
]
