"""Catalog: table registry plus table-level statistics.

The statistics exist for the *offline/static* suspend-plan optimizer
baseline of Figure 12: it decides suspend strategies from table-level
selectivity estimates, while the paper's online optimizer uses exact
runtime state. Keeping the two information sources separate is the point
of that experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import StorageError
from repro.storage.heapfile import HeapFile
from repro.storage.index import OrderedIndex


@dataclass
class TableStats:
    """Table-level statistics available to the static optimizer."""

    num_tuples: int = 0
    num_pages: int = 0
    # Estimated selectivity of known predicates keyed by a predicate label.
    predicate_selectivity: dict[str, float] = field(default_factory=dict)

    def selectivity_of(self, label: str, default: float = 1.0) -> float:
        return self.predicate_selectivity.get(label, default)


class Catalog:
    """Registry of tables, indexes, and their statistics."""

    def __init__(self):
        self._tables: dict[str, HeapFile] = {}
        self._indexes: dict[str, OrderedIndex] = {}
        self._stats: dict[str, TableStats] = {}

    def register_table(self, table: HeapFile) -> None:
        if table.name in self._tables:
            raise StorageError(f"table {table.name!r} already registered")
        self._tables[table.name] = table
        self._stats[table.name] = TableStats(
            num_tuples=table.num_tuples, num_pages=table.num_pages
        )

    def table(self, name: str) -> HeapFile:
        if name not in self._tables:
            raise StorageError(f"unknown table {name!r}")
        return self._tables[name]

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def register_index(self, index: OrderedIndex) -> None:
        if index.name in self._indexes:
            raise StorageError(f"index {index.name!r} already registered")
        self._indexes[index.name] = index

    def index(self, name: str) -> OrderedIndex:
        if name not in self._indexes:
            raise StorageError(f"unknown index {name!r}")
        return self._indexes[name]

    def stats(self, name: str) -> TableStats:
        if name not in self._stats:
            raise StorageError(f"no statistics for table {name!r}")
        return self._stats[name]

    def set_predicate_selectivity(
        self, table_name: str, label: str, selectivity: float
    ) -> None:
        """Record a table-level selectivity estimate for a predicate label."""
        if not 0.0 <= selectivity <= 1.0:
            raise ValueError(f"selectivity {selectivity} outside [0, 1]")
        self.stats(table_name).predicate_selectivity[label] = selectivity

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def index_names(self) -> list[str]:
        return sorted(self._indexes)

    def refresh_stats(self, name: Optional[str] = None) -> None:
        """Recompute cardinality stats from the stored tables."""
        names = [name] if name else list(self._tables)
        for table_name in names:
            table = self.table(table_name)
            stats = self._stats[table_name]
            stats.num_tuples = table.num_tuples
            stats.num_pages = table.num_pages
