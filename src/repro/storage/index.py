"""Ordered (B+-tree-like) index over a heap file column.

The index supports equality probes and ordered range scans, charging a
root-to-leaf traversal of ``height`` page reads per probe plus one page
read per ``entries_per_page`` entries scanned at the leaf level. This is
the substrate for index scans and for the paper's "tuple-based NLJ with an
index on inner" operator (Section 4).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.storage.disk import SimulatedDisk
from repro.storage.heapfile import HeapFile, Row


@dataclass(frozen=True)
class IndexEntry:
    """A leaf entry: key value plus the global tuple index in the table."""

    key: object
    tuple_index: int


class OrderedIndex:
    """A sorted index on one column of a heap file.

    Cost model: an equality probe charges ``height`` page reads (the
    root-to-leaf path); scanning matching entries charges one page read per
    ``entries_per_page`` consecutive entries; fetching the base tuple
    charges one page read per base page touched.
    """

    def __init__(
        self,
        name: str,
        table: HeapFile,
        key_column: int,
        disk: SimulatedDisk,
        entries_per_page: int = 500,
        fanout: int = 200,
    ):
        if entries_per_page <= 0:
            raise ValueError("entries_per_page must be positive")
        if fanout <= 1:
            raise ValueError("fanout must exceed 1")
        self.name = name
        self.table = table
        self.key_column = key_column
        self.entries_per_page = entries_per_page
        self.fanout = fanout
        self._disk = disk
        entries = sorted(
            (row[key_column], i) for i, row in enumerate(table.all_rows())
        )
        self._keys = [key for key, _ in entries]
        self._tuple_indexes = [idx for _, idx in entries]

    @property
    def num_entries(self) -> int:
        return len(self._keys)

    @property
    def height(self) -> int:
        """Tree height: page reads charged for one root-to-leaf traversal."""
        leaves = max(1, math.ceil(len(self._keys) / self.entries_per_page))
        if leaves <= 1:
            return 1
        return 1 + math.ceil(math.log(leaves, self.fanout))

    def probe_range(self, key: object) -> tuple[int, int]:
        """Return the [lo, hi) entry range matching ``key``; charges traversal."""
        self._disk.read_pages(self.height)
        lo = bisect.bisect_left(self._keys, key)
        hi = bisect.bisect_right(self._keys, key)
        return lo, hi

    def entries_between(self, lo: int, hi: int) -> Iterator[IndexEntry]:
        """Yield entries in [lo, hi), charging leaf-page reads as consumed."""
        for i in range(lo, hi):
            if i == lo or i % self.entries_per_page == 0:
                self._disk.read_pages(1)
            yield IndexEntry(self._keys[i], self._tuple_indexes[i])

    def entry_at(self, i: int) -> IndexEntry:
        """Return leaf entry ``i`` without charging (caller charges pages)."""
        return IndexEntry(self._keys[i], self._tuple_indexes[i])

    def fetch(self, entry: IndexEntry) -> Row:
        """Fetch the base-table row for ``entry``, charging one page read."""
        pos = self.table.position_of(entry.tuple_index)
        page = self.table.read_page(pos.page_no)
        return page[pos.slot]

    def lookup_rows(self, key: object) -> list[Row]:
        """Probe ``key`` and fetch every matching base row (charged)."""
        lo, hi = self.probe_range(key)
        return [self.fetch(e) for e in self.entries_between(lo, hi)]

    def first_ge(self, key: object) -> Optional[int]:
        """Entry index of the first key >= ``key`` (charges a traversal)."""
        self._disk.read_pages(self.height)
        i = bisect.bisect_left(self._keys, key)
        return i if i < len(self._keys) else None
