"""Database: the top-level container tying the storage pieces together.

A :class:`Database` owns the simulated disk (and hence the virtual clock),
the catalog, and the state store. Query sessions execute against a
database; a SuspendedQuery can be resumed against the same database (same
physical state, per the paper's Section 2 assumptions) or a *replica*
created by :meth:`Database.replicate` (the Grid-migration use case).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.relational.schema import Schema
from repro.storage.catalog import Catalog
from repro.storage.disk import IOCostModel, SimulatedDisk
from repro.storage.heapfile import HeapFile
from repro.storage.index import OrderedIndex
from repro.storage.statefile import StateStore


class Database:
    """Simulated single-node DBMS instance."""

    def __init__(
        self,
        cost_model: Optional[IOCostModel] = None,
        buffer_pool_pages: int = 0,
    ):
        self.cost_model = cost_model or IOCostModel()
        self.disk = SimulatedDisk(cost_model=self.cost_model)
        self.catalog = Catalog()
        self.state_store = StateStore(self.disk)
        if buffer_pool_pages > 0:
            from repro.storage.buffer import BufferPool

            self.buffer_pool = BufferPool(self.disk, buffer_pool_pages)
        else:
            # Experiments run without a pool by default: the paper's redo
            # economics assume tables >> RAM (see repro.storage.buffer).
            self.buffer_pool = None

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.disk.now

    def create_table(
        self,
        name: str,
        schema: Schema,
        rows: Iterable[tuple] = (),
        tuples_per_page: Optional[int] = None,
    ) -> HeapFile:
        """Create, bulk-load (uncharged), and register a table."""
        if tuples_per_page is None:
            tuples_per_page = schema.tuples_per_page(self.cost_model.page_bytes)
        table = HeapFile(
            name,
            schema,
            self.disk,
            tuples_per_page=tuples_per_page,
            buffer_pool=self.buffer_pool,
        )
        table.bulk_load(rows)
        self.catalog.register_table(table)
        return table

    def create_index(
        self, name: str, table_name: str, key_column: int
    ) -> OrderedIndex:
        """Build and register an ordered index on a table column."""
        table = self.catalog.table(table_name)
        index = OrderedIndex(name, table, key_column, self.disk)
        self.catalog.register_index(index)
        return index

    def replicate(self) -> "Database":
        """Create a replica with the same tables and a fresh clock.

        Models migrating a suspended query to a replica DBMS (the paper's
        Grid scenario): the replica sees the same physical database state.
        Dumped operator state must be transferred separately (the
        SuspendedQuery carries the payloads).
        """
        replica = Database(cost_model=self.cost_model)
        for name in self.catalog.table_names():
            table = self.catalog.table(name)
            replica.create_table(
                name,
                table.schema,
                rows=table.all_rows(),
                tuples_per_page=table.tuples_per_page,
            )
            stats = self.catalog.stats(name)
            for label, sel in stats.predicate_selectivity.items():
                replica.catalog.set_predicate_selectivity(name, label, sel)
        for index_name in self.catalog.index_names():
            index = self.catalog.index(index_name)
            replica.create_index(index_name, index.table.name, index.key_column)
        return replica
