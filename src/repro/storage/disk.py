"""Virtual clock and simulated disk with deterministic I/O accounting.

The paper's evaluation (Section 6) measures *total overhead time* and
*suspend time* on PREDATOR/SHORE, where writes through the storage manager
are noticeably more expensive than reads (Figure 8's crossover selectivity
of ~0.28 implies a write/read cost ratio of ~2.5, since the all-DumpState /
all-GoBack crossover satisfies ``s* = r / (w + r)``). We reproduce these
economics with an explicit cost model: every page read/write advances a
virtual clock by a configurable amount, so experiments are deterministic
and independent of Python's execution speed.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field


def add_each(start: float, unit: float, n: int) -> float:
    """Add ``unit`` to ``start`` exactly ``n`` times, left to right.

    This is the bit-identical bulk form of ``for _ in range(n): start += unit``:
    ``sum`` folds left-to-right in C, producing the same partial-sum sequence
    (and therefore the same final float) as the Python loop, just much faster.
    The batched execution path relies on this to amortize per-tuple CPU
    charges without drifting from the row path's float accumulation.
    """
    if n <= 0:
        return start
    return sum(itertools.repeat(unit, n), start)


@dataclass
class IOCostModel:
    """Costs, in abstract time units, charged by the simulated disk.

    Attributes:
        page_read_cost: cost of reading one page.
        page_write_cost: cost of writing one page. The default 2.5x ratio
            to reads reproduces the paper's observation that "writing in
            SHORE is more expensive than reading" and places the
            all-GoBack/all-DumpState crossover at selectivity
            ``1 / (1 + 2.5) ~= 0.286``, matching the paper's ~0.28.
        cpu_tuple_cost: CPU cost charged per tuple an operator processes.
            Small relative to a page I/O, as in any disk-bound system.
        page_bytes: nominal page size, used to convert small byte-granular
            state (control state, SuspendedQuery) into page I/Os.
    """

    page_read_cost: float = 1.0
    page_write_cost: float = 2.5
    cpu_tuple_cost: float = 0.001
    page_bytes: int = 20_000

    def pages_for_bytes(self, nbytes: int) -> int:
        """Number of pages needed to hold ``nbytes`` bytes (at least 1)."""
        if nbytes <= 0:
            return 0
        return max(1, math.ceil(nbytes / self.page_bytes))


class VirtualClock:
    """A monotonically advancing simulated clock."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, units: float) -> float:
        """Advance the clock by ``units`` and return the amount advanced."""
        if units < 0:
            raise ValueError(f"cannot advance clock by negative amount {units}")
        self._now += units
        return units

    def advance_each(self, unit: float, n: int) -> float:
        """Advance by ``unit``, ``n`` times — bit-identical to ``n`` calls
        to :meth:`advance` with the same ``unit`` (see :func:`add_each`).
        Returns the per-step ``unit``."""
        if unit < 0:
            raise ValueError(f"cannot advance clock by negative amount {unit}")
        if n < 0:
            raise ValueError(f"negative step count {n}")
        self._now = add_each(self._now, unit, n)
        return unit


@dataclass
class IOCounters:
    """Raw I/O counters, useful for assertions and reports."""

    pages_read: int = 0
    pages_written: int = 0
    control_bytes_read: int = 0
    control_bytes_written: int = 0
    cpu_tuples: int = 0

    def snapshot(self) -> "IOCounters":
        return IOCounters(
            pages_read=self.pages_read,
            pages_written=self.pages_written,
            control_bytes_read=self.control_bytes_read,
            control_bytes_written=self.control_bytes_written,
            cpu_tuples=self.cpu_tuples,
        )

    def minus(self, other: "IOCounters") -> "IOCounters":
        return IOCounters(
            pages_read=self.pages_read - other.pages_read,
            pages_written=self.pages_written - other.pages_written,
            control_bytes_read=self.control_bytes_read - other.control_bytes_read,
            control_bytes_written=self.control_bytes_written
            - other.control_bytes_written,
            cpu_tuples=self.cpu_tuples - other.cpu_tuples,
        )


class QueryLane:
    """Per-query "as-if-solo" accounting mirrored off the shared disk.

    Every :class:`SimulatedDisk` charge is replayed onto the active lane's
    private clock and counters using the *same* float operations, so a
    query's lane traces exactly the virtual-clock sequence it would have
    produced running alone on a fresh disk — independent of how the
    scheduler interleaves it with other queries. Checkpoints, contracts,
    suspend images, and the MIP optimizer's work constants all read the
    lane (via :attr:`SimulatedDisk.query_now`), which is what makes folded
    and unfolded executions byte-identical per query: shared-work folding
    changes *global* I/O, never the lane.
    """

    __slots__ = ("name", "clock", "counters")

    def __init__(self, name: str = "", start: float = 0.0):
        self.name = name
        self.clock = VirtualClock(start)
        self.counters = IOCounters()

    @property
    def now(self) -> float:
        return self.clock.now


@dataclass
class SimulatedDisk:
    """Charges I/O costs against a virtual clock and counts operations.

    Every charging method returns the cost charged so that callers (the
    physical operators) can attribute work to themselves; the suspend-plan
    optimizer's ``g^r`` constants are derived from those per-operator
    cumulative-work counters (Section 5 of the paper).

    When a :class:`QueryLane` is active, every charge is mirrored onto it
    (same counter increments, same clock arithmetic). Shared-work folding
    (``repro.fold``) additionally uses the *absorbed*/*shared* read
    variants: an absorbed read charges only the consumer's lane (the page
    came from a fold producer's buffer, so no global I/O happened), while
    a shared read charges only the global disk (the producer fetches on
    behalf of all consumers; no single lane owns the cost).
    """

    cost_model: IOCostModel = field(default_factory=IOCostModel)
    clock: VirtualClock = field(default_factory=VirtualClock)
    counters: IOCounters = field(default_factory=IOCounters)
    lane: QueryLane | None = None
    #: Page reads satisfied from fold-producer buffers instead of the disk.
    fold_pages_saved: int = 0
    #: Pages fetched by fold producers on behalf of >=1 consumers.
    fold_shared_pages: int = 0

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def query_now(self) -> float:
        """The active query's as-if-solo clock (global clock if no lane)."""
        if self.lane is not None:
            return self.lane.clock.now
        return self.clock.now

    def set_lane(self, lane: QueryLane | None) -> QueryLane | None:
        """Activate ``lane`` for subsequent charges; return the previous one."""
        prev = self.lane
        self.lane = lane
        return prev

    def read_pages(self, n: int) -> float:
        """Charge ``n`` page reads; return the cost."""
        if n < 0:
            raise ValueError(f"negative page count {n}")
        self.counters.pages_read += n
        if self.lane is not None:
            self.lane.counters.pages_read += n
            self.lane.clock.advance(n * self.cost_model.page_read_cost)
        return self.clock.advance(n * self.cost_model.page_read_cost)

    def write_pages(self, n: int) -> float:
        """Charge ``n`` page writes; return the cost."""
        if n < 0:
            raise ValueError(f"negative page count {n}")
        self.counters.pages_written += n
        if self.lane is not None:
            self.lane.counters.pages_written += n
            self.lane.clock.advance(n * self.cost_model.page_write_cost)
        return self.clock.advance(n * self.cost_model.page_write_cost)

    def read_control_bytes(self, nbytes: int) -> float:
        """Charge a small byte-granular read (control state, SQ header)."""
        self.counters.control_bytes_read += nbytes
        pages = self.cost_model.pages_for_bytes(nbytes)
        self.counters.pages_read += pages
        if self.lane is not None:
            self.lane.counters.control_bytes_read += nbytes
            self.lane.counters.pages_read += pages
            self.lane.clock.advance(pages * self.cost_model.page_read_cost)
        return self.clock.advance(pages * self.cost_model.page_read_cost)

    def write_control_bytes(self, nbytes: int) -> float:
        """Charge a small byte-granular write (control state, SQ header)."""
        self.counters.control_bytes_written += nbytes
        pages = self.cost_model.pages_for_bytes(nbytes)
        self.counters.pages_written += pages
        if self.lane is not None:
            self.lane.counters.control_bytes_written += nbytes
            self.lane.counters.pages_written += pages
            self.lane.clock.advance(pages * self.cost_model.page_write_cost)
        return self.clock.advance(pages * self.cost_model.page_write_cost)

    def charge_cpu_tuples(self, n: int) -> float:
        """Charge CPU time for processing ``n`` tuples; return the cost."""
        if n < 0:
            raise ValueError(f"negative tuple count {n}")
        self.counters.cpu_tuples += n
        if self.lane is not None:
            self.lane.counters.cpu_tuples += n
            self.lane.clock.advance(n * self.cost_model.cpu_tuple_cost)
        return self.clock.advance(n * self.cost_model.cpu_tuple_cost)

    def charge_cpu_tuples_each(self, n: int) -> float:
        """Charge CPU for ``n`` tuples as ``n`` separate unit charges.

        Bit-identical to ``n`` calls to ``charge_cpu_tuples(1)`` (the batched
        execution path must reproduce the row path's float accumulation
        exactly; ``n * cost`` in one step rounds differently). Returns the
        per-tuple unit cost so callers can fold it into per-operator ``work``
        accumulators with :func:`add_each`.
        """
        if n < 0:
            raise ValueError(f"negative tuple count {n}")
        self.counters.cpu_tuples += n
        if self.lane is not None:
            self.lane.counters.cpu_tuples += n
            self.lane.clock.advance_each(self.cost_model.cpu_tuple_cost, n)
        return self.clock.advance_each(self.cost_model.cpu_tuple_cost, n)

    # -- shared-work folding charge variants (repro.fold) ------------------

    def absorbed_read_pages(self, n: int) -> float:
        """Charge ``n`` page reads to the active lane only.

        Used by folded consumers whose pages arrive from a fold producer's
        buffer: the query's as-if-solo cost model must see the read (its
        checkpoints and suspend image depend on it) but no global I/O
        happened — that is the fold's saving, tallied in
        :attr:`fold_pages_saved`.
        """
        if n < 0:
            raise ValueError(f"negative page count {n}")
        if self.lane is None:
            raise RuntimeError("absorbed_read_pages requires an active QueryLane")
        self.fold_pages_saved += n
        self.lane.counters.pages_read += n
        return self.lane.clock.advance(n * self.cost_model.page_read_cost)

    def absorbed_cpu_tuples_each(self, n: int) -> float:
        """Charge per-tuple CPU to the active lane only (``n`` unit charges).

        Used when a folded consumer adopts work a sibling already did for
        real (e.g. a shared build-side hash table): the lane must replay
        the exact as-if-solo charge sequence, but globally the work ran
        once.
        """
        if n < 0:
            raise ValueError(f"negative tuple count {n}")
        if self.lane is None:
            raise RuntimeError(
                "absorbed_cpu_tuples_each requires an active QueryLane"
            )
        self.lane.counters.cpu_tuples += n
        return self.lane.clock.advance_each(self.cost_model.cpu_tuple_cost, n)

    def shared_read_pages(self, n: int) -> float:
        """Charge ``n`` page reads to the global disk only (no lane).

        Used by fold producers fetching pages on behalf of all attached
        consumers: the I/O is real (global clock and counters advance) but
        no single query's lane owns it — each consumer charges its own
        absorbed read when it drains the page.
        """
        if n < 0:
            raise ValueError(f"negative page count {n}")
        self.fold_shared_pages += n
        self.counters.pages_read += n
        return self.clock.advance(n * self.cost_model.page_read_cost)

    def cost_of_page_reads(self, n: int) -> float:
        """Cost of ``n`` page reads without charging (for estimation)."""
        return n * self.cost_model.page_read_cost

    def cost_of_page_writes(self, n: int) -> float:
        """Cost of ``n`` page writes without charging (for estimation)."""
        return n * self.cost_model.page_write_cost
