"""An optional LRU buffer pool over the simulated disk.

PREDATOR ran on SHORE, which caches pages in a buffer pool. The
reproduction's experiments run *without* one by default: the paper's
redo-cost economics assume tables far larger than RAM, where re-reads are
real I/O — adding a pool sized like our scaled-down tables would let
GoBack redo hit cache and distort every figure. The pool exists for
realism studies and the cache-sensitivity tests: enable it by
constructing ``Database(buffer_pool_pages=N)``.

Semantics: a page access that hits the pool costs no disk time (a small
CPU charge only); a miss charges a normal page read and admits the page,
evicting the least-recently-used one beyond capacity. Writes are
charged as usual (the store is no-steal/force with respect to dumps).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

from repro.storage.disk import SimulatedDisk


class BufferPool:
    """Fixed-capacity LRU cache of page identities."""

    __slots__ = ("_disk", "capacity", "_lru", "hits", "misses", "evictions")

    def __init__(self, disk: SimulatedDisk, capacity_pages: int):
        if capacity_pages <= 0:
            raise ValueError("capacity_pages must be positive")
        self._disk = disk
        self.capacity = capacity_pages
        self._lru: OrderedDict[Hashable, None] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def read_page(self, key: Hashable) -> float:
        """Charge a page access through the pool; return the cost."""
        if key in self._lru:
            self._lru.move_to_end(key)
            self.hits += 1
            return self._disk.charge_cpu_tuples(1)
        self.misses += 1
        cost = self._disk.read_pages(1)
        self._admit(key)
        return cost

    def _admit(self, key: Hashable) -> None:
        self._lru[key] = None
        self._lru.move_to_end(key)
        while len(self._lru) > self.capacity:
            self._lru.popitem(last=False)
            self.evictions += 1

    def invalidate(self, key: Hashable) -> None:
        self._lru.pop(key, None)

    def clear(self) -> None:
        self._lru.clear()

    def __contains__(self, key: Hashable) -> bool:
        return key in self._lru

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def publish_metrics(self, metrics) -> None:
        """Mirror the pool's cumulative totals into a MetricsRegistry.

        The pool keeps plain ints on the hot path; callers (the query
        lifecycle, the CLI exporters) publish them into the registry so
        they ride along in metrics snapshots and trace summaries.
        """
        metrics.counter("buffer_pool_hits_total").set(self.hits)
        metrics.counter("buffer_pool_misses_total").set(self.misses)
        metrics.counter("buffer_pool_evictions_total").set(self.evictions)
