"""Heap files: paged table storage with positional cursors.

A heap file stores rows in fixed-capacity pages. Reading a page through a
cursor charges one page read on the simulated disk. Cursor positions
``(page_no, slot)`` are the control state that table scans record in
contracts and in the SuspendedQuery structure (Section 4 of the paper:
"the current disk page location and position within that disk page").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

from repro.common.errors import StorageError
from repro.relational.schema import Schema
from repro.storage.disk import SimulatedDisk

Row = tuple


@dataclass(frozen=True)
class TuplePosition:
    """A stable position inside a heap file: page number and slot."""

    page_no: int
    slot: int

    def as_tuple(self) -> tuple[int, int]:
        return (self.page_no, self.slot)


class HeapFile:
    """A paged, append-only table file.

    Pages hold up to ``tuples_per_page`` rows. ``bulk_load`` populates the
    file without charging I/O (data loading is experiment setup, not
    measured work); all read paths charge the simulated disk.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        disk: SimulatedDisk,
        tuples_per_page: int = 100,
        buffer_pool=None,
    ):
        if tuples_per_page <= 0:
            raise ValueError(f"tuples_per_page must be positive, got {tuples_per_page}")
        self.name = name
        self.schema = schema
        self.tuples_per_page = tuples_per_page
        self._disk = disk
        self._pool = buffer_pool
        self._pages: list[list[Row]] = []
        self._num_tuples = 0

    @property
    def num_tuples(self) -> int:
        return self._num_tuples

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    def bulk_load(self, rows: Iterable[Row]) -> None:
        """Append ``rows`` without charging I/O (setup-time loading)."""
        for row in rows:
            if not self._pages or len(self._pages[-1]) >= self.tuples_per_page:
                self._pages.append([])
            self._pages[-1].append(row)
            self._num_tuples += 1

    def read_page(self, page_no: int) -> Sequence[Row]:
        """Return the rows on ``page_no``, charging one page read.

        With a buffer pool attached, a cached page costs only a CPU
        charge (see :mod:`repro.storage.buffer`).
        """
        if not 0 <= page_no < len(self._pages):
            raise StorageError(
                f"table {self.name!r}: page {page_no} out of range "
                f"[0, {len(self._pages)})"
            )
        if self._pool is not None:
            self._pool.read_page((self.name, page_no))
        else:
            self._disk.read_pages(1)
        return self._pages[page_no]

    def peek_page(self, page_no: int) -> Sequence[Row]:
        """Return the rows on ``page_no`` without charging (testing only)."""
        return self._pages[page_no]

    def position_of(self, tuple_index: int) -> TuplePosition:
        """Map a global tuple index to its (page, slot) position."""
        if not 0 <= tuple_index < self._num_tuples:
            raise StorageError(
                f"table {self.name!r}: tuple index {tuple_index} out of range"
            )
        return TuplePosition(
            page_no=tuple_index // self.tuples_per_page,
            slot=tuple_index % self.tuples_per_page,
        )

    def cursor(self) -> "ScanCursor":
        """Open a sequential cursor positioned before the first tuple."""
        return ScanCursor(self)

    def all_rows(self) -> Iterator[Row]:
        """Iterate all rows without charging (testing / reference output)."""
        for page in self._pages:
            yield from page


class ScanCursor:
    """Sequential cursor over a heap file with explicit repositioning.

    The cursor charges one page read each time it steps onto a new page.
    ``position()`` / ``seek()`` expose the (page, slot) control state used
    by table-scan contracts: seeking back and re-reading pages is exactly
    the "redo" cost of a GoBack scan.
    """

    def __init__(self, heapfile: HeapFile):
        self._file = heapfile
        self._page_no = 0
        self._slot = 0
        self._page_rows: Optional[Sequence[Row]] = None
        self._pages_fetched = 0

    @property
    def pages_fetched(self) -> int:
        """Pages this cursor has charged so far (for work accounting)."""
        return self._pages_fetched

    def position(self) -> TuplePosition:
        """Position of the *next* tuple this cursor would return."""
        return TuplePosition(self._page_no, self._slot)

    def tuples_consumed(self) -> int:
        """Number of tuples returned so far (global index of next tuple)."""
        return self._page_no * self._file.tuples_per_page + self._slot

    def seek(self, position: TuplePosition) -> None:
        """Reposition so the next tuple returned is at ``position``.

        Seeking invalidates the cached page; the next fetch charges a read.
        """
        self._page_no = position.page_no
        self._slot = position.slot
        self._page_rows = None

    def rewind(self) -> None:
        """Reposition to the start of the file."""
        self.seek(TuplePosition(0, 0))

    def _fetch_page(self, page_no: int) -> Sequence[Row]:
        """Fetch ``page_no``, charging the read. Subclasses may redirect
        the fetch (e.g. through a shared fold producer) as long as the
        charge sequence seen by the owning query is preserved."""
        return self._file.read_page(page_no)

    def current_page(self) -> Optional[Sequence[Row]]:
        """Rows of the page under the cursor, fetching it if needed.

        The batched scan path consumes the file in page-sized segments:
        this steps past exhausted pages and charges the page read exactly
        where :meth:`next` would (lazily, on the call that needs the first
        row of the new page), but consumes nothing — callers slice from
        ``position().slot`` and then :meth:`advance` by the rows taken, so
        the cursor lands in the identical state the row path leaves it in.
        Returns None at end of file.
        """
        while True:
            if self._page_no >= self._file.num_pages:
                return None
            if self._page_rows is None:
                self._page_rows = self._fetch_page(self._page_no)
                self._pages_fetched += 1
            if self._slot < len(self._page_rows):
                return self._page_rows
            self._page_no += 1
            self._slot = 0
            self._page_rows = None

    def advance(self, n: int) -> None:
        """Consume ``n`` rows from the current page (after current_page())."""
        self._slot += n

    def next(self) -> Optional[Row]:
        """Return the next row, or None at end of file."""
        while True:
            if self._page_no >= self._file.num_pages:
                return None
            if self._page_rows is None:
                self._page_rows = self._fetch_page(self._page_no)
                self._pages_fetched += 1
            if self._slot < len(self._page_rows):
                row = self._page_rows[self._slot]
                self._slot += 1
                return row
            # Page exhausted (possibly a short final page): advance.
            self._page_no += 1
            self._slot = 0
            self._page_rows = None
