"""State store: the disk area for DumpState dumps, sort sublists, hash
partitions, and the SuspendedQuery structure itself.

Dumping heap state charges page writes proportional to the state's size in
pages; reading it back charges page reads. The stored payload is kept as a
Python object (the "disk" is simulated), but all access is mediated by
handles so the charging discipline cannot be bypassed accidentally.
"""

from __future__ import annotations

import itertools
import math
import uuid
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.common.errors import StorageError
from repro.storage.disk import SimulatedDisk


@dataclass(frozen=True)
class DumpHandle:
    """Opaque reference to a stored payload and its size in pages."""

    store_id: int
    key: str
    pages: int


class StateStore:
    """Keyed object store with page-granular I/O charging.

    Three classes of content live here:

    - heap-state dumps made by the DumpState strategy at suspend time,
    - operator disk-resident state (sorted sublists, hash partitions),
      which the paper treats as immutable *materialization points*,
    - serialized SuspendedQuery structures.
    """

    _ids = itertools.count(1)

    def __init__(self, disk: SimulatedDisk):
        self._disk = disk
        self._store_id = next(self._ids)
        self._objects: dict[str, tuple[Any, int]] = {}
        self._key_seq = itertools.count(1)
        # Per-(scope, prefix) counters for query-scoped keys. Scoped keys
        # make the key sequence a query draws independent of how the
        # scheduler interleaves it with other queries — dump keys are
        # serialized into suspend images, so without scoping the image
        # bytes would depend on what *other* queries did first.
        self._scoped_seq: dict[tuple[str, str], itertools.count] = {}
        # Per-key write generation: bumped every time a key is (re)dumped.
        # Delta suspend images use it to prove a payload is byte-identical
        # to the one a base image already persisted without re-encoding it.
        self._generations: dict[str, int] = {}
        # Keys and generations are only unique within one store instance:
        # a fresh process restarts both counters, so the same (key, pages,
        # generation) triple can name different bytes in different
        # processes. The epoch disambiguates — delta reuse additionally
        # requires the exporting store's epoch to match the one recorded
        # in the base image.
        self.epoch = uuid.uuid4().hex

    def fresh_key(self, prefix: str, scope: Optional[str] = None) -> str:
        """Generate a unique key with the given prefix.

        With a ``scope`` (normally the query's session name) the key is
        namespaced as ``scope/prefix#N`` with a counter private to that
        (scope, prefix) pair, so the keys one query draws are a pure
        function of its own dump sequence. Unscoped keys keep the legacy
        ``prefix#N`` format off a store-global counter.
        """
        if scope is None:
            return f"{prefix}#{next(self._key_seq)}"
        seq = self._scoped_seq.setdefault((scope, prefix), itertools.count(1))
        return f"{scope}/{prefix}#{next(seq)}"

    def dump(self, key: str, payload: Any, pages: int) -> DumpHandle:
        """Store ``payload`` under ``key``, charging ``pages`` page writes."""
        if pages < 0:
            raise ValueError(f"negative page count {pages}")
        self._disk.write_pages(pages)
        self._objects[key] = (payload, pages)
        self._generations[key] = self._generations.get(key, 0) + 1
        return DumpHandle(self._store_id, key, pages)

    def dump_tuples(
        self, key: str, rows: Sequence, tuples_per_page: int
    ) -> DumpHandle:
        """Store a tuple collection, charging writes for its size in pages."""
        if tuples_per_page <= 0:
            raise ValueError("tuples_per_page must be positive")
        pages = math.ceil(len(rows) / tuples_per_page) if rows else 0
        return self.dump(key, list(rows), pages)

    def load(self, handle: DumpHandle) -> Any:
        """Read back a payload, charging its size in page reads."""
        self._check_handle(handle)
        payload, pages = self._objects[handle.key]
        self._disk.read_pages(pages)
        return payload

    def load_pages_range(self, handle: DumpHandle, first_page: int) -> Any:
        """Read back only pages ``[first_page, pages)`` of a tuple dump.

        Used when resume can skip a prefix of the dumped state (e.g. sort
        sublists already consumed). Returns the full payload but charges
        only the unread suffix.
        """
        self._check_handle(handle)
        payload, pages = self._objects[handle.key]
        remaining = max(0, pages - first_page)
        self._disk.read_pages(remaining)
        return payload

    def peek(self, handle: DumpHandle) -> Any:
        """Read a payload without charging (testing only)."""
        self._check_handle(handle)
        return self._objects[handle.key][0]

    def export_payload(self, handle: DumpHandle) -> tuple[Any, int]:
        """Return ``(payload, pages)`` for migration/persistence, uncharged.

        The page writes for this payload were already charged when it was
        dumped; exporting it (to a replica or a durable image) reads the
        *same* simulated-disk bytes, so charging again would double-count.
        The importing side pays for its own copy via :meth:`import_payload`.
        """
        self._check_handle(handle)
        payload, pages = self._objects[handle.key]
        return payload, pages

    def import_payload(self, key: str, payload: Any, pages: int) -> DumpHandle:
        """Store a migrated payload under a fresh local key, charging the
        page writes — the receiving side of a migration pays the transfer."""
        return self.dump(self.fresh_key(f"import_{key}"), payload, pages)

    def free(self, handle: DumpHandle) -> None:
        """Release a payload. Freeing is not charged (deallocation)."""
        self._check_handle(handle)
        del self._objects[handle.key]

    def generation(self, key: str) -> int:
        """Write generation of ``key`` (0 = never dumped here).

        Dump payloads are immutable once stored (the paper treats them as
        materialization points), so ``(key, pages, generation)`` equality
        against an earlier export proves the payload bytes are unchanged —
        the test the delta-image path uses to skip re-encoding.
        """
        return self._generations.get(key, 0)

    def exists(self, key: str) -> bool:
        return key in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def _check_handle(self, handle: DumpHandle) -> None:
        if handle.store_id != self._store_id:
            raise StorageError(
                f"handle {handle.key!r} belongs to a different state store"
            )
        if handle.key not in self._objects:
            raise StorageError(f"no payload stored under key {handle.key!r}")


class ScopedStateStore:
    """A view of a :class:`StateStore` whose fresh keys are namespaced.

    Each query session gets one of these (scope = session name) so the
    dump keys it draws — which end up serialized inside suspend images —
    depend only on its own dump sequence, never on scheduler interleaving.
    Everything except key generation delegates to the underlying store;
    payloads remain shared (handles are interchangeable across views).
    """

    __slots__ = ("_base", "scope")

    def __init__(self, base: StateStore, scope: str):
        self._base = base
        self.scope = scope

    def fresh_key(self, prefix: str) -> str:
        return self._base.fresh_key(prefix, scope=self.scope)

    def import_payload(self, key: str, payload: Any, pages: int) -> DumpHandle:
        return self._base.dump(self.fresh_key(f"import_{key}"), payload, pages)

    def __getattr__(self, name):
        return getattr(self._base, name)
