"""Command-line interface: run the paper's experiments and a demo.

Usage::

    python -m repro.cli list
    python -m repro.cli experiment fig8 [--scale 200]
    python -m repro.cli experiment table2
    python -m repro.cli experiment serve --trace-out out.jsonl
    python -m repro.cli demo [--rows 20]
    python -m repro.cli workload --trace mixed --seed 1
    python -m repro.cli serve-http --images ./images --port 8351
    python -m repro.cli loadgen --sessions 200 --json
    python -m repro.cli suspend --recipe sort --images ./images --rows 100
    python -m repro.cli resume-image --images ./images --id <image_id>
    python -m repro.cli images --images ./images [--recover | --gc]
    python -m repro.cli trace summary out.jsonl
    python -m repro.cli trace convert out.jsonl -o out.chrome.json

Each experiment prints the same series its benchmark records; the demo
walks one suspend/resume cycle end to end with the online optimizer;
``workload`` (alias ``serve``) replays a multi-query arrival trace
through the scheduler under each pressure policy and prints per-query
latencies plus the memory-pressure timeline.

The image commands exercise the durable-image subsystem across real
process boundaries: ``suspend`` runs a named recipe partway and commits a
suspend image to disk, ``resume-image`` rebuilds the recipe's database in
*this* process and finishes the query from the image, and ``images``
lists, validates, recovers, or garbage-collects an image root. All three
take ``--json`` for machine-readable output.

The serving commands expose the continuation-token front end:
``serve-http`` binds the asyncio HTTP server over a query catalog
(each request runs one quantum and returns rows plus a resumable
token; see docs/SERVING.md), and ``loadgen`` runs the deterministic
load generator behind BENCH_serve.json.

Observability: every subcommand accepts ``--trace-out PATH`` (JSONL
trace) and ``--metrics PATH`` (text metrics snapshot). ``--trace`` is a
deprecated alias for ``--trace-out`` where it is unambiguous; on
``workload``/``serve`` it already names the arrival trace, so only
``--trace-out`` works there. The ``experiment serve`` entry runs a
mixed scheduler workload, so ``repro experiment serve --trace-out
out.jsonl`` yields one trace with
checkpoints, per-operator MIP decisions, and scheduler quanta; ``repro
trace convert`` turns any trace into Chrome ``trace_event`` JSON that
opens in Perfetto (https://ui.perfetto.dev).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.harness import figures
from repro.harness.report import format_table


def _exp_table2(args) -> str:
    rows = figures.table2_rows()
    return format_table(
        rows, title="Table 2 - optimizer time vs plan size"
    )


def _exp_fig2(args) -> str:
    return (
        "Figure 2 is a trace benchmark; run "
        "`pytest benchmarks/bench_fig2_heap_state.py --benchmark-only`."
    )


def _exp_fig8(args) -> str:
    rows = figures.fig8_rows(scale=args.scale)
    return format_table(
        rows, title="Figure 8 - NLJ_S overhead vs filter selectivity"
    )


def _exp_fig9(args) -> str:
    rows = figures.fig9_rows(scale=args.scale)
    return format_table(
        rows, title="Figure 9 - SMJ_S overhead vs suspend point"
    )


def _exp_fig10(args) -> str:
    rows = figures.fig10_rows(scale=max(args.scale, 200))
    return format_table(
        rows,
        title="Figure 10 - NLJ_S overhead surface (selectivity x point)",
    )


def _exp_fig12(args) -> str:
    scale_points = tuple(
        p * 100 // args.scale for p in (4_000, 10_000, 16_000, 19_000, 23_000, 28_000)
    )
    rows = figures.fig12_rows(scale_points, scale=args.scale)
    return format_table(
        rows, title="Figure 12 - online vs static optimizer (skewed data)"
    )


def _exp_fig13(args) -> str:
    results, names = figures.fig13_results(scale=args.scale)
    rows = [
        {
            "strategy": s,
            "total_overhead": round(r.total_overhead, 1),
            "suspend_time": round(r.suspend_cost, 1),
        }
        for s, r in results.items()
    ]
    text = format_table(rows, title="Figure 13 - complex 10-operator plan")
    text += "\n\nFigure 11 - suspend plan chosen online:\n"
    text += results["lp"].suspend_plan.describe(names)
    return text


def _exp_fig14(args) -> str:
    rows = figures.fig14_rows(scale=args.scale)
    return format_table(
        rows, title="Figure 14 - overhead vs suspend budget"
    )


def _exp_fig15(args) -> str:
    rows, choice = figures.fig15_rows()
    text = format_table(rows, title="Figure 15 / Example 9 - HHJ vs SMJ")
    text += (
        f"\nchoice without suspends: {choice.without_suspend}; "
        f"expecting a suspend: {choice.with_suspend}"
    )
    return text


def _exp_ex10(args) -> str:
    rows, crossover = figures.ex10_rows()
    text = format_table(rows, title="Example 10 - NLJ vs SMJ")
    text += f"\ncrossover suspend point: {crossover:.0f} tuples"
    return text


def _exp_serve(args) -> str:
    # A scheduler-served mixed workload under the suspend-resume policy:
    # the one run whose trace shows checkpoints, MIP decisions, durable
    # spills, and scheduler quanta together.
    return run_workload("mixed", seed=1, scale=4, policy="suspend-resume")


EXPERIMENTS = {
    "serve": _exp_serve,
    "table2": _exp_table2,
    "fig2": _exp_fig2,
    "fig8": _exp_fig8,
    "fig9": _exp_fig9,
    "fig10": _exp_fig10,
    "fig12": _exp_fig12,
    "fig13": _exp_fig13,
    "fig14": _exp_fig14,
    "fig15": _exp_fig15,
    "ex10": _exp_ex10,
}


def run_workload(
    trace: str,
    seed: int = 1,
    scale: int = 4,
    policy: Optional[str] = None,
    fold: bool = False,
) -> str:
    """Replay an arrival trace under one or all pressure policies."""
    from repro.harness.scheduling import (
        DEFAULT_POLICIES,
        compare_policies,
        policy_comparison_rows,
    )
    from repro.workloads.plans import TRACES

    workload = TRACES[trace](scale=scale, seed=seed)
    policies = DEFAULT_POLICIES if policy is None else (policy,)
    results = compare_policies(workload, policies=policies, fold=fold)

    budget = workload.memory_budget
    lines = [
        f"workload {workload.name!r}: {len(workload.trace)} queries, "
        f"memory budget "
        f"{'unlimited' if budget is None else f'{budget} bytes'}, "
        f"suspend budget {workload.suspend_budget:.1f} time units",
    ]
    for name, stats in results.items():
        lines.append("")
        lines.append(
            format_table(
                stats.query_rows(),
                title=f"policy {name} - per-query latency",
            )
        )
        if stats.fold is not None:
            f = stats.fold
            lines.append(
                f"fold: {f['grafted']}/{f['candidates']} queries grafted, "
                f"{f['splits']} splits, "
                f"{f['pages_absorbed']} pages absorbed vs "
                f"{f['pages_shared']} fetched "
                f"({f['refetches']} refetches, "
                f"{f['build_hits']} shared build tables)"
            )
        lines.append("")
        lines.append(
            format_table(
                stats.timeline_rows(),
                title=f"policy {name} - memory-pressure timeline",
            )
        )
    if len(results) > 1:
        lines.append("")
        lines.append(
            format_table(
                policy_comparison_rows(results),
                title="policy comparison (best combined turnaround first)",
            )
        )
    return "\n".join(lines)


def run_demo(rows_before_suspend: int = 20, row_path: bool = False) -> str:
    """One suspend/resume cycle on a small join, narrated."""
    from repro import Database, QuerySession, SuspendSpec, SuspendStrategy
    from repro.engine.config import EngineConfig
    from repro.engine.plan import FilterSpec, NLJSpec, ScanSpec
    from repro.relational.datagen import BASE_SCHEMA, generate_uniform_table
    from repro.relational.expressions import EquiJoinCondition, UniformSelect

    db = Database()
    db.create_table("R", BASE_SCHEMA, generate_uniform_table(2_000, seed=1))
    db.create_table("S", BASE_SCHEMA, generate_uniform_table(400, seed=2))
    plan = NLJSpec(
        outer=FilterSpec(
            ScanSpec("R", label="scan_R"), UniformSelect(1, 0.5), label="filter"
        ),
        inner=ScanSpec("S", label="scan_S"),
        condition=EquiJoinCondition(0, 0, modulus=100),
        buffer_tuples=300,
        label="join",
    )
    config = EngineConfig(batch_execution=not row_path)
    lines = []
    session = QuerySession(db, plan, config=config)
    first = session.execute(max_rows=rows_before_suspend)
    lines.append(
        f"executed: {len(first.rows)} rows in {first.elapsed:.1f} time units"
    )
    sq = session.suspend(SuspendSpec(strategy=SuspendStrategy.LP))
    lines.append(f"suspended in {session.last_suspend_cost:.1f} time units")
    lines.append("suspend plan:")
    lines.append(
        sq.suspend_plan.describe(
            {0: "join", 1: "filter", 2: "scan_R", 3: "scan_S"}
        )
    )
    resumed = QuerySession.resume(db, sq, config=config)
    lines.append(f"resumed in {resumed.last_resume_cost:.1f} time units")
    rest = resumed.execute()
    lines.append(
        f"finished: {len(rest.rows)} more rows "
        f"({len(first.rows) + len(rest.rows)} total)"
    )
    return "\n".join(lines)


#: ``--image-codec`` flag values to manifest codec versions.
CODEC_NAMES = {"v1": 1, "v2": 2}


def run_suspend_to_image(
    recipe: str,
    images: str,
    rows: int = 50,
    scale: int = 1,
    seed: int = 0,
    image_id: Optional[str] = None,
    as_json: bool = False,
    row_path: bool = False,
    codec: Optional[str] = None,
    strategy: str = "lp",
    budget: Optional[float] = None,
    delta: bool = True,
    commit_workers: int = 0,
) -> str:
    """Run a recipe partway, suspend, and commit a durable image."""
    from repro.core.lifecycle import QuerySession, SuspendSpec
    from repro.durability import ImageStore, build_recipe
    from repro.engine.config import EngineConfig

    db, plan = build_recipe(recipe, scale=scale, seed=seed)
    config = EngineConfig(batch_execution=not row_path)
    session = QuerySession(db, plan, name=recipe, config=config)
    result = session.execute(max_rows=rows)
    store = (
        ImageStore(images, codec_version=CODEC_NAMES[codec])
        if codec is not None
        else images
    )
    session.suspend(SuspendSpec(
        strategy=strategy,
        budget=float("inf") if budget is None else budget,
        persist_to=store,
        delta=delta,
        commit_workers=commit_workers,
        image_id=image_id,
        image_meta={
            "recipe": recipe,
            "scale": scale,
            "seed": seed,
            "rows_emitted": len(result.rows),
        },
    ))
    info = session.last_image
    if as_json:
        return json.dumps(
            {
                "image_id": info.image_id,
                "recipe": recipe,
                "rows": [list(r) for r in result.rows],
                "suspend_cost": session.last_suspend_cost,
                "bytes": info.total_bytes,
                "blobs": info.num_blobs,
            }
        )
    return (
        f"recipe {recipe!r}: emitted {len(result.rows)} rows, then "
        f"suspended in {session.last_suspend_cost:.1f} time units\n"
        f"image {info.image_id} committed under {images}: "
        f"{info.total_bytes} bytes, {info.num_blobs} payload blobs"
    )


def run_resume_from_image(
    images: str, image_id: str, as_json: bool = False
) -> str:
    """Rebuild an image's recipe database and finish the query from it."""
    from repro.core.lifecycle import QuerySession
    from repro.durability import ImageStore, build_recipe

    store = ImageStore(images)
    meta = store.info(image_id).meta
    if "recipe" not in meta:
        raise SystemExit(
            f"image {image_id!r} carries no recipe metadata; "
            "resume it programmatically against the database it expects"
        )
    db, _ = build_recipe(
        meta["recipe"], scale=meta.get("scale", 1), seed=meta.get("seed", 0)
    )
    sq = store.load(image_id)
    session = QuerySession.resume(db, sq, name=meta["recipe"])
    result = session.execute()
    if as_json:
        return json.dumps(
            {
                "image_id": image_id,
                "recipe": meta["recipe"],
                "rows": [list(r) for r in result.rows],
                "resume_cost": session.last_resume_cost,
            }
        )
    return (
        f"image {image_id}: resumed recipe {meta['recipe']!r} in "
        f"{session.last_resume_cost:.1f} time units, emitted "
        f"{len(result.rows)} remaining rows"
    )


def run_images(
    images: str,
    recover: bool = False,
    gc: bool = False,
    as_json: bool = False,
) -> str:
    """List, recover, or garbage-collect an image root."""
    from repro.durability import ImageStore
    from repro.shard import classify_shardsets

    store = ImageStore(images)
    if recover:
        report = store.recover().as_dict()
        # The per-image scan skips shard-set directories; judge the
        # global cuts separately so nothing under the root goes unjudged.
        cuts = classify_shardsets(store)
        if as_json:
            return json.dumps({**report, "shardset_cuts": cuts.as_dict()})
        lines = [
            f"{state}: {', '.join(names) if names else '-'}"
            for state, names in report.items()
        ]
        if cuts.committed or cuts.torn:
            lines.append(
                "shardset cuts committed: "
                + (", ".join(cuts.committed) or "-")
            )
            for gid, reason in sorted(cuts.torn.items()):
                stranded = cuts.stranded.get(gid, [])
                lines.append(
                    f"shardset cut TORN: {gid} ({reason})"
                    + (
                        f"; stranded members: {', '.join(stranded)}"
                        if stranded
                        else ""
                    )
                )
        return "\n".join(lines)
    if gc:
        deleted = store.gc()
        if as_json:
            return json.dumps({"deleted": deleted})
        return f"deleted {len(deleted)} image(s): {', '.join(deleted) or '-'}"
    infos = store.list_images()
    rows = []
    for info in infos:
        problems = store.validate(info.image_id)
        rows.append(
            {
                **info.as_dict(),
                "valid": not problems,
                "problems": problems,
            }
        )
    cuts = classify_shardsets(store)
    if as_json:
        return json.dumps({"images": rows, "shardset_cuts": cuts.as_dict()})
    if not rows and not cuts.committed and not cuts.torn:
        return f"no committed images under {images}"
    lines = []
    for row in rows:
        status = "ok" if row["valid"] else "INVALID: " + "; ".join(row["problems"])
        chain = (
            f", delta of {row['base_image_id']} (chain {row['chain_length']})"
            if row.get("base_image_id")
            else ""
        )
        lines.append(
            f"{row['image_id']}: codec v{row['codec_version']}, "
            f"{row['total_bytes']} bytes, "
            f"{row['num_blobs']} blobs{chain}, meta={row['meta']} [{status}]"
        )
    for gid in cuts.committed:
        lines.append(f"shardset {gid}: committed consistent cut")
    for gid, reason in sorted(cuts.torn.items()):
        lines.append(f"shardset {gid}: TORN ({reason})")
    return "\n".join(lines)


def _write_shard_sidecars(coord, trace_out: Optional[str]) -> None:
    """Write process-worker children's trace streams as sidecar files.

    Each child buffers its own records (``repro.obs`` child tracer) and
    the coordinator drains them over the pipe; writing them as
    ``<trace-out>.shard<k>.jsonl`` next to the coordinator trace lets
    ``repro trace merge`` rebuild the one global timeline offline.
    In-process workers share the coordinator's sink, so there is nothing
    to write in that mode.
    """
    if not trace_out:
        return
    traces = coord.collect_shard_traces()
    if not traces:
        return
    from repro.obs import write_jsonl

    for k in sorted(traces):
        path = f"{trace_out}.shard{k}.jsonl"
        n = write_jsonl(traces[k], path)
        print(
            f"wrote {n} shard-{k} trace records to {path}", file=sys.stderr
        )


def run_shard_suspend(
    recipe: str,
    images: str,
    rows: int = 50,
    scale: int = 1,
    seed: int = 0,
    shards: int = 2,
    budget: Optional[float] = None,
    gid: Optional[str] = None,
    as_json: bool = False,
    worker_mode: str = "inproc",
    quantum: int = 64,
    trace_out: Optional[str] = None,
) -> str:
    """Run a recipe sharded, then commit a consistent-cut shard set."""
    from repro.durability import build_recipe
    from repro.shard import ShardCoordinator

    db, plan = build_recipe(recipe, scale=scale, seed=seed)
    coord = ShardCoordinator(
        db,
        plan,
        num_shards=shards,
        worker_mode=worker_mode,
        quantum_rows=quantum,
    )
    delivered = coord.run(max_rows=rows)
    if coord.done:
        raise SystemExit(
            f"recipe {recipe!r} completed ({len(delivered)} rows) before "
            f"the suspend point; lower --rows or raise --scale"
        )
    report = coord.suspend_global(
        images,
        budget=float("inf") if budget is None else budget,
        gid=gid,
        meta={
            "recipe": recipe,
            "scale": scale,
            "seed": seed,
            "shards": shards,
        },
    )
    _write_shard_sidecars(coord, trace_out)
    if as_json:
        return json.dumps(
            {
                "gid": report.gid,
                "recipe": recipe,
                "shards": shards,
                "rows": [list(r) for r in delivered],
                "budgets": {str(k): v for k, v in report.budgets.items()},
                "suspend_costs": {
                    str(k): v for k, v in report.costs.items()
                },
                "suspend_latency": report.latency,
            }
        )
    budgets = ", ".join(
        f"s{k}={report.budgets[k]:.1f}" for k in sorted(report.budgets)
    )
    return (
        f"recipe {recipe!r} on {shards} shards: delivered "
        f"{len(delivered)} rows, then cut globally\n"
        f"shard set {report.gid} committed under {images}: "
        f"suspend latency {report.latency:.1f} (parallel), "
        f"budgets [{budgets}]"
    )


def run_shard_resume(
    images: str,
    gid: str,
    as_json: bool = False,
    worker_mode: str = "inproc",
    trace_out: Optional[str] = None,
) -> str:
    """Verify a shard set, rebuild its recipe, and finish the query."""
    from repro.durability import ImageStore, build_recipe
    from repro.shard import ShardCoordinator
    from repro.shard.manifest import load_shardset

    store = ImageStore(images)
    doc, _ = load_shardset(store, gid)
    meta = doc.get("meta", {})
    if "recipe" not in meta:
        raise SystemExit(
            f"shard set {gid!r} carries no recipe metadata; resume it "
            "programmatically against the database it expects"
        )
    db, _ = build_recipe(
        meta["recipe"], scale=meta.get("scale", 1), seed=meta.get("seed", 0)
    )
    coord = ShardCoordinator.resume(db, images, gid, worker_mode=worker_mode)
    rows = coord.run()
    coord.close()
    _write_shard_sidecars(coord, trace_out)
    if as_json:
        return json.dumps(
            {
                "gid": gid,
                "recipe": meta["recipe"],
                "shards": coord.num_shards,
                "rows": [list(r) for r in rows],
                "delivered_before": coord.delivered_before,
            }
        )
    return (
        f"shard set {gid}: resumed recipe {meta['recipe']!r} on "
        f"{coord.num_shards} shards, emitted {len(rows)} remaining rows "
        f"({coord.delivered_before} were delivered before the cut)"
    )


def run_workload_sharded(
    scale: int = 4,
    seed: int = 1,
    shards: int = 2,
    budget: Optional[float] = None,
) -> str:
    """Sharded serving demo: run, cut mid-flight, resume, verify.

    Runs the shuffle-join and aggregation recipes on ``shards`` shard
    workers with a global suspend at the halfway point, resumes from the
    committed shard set, and checks delivery equals an uninterrupted
    sharded run and (as a multiset) the single-engine run.
    """
    import tempfile

    from repro.core.lifecycle import QuerySession
    from repro.durability import build_recipe
    from repro.shard import ShardCoordinator

    lines = [f"sharded workload: {shards} shards, scale {scale}"]
    table = []
    # A small quantum guarantees a pass boundary (= a legal cut point)
    # mid-drain even for low-cardinality outputs like the aggregate.
    quantum = 4
    for recipe in ("hashjoin", "hashagg"):
        db, plan = build_recipe(recipe, scale=scale, seed=seed)
        single = QuerySession(db, plan, name=recipe)
        single_rows = single.execute().rows
        single_time = db.now

        db2, _ = build_recipe(recipe, scale=scale, seed=seed)
        full_coord = ShardCoordinator(
            db2, plan, num_shards=shards, quantum_rows=quantum
        )
        full_rows = full_coord.run()
        full_time = full_coord.global_now()

        db3, _ = build_recipe(recipe, scale=scale, seed=seed)
        coord = ShardCoordinator(
            db3, plan, num_shards=shards, quantum_rows=quantum
        )
        before = coord.run(max_rows=max(1, len(full_rows) // 2))
        if coord.done:
            raise SystemExit(
                f"recipe {recipe!r} finished before the demo's cut point"
            )
        with tempfile.TemporaryDirectory() as root:
            report = coord.suspend_global(
                root,
                budget=float("inf") if budget is None else budget,
            )
            db4, _ = build_recipe(recipe, scale=scale, seed=seed)
            resumed = ShardCoordinator.resume(db4, root, report.gid)
            after = resumed.run()
        consistent = before + after == full_rows
        equivalent = sorted(full_rows) == sorted(single_rows)
        table.append(
            {
                "recipe": recipe,
                "rows": len(full_rows),
                "single_time": round(single_time, 1),
                "sharded_time": round(full_time, 1),
                "suspend_latency": round(report.latency, 1),
                "cut_consistent": "yes" if consistent else "NO",
                "output_equal": "yes" if equivalent else "NO",
            }
        )
    lines.append("")
    lines.append(
        format_table(table, title="sharded vs single-engine (virtual time)")
    )
    return "\n".join(lines)


def run_serve_http(
    images: Optional[str],
    host: str = "127.0.0.1",
    port: int = 8351,
    scale: int = 8,
    seed: int = 1,
    quantum_rows: int = 64,
    tracer=None,
    fold: bool = False,
) -> int:
    """Serve the demo catalog over HTTP with continuation tokens."""
    import tempfile

    from repro.core.lifecycle import SuspendSpec
    from repro.serve import QueryService, ServeApp, ServeConfig, run_server
    from repro.workloads.plans import serve_catalog

    if images is None:
        images = tempfile.mkdtemp(prefix="repro-serve-")
        print(f"no --images given; committing images under {images}")
    db_factory, catalog = serve_catalog(scale=scale, seed=seed)
    config = ServeConfig(
        quantum_rows=quantum_rows,
        suspend=SuspendSpec(persist_to=images),
        tracer=tracer,
        host=host,
        port=port,
        fold=fold,
    )
    service = QueryService(db_factory(), config)
    print(
        f"catalog: {', '.join(sorted(catalog))} "
        f"(quantum {quantum_rows} rows, images under {images})"
    )
    run_server(ServeApp(service, catalog), host=host, port=port)
    return 0


def run_loadgen_cli(
    images: Optional[str],
    sessions: int = 200,
    scale: int = 8,
    seed: int = 1,
    quantum_rows: int = 32,
    output: Optional[str] = None,
    as_json: bool = False,
    tracer=None,
) -> str:
    """Drive the load generator and report latency/fairness/determinism."""
    import tempfile

    from repro.serve import run_loadgen

    if images is not None:
        report = run_loadgen(
            images,
            sessions=sessions,
            scale=scale,
            seed=seed,
            quantum_rows=quantum_rows,
            tracer=tracer,
        )
    else:
        with tempfile.TemporaryDirectory(prefix="repro-loadgen-") as root:
            report = run_loadgen(
                root,
                sessions=sessions,
                scale=scale,
                seed=seed,
                quantum_rows=quantum_rows,
                tracer=tracer,
            )
    if output:
        with open(output, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote report to {output}", file=sys.stderr)
    if as_json:
        return json.dumps(report, sort_keys=True)
    latency = report["latency"]
    fairness = report["fairness"]
    determinism = report["determinism"]
    lines = [
        f"{report['sessions']} sessions ({', '.join(report['plans'])}), "
        f"{report['requests']} requests, quantum {report['quantum_rows']} "
        f"rows, concurrent peak {report['concurrent_peak']}",
        f"latency (virtual time units): p50 {latency['p50']}, "
        f"p90 {latency['p90']}, p99 {latency['p99']}, max {latency['max']}",
        f"fairness: Jain index {fairness['jain_service_time']} overall; "
        + ", ".join(
            f"{p} {v}" for p, v in sorted(fairness["per_plan"].items())
        ),
        f"images: {report['images']['delta_commits']} delta commits, "
        f"{report['images']['full_commits']} full commits",
        "determinism: "
        + (
            "ok - every resumed session matched its uninterrupted run"
            if determinism["ok"]
            else "DIVERGED: " + ", ".join(determinism["divergent_sessions"])
        ),
    ]
    return "\n".join(lines)


def _load_trace_or_die(path: str) -> list:
    """Load a JSONL trace, exiting cleanly on empty/torn/corrupt files."""
    from repro.common.errors import TraceFileError
    from repro.obs import load_trace

    try:
        return load_trace(path)
    except TraceFileError as exc:
        raise SystemExit(f"error: {exc}")


def run_trace_summary(path: str) -> str:
    """Per-type record counts and headline metrics for a JSONL trace."""
    from repro.obs import render_summary

    return render_summary(_load_trace_or_die(path))


def run_trace_convert(path: str, output: Optional[str] = None) -> str:
    """Convert a JSONL trace to Chrome trace_event JSON (Perfetto)."""
    from repro.obs import write_chrome_trace

    records = _load_trace_or_die(path)
    out = output if output is not None else path + ".chrome.json"
    n = write_chrome_trace(records, out)
    return (
        f"wrote {n} Chrome trace events to {out}\n"
        f"open it at https://ui.perfetto.dev or chrome://tracing"
    )


def run_trace_merge(
    files: list, output: Optional[str] = None
) -> str:
    """Merge coordinator + shard trace streams into one global timeline.

    With one file, records are split into lanes by their ``shard`` field
    (the in-process sharded shape); with several, the first file is the
    coordinator lane and ``*.shardK.jsonl`` sidecars map to shard lanes.
    """
    import os
    import re

    from repro.obs import (
        COORDINATOR_LANE,
        merge_traces,
        shard_lane,
        split_by_shard,
        write_jsonl,
    )

    if len(files) == 1:
        streams = split_by_shard(_load_trace_or_die(files[0]))
    else:
        streams = []
        for i, path in enumerate(files):
            match = re.search(r"\.shard(\d+)\.jsonl$", path)
            if match:
                lane = shard_lane(int(match.group(1)))
            elif i == 0:
                lane = COORDINATOR_LANE
            else:
                lane = os.path.basename(path)
            streams.append((lane, _load_trace_or_die(path)))
    merged = merge_traces(streams)
    out = output if output is not None else files[0] + ".merged.jsonl"
    n = write_jsonl(merged, out)
    meta = merged[0]
    lanes = ", ".join(meta["lanes"])
    trace_id = meta.get("trace_id")
    lines = [
        f"merged {len(files)} stream file(s) into {n} records at {out}",
        f"lanes: {lanes}",
    ]
    if trace_id:
        lines.append(f"trace_id: {trace_id} (consistent across all lanes)")
    else:
        lines.append(
            "trace_id: mixed or absent (streams disagree on identity)"
        )
    return "\n".join(lines)


def run_trace_progress(path: str) -> str:
    """Per-query progress timelines from ``query.progress`` records."""
    from repro.obs import render_progress

    return render_progress(_load_trace_or_die(path))


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _deprecated_alias(canonical: str):
    """An argparse action for a deprecated flag spelling: works, warns."""

    class _Alias(argparse.Action):
        def __call__(self, parser, namespace, values, option_string=None):
            print(
                f"warning: {option_string} is deprecated; "
                f"use {canonical}",
                file=sys.stderr,
            )
            setattr(namespace, self.dest, values)

    return _Alias


def _add_obs_flags(parser, trace_alias: bool = True) -> None:
    """Attach the observability output flags to a subcommand parser.

    ``--trace-out`` is the canonical spelling everywhere; ``--trace``
    remains a deprecated alias except on ``workload``/``serve``, where
    it already selects the arrival trace (they pass
    ``trace_alias=False``).
    """
    parser.add_argument(
        "--trace-out",
        dest="trace_out",
        metavar="PATH",
        default=None,
        help="write a JSONL observability trace to PATH",
    )
    if trace_alias:
        parser.add_argument(
            "--trace",
            dest="trace_out",
            metavar="PATH",
            action=_deprecated_alias("--trace-out"),
            help=argparse.SUPPRESS,
        )
    parser.add_argument(
        "--metrics",
        dest="metrics_out",
        metavar="PATH",
        default=None,
        help="write a plain-text metrics snapshot to PATH",
    )
    parser.add_argument(
        "--trace-sample",
        dest="trace_sample",
        type=_positive_int,
        metavar="N",
        default=None,
        help="also record every Nth operator next() call as a span",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Query Suspend and Resume (SIGMOD 2007) reproduction: run the "
            "paper's experiments and demos."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    exp = sub.add_parser("experiment", help="run one paper experiment")
    exp.add_argument("name", choices=sorted(EXPERIMENTS))
    exp.add_argument(
        "--scale",
        type=_positive_int,
        default=100,
        help="data scale divisor vs the paper's sizes (default 100)",
    )
    _add_obs_flags(exp)

    demo = sub.add_parser("demo", help="one suspend/resume cycle, narrated")
    demo.add_argument("--rows", type=int, default=20)
    demo.add_argument(
        "--row-path",
        action="store_true",
        help="use the tuple-at-a-time execution path instead of the "
        "vectorized batch path (results are bit-identical; see DESIGN.md)",
    )
    _add_obs_flags(demo)

    from repro.workloads.plans import TRACES

    for alias in ("workload", "serve"):
        wl = sub.add_parser(
            alias,
            help="replay a multi-query arrival trace through the scheduler",
        )
        wl.add_argument(
            "--trace",
            choices=sorted(TRACES),
            default="mixed",
            help="arrival trace to replay (default mixed)",
        )
        wl.add_argument("--seed", type=int, default=1)
        wl.add_argument(
            "--scale",
            type=_positive_int,
            default=4,
            help="data scale divisor vs the paper's sizes (default 4)",
        )
        wl.add_argument(
            "--policy",
            choices=("suspend-resume", "kill-restart", "wait"),
            default=None,
            help="run a single policy instead of comparing all three",
        )
        wl.add_argument(
            "--fold",
            action="store_true",
            help="fold shared work across concurrent queries: common "
            "scans drain once through shared producers, common hash-join "
            "build sides are built once (outputs, per-query clocks, and "
            "suspend images are unchanged; see docs/PROTOCOL.md #11)",
        )
        wl.add_argument(
            "--shards",
            type=_positive_int,
            default=None,
            help="run the sharded-execution demo on N shard workers "
            "instead of the scheduler trace: shuffle join + aggregation "
            "with a mid-run globally consistent suspend/resume",
        )
        _add_obs_flags(wl, trace_alias=False)

    sh = sub.add_parser(
        "serve-http",
        help="serve the demo catalog over HTTP with continuation tokens",
    )
    sh.add_argument(
        "--images",
        default=None,
        help="durable image root (default: a fresh temp directory)",
    )
    sh.add_argument("--host", default="127.0.0.1")
    sh.add_argument("--port", type=int, default=8351)
    sh.add_argument(
        "--scale",
        type=_positive_int,
        default=8,
        help="data scale divisor for the catalog tables (default 8)",
    )
    sh.add_argument("--seed", type=int, default=1)
    sh.add_argument(
        "--quantum-rows",
        type=_positive_int,
        default=64,
        help="rows each request may emit before suspending (default 64)",
    )
    sh.add_argument(
        "--fold",
        action="store_true",
        help="fold shared work across concurrently served queries "
        "(shared scan page windows persist across token hops)",
    )
    _add_obs_flags(sh)

    lg = sub.add_parser(
        "loadgen",
        help="drive the token service with N simulated clients",
    )
    lg.add_argument(
        "--images",
        default=None,
        help="durable image root (default: a temp directory, cleaned up)",
    )
    lg.add_argument(
        "--sessions",
        type=_positive_int,
        default=200,
        help="concurrent client sessions to simulate (default 200)",
    )
    lg.add_argument("--scale", type=_positive_int, default=8)
    lg.add_argument("--seed", type=int, default=1)
    lg.add_argument(
        "--quantum-rows", type=_positive_int, default=32
    )
    lg.add_argument(
        "-o",
        "--output",
        default=None,
        help="also write the full JSON report to this path",
    )
    lg.add_argument("--json", action="store_true")
    _add_obs_flags(lg)

    from repro.durability.recipes import RECIPES

    susp = sub.add_parser(
        "suspend",
        help="run a recipe partway and commit a durable suspend image",
    )
    susp.add_argument("--recipe", choices=sorted(RECIPES), required=True)
    susp.add_argument(
        "--images", required=True, help="image root directory"
    )
    susp.add_argument(
        "--rows",
        type=_positive_int,
        default=50,
        help="output rows to emit before suspending (default 50)",
    )
    susp.add_argument("--scale", type=_positive_int, default=1)
    susp.add_argument("--seed", type=int, default=0)
    susp.add_argument("--id", default=None, help="explicit image id")
    susp.add_argument("--json", action="store_true")
    susp.add_argument(
        "--row-path",
        action="store_true",
        help="use the tuple-at-a-time execution path instead of the "
        "vectorized batch path",
    )
    susp.add_argument(
        "--image-codec",
        dest="codec",
        choices=sorted(CODEC_NAMES),
        default=None,
        help="image codec version (v1 tagged-JSON or v2 binary columnar; "
        "default: the store default, v2)",
    )
    susp.add_argument(
        "--codec",
        dest="codec",
        choices=sorted(CODEC_NAMES),
        action=_deprecated_alias("--image-codec"),
        help=argparse.SUPPRESS,
    )
    susp.add_argument(
        "--strategy",
        choices=("lp", "mip", "all_dump", "all_goback"),
        default="lp",
        help="suspend-plan strategy (default lp)",
    )
    susp.add_argument(
        "--budget",
        type=float,
        default=None,
        help="suspend-time budget in virtual time units (default: none)",
    )
    susp.add_argument(
        "--no-delta",
        dest="delta",
        action="store_false",
        help="commit a full image even when a base image exists",
    )
    susp.add_argument(
        "--commit-workers",
        type=int,
        default=0,
        help="parallel durable-commit workers (default 0: serial)",
    )
    susp.add_argument(
        "--shards",
        type=_positive_int,
        default=None,
        help="run the recipe on N shard workers and commit a globally "
        "consistent shard-set cut instead of a single image "
        "(hashjoin/hashagg recipes; --budget becomes the global budget)",
    )
    susp.add_argument(
        "--gid",
        default=None,
        help="explicit shard-set id (with --shards; default: generated)",
    )
    susp.add_argument(
        "--quantum",
        type=_positive_int,
        default=64,
        help="rows per shard per round-robin pass (with --shards)",
    )
    susp.add_argument(
        "--worker-mode",
        choices=("inproc", "process"),
        default="inproc",
        help="shard workers in-process or one child process per shard "
        "(with --shards)",
    )
    _add_obs_flags(susp)

    res = sub.add_parser(
        "resume-image",
        help="resume a suspend image in this process and run to completion",
    )
    res.add_argument("--images", required=True, help="image root directory")
    res.add_argument("--id", required=True, help="image id to resume")
    res.add_argument("--json", action="store_true")
    res.add_argument(
        "--worker-mode",
        choices=("inproc", "process"),
        default="inproc",
        help="when resuming a shard set: rebuild shard workers in-process "
        "or one child process per shard",
    )
    _add_obs_flags(res)

    img = sub.add_parser(
        "images", help="list/validate/recover/gc a durable-image root"
    )
    img.add_argument("--images", required=True, help="image root directory")
    group = img.add_mutually_exclusive_group()
    group.add_argument(
        "--recover",
        action="store_true",
        help="run the startup recovery scan (quarantines bad images)",
    )
    group.add_argument(
        "--gc", action="store_true", help="delete every committed image"
    )
    img.add_argument("--json", action="store_true")

    tr = sub.add_parser(
        "trace", help="inspect or convert a JSONL observability trace"
    )
    trsub = tr.add_subparsers(dest="trace_command", required=True)
    tsum = trsub.add_parser(
        "summary", help="print per-type record counts and headline metrics"
    )
    tsum.add_argument("file", help="JSONL trace file")
    tconv = trsub.add_parser(
        "convert",
        help="convert to Chrome trace_event JSON (opens in Perfetto)",
    )
    tconv.add_argument("file", help="JSONL trace file")
    tconv.add_argument(
        "-o",
        "--output",
        default=None,
        help="output path (default: <file>.chrome.json)",
    )
    tmerge = trsub.add_parser(
        "merge",
        help="merge coordinator + shard trace streams into one timeline "
        "(one file: split by shard field; several: first is coordinator, "
        "*.shardK.jsonl sidecars are shard lanes)",
    )
    tmerge.add_argument(
        "files", nargs="+", help="JSONL trace files (coordinator first)"
    )
    tmerge.add_argument(
        "-o",
        "--output",
        default=None,
        help="merged output path (default: <first file>.merged.jsonl)",
    )
    tprog = trsub.add_parser(
        "progress",
        help="per-query progress timelines from query.progress records",
    )
    tprog.add_argument("file", help="JSONL trace file")
    return parser


def _install_tracer(args):
    """Make a Tracer the process default when obs flags were given."""
    if getattr(args, "trace_out", None) is None and (
        getattr(args, "metrics_out", None) is None
    ):
        return None
    from repro.obs import Tracer, set_current_tracer

    sample = getattr(args, "trace_sample", None)
    tracer = Tracer(next_sample_every=sample if sample else 0)
    set_current_tracer(tracer)
    return tracer


def _export_tracer(tracer, args) -> None:
    """Write the collected trace/metrics; notices go to stderr so
    ``--json`` stdout stays machine-readable."""
    if tracer is None:
        return
    from repro.obs import set_current_tracer, write_jsonl

    set_current_tracer(None)
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        n = write_jsonl(tracer.records, trace_out)
        print(f"wrote {n} trace records to {trace_out}", file=sys.stderr)
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        with open(metrics_out, "w", encoding="utf-8") as fh:
            # Wall-clock (volatile) metrics are fine here: determinism
            # checks compare trace files, never this snapshot.
            fh.write(tracer.metrics.render_text(include_volatile=True))
        print(f"wrote metrics snapshot to {metrics_out}", file=sys.stderr)


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    tracer = _install_tracer(args)
    try:
        return _dispatch(args)
    finally:
        _export_tracer(tracer, args)


def _dispatch(args) -> int:
    if args.command == "list":
        print("available experiments:")
        for name in sorted(EXPERIMENTS):
            print(f"  {name}")
        return 0
    if args.command == "experiment":
        print(EXPERIMENTS[args.name](args))
        return 0
    if args.command == "demo":
        print(run_demo(args.rows, row_path=args.row_path))
        return 0
    if args.command in ("workload", "serve"):
        if args.shards:
            print(
                run_workload_sharded(
                    scale=args.scale, seed=args.seed, shards=args.shards
                )
            )
        else:
            print(
                run_workload(
                    args.trace,
                    seed=args.seed,
                    scale=args.scale,
                    policy=args.policy,
                    fold=args.fold,
                )
            )
        return 0
    if args.command == "serve-http":
        from repro.obs import current_tracer

        tracer = current_tracer()
        return run_serve_http(
            args.images,
            host=args.host,
            port=args.port,
            scale=args.scale,
            seed=args.seed,
            quantum_rows=args.quantum_rows,
            tracer=tracer if tracer.enabled else None,
            fold=args.fold,
        )
    if args.command == "loadgen":
        from repro.obs import current_tracer

        tracer = current_tracer()
        print(
            run_loadgen_cli(
                args.images,
                sessions=args.sessions,
                scale=args.scale,
                seed=args.seed,
                quantum_rows=args.quantum_rows,
                output=args.output,
                as_json=args.json,
                tracer=tracer if tracer.enabled else None,
            )
        )
        return 0
    if args.command == "suspend":
        if args.shards:
            print(
                run_shard_suspend(
                    args.recipe,
                    args.images,
                    rows=args.rows,
                    scale=args.scale,
                    seed=args.seed,
                    shards=args.shards,
                    budget=args.budget,
                    gid=args.gid,
                    as_json=args.json,
                    worker_mode=args.worker_mode,
                    quantum=args.quantum,
                    trace_out=getattr(args, "trace_out", None),
                )
            )
            return 0
        print(
            run_suspend_to_image(
                args.recipe,
                args.images,
                rows=args.rows,
                scale=args.scale,
                seed=args.seed,
                image_id=args.id,
                as_json=args.json,
                row_path=args.row_path,
                codec=args.codec,
                strategy=args.strategy,
                budget=args.budget,
                delta=args.delta,
                commit_workers=args.commit_workers,
            )
        )
        return 0
    if args.command == "resume-image":
        import os

        from repro.durability.format import CHANNELS_NAME, SHARDSET_NAME

        # A shard-set directory counts even when the commit crashed before
        # SHARDSET.json landed — routing it through the shard path yields a
        # precise InconsistentCutError instead of "no committed image".
        is_shardset = any(
            os.path.exists(os.path.join(args.images, args.id, name))
            for name in (SHARDSET_NAME, CHANNELS_NAME)
        )
        if is_shardset:
            from repro.common.errors import InconsistentCutError

            try:
                print(
                    run_shard_resume(
                        args.images,
                        args.id,
                        as_json=args.json,
                        worker_mode=getattr(args, "worker_mode", "inproc"),
                        trace_out=getattr(args, "trace_out", None),
                    )
                )
            except InconsistentCutError as exc:
                raise SystemExit(f"cannot resume shard set {args.id!r}: {exc}")
        else:
            print(
                run_resume_from_image(args.images, args.id, as_json=args.json)
            )
        return 0
    if args.command == "images":
        print(
            run_images(
                args.images,
                recover=args.recover,
                gc=args.gc,
                as_json=args.json,
            )
        )
        return 0
    if args.command == "trace":
        if args.trace_command == "summary":
            print(run_trace_summary(args.file))
        elif args.trace_command == "convert":
            print(run_trace_convert(args.file, output=args.output))
        elif args.trace_command == "merge":
            print(run_trace_merge(args.files, output=args.output))
        else:
            print(run_trace_progress(args.file))
        return 0
    return 1  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
