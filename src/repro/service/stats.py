"""Scheduler accounting: per-query and per-scheduler statistics.

Everything is exposed as plain dicts (``as_dict`` / ``query_rows``) so
tests, the CLI, and the harness report tables consume the same numbers
without reaching into scheduler internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class TimelineEvent:
    """One entry of the memory-pressure timeline.

    ``memory_bytes`` is the total operator heap held by *all* live
    sessions right after the event took effect.
    """

    time: float
    event: str
    query: str
    memory_bytes: int

    def as_dict(self) -> dict:
        return {
            "time": round(self.time, 2),
            "event": self.event,
            "query": self.query,
            "memory_bytes": self.memory_bytes,
        }


@dataclass
class QueryStats:
    """Lifecycle accounting for one admitted query."""

    name: str
    priority: int
    arrival_time: float
    first_started_at: Optional[float] = None
    completed_at: Optional[float] = None
    suspends: int = 0
    resumes: int = 0
    kills: int = 0
    discarded_resumes: int = 0
    durable_spills: int = 0
    rows_emitted: int = 0

    @property
    def wait(self) -> Optional[float]:
        """Time from arrival to first execution quantum."""
        if self.first_started_at is None:
            return None
        return self.first_started_at - self.arrival_time

    @property
    def turnaround(self) -> Optional[float]:
        """Time from arrival to completion (the paper's latency metric)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.arrival_time

    def as_dict(self) -> dict:
        return {
            "query": self.name,
            "priority": self.priority,
            "arrival": round(self.arrival_time, 2),
            "wait": None if self.wait is None else round(self.wait, 2),
            "turnaround": (
                None if self.turnaround is None else round(self.turnaround, 2)
            ),
            "suspends": self.suspends,
            "resumes": self.resumes,
            "kills": self.kills,
            "discarded_resumes": self.discarded_resumes,
            "durable_spills": self.durable_spills,
            "rows": self.rows_emitted,
        }


@dataclass
class SchedulerStats:
    """Aggregate counters for one scheduler run."""

    policy: str
    queries_admitted: int = 0
    queries_completed: int = 0
    suspends: int = 0
    resumes: int = 0
    kills: int = 0
    discarded_resumes: int = 0
    durable_spills: int = 0
    peak_memory: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0
    per_query: dict[str, QueryStats] = field(default_factory=dict)
    timeline: list[TimelineEvent] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        return self.finished_at - self.started_at

    def total_turnaround(self) -> float:
        """Sum of every completed query's turnaround.

        For the two-query Section 1 trace this is exactly Q_hi latency +
        Q_lo turnaround, the combined metric the policies are ranked by.
        """
        return sum(
            q.turnaround
            for q in self.per_query.values()
            if q.turnaround is not None
        )

    def as_dict(self) -> dict:
        return {
            "policy": self.policy,
            "queries_admitted": self.queries_admitted,
            "queries_completed": self.queries_completed,
            "suspends": self.suspends,
            "resumes": self.resumes,
            "kills": self.kills,
            "discarded_resumes": self.discarded_resumes,
            "durable_spills": self.durable_spills,
            "peak_memory": self.peak_memory,
            "makespan": round(self.makespan, 2),
            "total_turnaround": round(self.total_turnaround(), 2),
        }

    def query_rows(self) -> list[dict]:
        """Per-query dict-rows ordered by arrival time."""
        ordered = sorted(
            self.per_query.values(), key=lambda q: (q.arrival_time, q.name)
        )
        return [q.as_dict() for q in ordered]

    def timeline_rows(self) -> list[dict]:
        return [e.as_dict() for e in self.timeline]
