"""Scheduler accounting: per-query and per-scheduler statistics.

Everything is exposed as plain dicts (``as_dict`` / ``query_rows``) so
tests, the CLI, and the harness report tables consume the same numbers
without reaching into scheduler internals.

Both stats classes are *views over* a
:class:`~repro.obs.metrics.MetricsRegistry` rather than bags of ints:
each :class:`QueryStats` lifecycle counter is a labeled counter series
(``query_suspends_total{query="q_lo"}`` and friends), and the
whole-run aggregates on :class:`SchedulerStats` are **derived** — they
sum the per-query series via :meth:`MetricsRegistry.total`. There is no
second accumulation site, so the aggregate and per-query numbers (and
any tracer metrics sharing the registry) cannot disagree; historically
``durable_spills`` was incremented in two places and could drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs.metrics import MetricsRegistry


@dataclass(frozen=True)
class TimelineEvent:
    """One entry of the memory-pressure timeline.

    ``memory_bytes`` is the total operator heap held by *all* live
    sessions right after the event took effect.
    """

    time: float
    event: str
    query: str
    memory_bytes: int

    def as_dict(self) -> dict:
        return {
            "time": round(self.time, 2),
            "event": self.event,
            "query": self.query,
            "memory_bytes": self.memory_bytes,
        }


#: QueryStats lifecycle counters, each backed by one registry series
#: named ``query_<field>_total`` with a ``query=<name>`` label.
QUERY_COUNTER_FIELDS = (
    "suspends",
    "resumes",
    "kills",
    "discarded_resumes",
    "durable_spills",
    "rows_emitted",
)


def _query_counter_property(field_name: str) -> property:
    metric = f"query_{field_name}_total"

    def getter(self):
        return self._registry.counter(metric, query=self.name).value

    def setter(self, value):
        # Settable (not just incrementable) because a kill legitimately
        # resets a query's emitted-row count to zero.
        self._registry.counter(metric, query=self.name).set(value)

    getter.__name__ = field_name
    return property(getter, setter)


class QueryStats:
    """Lifecycle accounting for one admitted query.

    The int-valued fields read and write labeled counters in the
    scheduler's metrics registry; ``stats.suspends += 1`` still works,
    it just lands in ``query_suspends_total{query=...}``.
    """

    def __init__(
        self,
        name: str,
        priority: int,
        arrival_time: float,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.name = name
        self.priority = priority
        self.arrival_time = arrival_time
        self.first_started_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self._registry = registry if registry is not None else MetricsRegistry()

    suspends = _query_counter_property("suspends")
    resumes = _query_counter_property("resumes")
    kills = _query_counter_property("kills")
    discarded_resumes = _query_counter_property("discarded_resumes")
    durable_spills = _query_counter_property("durable_spills")
    rows_emitted = _query_counter_property("rows_emitted")

    @property
    def wait(self) -> Optional[float]:
        """Time from arrival to first execution quantum."""
        if self.first_started_at is None:
            return None
        return self.first_started_at - self.arrival_time

    @property
    def turnaround(self) -> Optional[float]:
        """Time from arrival to completion (the paper's latency metric)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.arrival_time

    def as_dict(self) -> dict:
        return {
            "query": self.name,
            "priority": self.priority,
            "arrival": round(self.arrival_time, 2),
            "wait": None if self.wait is None else round(self.wait, 2),
            "turnaround": (
                None if self.turnaround is None else round(self.turnaround, 2)
            ),
            "suspends": self.suspends,
            "resumes": self.resumes,
            "kills": self.kills,
            "discarded_resumes": self.discarded_resumes,
            "durable_spills": self.durable_spills,
            "rows": self.rows_emitted,
        }


def _derived_total_property(field_name: str) -> property:
    metric = f"query_{field_name}_total"

    def getter(self):
        return int(self.registry.total(metric))

    getter.__name__ = field_name
    getter.__doc__ = (
        f"Sum of ``{metric}`` across every tracked query (read-only)."
    )
    return property(getter)


def _scheduler_counter_property(field_name: str) -> property:
    metric = f"scheduler_{field_name}_total"

    def getter(self):
        return self.registry.counter(metric).value

    def setter(self, value):
        self.registry.counter(metric).set(value)

    getter.__name__ = field_name
    return property(getter, setter)


class SchedulerStats:
    """Aggregate counters for one scheduler run.

    Per-event aggregates (``suspends``, ``resumes``, ``kills``,
    ``discarded_resumes``, ``durable_spills``) are read-only sums of
    the per-query counter series — there is nothing separate to
    increment, and therefore nothing that can drift out of parity.
    """

    def __init__(
        self, policy: str, registry: Optional[MetricsRegistry] = None
    ):
        self.policy = policy
        self.registry = registry if registry is not None else MetricsRegistry()
        self.started_at: float = 0.0
        self.finished_at: float = 0.0
        self.per_query: dict[str, QueryStats] = {}
        self.timeline: list[TimelineEvent] = []
        #: Shared-work folding tallies (``FoldStats.as_dict()``) when the
        #: run folded; ``None`` otherwise.
        self.fold: Optional[dict] = None

    def track(
        self, name: str, priority: int, arrival_time: float
    ) -> QueryStats:
        """A new :class:`QueryStats` wired to this run's registry."""
        return QueryStats(name, priority, arrival_time, registry=self.registry)

    queries_admitted = _scheduler_counter_property("queries_admitted")
    queries_completed = _scheduler_counter_property("queries_completed")

    suspends = _derived_total_property("suspends")
    resumes = _derived_total_property("resumes")
    kills = _derived_total_property("kills")
    discarded_resumes = _derived_total_property("discarded_resumes")
    durable_spills = _derived_total_property("durable_spills")

    @property
    def peak_memory(self) -> int:
        return self.registry.gauge("scheduler_peak_memory_bytes").value

    @peak_memory.setter
    def peak_memory(self, value: int) -> None:
        self.registry.gauge("scheduler_peak_memory_bytes").set(value)

    @property
    def makespan(self) -> float:
        return self.finished_at - self.started_at

    def total_turnaround(self) -> float:
        """Sum of every completed query's turnaround.

        For the two-query Section 1 trace this is exactly Q_hi latency +
        Q_lo turnaround, the combined metric the policies are ranked by.
        """
        return sum(
            q.turnaround
            for q in self.per_query.values()
            if q.turnaround is not None
        )

    def as_dict(self) -> dict:
        return {
            "policy": self.policy,
            "queries_admitted": self.queries_admitted,
            "queries_completed": self.queries_completed,
            "suspends": self.suspends,
            "resumes": self.resumes,
            "kills": self.kills,
            "discarded_resumes": self.discarded_resumes,
            "durable_spills": self.durable_spills,
            "peak_memory": self.peak_memory,
            "makespan": round(self.makespan, 2),
            "total_turnaround": round(self.total_turnaround(), 2),
            **({"fold": self.fold} if self.fold is not None else {}),
        }

    def query_rows(self) -> list[dict]:
        """Per-query dict-rows ordered by arrival time."""
        ordered = sorted(
            self.per_query.values(), key=lambda q: (q.arrival_time, q.name)
        )
        return [q.as_dict() for q in ordered]

    def timeline_rows(self) -> list[dict]:
        return [e.as_dict() for e in self.timeline]
