"""ExecutorCore: the engine-agnostic heart of every serving transport.

The paper's lifecycle primitives (execute a quantum, suspend within a
budget, resume without losing work) are transport-independent; what
differs between an in-process trace replay and an HTTP front end is only
*who decides when a query runs*. This module holds everything the
transports share:

- :class:`QueryRecord` / :class:`QueryState` — the per-query serving
  state machine;
- :class:`SchedulerConfig` — one config for every transport, carrying a
  single :class:`~repro.core.lifecycle.SuspendSpec` for the whole
  suspend surface (strategy, budget, durable persistence, delta spill,
  parallel commit);
- :class:`ExecutorCore` — admission bookkeeping, the three pressure
  policies' accounting hooks (``pressure_excess`` /
  ``victim_candidates`` / ``suspend_victims`` / ``kill_victim``), the
  quantum execution step with its observability wiring, and durable
  image spill with chain-aware GC on completion.

Transports compose it:

- :class:`repro.service.scheduler.QueryScheduler` replays an arrival
  trace in-process, picking the next record itself (the PR-1 harness);
- :class:`repro.serve.service.QueryService` runs one quantum per
  *request* and parks the query state in a durable image between
  requests, handing clients a continuation token.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.durability.store import ImageStore

from repro.common.errors import SuspendBudgetInfeasibleError
from repro.core.lifecycle import (
    QuerySession,
    QueryStatus,
    SuspendSpec,
    SuspendStrategy,
)
from repro.core.suspended_query import SuspendedQuery
from repro.engine.config import EngineConfig
from repro.obs.progress import (
    emit_progress,
    estimate_cardinalities,
    query_progress,
)
from repro.obs.tracer import Tracer, current_tracer, make_trace_id
from repro.service.policies import PressurePolicy, get_policy
from repro.service.stats import QueryStats, SchedulerStats, TimelineEvent
from repro.service.trace import QueryArrival
from repro.storage.database import Database


class QueryState(Enum):
    """Transport-side lifecycle of an admitted query."""

    WAITING = "waiting"  # admitted, no session yet (fresh or killed)
    READY = "ready"  # live session, runnable at the next quantum
    SUSPENDED = "suspended"  # state on disk as a SuspendedQuery
    DONE = "done"


#: Sentinel distinguishing "not passed" from an explicit ``None`` on the
#: deprecated SchedulerConfig fields.
_UNSET = object()

#: Deprecated SchedulerConfig field -> the SuspendSpec field it feeds.
_LEGACY_CONFIG_FIELDS = {
    "suspend_strategy": "strategy",
    "suspend_budget": "budget",
    "image_store": "persist_to",
    "image_codec": "codec",
    "commit_workers": "commit_workers",
    "delta_spill": "delta",
}


@dataclass
class SchedulerConfig:
    """Tunables of one serving run (any transport).

    Attributes:
        policy: pressure policy — ``"suspend-resume"``, ``"kill-restart"``,
            ``"wait"``, or a :class:`PressurePolicy` instance.
        memory_budget: shared budget, in bytes, over the heap state of
            every live session other than the one being served; ``None``
            disables pressure handling entirely.
        quantum_rows: root output tuples per execution quantum. Arrivals
            are only noticed at quantum boundaries, so this bounds the
            scheduler's reaction latency; keep it small relative to a
            query's total output.
        suspend: one :class:`~repro.core.lifecycle.SuspendSpec` covering
            the whole suspend surface — plan strategy and budget, the
            durable image store (``persist_to``), codec, delta spill,
            and parallel-commit workers. When no valid plan fits the
            budget, victims retry unbudgeted rather than fail.
        engine_config: per-session engine configuration.
        collect_rows: keep every query's output rows on its record
            (memory in the *host* process only; disable for large runs).

    The standalone ``suspend_strategy`` / ``suspend_budget`` /
    ``image_store`` / ``image_codec`` / ``commit_workers`` /
    ``delta_spill`` fields are deprecated spellings of the matching
    :class:`SuspendSpec` fields; passing any of them warns and folds the
    value into ``suspend``.
    """

    policy: Union[str, PressurePolicy] = "suspend-resume"
    memory_budget: Optional[int] = None
    quantum_rows: int = 64
    suspend: Optional[SuspendSpec] = None
    engine_config: Optional[EngineConfig] = None
    collect_rows: bool = True
    #: Shared-work folding (``repro.fold``): detect common subplans among
    #: admitted queries and graft them onto shared scan producers and
    #: build-side hash tables. Off by default — folding changes global
    #: I/O and co-scheduling order (never per-query outputs, clocks, or
    #: images). Not applied when the database has a buffer pool.
    fold: bool = False
    #: Pages a fold producer may buffer per table (bounds fold memory).
    fold_window_pages: int = 64
    #: Observability tracer for this run; defaults to the process-wide
    #: tracer (:func:`repro.obs.tracer.current_tracer`), a no-op unless
    #: tracing was explicitly enabled.
    tracer: Optional[Tracer] = None
    # -- deprecated spellings (warn + fold into ``suspend``) -----------
    suspend_strategy: object = _UNSET
    suspend_budget: object = _UNSET
    image_store: object = _UNSET
    image_codec: object = _UNSET
    commit_workers: object = _UNSET
    delta_spill: object = _UNSET

    def __post_init__(self):
        legacy = {
            name: getattr(self, name)
            for name in _LEGACY_CONFIG_FIELDS
            if getattr(self, name) is not _UNSET
        }
        if legacy:
            warnings.warn(
                f"SchedulerConfig({', '.join(sorted(legacy))}) is "
                "deprecated; pass one suspend=SuspendSpec(...) carrying "
                "strategy/budget/persist_to/codec/commit_workers/delta",
                DeprecationWarning,
                stacklevel=3,
            )
        base = self.suspend if self.suspend is not None else SuspendSpec()
        if legacy:
            base = base.replace(
                **{_LEGACY_CONFIG_FIELDS[k]: v for k, v in legacy.items()}
            )
        self.suspend = base
        # Keep the deprecated attributes readable (mirrors, not state):
        # the spec is the single source of truth.
        self.suspend_strategy = base.strategy
        self.suspend_budget = base.budget
        self.image_store = base.persist_to
        self.image_codec = base.codec
        self.commit_workers = base.commit_workers
        self.delta_spill = base.delta


@dataclass
class QueryRecord:
    """One admitted query's serving-side state."""

    arrival: QueryArrival
    seq: int
    stats: QueryStats
    state: QueryState = QueryState.WAITING
    session: Optional[QuerySession] = None
    sq: Optional[SuspendedQuery] = None
    #: Id of the durable spill image from the most recent suspend, when
    #: the core is configured with an image store.
    image_id: Optional[str] = None
    rows: list = field(default_factory=list)
    #: Distributed-trace identity: every span this query emits — in this
    #: process or any it continues into — carries this id.
    trace_id: Optional[str] = None
    #: Rows the query delivered in *previous* processes (restored from a
    #: continuation token); added to ``stats.rows_emitted`` for progress.
    rows_offset: int = 0
    #: Most recent progress snapshot (set at quantum boundaries).
    last_progress: Optional[object] = None
    #: Cached cardinality estimates — pure functions of the plan and
    #: base-table counts, so one walk serves every quantum and hop
    #: (operator ids are stable across suspend/resume rebuilds).
    card_estimates: Optional[dict] = None
    #: Fold binding (``repro.fold``) when the core folds shared work;
    #: installed on every session this record opens.
    fold: Optional[object] = None

    @property
    def rows_total(self) -> int:
        """Cumulative rows delivered across every process so far."""
        return self.rows_offset + self.stats.rows_emitted

    @property
    def name(self) -> str:
        return self.arrival.name

    @property
    def priority(self) -> int:
        return self.arrival.priority

    def memory_in_use(self) -> int:
        return self.session.memory_in_use() if self.session else 0


class ExecutorCore:
    """Cooperative execution core shared by every serving transport.

    Owns the admitted-record table, the pressure policy, quota
    accounting, durable spill, and the stats/tracer wiring; knows
    nothing about *when* the next quantum should run — that is the
    transport's job.
    """

    def __init__(self, db: Database, config: Optional[SchedulerConfig] = None):
        self.db = db
        self.config = config or SchedulerConfig()
        self.policy = get_policy(self.config.policy)
        self.image_store = self._resolve_image_store()
        self.records: list[QueryRecord] = []
        base_tracer = (
            self.config.tracer
            if self.config.tracer is not None
            else current_tracer()
        )
        self.tracer = base_tracer.bind(clock=db.disk.clock)
        # With tracing on, the stats views and the tracer share one
        # registry, so scheduler counters and tracer metrics are the same
        # numbers; a NullTracer has no registry to share.
        self.stats = SchedulerStats(
            policy=self.policy.name,
            registry=self.tracer.metrics if self.tracer.enabled else None,
        )
        self.fold_manager = None
        if self.config.fold:
            from repro.fold.manager import FoldManager

            self.fold_manager = FoldManager(
                db,
                window_pages=self.config.fold_window_pages,
                tracer=self.tracer,
            )

    def _resolve_image_store(self) -> Optional["ImageStore"]:
        return self.config.suspend.resolve_image_store()

    # ------------------------------------------------------------------
    # Admission bookkeeping
    # ------------------------------------------------------------------
    def track(self, arrival: QueryArrival) -> QueryRecord:
        """Register one query with the core (no admission marking)."""
        record = QueryRecord(
            arrival=arrival,
            seq=len(self.records),
            stats=self.stats.track(
                arrival.name, arrival.priority, arrival.arrival_time
            ),
            trace_id=make_trace_id(arrival.name),
        )
        self.records.append(record)
        return record

    def admit(self, record: QueryRecord) -> None:
        """Mark a tracked record admitted (visible to stats/pressure)."""
        self.stats.queries_admitted += 1
        self.stats.per_query[record.name] = record.stats
        if self.fold_manager is not None and record.arrival.plan is not None:
            # (A token-only continue carries no plan — the image does —
            # so cross-process continuations stay unfolded.)
            record.fold = self.fold_manager.admit(
                record.name, record.arrival.plan
            )
        self.mark("admit", record)

    def record_named(self, name: str) -> Optional[QueryRecord]:
        for record in self.records:
            if record.name == name:
                return record
        return None

    # ------------------------------------------------------------------
    # Memory pressure (called by the policies)
    # ------------------------------------------------------------------
    def total_live_memory(self) -> int:
        """Heap bytes held across every live session right now."""
        return sum(r.memory_in_use() for r in self.records)

    def pressure_excess(self, record: QueryRecord) -> int:
        """Bytes over budget held by sessions other than ``record``'s."""
        if self.config.memory_budget is None:
            return 0
        held = self.total_live_memory() - record.memory_in_use()
        return held - self.config.memory_budget

    def victim_candidates(self, record: QueryRecord) -> list[QueryRecord]:
        """Live lower-priority sessions that currently hold memory."""
        return [
            r
            for r in self.records
            if r is not record
            and r.state is QueryState.READY
            and r.priority < record.priority
            and r.memory_in_use() > 0
        ]

    def suspend_victim(self, victim: QueryRecord) -> None:
        """Suspend a victim within the configured per-suspend budget."""
        self.suspend_victims([victim])

    def suspend_victims(self, victims: list[QueryRecord]) -> None:
        """Suspend one pressure event's victims; spill images in a batch.

        The in-memory suspend phase (the part the virtual clock charges)
        runs per victim, in order, exactly as it would serially. When an
        image store is configured, the durable commits are then submitted
        together: with ``commit_workers > 1`` the images serialize+fsync
        on a thread pool — a wall-clock speedup only; trace records are
        emitted in victim order either way.

        With delta spill enabled (``config.suspend.delta``), a repeat
        suspend commits a delta against the query's previous image:
        materialized operator state that has not been re-dumped since
        (same key, pages, and write generation) is referenced from the
        base chain instead of re-encoded. The chain is collected as one
        unit when the query completes.
        """
        spec = self.config.suspend
        options = SuspendSpec(strategy=spec.strategy, budget=spec.budget)
        for victim in victims:
            victim.sq = self._suspend_session(victim.session, options)
            victim.session = None
            victim.state = QueryState.SUSPENDED
            victim.stats.suspends += 1
            if self.fold_manager is not None:
                # Fold split: closing the victim's session detached its
                # shared cursors at a tuple boundary; the survivors keep
                # sharing and the victim's image is unfold-identical.
                self.fold_manager.note_split(victim.name)
        if self.image_store is not None:
            self.spill_victims(victims)
        for victim in victims:
            self.mark("suspend", victim)

    def _suspend_session(self, session: QuerySession, options: SuspendSpec):
        try:
            return session.suspend(options)
        except SuspendBudgetInfeasibleError:
            # No valid plan fits the budget at this point; releasing the
            # memory still beats failing the victim, so pay full price.
            return session.suspend(SuspendSpec(strategy=options.strategy))

    def spill_victims(self, victims: list[QueryRecord]) -> None:
        """Commit every victim's SuspendedQuery as a durable image."""
        from repro.durability.store import SaveRequest

        delta = self.config.suspend.delta
        requests = []
        previous_ids = []
        for victim in victims:
            base = victim.image_id if delta else None
            previous_ids.append(victim.image_id if delta else None)
            if victim.image_id is not None and base is None:
                # Supersede the spill from an earlier suspend of this
                # query (delta off: chains are never formed).
                self.image_store.delete(victim.image_id)
            requests.append(
                SaveRequest(
                    sq=victim.sq,
                    store=self.db.state_store,
                    image_id=f"{victim.name}-s{victim.stats.suspends}",
                    meta={
                        "query": victim.name,
                        "priority": victim.priority,
                    },
                    base_image_id=base,
                )
            )
        infos = self.image_store.save_many(requests, tracer=self.tracer)
        for victim, previous, info in zip(victims, previous_ids, infos):
            victim.image_id = info.image_id
            if previous is not None and info.base_image_id is None:
                # The save was promoted to a full image (max_chain
                # rebase): the old chain no longer backs anything —
                # collect it now.
                self.image_store.delete_chain(previous)
            victim.stats.durable_spills += 1
            self.mark("spill", victim)

    def kill_victim(self, victim: QueryRecord) -> None:
        """Kill a victim; all its work so far is wasted."""
        victim.session.close()
        victim.session = None
        victim.sq = None
        victim.rows.clear()
        victim.stats.rows_emitted = 0
        victim.state = QueryState.WAITING
        victim.stats.kills += 1
        if self.fold_manager is not None:
            self.fold_manager.note_split(victim.name)
        self.mark("kill", victim)

    # ------------------------------------------------------------------
    # Serving primitives
    # ------------------------------------------------------------------
    def record_tracer(self, record: QueryRecord):
        """The tracer a record's session runs under: trace_id bound in."""
        if not self.tracer.enabled:
            return None
        return self.tracer.bind(trace_id=record.trace_id)

    def start_session(self, record: QueryRecord) -> None:
        """Open a fresh session for a WAITING record."""
        record.session = QuerySession(
            self.db,
            record.arrival.plan,
            config=self.config.engine_config,
            priority=record.priority,
            name=record.name,
            tracer=self.record_tracer(record),
            fold=record.fold,
        )
        record.state = QueryState.READY
        if record.stats.first_started_at is None:
            record.stats.first_started_at = self.db.now
        self.mark("start", record)

    def open_resumed_session(self, record: QueryRecord) -> QuerySession:
        """Rebuild a session from ``record.sq`` (no state transition).

        The caller decides whether to adopt the session or discard it —
        the paper's suspend-during-resume rule lives in the transport,
        which is the only place that knows about new arrivals.
        """
        return QuerySession.resume(
            self.db,
            record.sq,
            config=self.config.engine_config,
            priority=record.priority,
            name=record.name,
            tracer=self.record_tracer(record),
            fold=record.fold,
        )

    def adopt_resumed_session(
        self, record: QueryRecord, session: QuerySession
    ) -> None:
        """Make a successfully resumed session the record's live one."""
        record.session = session
        record.sq = None
        record.state = QueryState.READY
        record.stats.resumes += 1
        self.mark("resume", record)

    def run_quantum(self, record: QueryRecord) -> QueryStatus:
        """Execute one quantum on a READY record; handle completion."""
        if self.tracer.enabled:
            with self.tracer.span(
                "sched.quantum", query=record.name, trace_id=record.trace_id
            ) as span:
                result = record.session.execute(
                    max_rows=self.config.quantum_rows
                )
                span["rows"] = len(result.rows)
                span["status"] = result.status.value
        else:
            result = record.session.execute(max_rows=self.config.quantum_rows)
        record.stats.rows_emitted += len(result.rows)
        if self.config.collect_rows:
            record.rows.extend(result.rows)
        self.note_memory()
        if self.tracer.enabled:
            self.note_progress(record)
        if result.status is QueryStatus.COMPLETED:
            self.complete(record)
        return result.status

    def note_progress(self, record: QueryRecord, emit: bool = True):
        """Snapshot, trace, and gauge a record's progress (quantum edge).

        Returns the :class:`~repro.obs.progress.QueryProgress` snapshot
        (or None when the record has no live session to measure) and
        remembers it on ``record.last_progress``. The cumulative row
        count offsets rows delivered before the current session —
        earlier quanta of this process *and*, via ``rows_offset``,
        earlier processes — so the query-level fraction never moves
        backwards across suspend/resume cycles or hops. With
        ``emit=False`` only the snapshot is taken (live introspection
        with tracing off).
        """
        if record.session is None:
            return None
        if record.card_estimates is None:
            record.card_estimates = estimate_cardinalities(
                record.session.root
            )
        offset = record.rows_total - record.session.root.tuples_emitted
        progress = query_progress(
            record.session,
            rows_offset=offset,
            estimates=record.card_estimates,
            include_operators=False,
        )
        progress.query = record.name
        record.last_progress = progress
        if emit:
            emit_progress(
                self.tracer.bind(query=record.name, trace_id=record.trace_id),
                progress,
            )
        return progress

    def complete(self, record: QueryRecord) -> None:
        """Retire a finished record and collect its durable spill chain."""
        if record.session is not None:
            record.session.close()
            record.session = None
        record.state = QueryState.DONE
        if self.image_store is not None and record.image_id is not None:
            # The whole spill chain is obsolete once the query
            # completes: the tip and every base it references.
            self.image_store.delete_chain(record.image_id)
            record.image_id = None
        record.stats.completed_at = self.db.now
        self.stats.queries_completed += 1
        if self.fold_manager is not None:
            self.fold_manager.forget(record.name)
        self.mark("complete", record)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def note_memory(self) -> None:
        self.stats.peak_memory = max(
            self.stats.peak_memory, self.total_live_memory()
        )

    def mark(self, event: str, record: QueryRecord) -> None:
        self.note_memory()
        memory = self.total_live_memory()
        self.stats.timeline.append(
            TimelineEvent(
                time=self.db.now,
                event=event,
                query=record.name,
                memory_bytes=memory,
            )
        )
        if self.tracer.enabled:
            self.tracer.event(
                f"sched.{event}", query=record.name, memory_bytes=memory
            )
        if self.fold_manager is not None:
            # Into the stats registry (the tracer's registry when tracing
            # is on), so /obs/metrics sees fold.* with tracing off too.
            self.fold_manager.publish_metrics(self.stats.registry)


__all__ = [
    "ExecutorCore",
    "QueryRecord",
    "QueryState",
    "SchedulerConfig",
]
