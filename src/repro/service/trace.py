"""Arrival traces: the scripted workloads a scheduler serves.

A :class:`QueryArrival` says *what* runs (a plan spec), *when* it enters
the system (a virtual-clock time), and *how important* it is (an integer
priority, higher first). An :class:`ArrivalTrace` is an ordered batch of
arrivals, and a :class:`Workload` bundles a trace with the database
factory it runs against plus the memory/suspend budgets the trace was
tuned for — everything a :class:`~repro.service.QueryScheduler` needs to
replay the paper's Section 1 scenario reproducibly.

Concrete trace generators live in :mod:`repro.workloads.plans`
(``mixed_priority_trace``, ``burst_trace``); this module only defines the
data model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.lifecycle import SuspendSpec
from repro.engine.plan import PlanSpec
from repro.storage.database import Database


@dataclass(frozen=True)
class QueryArrival:
    """One query entering the system.

    ``arrival_time`` is on the shared virtual clock: the scheduler admits
    the query at the first decision point at or after that instant (the
    clock only advances as queries do work, so admission is exact up to
    one execution quantum).
    """

    name: str
    plan: PlanSpec
    arrival_time: float = 0.0
    priority: int = 0

    def __post_init__(self):
        if self.arrival_time < 0:
            raise ValueError(f"negative arrival time {self.arrival_time}")


@dataclass
class ArrivalTrace:
    """An ordered, named batch of query arrivals."""

    name: str
    arrivals: list[QueryArrival] = field(default_factory=list)

    def add(
        self,
        name: str,
        plan: PlanSpec,
        arrival_time: float = 0.0,
        priority: int = 0,
    ) -> QueryArrival:
        arrival = QueryArrival(name, plan, arrival_time, priority)
        self.arrivals.append(arrival)
        return arrival

    def sorted_arrivals(self) -> list[QueryArrival]:
        """Arrivals by time, submission order breaking ties."""
        order = sorted(
            range(len(self.arrivals)),
            key=lambda i: (self.arrivals[i].arrival_time, i),
        )
        return [self.arrivals[i] for i in order]

    def __len__(self) -> int:
        return len(self.arrivals)

    def __iter__(self):
        return iter(self.arrivals)


@dataclass
class Workload:
    """A trace plus the environment it was tuned for.

    ``db_factory`` must return a *fresh* database with identical physical
    state on every call, so the same workload can be replayed under
    different scheduling policies and the simulated times compared.
    ``memory_budget`` is the scheduler's shared memory budget in bytes
    (``None`` = unlimited); ``suspend_budget`` is the per-suspend time
    budget handed to the online optimizer.
    """

    name: str
    db_factory: Callable[[], Database]
    trace: ArrivalTrace
    memory_budget: Optional[int] = None
    suspend_budget: float = float("inf")
    description: str = ""

    def suspend_spec(self) -> SuspendSpec:
        """The workload's tuned budget as a :class:`SuspendSpec`."""
        return SuspendSpec(budget=self.suspend_budget)
