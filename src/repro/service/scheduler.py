"""The multi-query scheduler: QuerySession as a served primitive.

:class:`QueryScheduler` admits many sessions against one shared
:class:`~repro.storage.database.Database` (one virtual clock, one state
store) and runs them cooperatively: one query executes at a time, in
quanta of ``quantum_rows`` root-output tuples, with scheduling decisions
at every quantum boundary — the safe points where a suspend is valid.

Scheduling is strict priority (FIFO within a priority). Before a query
takes the CPU the scheduler enforces the shared ``memory_budget`` over
the heap state of every *other* live session — the query being served is
itself exempt, so a budget of 0 degenerates to "one resident query at a
time" instead of a livelock. When the budget is exceeded the configured
:class:`~repro.service.policies.PressurePolicy` resolves the pressure:
suspending victims with the paper's online LP optimizer under a
per-suspend budget (``suspend-resume``), killing them for a later
from-scratch restart (``kill-restart``), or making the incoming query
wait (``wait``). Suspended queries are resumed automatically when they
are the highest-priority runnable work and the pressure has cleared.

A suspend request that lands while a victim is *mid-resume* follows the
paper's Section 2 rule: the half-resumed state is discarded and the old
SuspendedQuery — still intact on disk — is kept; only the wasted resume
I/O is paid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.durability.store import ImageStore

from repro.common.errors import ReproError, SuspendBudgetInfeasibleError
from repro.core.lifecycle import (
    QuerySession,
    QueryStatus,
    SuspendOptions,
    SuspendStrategy,
)
from repro.core.suspended_query import SuspendedQuery
from repro.engine.config import EngineConfig
from repro.obs.tracer import Tracer, current_tracer
from repro.service.policies import PressurePolicy, get_policy
from repro.service.stats import QueryStats, SchedulerStats, TimelineEvent
from repro.service.trace import ArrivalTrace, QueryArrival, Workload
from repro.storage.database import Database


class QueryState(Enum):
    """Scheduler-side lifecycle of an admitted query."""

    WAITING = "waiting"  # admitted, no session yet (fresh or killed)
    READY = "ready"  # live session, runnable at the next quantum
    SUSPENDED = "suspended"  # state on disk as a SuspendedQuery
    DONE = "done"


@dataclass
class SchedulerConfig:
    """Tunables of one scheduler run.

    Attributes:
        policy: pressure policy — ``"suspend-resume"``, ``"kill-restart"``,
            ``"wait"``, or a :class:`PressurePolicy` instance.
        memory_budget: shared budget, in bytes, over the heap state of
            every live session other than the one being served; ``None``
            disables pressure handling entirely.
        quantum_rows: root output tuples per execution quantum. Arrivals
            are only noticed at quantum boundaries, so this bounds the
            scheduler's reaction latency; keep it small relative to a
            query's total output.
        suspend_strategy: plan optimizer used when suspending victims.
        suspend_budget: per-suspend time budget (Equation 7). When no
            valid plan fits, the scheduler retries unbudgeted rather than
            fail the victim.
        engine_config: per-session engine configuration.
        collect_rows: keep every query's output rows on its record
            (memory in the *host* process only; disable for large runs).
        image_store: when set (an
            :class:`~repro.durability.store.ImageStore` or an image-root
            path), every suspended victim is additionally spilled as a
            durable on-disk image, so evicted queries survive a crash of
            the serving process. The in-memory SuspendedQuery remains the
            resume path; the image is the crash-safety net.
        image_codec: codec version for spill images (``CODEC_V1`` or
            ``CODEC_V2``); ``None`` uses the image store's default. Only
            applied when ``image_store`` is given as a path.
        commit_workers: thread-pool size for the parallel durable commit
            of one pressure event's victims (``<= 1`` = serial). Pure
            wall-clock: virtual-clock charges and on-disk bytes are
            identical either way. Only applied when ``image_store`` is
            given as a path.
        delta_spill: when a query is suspended repeatedly, commit each
            spill as a delta against the query's previous image instead
            of deleting and rewriting it — unchanged materialized state
            (sorted sublists, hash partitions) is referenced, not
            re-encoded. The whole chain is GC'd when the query completes.
    """

    policy: Union[str, PressurePolicy] = "suspend-resume"
    memory_budget: Optional[int] = None
    quantum_rows: int = 64
    suspend_strategy: SuspendStrategy = SuspendStrategy.LP
    suspend_budget: float = math.inf
    engine_config: Optional[EngineConfig] = None
    collect_rows: bool = True
    image_store: Union["ImageStore", str, None] = None
    image_codec: Optional[int] = None
    commit_workers: int = 0
    delta_spill: bool = True
    #: Observability tracer for this run; defaults to the process-wide
    #: tracer (:func:`repro.obs.tracer.current_tracer`), a no-op unless
    #: tracing was explicitly enabled.
    tracer: Optional[Tracer] = None


@dataclass
class QueryRecord:
    """One admitted query's scheduler-side state."""

    arrival: QueryArrival
    seq: int
    stats: QueryStats
    state: QueryState = QueryState.WAITING
    session: Optional[QuerySession] = None
    sq: Optional[SuspendedQuery] = None
    #: Id of the durable spill image from the most recent suspend, when
    #: the scheduler is configured with an image store.
    image_id: Optional[str] = None
    rows: list = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.arrival.name

    @property
    def priority(self) -> int:
        return self.arrival.priority

    def memory_in_use(self) -> int:
        return self.session.memory_in_use() if self.session else 0


class QueryScheduler:
    """Serve many QuerySessions against one database, cooperatively."""

    def __init__(self, db: Database, config: Optional[SchedulerConfig] = None):
        self.db = db
        self.config = config or SchedulerConfig()
        self.policy = get_policy(self.config.policy)
        self.image_store = self._resolve_image_store(self.config.image_store)
        self.records: list[QueryRecord] = []
        base_tracer = (
            self.config.tracer
            if self.config.tracer is not None
            else current_tracer()
        )
        self.tracer = base_tracer.bind(clock=db.disk.clock)
        # With tracing on, the stats views and the tracer share one
        # registry, so scheduler counters and tracer metrics are the same
        # numbers; a NullTracer has no registry to share.
        self.stats = SchedulerStats(
            policy=self.policy.name,
            registry=self.tracer.metrics if self.tracer.enabled else None,
        )
        self._pending: list[QueryRecord] = []  # not yet admitted, by time
        self._ran = False

    def _resolve_image_store(self, value):
        if value is None or not isinstance(value, str):
            return value
        from repro.durability.store import ImageStore

        kwargs = {"commit_workers": self.config.commit_workers}
        if self.config.image_codec is not None:
            kwargs["codec_version"] = self.config.image_codec
        return ImageStore(value, **kwargs)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        name: str,
        plan,
        arrival_time: float = 0.0,
        priority: int = 0,
    ) -> QueryRecord:
        """Register one future arrival (before :meth:`run`)."""
        return self._submit(QueryArrival(name, plan, arrival_time, priority))

    def submit_trace(self, trace: ArrivalTrace) -> list[QueryRecord]:
        return [self._submit(arrival) for arrival in trace.sorted_arrivals()]

    def _submit(self, arrival: QueryArrival) -> QueryRecord:
        if self._ran:
            raise ReproError("scheduler already ran; submit before run()")
        if any(r.name == arrival.name for r in self.records):
            raise ReproError(f"duplicate query name {arrival.name!r}")
        record = QueryRecord(
            arrival=arrival,
            seq=len(self.records),
            stats=self.stats.track(
                arrival.name, arrival.priority, arrival.arrival_time
            ),
        )
        self.records.append(record)
        return record

    # ------------------------------------------------------------------
    # The scheduling loop
    # ------------------------------------------------------------------
    def run(self) -> SchedulerStats:
        """Serve every submitted query to completion; return the stats."""
        if self._ran:
            raise ReproError("scheduler can only run once")
        self._ran = True
        self._pending = sorted(
            self.records, key=lambda r: (r.arrival.arrival_time, r.seq)
        )
        self.stats.started_at = self.db.now
        self._admit_due()
        while True:
            record = self._pick_next()
            if record is None:
                if self._pending:
                    # Idle: fast-forward the clock to the next arrival.
                    gap = self._pending[0].arrival.arrival_time - self.db.now
                    if gap > 0:
                        self.db.disk.clock.advance(gap)
                    self._admit_due()
                    continue
                break
            self._serve(record)
            self._admit_due()
        self.stats.finished_at = self.db.now
        return self.stats

    def run_to_completion(self) -> SchedulerStats:  # pragma: no cover
        """Alias for :meth:`run` (reads better at call sites)."""
        return self.run()

    @classmethod
    def run_workload(
        cls,
        workload: Workload,
        policy: Union[str, PressurePolicy, None] = None,
        config: Optional[SchedulerConfig] = None,
    ) -> SchedulerStats:
        """Replay a :class:`Workload` on a fresh database and return stats.

        ``config`` overrides the workload's tuned budgets entirely;
        otherwise a config is built from them, with ``policy`` (if given)
        replacing the default.
        """
        if config is None:
            config = SchedulerConfig(
                policy=policy if policy is not None else "suspend-resume",
                memory_budget=workload.memory_budget,
                suspend_budget=workload.suspend_budget,
            )
        elif policy is not None:
            config.policy = policy
        scheduler = cls(workload.db_factory(), config)
        scheduler.submit_trace(workload.trace)
        return scheduler.run()

    # ------------------------------------------------------------------
    # Admission and selection
    # ------------------------------------------------------------------
    def _admit_due(self) -> list[QueryRecord]:
        admitted = []
        while self._pending and (
            self._pending[0].arrival.arrival_time <= self.db.now
        ):
            record = self._pending.pop(0)
            self.stats.queries_admitted += 1
            self.stats.per_query[record.name] = record.stats
            self._mark("admit", record)
            admitted.append(record)
        return admitted

    def _runnable(self) -> list[QueryRecord]:
        admitted = set(self.stats.per_query)
        return [
            r
            for r in self.records
            if r.name in admitted and r.state is not QueryState.DONE
        ]

    def _pick_next(self) -> Optional[QueryRecord]:
        runnable = self._runnable()
        if not runnable:
            return None
        return min(
            runnable, key=lambda r: (-r.priority, r.arrival.arrival_time, r.seq)
        )

    # ------------------------------------------------------------------
    # Memory pressure (called by the policies)
    # ------------------------------------------------------------------
    def total_live_memory(self) -> int:
        """Heap bytes held across every live session right now."""
        return sum(r.memory_in_use() for r in self.records)

    def pressure_excess(self, record: QueryRecord) -> int:
        """Bytes over budget held by sessions other than ``record``'s."""
        if self.config.memory_budget is None:
            return 0
        held = self.total_live_memory() - record.memory_in_use()
        return held - self.config.memory_budget

    def victim_candidates(self, record: QueryRecord) -> list[QueryRecord]:
        """Live lower-priority sessions that currently hold memory."""
        return [
            r
            for r in self.records
            if r is not record
            and r.state is QueryState.READY
            and r.priority < record.priority
            and r.memory_in_use() > 0
        ]

    def suspend_victim(self, victim: QueryRecord) -> None:
        """Suspend a victim within the configured per-suspend budget."""
        self.suspend_victims([victim])

    def suspend_victims(self, victims: list[QueryRecord]) -> None:
        """Suspend one pressure event's victims; spill images in a batch.

        The in-memory suspend phase (the part the virtual clock charges)
        runs per victim, in order, exactly as it would serially. When an
        image store is configured, the durable commits are then submitted
        together: with ``commit_workers > 1`` the images serialize+fsync
        on a thread pool — a wall-clock speedup only; trace records are
        emitted in victim order either way.

        With ``delta_spill``, a repeat suspend commits a delta against the
        query's previous image: materialized operator state that has not
        been re-dumped since (same key, pages, and write generation) is
        referenced from the base chain instead of re-encoded. The chain is
        collected as one unit when the query completes.
        """
        options = SuspendOptions(
            strategy=self.config.suspend_strategy,
            budget=self.config.suspend_budget,
        )
        for victim in victims:
            try:
                victim.sq = victim.session.suspend(options)
            except SuspendBudgetInfeasibleError:
                # No valid plan fits the budget at this point; releasing
                # the memory still beats failing the victim, so pay full
                # price.
                victim.sq = victim.session.suspend(
                    SuspendOptions(strategy=self.config.suspend_strategy)
                )
            victim.session = None
            victim.state = QueryState.SUSPENDED
            victim.stats.suspends += 1
        if self.image_store is not None:
            from repro.durability.store import SaveRequest

            requests = []
            for victim in victims:
                base = victim.image_id if self.config.delta_spill else None
                if victim.image_id is not None and base is None:
                    # Supersede the spill from an earlier suspend of this
                    # query (delta off: chains are never formed).
                    self.image_store.delete(victim.image_id)
                requests.append(
                    SaveRequest(
                        sq=victim.sq,
                        store=self.db.state_store,
                        image_id=f"{victim.name}-s{victim.stats.suspends}",
                        meta={
                            "query": victim.name,
                            "priority": victim.priority,
                        },
                        base_image_id=base,
                    )
                )
            infos = self.image_store.save_many(requests, tracer=self.tracer)
            for victim, info in zip(victims, infos):
                victim.image_id = info.image_id
                victim.stats.durable_spills += 1
                self._mark("spill", victim)
        for victim in victims:
            self._mark("suspend", victim)

    def kill_victim(self, victim: QueryRecord) -> None:
        """Kill a victim; all its work so far is wasted."""
        victim.session.close()
        victim.session = None
        victim.sq = None
        victim.rows.clear()
        victim.stats.rows_emitted = 0
        victim.state = QueryState.WAITING
        victim.stats.kills += 1
        self._mark("kill", victim)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def _serve(self, record: QueryRecord) -> None:
        if not self.policy.make_room(self, record):
            holder = self._blocking_holder(record)
            if holder is None:
                # Nothing live holds the memory (should not happen); run
                # anyway rather than deadlock.
                self._mark("override", record)
            else:
                # The incoming query waits; keep the holder moving so the
                # clock (and its completion) advances.
                record = holder
        if record.state is QueryState.WAITING:
            self._start(record)
        elif record.state is QueryState.SUSPENDED:
            if not self._resume(record):
                return  # half-resumed state discarded; try again later
        self._quantum(record)

    def _blocking_holder(self, record: QueryRecord) -> Optional[QueryRecord]:
        holders = [
            r
            for r in self.records
            if r is not record
            and r.state is QueryState.READY
            and r.memory_in_use() > 0
        ]
        if not holders:
            return None
        return min(
            holders, key=lambda r: (-r.priority, r.arrival.arrival_time, r.seq)
        )

    def _start(self, record: QueryRecord) -> None:
        record.session = QuerySession(
            self.db,
            record.arrival.plan,
            config=self.config.engine_config,
            priority=record.priority,
            name=record.name,
            tracer=self.tracer if self.tracer.enabled else None,
        )
        record.state = QueryState.READY
        if record.stats.first_started_at is None:
            record.stats.first_started_at = self.db.now
        self._mark("start", record)

    def _resume(self, record: QueryRecord) -> bool:
        """Resume a suspended record; False if the discard rule fired."""
        resume_start = self.db.now
        session = QuerySession.resume(
            self.db,
            record.sq,
            config=self.config.engine_config,
            priority=record.priority,
            name=record.name,
            tracer=self.tracer if self.tracer.enabled else None,
        )
        arrived = self._admit_due()
        preempted = self.config.memory_budget is not None and any(
            r.priority > record.priority
            and r.arrival.arrival_time > resume_start
            for r in arrived
        )
        if preempted:
            # Paper's rule for a suspend request during resume: throw the
            # half-resumed state away and keep the old SuspendedQuery —
            # no new suspend phase is paid, only the wasted resume I/O.
            session.close()
            record.stats.discarded_resumes += 1
            self._mark("discard-resume", record)
            return False
        record.session = session
        record.sq = None
        record.state = QueryState.READY
        record.stats.resumes += 1
        self._mark("resume", record)
        return True

    def _quantum(self, record: QueryRecord) -> None:
        if self.tracer.enabled:
            with self.tracer.span(
                "sched.quantum", query=record.name
            ) as span:
                result = record.session.execute(
                    max_rows=self.config.quantum_rows
                )
                span["rows"] = len(result.rows)
                span["status"] = result.status.value
        else:
            result = record.session.execute(max_rows=self.config.quantum_rows)
        record.stats.rows_emitted += len(result.rows)
        if self.config.collect_rows:
            record.rows.extend(result.rows)
        self._note_memory()
        if result.status is QueryStatus.COMPLETED:
            record.session.close()
            record.session = None
            record.state = QueryState.DONE
            if self.image_store is not None and record.image_id is not None:
                # The whole spill chain is obsolete once the query
                # completes: the tip and every base it references.
                self.image_store.delete_chain(record.image_id)
                record.image_id = None
            record.stats.completed_at = self.db.now
            self.stats.queries_completed += 1
            self._mark("complete", record)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _note_memory(self) -> None:
        self.stats.peak_memory = max(
            self.stats.peak_memory, self.total_live_memory()
        )

    def _mark(self, event: str, record: QueryRecord) -> None:
        self._note_memory()
        memory = self.total_live_memory()
        self.stats.timeline.append(
            TimelineEvent(
                time=self.db.now,
                event=event,
                query=record.name,
                memory_bytes=memory,
            )
        )
        if self.tracer.enabled:
            self.tracer.event(
                f"sched.{event}", query=record.name, memory_bytes=memory
            )
