"""The multi-query scheduler: QuerySession as a served primitive.

:class:`QueryScheduler` is the **in-process trace-replay transport**
over :class:`~repro.service.core.ExecutorCore`: it admits many sessions
against one shared :class:`~repro.storage.database.Database` (one
virtual clock, one state store) and runs them cooperatively to
completion — one query at a time, in quanta of ``quantum_rows``
root-output tuples, with scheduling decisions at every quantum boundary
(the safe points where a suspend is valid). The core owns everything
that is transport-agnostic: the record table, pressure accounting for
the three policies, durable spill, and the stats/tracer wiring; the
HTTP front end (:mod:`repro.serve`) composes the same core one quantum
per request.

Scheduling is strict priority (FIFO within a priority). Before a query
takes the CPU the scheduler enforces the shared ``memory_budget`` over
the heap state of every *other* live session — the query being served is
itself exempt, so a budget of 0 degenerates to "one resident query at a
time" instead of a livelock. When the budget is exceeded the configured
:class:`~repro.service.policies.PressurePolicy` resolves the pressure:
suspending victims with the paper's online LP optimizer under a
per-suspend budget (``suspend-resume``), killing them for a later
from-scratch restart (``kill-restart``), or making the incoming query
wait (``wait``). Suspended queries are resumed automatically when they
are the highest-priority runnable work and the pressure has cleared.

A suspend request that lands while a victim is *mid-resume* follows the
paper's Section 2 rule: the half-resumed state is discarded and the old
SuspendedQuery — still intact on disk — is kept; only the wasted resume
I/O is paid.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.common.errors import ReproError
from repro.service.core import (
    ExecutorCore,
    QueryRecord,
    QueryState,
    SchedulerConfig,
)
from repro.service.policies import PressurePolicy
from repro.service.stats import SchedulerStats
from repro.service.trace import ArrivalTrace, QueryArrival, Workload
from repro.storage.database import Database


class QueryScheduler(ExecutorCore):
    """Serve many QuerySessions against one database, cooperatively."""

    def __init__(self, db: Database, config: Optional[SchedulerConfig] = None):
        super().__init__(db, config)
        self._pending: list[QueryRecord] = []  # not yet admitted, by time
        self._ran = False

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        name: str,
        plan,
        arrival_time: float = 0.0,
        priority: int = 0,
    ) -> QueryRecord:
        """Register one future arrival (before :meth:`run`)."""
        return self._submit(QueryArrival(name, plan, arrival_time, priority))

    def submit_trace(self, trace: ArrivalTrace) -> list[QueryRecord]:
        return [self._submit(arrival) for arrival in trace.sorted_arrivals()]

    def _submit(self, arrival: QueryArrival) -> QueryRecord:
        if self._ran:
            raise ReproError("scheduler already ran; submit before run()")
        if any(r.name == arrival.name for r in self.records):
            raise ReproError(f"duplicate query name {arrival.name!r}")
        return self.track(arrival)

    # ------------------------------------------------------------------
    # The scheduling loop
    # ------------------------------------------------------------------
    def run(self) -> SchedulerStats:
        """Serve every submitted query to completion; return the stats."""
        if self._ran:
            raise ReproError("scheduler can only run once")
        self._ran = True
        self._pending = sorted(
            self.records, key=lambda r: (r.arrival.arrival_time, r.seq)
        )
        self.stats.started_at = self.db.now
        self._admit_due()
        while True:
            record = self._pick_next()
            if record is None:
                if self._pending:
                    # Idle: fast-forward the clock to the next arrival.
                    gap = self._pending[0].arrival.arrival_time - self.db.now
                    if gap > 0:
                        self.db.disk.clock.advance(gap)
                    self._admit_due()
                    continue
                break
            self._serve(record)
            self._admit_due()
        self.stats.finished_at = self.db.now
        if self.fold_manager is not None:
            self.stats.fold = self.fold_manager.stats.as_dict()
        return self.stats

    def run_to_completion(self) -> SchedulerStats:  # pragma: no cover
        """Alias for :meth:`run` (reads better at call sites)."""
        return self.run()

    @classmethod
    def run_workload(
        cls,
        workload: Workload,
        policy: Union[str, PressurePolicy, None] = None,
        config: Optional[SchedulerConfig] = None,
    ) -> SchedulerStats:
        """Replay a :class:`Workload` on a fresh database and return stats.

        ``config`` overrides the workload's tuned budgets entirely;
        otherwise a config is built from them, with ``policy`` (if given)
        replacing the default.
        """
        if config is None:
            config = SchedulerConfig(
                policy=policy if policy is not None else "suspend-resume",
                memory_budget=workload.memory_budget,
                suspend=workload.suspend_spec(),
            )
        elif policy is not None:
            config.policy = policy
        scheduler = cls(workload.db_factory(), config)
        scheduler.submit_trace(workload.trace)
        return scheduler.run()

    # ------------------------------------------------------------------
    # Admission and selection
    # ------------------------------------------------------------------
    def _admit_due(self) -> list[QueryRecord]:
        admitted = []
        while self._pending and (
            self._pending[0].arrival.arrival_time <= self.db.now
        ):
            record = self._pending.pop(0)
            self.admit(record)
            admitted.append(record)
        return admitted

    def _runnable(self) -> list[QueryRecord]:
        admitted = set(self.stats.per_query)
        return [
            r
            for r in self.records
            if r.name in admitted and r.state is not QueryState.DONE
        ]

    def _pick_next(self) -> Optional[QueryRecord]:
        runnable = self._runnable()
        if not runnable:
            return None
        if self.fold_manager is not None:
            return self._pick_next_folded(runnable)
        return min(
            runnable, key=lambda r: (-r.priority, r.arrival.arrival_time, r.seq)
        )

    def _pick_next_folded(self, runnable: list[QueryRecord]) -> QueryRecord:
        """Fold-aware selection: co-schedule grafted members.

        Strict FIFO within a priority would run fold siblings *serially*
        — the first completes before the second starts, so the producer
        window never holds a page both need and every fold degenerates to
        refetches. With folding on, the lagging member of a fold group is
        preferred among the top-priority runnable records (fewest rows
        delivered first), which keeps grafted cursors within a window of
        each other; ungrafted queries keep FIFO order among themselves.
        """
        top_priority = max(r.priority for r in runnable)
        top = [r for r in runnable if r.priority == top_priority]
        grafted = [r for r in top if self.fold_manager.is_grafted(r.name)]
        if grafted:
            return min(
                grafted,
                key=lambda r: (r.rows_total, r.arrival.arrival_time, r.seq),
            )
        return min(top, key=lambda r: (r.arrival.arrival_time, r.seq))

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def _serve(self, record: QueryRecord) -> None:
        if not self.policy.make_room(self, record):
            holder = self._blocking_holder(record)
            if holder is None:
                # Nothing live holds the memory (should not happen); run
                # anyway rather than deadlock.
                self.mark("override", record)
            else:
                # The incoming query waits; keep the holder moving so the
                # clock (and its completion) advances.
                record = holder
        if record.state is QueryState.WAITING:
            self.start_session(record)
        elif record.state is QueryState.SUSPENDED:
            if not self._resume(record):
                return  # half-resumed state discarded; try again later
        self.run_quantum(record)

    def _blocking_holder(self, record: QueryRecord) -> Optional[QueryRecord]:
        holders = [
            r
            for r in self.records
            if r is not record
            and r.state is QueryState.READY
            and r.memory_in_use() > 0
        ]
        if not holders:
            return None
        return min(
            holders, key=lambda r: (-r.priority, r.arrival.arrival_time, r.seq)
        )

    def _resume(self, record: QueryRecord) -> bool:
        """Resume a suspended record; False if the discard rule fired."""
        resume_start = self.db.now
        session = self.open_resumed_session(record)
        arrived = self._admit_due()
        preempted = self.config.memory_budget is not None and any(
            r.priority > record.priority
            and r.arrival.arrival_time > resume_start
            for r in arrived
        )
        if preempted:
            # Paper's rule for a suspend request during resume: throw the
            # half-resumed state away and keep the old SuspendedQuery —
            # no new suspend phase is paid, only the wasted resume I/O.
            session.close()
            record.stats.discarded_resumes += 1
            self.mark("discard-resume", record)
            return False
        self.adopt_resumed_session(record, session)
        return True


__all__ = [
    "ExecutorCore",
    "QueryRecord",
    "QueryScheduler",
    "QueryState",
    "SchedulerConfig",
]
