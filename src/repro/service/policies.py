"""Memory-pressure policies: what to do when a query needs memory.

The paper's Section 1 compares three ways of serving a high-priority
query while a long-running low-priority query holds the memory:

- ``kill-restart`` — kill the holders and rerun them from scratch later
  (their completed work is wasted);
- ``wait`` — make the incoming query wait until the holders finish
  (terrible high-priority latency);
- ``suspend-resume`` — suspend the holders within a suspend budget using
  the paper's machinery, run the incoming query, resume the holders.

A policy's :meth:`~PressurePolicy.make_room` is invoked by the scheduler
right before a query is started or resumed; it may suspend or kill
victims and returns ``True`` when the query may take the CPU now. Only
strictly lower-priority sessions are ever victimized — pressure from
equal-or-higher-priority holders always means waiting, under every
policy, so priority inversions cannot be manufactured by the policy
choice itself.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.scheduler import QueryRecord, QueryScheduler


def select_victims(
    candidates: list["QueryRecord"], excess: int, fold_manager=None
) -> list["QueryRecord"]:
    """Pick victims covering ``excess`` bytes: lowest priority first,
    largest memory first within a priority, name breaking ties.

    With a fold manager, ungrafted members go first within a priority:
    suspending a grafted query splits its fold (the survivors keep
    sharing, but the victim's future work is no longer absorbed), so
    equal-priority victims that share nothing are cheaper to evict.
    """

    def grafted(r: "QueryRecord") -> bool:
        return fold_manager is not None and fold_manager.is_grafted(r.name)

    ordered = sorted(
        candidates,
        key=lambda r: (r.priority, grafted(r), -r.memory_in_use(), r.name),
    )
    victims: list["QueryRecord"] = []
    freed = 0
    for record in ordered:
        if freed >= excess:
            break
        victims.append(record)
        freed += record.memory_in_use()
    return victims if freed >= excess else ordered


class PressurePolicy:
    """Base class; subclasses define one pressure-resolution behavior."""

    name = "abstract"

    def make_room(
        self, scheduler: "QueryScheduler", record: "QueryRecord"
    ) -> bool:
        """Try to free enough memory for ``record``; True = may run now."""
        raise NotImplementedError

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


def _trace_pressure(scheduler, record, excess, victims, action) -> None:
    """Emit the victim-selection decision onto the scheduler's tracer."""
    tracer = scheduler.tracer
    if not tracer.enabled:
        return
    tracer.event(
        "sched.pressure",
        query=record.name,
        excess=excess,
        action=action,
        victims=[v.name for v in victims],
    )


class SuspendResumePolicy(PressurePolicy):
    """Suspend victims with the online optimizer; resume them later."""

    name = "suspend-resume"

    def make_room(self, scheduler, record):
        excess = scheduler.pressure_excess(record)
        if excess <= 0:
            return True
        victims = select_victims(
            scheduler.victim_candidates(record), excess,
            fold_manager=scheduler.fold_manager,
        )
        _trace_pressure(scheduler, record, excess, victims, "suspend")
        # One batch: the in-memory suspends run in victim order (virtual
        # clock unchanged vs. a loop), and the durable spill images commit
        # through the store's bounded pool when one is configured.
        scheduler.suspend_victims(victims)
        return scheduler.pressure_excess(record) <= 0


class KillRestartPolicy(PressurePolicy):
    """Kill victims outright; they restart from scratch when rescheduled."""

    name = "kill-restart"

    def make_room(self, scheduler, record):
        excess = scheduler.pressure_excess(record)
        if excess <= 0:
            return True
        victims = select_victims(
            scheduler.victim_candidates(record), excess,
            fold_manager=scheduler.fold_manager,
        )
        _trace_pressure(scheduler, record, excess, victims, "kill")
        for victim in victims:
            scheduler.kill_victim(victim)
        return scheduler.pressure_excess(record) <= 0


class WaitPolicy(PressurePolicy):
    """Never preempt: the incoming query waits for memory to clear."""

    name = "wait"

    def make_room(self, scheduler, record):
        excess = scheduler.pressure_excess(record)
        if excess > 0:
            _trace_pressure(scheduler, record, excess, [], "wait")
        return excess <= 0


POLICIES: dict[str, type[PressurePolicy]] = {
    policy.name: policy
    for policy in (SuspendResumePolicy, KillRestartPolicy, WaitPolicy)
}


def get_policy(policy: Union[str, PressurePolicy]) -> PressurePolicy:
    """Resolve a policy name (or pass an instance through)."""
    if isinstance(policy, PressurePolicy):
        return policy
    try:
        return POLICIES[policy]()
    except KeyError:
        raise ValueError(
            f"unknown scheduling policy {policy!r}; "
            f"expected one of {sorted(POLICIES)}"
        ) from None
