"""Serving layer: many concurrent queries over one suspend/resume engine.

The paper provides the primitive — suspend a query within a budget,
resume it without losing work. This package turns it into a served
system: a :class:`QueryScheduler` admits arrival traces of prioritized
queries against a shared database, runs them in cooperative quanta on
the virtual clock, enforces a memory budget by suspending (or killing,
or waiting on) victims, and resumes them when pressure clears. The
Section 1 kill-restart / wait / suspend-resume comparison becomes a
reproducible benchmark (see ``python -m repro.cli workload``).
"""

from repro.service.policies import (
    POLICIES,
    KillRestartPolicy,
    PressurePolicy,
    SuspendResumePolicy,
    WaitPolicy,
    get_policy,
)
from repro.service.core import (
    ExecutorCore,
    QueryRecord,
    QueryState,
    SchedulerConfig,
)
from repro.service.scheduler import QueryScheduler
from repro.service.stats import QueryStats, SchedulerStats, TimelineEvent
from repro.service.trace import ArrivalTrace, QueryArrival, Workload

__all__ = [
    "ArrivalTrace",
    "ExecutorCore",
    "KillRestartPolicy",
    "POLICIES",
    "PressurePolicy",
    "QueryArrival",
    "QueryRecord",
    "QueryScheduler",
    "QueryState",
    "QueryStats",
    "SchedulerConfig",
    "SchedulerStats",
    "SuspendResumePolicy",
    "TimelineEvent",
    "WaitPolicy",
    "Workload",
    "get_policy",
]
