"""The asyncio HTTP front end over :class:`QueryService`.

A deliberately small, dependency-free HTTP/1.1 server
(``asyncio.start_server`` + hand-rolled request parsing — the container
has no aiohttp and the protocol surface is four routes). The asyncio
loop owns connection handling; the actual query work is synchronous and
single-writer (one shared virtual clock), so every request body is
executed under one lock on the default thread-pool executor. Parsing
and response writing stay on the loop, so slow clients never hold the
engine.

Routes (see docs/SERVING.md for a curl session):

- ``GET /healthz`` — liveness, plus the served catalog names;
- ``GET /catalog`` — the plans this server can start;
- ``POST /queries`` — body ``{"query": <catalog name>, "as": <session
  name>?, "priority": <int>?}``; runs the first quantum, returns rows
  plus a continuation token (or ``"status": "done"``);
- ``POST /continue`` — body ``{"token": "rst1...."}``; next quantum.
- ``GET /metrics`` — plain-text metrics snapshot; 404 (typed error JSON)
  when tracing is off, so the body shape never depends on config;
- ``GET /obs/metrics`` — the full registry snapshot as JSON (works with
  tracing off: serving metrics like request latencies are always kept);
- ``GET /obs/progress/<token>`` — live fraction-complete and estimated
  remaining work for the query the token names (no redemption);
- ``GET /obs/health`` — liveness plus serving counters and trace state.

Error mapping: malformed token → 400, already redeemed → 409 (conflict:
the continuation was consumed), image GC'd → 410 (gone), unknown
catalog entry / unknown progress query / disabled metrics → 404,
duplicate session name → 409. Every error body is
``{"error": <message>, "code": <machine tag>?}``.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import threading
from typing import Optional

from repro.common.errors import ReproError
from repro.engine.plan import PlanSpec
from repro.serve.service import QueryService
from repro.serve.tokens import (
    TokenError,
    TokenExpiredError,
    TokenRedeemedError,
)

MAX_BODY_BYTES = 1 << 20


class ServeApp:
    """Routing and JSON glue, transport-free (tests drive it directly)."""

    def __init__(self, service: QueryService, catalog: dict):
        self.service = service
        self.catalog: dict[str, PlanSpec] = dict(catalog)
        self._names = itertools.count(1)
        self._lock = threading.Lock()

    def _session_name(self, base: str) -> str:
        return f"{base}-{next(self._names)}"

    def handle(self, method: str, path: str, body: Optional[dict]):
        """Dispatch one request; returns ``(http_status, payload)``."""
        with self._lock:
            return self._route(method, path, body)

    def _route(self, method, path, body):
        if method == "GET" and path == "/healthz":
            return 200, {"ok": True, "queries": sorted(self.catalog)}
        if method == "GET" and path == "/catalog":
            return 200, {"queries": sorted(self.catalog)}
        if method == "GET" and path == "/metrics":
            if not self.service.tracer.enabled:
                # Typed error, not a branch-dependent body shape: the
                # exposition endpoint either serves text metrics or says
                # why it cannot.
                return 404, {
                    "error": "tracing disabled: no metrics exposition",
                    "code": "metrics_disabled",
                }
            return 200, {
                "text": self.service.tracer.metrics.render_text()
            }
        if method == "GET" and path == "/obs/metrics":
            # The JSON snapshot works with tracing off too: the stats
            # registry (shared with the tracer when tracing is on)
            # always exists and always carries the serving counters.
            return 200, {
                "tracing": self.service.tracer.enabled,
                "metrics": self.service.stats.registry.as_dict(
                    include_volatile=True
                ),
            }
        if method == "GET" and path.startswith("/obs/progress/"):
            token_text = path[len("/obs/progress/"):]
            try:
                return 200, self.service.progress_of(token_text)
            except KeyError as exc:
                return 404, {
                    "error": f"no progress for query {exc.args[0]!r} "
                    "on this server",
                    "code": "unknown_query",
                }
            except TokenError as exc:
                return 400, {"error": str(exc), "code": "bad_token"}
        if method == "GET" and path == "/obs/health":
            stats = self.service.stats
            return 200, {
                "ok": True,
                "tracing": self.service.tracer.enabled,
                "now": round(self.service.db.now, 6),
                "queries_admitted": stats.queries_admitted,
                "queries_completed": stats.queries_completed,
                "records": len(self.service.records),
            }
        if method == "POST" and path == "/queries":
            body = body or {}
            name = body.get("query")
            if name not in self.catalog:
                return 404, {
                    "error": f"unknown query {name!r}",
                    "queries": sorted(self.catalog),
                }
            session = body.get("as") or self._session_name(name)
            try:
                result = self.service.begin(
                    session,
                    self.catalog[name],
                    priority=int(body.get("priority", 0)),
                )
            except ReproError as exc:
                return 409, {"error": str(exc)}
            return 200, result.as_dict()
        if method == "POST" and path == "/continue":
            body = body or {}
            try:
                result = self.service.continue_query(body.get("token"))
            except TokenRedeemedError as exc:
                return 409, {"error": str(exc)}
            except TokenExpiredError as exc:
                return 410, {"error": str(exc)}
            except TokenError as exc:
                return 400, {"error": str(exc)}
            return 200, result.as_dict()
        return 404, {"error": f"no route {method} {path}"}


STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    409: "Conflict",
    410: "Gone",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


def _response_bytes(status: int, payload: dict) -> bytes:
    if set(payload) == {"text"}:  # metrics exposition
        body = payload["text"].encode("utf-8")
        ctype = "text/plain; charset=utf-8"
    else:
        body = (json.dumps(payload) + "\n").encode("utf-8")
        ctype = "application/json"
    head = (
        f"HTTP/1.1 {status} {STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: {ctype}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("ascii")
    return head + body


async def _handle_connection(app: ServeApp, reader, writer):
    try:
        request_line = await reader.readline()
        parts = request_line.decode("ascii", "replace").split()
        if len(parts) < 2:
            return
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            header = line.decode("ascii", "replace")
            if header.lower().startswith("content-length:"):
                content_length = int(header.split(":", 1)[1].strip())
        if content_length > MAX_BODY_BYTES:
            writer.write(_response_bytes(413, {"error": "body too large"}))
            return
        body = None
        if content_length:
            raw = await reader.readexactly(content_length)
            try:
                body = json.loads(raw)
            except ValueError:
                writer.write(
                    _response_bytes(400, {"error": "body is not JSON"})
                )
                return
        loop = asyncio.get_running_loop()
        try:
            status, payload = await loop.run_in_executor(
                None, app.handle, method, path, body
            )
        except Exception as exc:  # noqa: BLE001 - server must answer
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        writer.write(_response_bytes(status, payload))
        await writer.drain()
    except (asyncio.IncompleteReadError, ConnectionError):
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except ConnectionError:
            pass


async def serve_async(
    app: ServeApp, host: str = "127.0.0.1", port: int = 8351
):
    """Run the server until cancelled; returns the asyncio server."""
    server = await asyncio.start_server(
        lambda r, w: _handle_connection(app, r, w), host, port
    )
    return server


def run_server(app: ServeApp, host: str = "127.0.0.1", port: int = 8351):
    """Blocking entry point (the CLI's ``serve-http``)."""

    async def main():
        server = await serve_async(app, host, port)
        addrs = ", ".join(
            str(sock.getsockname()) for sock in server.sockets
        )
        print(f"serving on {addrs} (Ctrl-C to stop)")
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("stopped")


__all__ = ["MAX_BODY_BYTES", "ServeApp", "run_server", "serve_async"]
