"""Deterministic load generator for the continuation-token service.

Simulates N clients against one :class:`QueryService` — no sockets, no
wall clock — so the run is exactly reproducible: every client opens a
session (``begin``), then presents its continuation token round-robin
(``continue``) until its query completes. After the opening round every
unfinished client holds an outstanding token *simultaneously*, which is
the serving-layer notion of concurrency: the server itself keeps no
per-client state between requests.

What it measures, on the shared virtual clock:

- **per-request latency** (resume + quantum + suspend time inside one
  request), observed into a ``loadgen_request_latency`` Summary on the
  service's metrics registry — the *same* registry ``/obs/metrics``
  exposes, so BENCH_serve.json and the live endpoint report identical
  numbers (p50/p99 via :mod:`repro.obs.slo`, computed once);
- **fairness**: the Jain index over each session's total service time,
  overall and per catalog plan;
- **determinism**: each session's concatenated rows are digested and
  compared against an uninterrupted solo run of the same plan on a
  fresh database — any divergence means suspend/resume through tokens
  changed query output, and the report says which sessions;
- **delta adoption**: how many continuations committed delta images
  rather than full ones.

Used by ``benchmarks/bench_serve.py`` (full run, ≥1000 sessions →
BENCH_serve.json) and the ``serve-smoke`` CI job (reduced run that
fails on any determinism divergence).
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional

from repro.core.lifecycle import QuerySession, QueryStatus, SuspendSpec
from repro.obs.slo import jain_index
from repro.serve.service import QueryService, ServeConfig
from repro.workloads.plans import serve_catalog


def _digest(rows: list) -> str:
    """Byte-deterministic digest of a query's output rows, in order."""
    doc = json.dumps([list(r) for r in rows], separators=(",", ":"))
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()


def _solo_digests(db_factory, catalog: dict) -> dict:
    """Digest of each plan's uninterrupted output on a fresh database."""
    digests = {}
    for name in sorted(catalog):
        db = db_factory()
        session = QuerySession(db, catalog[name], name=f"solo-{name}")
        rows: list = []
        while True:
            result = session.execute(max_rows=4096)
            rows.extend(result.rows)
            if result.status is QueryStatus.COMPLETED:
                break
        session.close()
        digests[name] = _digest(rows)
    return digests


def run_loadgen(
    image_root: str,
    sessions: int = 1000,
    scale: int = 8,
    seed: int = 1,
    quantum_rows: int = 32,
    tracer=None,
    plan_names: Optional[list] = None,
) -> dict:
    """Run the simulation; returns the BENCH_serve.json report dict."""
    db_factory, catalog = serve_catalog(scale=scale, seed=seed)
    if plan_names:
        catalog = {n: catalog[n] for n in plan_names}
    names = sorted(catalog)
    solo = _solo_digests(db_factory, catalog)

    config = ServeConfig(
        quantum_rows=quantum_rows,
        suspend=SuspendSpec(persist_to=image_root),
        tracer=tracer,
    )
    service = QueryService(db_factory(), config)

    # Per-request latencies live in the registry, not an ad-hoc list:
    # the Summary keeps raw samples and computes p50/p90/p99 with the
    # slo module's math, so this report and /obs/metrics agree exactly.
    latency_metric = service.stats.registry.summary(
        "loadgen_request_latency"
    )
    per_session: dict[str, dict] = {}
    outstanding: list[tuple[str, str]] = []  # (session, token), FIFO
    delta_commits = 0
    full_commits = 0

    def account(session_name: str, result) -> None:
        nonlocal delta_commits, full_commits
        entry = per_session[session_name]
        entry["rows"].extend(result.rows)
        entry["service_time"] += result.elapsed
        entry["requests"] += 1
        latency_metric.observe(result.elapsed)
        if result.done:
            entry["done"] = True
        else:
            outstanding.append((session_name, result.token))
            if result.base_image_id is not None:
                delta_commits += 1
            else:
                full_commits += 1

    # Opening round: every client begins; unfinished ones now hold a
    # token at once — the peak-concurrency moment of the run.
    for i in range(sessions):
        plan_name = names[i % len(names)]
        session_name = f"c{i}-{plan_name}"
        per_session[session_name] = {
            "plan": plan_name,
            "rows": [],
            "service_time": 0.0,
            "requests": 0,
            "done": False,
        }
        account(
            session_name,
            service.begin(session_name, catalog[plan_name]),
        )
    concurrent_peak = len(outstanding)

    # Steady state: clients return round-robin with their tokens.
    while outstanding:
        session_name, token = outstanding.pop(0)
        account(session_name, service.continue_query(token))

    divergent = sorted(
        name
        for name, entry in per_session.items()
        if _digest(entry["rows"]) != solo[entry["plan"]]
    )
    service_times = [e["service_time"] for e in per_session.values()]
    per_plan_fairness = {
        plan: jain_index(
            [
                e["service_time"]
                for e in per_session.values()
                if e["plan"] == plan
            ]
        )
        for plan in names
    }
    report = {
        "sessions": sessions,
        "concurrent_peak": concurrent_peak,
        "requests": latency_metric.count,
        "quantum_rows": quantum_rows,
        "scale": scale,
        "seed": seed,
        "plans": names,
        "latency": latency_metric.value,
        "fairness": {
            "jain_service_time": round(jain_index(service_times), 6),
            "per_plan": {
                p: round(v, 6) for p, v in per_plan_fairness.items()
            },
        },
        "determinism": {
            "ok": not divergent,
            "solo_digests": solo,
            "divergent_sessions": divergent,
        },
        "images": {
            "delta_commits": delta_commits,
            "full_commits": full_commits,
        },
        "completed": sum(
            1 for e in per_session.values() if e["done"]
        ),
    }
    if tracer is not None and tracer.enabled:
        metrics = tracer.metrics
        metrics.gauge("serve_jain_index").set(
            report["fairness"]["jain_service_time"]
        )
        metrics.gauge("serve_latency_p50").set(report["latency"]["p50"])
        metrics.gauge("serve_latency_p99").set(report["latency"]["p99"])
        metrics.gauge("serve_concurrent_peak").set(concurrent_peak)
    return report


__all__ = ["run_loadgen"]
