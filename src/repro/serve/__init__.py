"""Serving over HTTP with continuation tokens (SaGe-style preemption).

The paper makes suspend/resume a first-class lifecycle operation; this
package makes it a *wire protocol*. Each HTTP request runs a query for
one quantum; instead of blocking, the server suspends the query through
the durable image path and hands back a **continuation token** — an
opaque reference to the committed image (a delta image on repeat
suspends). The client presents the token to continue; the server keeps
no per-query state between requests.

Layers, bottom up:

- :mod:`repro.serve.tokens` — token wire format, at-most-once redeem
  ledger, token-pinned GC over the image store;
- :mod:`repro.serve.service` — :class:`QueryService`: the transport-free
  request handlers, composing the same
  :class:`~repro.service.core.ExecutorCore` as the in-process
  scheduler;
- :mod:`repro.serve.http` — the asyncio HTTP/1.1 front end
  (``python -m repro.cli serve-http``);
- :mod:`repro.serve.loadgen` — the deterministic load generator behind
  BENCH_serve.json and the ``serve-smoke`` CI job.
"""

from repro.serve.http import ServeApp, run_server, serve_async
from repro.serve.loadgen import run_loadgen
from repro.serve.service import QueryService, ServeConfig, ServeResult
from repro.serve.tokens import (
    TOKEN_PREFIX,
    ContinuationToken,
    TokenError,
    TokenExpiredError,
    TokenManager,
    TokenRedeemedError,
)

__all__ = [
    "ContinuationToken",
    "QueryService",
    "ServeApp",
    "ServeConfig",
    "ServeResult",
    "TOKEN_PREFIX",
    "TokenError",
    "TokenExpiredError",
    "TokenManager",
    "TokenRedeemedError",
    "run_loadgen",
    "run_server",
    "serve_async",
]
