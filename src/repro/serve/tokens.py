"""Continuation tokens: durable suspend images as a wire format.

A continuation token is the serving layer's only per-query state: an
opaque string the client holds between requests, naming the durable
suspend image that will resume the query. The server keeps nothing in
memory — SaGe-style web preemption over the paper's suspend machinery.

Wire format (``rst1.<payload>.<crc>``):

- ``rst1`` — format tag, bumped on incompatible changes;
- ``payload`` — URL-safe unpadded base64 of a compact, key-sorted JSON
  object ``{"img": image_id, "q": query_name, "seq": n}``. Sorted keys
  and compact separators make encoding a pure function of the fields,
  so the same suspend produces byte-identical tokens in any process;
- ``crc`` — CRC-32 of the payload segment, 8 lowercase hex digits.
  An integrity check against truncation/corruption in transit, not a
  signature: tokens are capabilities only as far as the store is.

:class:`TokenManager` adds the at-most-once discipline on top of an
:class:`~repro.durability.store.ImageStore`:

- **issue** pins the image (token-pinned GC: ``store.gc()`` spares the
  pinned tip and, via chain expansion, every delta ancestor) and
  releases the superseded image's pin;
- **redeem** durably marks the token consumed *before* the caller
  resumes, so a second redeem — any process, any time — fails with
  :class:`TokenRedeemedError`; a token whose image has been collected
  fails with :class:`TokenExpiredError` instead of a stack trace from
  the store internals.

The redeemed ledger lives next to the images (``TOKENS.json`` under the
image root), so it shares the store's crash story and survives server
restarts. It is append-only JSONL — one fsynced line per redeem, never
rewritten — so redeeming stays O(1) however many requests a server has
served. A line is appended *before* the resume runs; a torn final line
(crash mid-append) is ignored on read, which is safe because the resume
it would have recorded never happened. One server process per image
root is assumed: managers cache the redeemed set after first read.
"""

from __future__ import annotations

import base64
import binascii
import json
import os
from dataclasses import dataclass
from typing import Optional

from repro.common.errors import ReproError
from repro.durability.store import (
    ImageNotFoundError,
    ImageStore,
    TOKENS_NAME,
)
from repro.durability.format import fsync_dir

TOKEN_PREFIX = "rst1"


class TokenError(ReproError):
    """Malformed, corrupted, or otherwise unusable continuation token."""


class TokenRedeemedError(TokenError):
    """The token was already redeemed (a resume consumed it)."""


class TokenExpiredError(TokenError):
    """The token's suspend image no longer exists (GC'd or never here)."""


@dataclass(frozen=True)
class ContinuationToken:
    """The decoded contents of one continuation token.

    ``trace_id`` carries the query's distributed-trace identity across
    hops (PROTOCOL.md section 7): a resuming server binds its tracer to
    it so every span of the logical query shares one id however many
    processes it crosses. ``rows_total`` is the cumulative row count
    delivered through the hop that issued this token, which lets any
    process compute monotonically non-decreasing progress without shared
    state. Both are optional on decode so pre-existing tokens stay valid.
    """

    query: str
    image_id: str
    seq: int
    trace_id: Optional[str] = None
    rows_total: int = 0

    def encode(self) -> str:
        """The wire string. Deterministic: same fields, same bytes."""
        doc_fields = {"img": self.image_id, "q": self.query, "seq": self.seq}
        if self.trace_id is not None:
            doc_fields["tid"] = self.trace_id
        if self.rows_total:
            doc_fields["rows"] = self.rows_total
        doc = json.dumps(
            doc_fields,
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
        payload = base64.urlsafe_b64encode(doc).rstrip(b"=").decode("ascii")
        crc = binascii.crc32(payload.encode("ascii")) & 0xFFFFFFFF
        return f"{TOKEN_PREFIX}.{payload}.{crc:08x}"

    @classmethod
    def decode(cls, text: str) -> "ContinuationToken":
        """Parse and integrity-check a wire token; raises TokenError."""
        if not isinstance(text, str):
            raise TokenError("continuation token must be a string")
        parts = text.strip().split(".")
        if len(parts) != 3 or parts[0] != TOKEN_PREFIX:
            raise TokenError(
                f"not a {TOKEN_PREFIX} continuation token: {text[:32]!r}"
            )
        _, payload, crc_hex = parts
        crc = binascii.crc32(payload.encode("ascii")) & 0xFFFFFFFF
        if f"{crc:08x}" != crc_hex:
            raise TokenError("continuation token failed its integrity check")
        try:
            padded = payload + "=" * (-len(payload) % 4)
            doc = json.loads(base64.urlsafe_b64decode(padded))
            trace_id = doc.get("tid")
            if trace_id is not None and not isinstance(trace_id, str):
                raise TokenError("continuation token trace id must be a string")
            return cls(
                query=doc["q"],
                image_id=doc["img"],
                seq=int(doc["seq"]),
                trace_id=trace_id,
                rows_total=int(doc.get("rows", 0)),
            )
        except (ValueError, KeyError, TypeError, binascii.Error) as exc:
            raise TokenError(f"unreadable continuation token: {exc}") from exc


class TokenManager:
    """Issue and redeem tokens against one image store, at most once."""

    def __init__(self, store: ImageStore):
        self.store = store
        self._ledger_path = os.path.join(store.root, TOKENS_NAME)
        self._redeemed: Optional[set] = None

    # -- ledger --------------------------------------------------------
    def redeemed(self) -> set:
        """The set of redeemed token strings (cached after first read)."""
        if self._redeemed is None:
            entries = set()
            if os.path.exists(self._ledger_path):
                with open(self._ledger_path, encoding="utf-8") as fh:
                    for line in fh:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            entries.add(json.loads(line)["token"])
                        except (ValueError, KeyError, TypeError):
                            # A torn tail from a crash mid-append: the
                            # resume it would have recorded never ran.
                            continue
            self._redeemed = entries
        return set(self._redeemed)

    def _mark_redeemed(self, token: ContinuationToken, text: str) -> None:
        created = not os.path.exists(self._ledger_path)
        line = json.dumps(
            {"img": token.image_id, "q": token.query, "token": text},
            sort_keys=True,
            separators=(",", ":"),
        )
        with open(self._ledger_path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        if created:
            fsync_dir(self.store.root)
        self._redeemed.add(text)

    # -- lifecycle -----------------------------------------------------
    def issue(
        self,
        query: str,
        image_id: str,
        seq: int,
        release: str = None,
        trace_id: Optional[str] = None,
        rows_total: int = 0,
    ) -> str:
        """Mint a token for a freshly committed image and pin it.

        ``release`` is the previous tip this image supersedes (its token
        was redeemed to get here); its pin is dropped — if the new image
        is a delta on top of it, the chain expansion of ``gc`` keeps it
        alive through the new tip's pin anyway.
        """
        self.store.pin(image_id)
        if release is not None and release != image_id:
            self.store.unpin(release)
        return ContinuationToken(
            query=query,
            image_id=image_id,
            seq=seq,
            trace_id=trace_id,
            rows_total=rows_total,
        ).encode()

    def redeem(self, text: str) -> ContinuationToken:
        """Consume a token: validate, check the ledger, mark redeemed.

        On success the image is guaranteed present at the time of the
        call and the token can never be redeemed again — the durable
        ledger write happens before this returns. The image's pin is
        kept until the query either completes or is superseded by the
        next issued token.
        """
        token = ContinuationToken.decode(text)
        canonical = token.encode()
        if canonical in self.redeemed():
            raise TokenRedeemedError(
                f"token for {token.query!r} (image {token.image_id}) was "
                "already redeemed; a continuation may be resumed only once"
            )
        try:
            self.store.manifest(token.image_id)
        except ImageNotFoundError:
            raise TokenExpiredError(
                f"token for {token.query!r} names image "
                f"{token.image_id!r}, which no longer exists "
                "(garbage-collected or never committed here)"
            ) from None
        self._mark_redeemed(token, canonical)
        return token

    def release(self, image_id: str) -> None:
        """Drop a pin without issuing a successor (query finished)."""
        self.store.unpin(image_id)


__all__ = [
    "ContinuationToken",
    "TOKEN_PREFIX",
    "TokenError",
    "TokenExpiredError",
    "TokenManager",
    "TokenRedeemedError",
]
