"""QueryService: one request = one quantum, state lives in the token.

The transport-free heart of :mod:`repro.serve` — the HTTP front end
(:mod:`repro.serve.http`) and the load generator
(:mod:`repro.serve.loadgen`) both drive this class. It composes the
same :class:`~repro.service.core.ExecutorCore` as the in-process
scheduler, so pressure policies, quota accounting, durable spill (with
delta chains), and the obs wiring are shared; what changes is *when a
query runs*: here the client decides, one request at a time.

Request flow:

- :meth:`begin` admits a query and runs its first quantum. If it
  completes, the response carries the rows and no token. Otherwise the
  query is suspended through the paper's machinery (budgeted plan, dump
  or go-back per operator), committed as a durable image, and the
  response carries this quantum's rows plus a continuation token. The
  in-memory SuspendedQuery is **dropped** — the image is the only
  resume path, which is what makes the server stateless per request and
  the token valid in any process over the same image root.
- :meth:`continue_query` redeems the token (at most once, durable
  ledger), loads the image, resumes, runs one quantum, and either
  finishes or suspends again — this time as a *delta image* against the
  previous one, since the unchanged operator state is already durable.
  The new token supersedes the old image's GC pin.

Completion garbage-collects the whole image chain and releases its pin;
an abandoned token keeps its chain pinned until an operator runs
``repro.cli images gc`` against a keep-set or the client returns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import ReproError
from repro.core.lifecycle import QueryStatus
from repro.engine.plan import PlanSpec
from repro.serve.tokens import TokenManager
from repro.service.core import (
    ExecutorCore,
    QueryRecord,
    QueryState,
    SchedulerConfig,
)
from repro.service.trace import QueryArrival
from repro.storage.database import Database


@dataclass
class ServeConfig(SchedulerConfig):
    """SchedulerConfig plus the HTTP front end's listen address."""

    host: str = "127.0.0.1"
    port: int = 8351


@dataclass
class ServeResult:
    """What one request produced (the JSON body, as a dataclass)."""

    query: str
    #: ``"running"`` (token present) or ``"done"`` (rows complete).
    status: str
    rows: list = field(default_factory=list)
    token: Optional[str] = None
    image_id: Optional[str] = None
    #: Base of the spill image when this suspend committed a delta.
    base_image_id: Optional[str] = None
    #: How many times this query has been suspended so far.
    seq: int = 0
    #: Virtual-clock time consumed by this request.
    elapsed: float = 0.0

    @property
    def done(self) -> bool:
        return self.status == "done"

    def as_dict(self) -> dict:
        return {
            "query": self.query,
            "status": self.status,
            "rows": [list(r) for r in self.rows],
            "token": self.token,
            "image_id": self.image_id,
            "base_image_id": self.base_image_id,
            "seq": self.seq,
            "elapsed": round(self.elapsed, 6),
        }


class QueryService(ExecutorCore):
    """Serve queries one request-quantum at a time, tokens in between."""

    def __init__(self, db: Database, config: Optional[SchedulerConfig] = None):
        super().__init__(db, config)
        if self.image_store is None:
            raise ReproError(
                "serving requires a durable image store: pass "
                "SchedulerConfig(suspend=SuspendSpec(persist_to=...))"
            )
        self.tokens = TokenManager(self.image_store)
        #: Latest progress document per query, for ``/obs/progress``.
        self._progress: dict[str, dict] = {}

    # ------------------------------------------------------------------
    # The two requests
    # ------------------------------------------------------------------
    def begin(
        self, name: str, plan: PlanSpec, priority: int = 0
    ) -> ServeResult:
        """Admit a new query and run its first quantum."""
        if self.record_named(name) is not None:
            raise ReproError(
                f"query name {name!r} is already in use on this server"
            )
        record = self.track(
            QueryArrival(name, plan, self.db.now, priority)
        )
        self.admit(record)
        self.policy.make_room(self, record)
        self.start_session(record)
        return self._step(record, kind="begin")

    def continue_query(self, token_text: str) -> ServeResult:
        """Redeem a continuation token and run the next quantum.

        Raises :class:`~repro.serve.tokens.TokenError` subclasses for a
        malformed, already-redeemed, or expired token — the transport
        maps them to 400/409/410.
        """
        token = self.tokens.redeem(token_text)
        record = self.record_named(token.query)
        if record is None:
            # A different process minted this token; rebuild the record
            # from the token alone — the image carries plan and state,
            # so the arrival's plan is never consulted on this path.
            record = self.track(
                QueryArrival(token.query, None, self.db.now, 0)
            )
            self.admit(record)
            record.state = QueryState.SUSPENDED
            record.stats.suspends = token.seq
        if token.trace_id is not None:
            # The query's distributed-trace identity survives the hop:
            # spans in this process join the same trace_id the beginning
            # process minted (normally also what track() derives).
            record.trace_id = token.trace_id
        # Cumulative rows through the issuing hop, restored so the
        # progress fraction stays monotone in any process.
        record.rows_offset = max(
            token.rows_total - record.stats.rows_emitted, 0
        )
        record.sq = self.image_store.load(token.image_id)
        record.image_id = token.image_id
        self.policy.make_room(self, record)
        session = self.open_resumed_session(record)
        self.adopt_resumed_session(record, session)
        record.sq = None
        return self._step(record, kind="continue")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _step(self, record: QueryRecord, kind: str) -> ServeResult:
        start = self.db.now
        produced = len(record.rows)
        status = self.run_quantum(record)
        if not self.tracer.enabled and record.session is not None:
            # run_quantum snapshots progress only when tracing; the live
            # endpoint wants it either way, and the session is gone once
            # the query suspends below.
            self.note_progress(record, emit=False)
        rows = record.rows[produced:]
        if not self.config.collect_rows:
            rows = []
        if status is QueryStatus.COMPLETED:
            result = ServeResult(
                query=record.name,
                status="done",
                rows=rows,
                seq=record.stats.suspends,
                elapsed=self.db.now - start,
            )
        else:
            previous = record.image_id
            self.suspend_victims([record])
            # Stateless per request: the durable image is the only
            # resume path, exactly what the token names.
            record.sq = None
            token = self.tokens.issue(
                record.name,
                record.image_id,
                record.stats.suspends,
                release=previous,
                trace_id=record.trace_id,
                rows_total=record.rows_total,
            )
            result = ServeResult(
                query=record.name,
                status="running",
                rows=rows,
                token=token,
                image_id=record.image_id,
                # What actually got committed (None again after a
                # max_chain rebase), not what was merely requested.
                base_image_id=self.image_store.manifest(
                    record.image_id
                ).get("base_image_id"),
                seq=record.stats.suspends,
                elapsed=self.db.now - start,
            )
        if self.tracer.enabled:
            self.tracer.event(
                "serve.request",
                query=record.name,
                trace_id=record.trace_id,
                kind=kind,
                status=result.status,
                rows=len(result.rows),
                seq=result.seq,
                elapsed=round(result.elapsed, 6),
            )
            self.tracer.metrics.counter(
                "serve_requests_total", kind=kind
            ).inc()
            self.tracer.metrics.histogram(
                "serve_request_latency"
            ).observe(result.elapsed)
        self._stash_progress(record, result)
        return result

    def _stash_progress(self, record: QueryRecord, result: ServeResult):
        """Remember the hop's progress for ``/obs/progress/<token>``.

        The snapshot itself was taken at the quantum boundary (while the
        session was still live); this just shapes the JSON document.
        """
        snapshot = record.last_progress
        doc: dict = {
            "query": record.name,
            "status": result.status,
            "seq": result.seq,
            "trace_id": record.trace_id,
            "rows_total": record.rows_total,
            "token": result.token,
        }
        if result.done:
            doc["fraction"] = 1.0
            doc["est_remaining_work"] = 0.0
            doc["est_remaining_bytes"] = 0
        elif snapshot is not None:
            doc.update(snapshot.as_dict(include_operators=False))
            doc["query"] = record.name
            doc["rows_total"] = record.rows_total
        self._progress[record.name] = doc

    def progress_of(self, token_text: str) -> dict:
        """Latest progress for the query a token names (no redemption).

        Raises :class:`~repro.serve.tokens.TokenError` for a malformed
        token and :class:`KeyError` for a query this server has not
        served — the transport maps those to 400 and 404.
        """
        from repro.serve.tokens import ContinuationToken

        token = ContinuationToken.decode(token_text)
        doc = self._progress.get(token.query)
        if doc is None:
            raise KeyError(token.query)
        out = dict(doc)
        out["current"] = doc.get("token") == token.encode()
        out.pop("token", None)
        return out

    def complete(self, record: QueryRecord) -> None:
        # The completing request's redeemed token still pins the image;
        # release it so the core's chain GC can actually collect.
        if record.image_id is not None:
            self.tokens.release(record.image_id)
        super().complete(record)


__all__ = ["QueryService", "ServeConfig", "ServeResult"]
