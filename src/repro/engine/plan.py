"""Execution-plan specifications.

A plan is a tree of small picklable spec dataclasses. The same spec tree
is instantiated at execute time and again at resume time (the paper
assumes the resumed query uses the same plan, Section 2), with operator
ids assigned deterministically in preorder so SuspendedQuery entries line
up across the two instantiations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.engine.aggregate import DuplicateEliminate, GroupAggregate
from repro.engine.hash_aggregate import HashGroupAggregate
from repro.engine.base import Operator
from repro.engine.exchange import PartitionedScan, ShuffleRead
from repro.engine.filter import Filter
from repro.engine.hash_join import HybridHashJoin, SimpleHashJoin
from repro.engine.index_nlj import IndexNLJ
from repro.engine.merge_join import MergeJoin
from repro.engine.nlj import BlockNLJ
from repro.engine.project import Project
from repro.engine.runtime import Runtime
from repro.engine.scan import IndexScan, TableScan
from repro.engine.sort import TwoPhaseMergeSort
from repro.relational.expressions import EquiJoinCondition, Predicate


@dataclass(frozen=True)
class ScanSpec:
    table: str
    label: Optional[str] = None

    @property
    def children(self):
        return ()


@dataclass(frozen=True)
class IndexScanSpec:
    index: str
    start_key: Optional[object] = None
    label: Optional[str] = None

    @property
    def children(self):
        return ()


@dataclass(frozen=True)
class PartitionedScanSpec:
    """Scan of one shard's partition of ``table`` (see ``repro.shard``).

    Inside a shard worker the partition is simply the shard-local heap
    file registered under the base table's name, so this instantiates as
    a :class:`~repro.engine.exchange.PartitionedScan` over that file.
    ``shard``/``num_shards`` are carried for provenance (labels, traces,
    and validating that a fragment runs on the shard it was planned for).
    """

    table: str
    shard: int = 0
    num_shards: int = 1
    label: Optional[str] = None

    @property
    def children(self):
        return ()


@dataclass(frozen=True)
class ShuffleReadSpec:
    """Scan of a materialized exchange channel on one shard.

    The shard coordinator freezes every row routed to this shard into a
    heap file named after the channel before the consuming fragment
    starts; this spec instantiates as a scan over that file.
    """

    channel: str
    shard: int = 0
    label: Optional[str] = None

    @property
    def children(self):
        return ()


@dataclass(frozen=True)
class FilterSpec:
    child: "PlanSpec"
    predicate: Predicate
    label: Optional[str] = None

    @property
    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class ProjectSpec:
    child: "PlanSpec"
    columns: tuple
    label: Optional[str] = None

    @property
    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class NLJSpec:
    outer: "PlanSpec"
    inner: "PlanSpec"
    condition: EquiJoinCondition
    buffer_tuples: int
    label: Optional[str] = None

    @property
    def children(self):
        return (self.outer, self.inner)


@dataclass(frozen=True)
class IndexNLJSpec:
    outer: "PlanSpec"
    index: str
    outer_key_column: int
    label: Optional[str] = None

    @property
    def children(self):
        return (self.outer,)


@dataclass(frozen=True)
class SortSpec:
    child: "PlanSpec"
    key_columns: tuple
    buffer_tuples: int
    label: Optional[str] = None

    @property
    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class MergeJoinSpec:
    left: "PlanSpec"
    right: "PlanSpec"
    condition: EquiJoinCondition
    label: Optional[str] = None

    @property
    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class SimpleHashJoinSpec:
    build: "PlanSpec"
    probe: "PlanSpec"
    condition: EquiJoinCondition
    num_partitions: int = 8
    label: Optional[str] = None

    @property
    def children(self):
        return (self.build, self.probe)


@dataclass(frozen=True)
class HybridHashJoinSpec:
    build: "PlanSpec"
    probe: "PlanSpec"
    condition: EquiJoinCondition
    num_partitions: int = 8
    memory_partitions: int = 2
    label: Optional[str] = None

    @property
    def children(self):
        return (self.build, self.probe)


@dataclass(frozen=True)
class GroupAggSpec:
    child: "PlanSpec"
    group_columns: tuple
    agg_func: str
    agg_column: int
    label: Optional[str] = None

    @property
    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class HashGroupAggSpec:
    child: "PlanSpec"
    group_columns: tuple
    agg_func: str
    agg_column: int
    num_partitions: int = 8
    label: Optional[str] = None

    @property
    def children(self):
        return (self.child,)


@dataclass(frozen=True)
class DupElimSpec:
    child: "PlanSpec"
    label: Optional[str] = None

    @property
    def children(self):
        return (self.child,)


PlanSpec = Union[
    ScanSpec,
    PartitionedScanSpec,
    ShuffleReadSpec,
    IndexScanSpec,
    FilterSpec,
    ProjectSpec,
    NLJSpec,
    IndexNLJSpec,
    SortSpec,
    MergeJoinSpec,
    SimpleHashJoinSpec,
    HybridHashJoinSpec,
    GroupAggSpec,
    HashGroupAggSpec,
    DupElimSpec,
]


def plan_operator_count(spec: PlanSpec) -> int:
    """Number of operators in the plan tree."""
    return 1 + sum(plan_operator_count(c) for c in spec.children)


def plan_height(spec: PlanSpec) -> int:
    """Height of the plan tree."""
    if not spec.children:
        return 1
    return 1 + max(plan_height(c) for c in spec.children)


def _default_label(spec: PlanSpec, op_id: int) -> str:
    base = type(spec).__name__.removesuffix("Spec").lower()
    return f"{base}_{op_id}"


def instantiate_plan(spec: PlanSpec, runtime: Runtime) -> Operator:
    """Build the operator tree for ``spec``, assigning preorder op ids.

    When the runtime carries a fold binding, foldable nodes instantiate
    as their shared-work variants (``repro.engine.folded``): plain table
    scans graft onto the manager's per-table page producers, and hash
    joins get a build-side fingerprint so spilled partitions can adopt a
    sibling's hash table. The spec tree itself is never rewritten — the
    suspend image records the original plan, so resuming with or without
    a fold manager yields the same query.
    """
    counter = [0]
    fold = runtime.fold

    def build(node: PlanSpec) -> Operator:
        if not hasattr(node, "children"):
            raise TypeError(f"unknown plan spec node {type(node).__name__}")
        op_id = counter[0]
        counter[0] += 1
        name = node.label or _default_label(node, op_id)
        if isinstance(node, ScanSpec):
            table = runtime.db.catalog.table(node.table)
            if fold is not None:
                from repro.engine.folded import SharedScanLeaf

                producer = fold.manager.producer_for(table)
                return SharedScanLeaf(op_id, name, runtime, table, producer)
            return TableScan(op_id, name, runtime, table)
        if isinstance(node, PartitionedScanSpec):
            table = runtime.db.catalog.table(node.table)
            return PartitionedScan(
                op_id, name, runtime, table, node.shard, node.num_shards
            )
        if isinstance(node, ShuffleReadSpec):
            table = runtime.db.catalog.table(node.channel)
            return ShuffleRead(
                op_id, name, runtime, table, node.channel, node.shard
            )
        if isinstance(node, IndexScanSpec):
            index = runtime.db.catalog.index(node.index)
            return IndexScan(op_id, name, runtime, index, node.start_key)
        if isinstance(node, FilterSpec):
            child = build(node.child)
            return Filter(op_id, name, child, runtime, node.predicate)
        if isinstance(node, ProjectSpec):
            child = build(node.child)
            return Project(op_id, name, child, runtime, node.columns)
        if isinstance(node, NLJSpec):
            outer = build(node.outer)
            inner = build(node.inner)
            return BlockNLJ(
                op_id, name, outer, inner, runtime, node.condition,
                node.buffer_tuples,
            )
        if isinstance(node, IndexNLJSpec):
            outer = build(node.outer)
            index = runtime.db.catalog.index(node.index)
            return IndexNLJ(
                op_id, name, outer, runtime, index, node.outer_key_column
            )
        if isinstance(node, SortSpec):
            child = build(node.child)
            return TwoPhaseMergeSort(
                op_id, name, child, runtime, node.key_columns,
                node.buffer_tuples,
            )
        if isinstance(node, MergeJoinSpec):
            left = build(node.left)
            right = build(node.right)
            return MergeJoin(op_id, name, left, right, runtime, node.condition)
        if isinstance(node, SimpleHashJoinSpec):
            build_child = build(node.build)
            probe_child = build(node.probe)
            if fold is not None:
                from repro.engine.folded import FoldedSimpleHashJoin
                from repro.fold.fingerprint import build_side_fingerprint

                join = FoldedSimpleHashJoin(
                    op_id, name, build_child, probe_child, runtime,
                    node.condition, node.num_partitions,
                )
                join.bind_fold(fold, build_side_fingerprint(node))
                return join
            return SimpleHashJoin(
                op_id, name, build_child, probe_child, runtime,
                node.condition, node.num_partitions,
            )
        if isinstance(node, HybridHashJoinSpec):
            build_child = build(node.build)
            probe_child = build(node.probe)
            if fold is not None:
                from repro.engine.folded import FoldedHybridHashJoin
                from repro.fold.fingerprint import build_side_fingerprint

                join = FoldedHybridHashJoin(
                    op_id, name, build_child, probe_child, runtime,
                    node.condition, node.num_partitions,
                    node.memory_partitions,
                )
                join.bind_fold(fold, build_side_fingerprint(node))
                return join
            return HybridHashJoin(
                op_id, name, build_child, probe_child, runtime,
                node.condition, node.num_partitions, node.memory_partitions,
            )
        if isinstance(node, GroupAggSpec):
            child = build(node.child)
            return GroupAggregate(
                op_id, name, child, runtime, node.group_columns,
                node.agg_func, node.agg_column,
            )
        if isinstance(node, HashGroupAggSpec):
            child = build(node.child)
            return HashGroupAggregate(
                op_id, name, child, runtime, node.group_columns,
                node.agg_func, node.agg_column, node.num_partitions,
            )
        if isinstance(node, DupElimSpec):
            child = build(node.child)
            return DuplicateEliminate(op_id, name, child, runtime)
        raise TypeError(f"unknown plan spec node {type(node).__name__}")

    return build(spec)
