"""Projection: a stateless column-selecting map operator."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.engine.base import Operator, Row
from repro.engine.runtime import Runtime


class Project(Operator):
    """Keeps the listed column indexes of each child row, in order."""

    STATEFUL = False

    def __init__(
        self,
        op_id: int,
        name: str,
        child: Operator,
        runtime: Runtime,
        columns: Sequence[int],
    ):
        super().__init__(
            op_id, name, [child], runtime, child.schema.project(columns)
        )
        self.columns = tuple(columns)
        self.REWINDABLE = child.REWINDABLE

    @property
    def child(self) -> Operator:
        return self.children[0]

    def _next(self) -> Optional[Row]:
        row = self.child.next()
        if row is None:
            return None
        self.charge_cpu(1)
        return tuple(row[i] for i in self.columns)

    def rewind(self) -> None:
        self.child.rewind()

    def _resume_from_dump(self, entry, payload, ctx) -> None:
        pass

    def _resume_goback(self, entry, ctx) -> None:
        pass
