"""Projection: a stateless column-selecting map operator."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.engine.base import Operator, Row
from repro.engine.filter import Filter
from repro.engine.runtime import Runtime
from repro.engine.scan import TableScan
from repro.relational.expressions import compile_predicate, compile_projection
from repro.storage.disk import add_each


class Project(Operator):
    """Keeps the listed column indexes of each child row, in order."""

    STATEFUL = False

    def __init__(
        self,
        op_id: int,
        name: str,
        child: Operator,
        runtime: Runtime,
        columns: Sequence[int],
    ):
        super().__init__(
            op_id, name, [child], runtime, child.schema.project(columns)
        )
        self.columns = tuple(columns)
        self.REWINDABLE = child.REWINDABLE

    @property
    def child(self) -> Operator:
        return self.children[0]

    def _next(self) -> Optional[Row]:
        row = self.child.next()
        if row is None:
            return None
        self.charge_cpu(1)
        return tuple(row[i] for i in self.columns)

    def rewind(self) -> None:
        self.child.rewind()

    def _next_batch_fast(self, max_rows: int) -> list:
        """Pipeline fusion for the scan(-filter)-project chain.

        The projection's two per-row CPU charges interleave with the
        child's page reads in the row path, so they cannot simply be
        appended after a child batch; instead the whole chain runs as one
        page-segment loop (same structure as ``Filter._next_batch_fast``)
        and each segment's same-constant charges fold into one bulk
        charge. Chains this fusion doesn't know fall back to the default
        per-row fast loop, which is exact for any child.
        """
        if self._pending_rows:
            return super()._next_batch_fast(max_rows)
        child = self.child
        filter_op = None
        scan = None
        if isinstance(child, TableScan) and not child._pending_rows:
            scan = child
        elif isinstance(child, Filter) and not child._pending_rows:
            gchild = child.child
            if (
                isinstance(gchild, TableScan)
                and not gchild._pending_rows
                and not (
                    self.rt.config.contract_migration
                    and child._has_open_contracts()
                )
            ):
                filter_op = child
                scan = gchild
        if scan is None:
            return super()._next_batch_fast(max_rows)
        disk = self.rt.disk
        cursor = scan._cursor
        project = compile_projection(self.columns)
        pred = compile_predicate(filter_op.predicate) if filter_op else None
        charge_each = disk.charge_cpu_tuples_each
        c = disk.cost_model.cpu_tuple_cost
        out: list = []
        append = out.append
        need = max_rows
        while need > 0:
            before = disk.query_now
            page = cursor.current_page()
            after = disk.query_now
            if after != before:
                scan.work += after - before
            if page is None:
                break
            slot = cursor.position().slot
            limit = len(page)
            i = slot
            matched = 0
            if pred is None:
                take = min(limit - slot, need)
                out.extend([project(r) for r in page[slot:slot + take]])
                i = slot + take
                matched = take
            else:
                while i < limit:
                    row = page[i]
                    i += 1
                    if pred(row):
                        append(project(row))
                        matched += 1
                        if matched == need:
                            break
            examined = i - slot
            cursor.advance(examined)
            if pred is None:
                # scan wrapper + project examine + project wrapper per row
                charge_each(3 * examined)
            else:
                # per examined row: scan wrapper + filter examine; per
                # match: filter wrapper + project examine + project wrapper
                charge_each(2 * examined + 3 * matched)
            scan.work = add_each(scan.work, c, examined)
            scan.tuples_emitted += examined
            if filter_op is not None:
                filter_op.work = add_each(filter_op.work, c, examined + matched)
                filter_op.tuples_emitted += matched
            self.work = add_each(self.work, c, 2 * matched)
            self.tuples_emitted += matched
            need -= matched
        return out

    def _resume_from_dump(self, entry, payload, ctx) -> None:
        pass

    def _resume_goback(self, entry, ctx) -> None:
        pass
