"""Two-phase (external) merge sort (Section 4).

Phase 1 ("build") repeatedly fills an in-memory sort buffer from the
child, sorts it, and writes the sorted run to disk as a *sublist*. The
sublists are disk-resident state: written once, never modified — the
paper's *materialization point* — so they survive suspend/resume and only
their handles travel in checkpoints and control state.

Phase 2 ("merge") streams the minimum-head tuple across one buffered
block per sublist.

Checkpoint behaviour:

- proactive checkpoints at every sublist boundary (buffer empty) and at
  the phase boundary;
- the operator produces no output during phase 1, so contract migration
  (Section 3.4 — "crucial" for sort, per the paper) keeps the parent's
  contract pinned to the latest checkpoint, meaning a GoBack never redoes
  more than the current partial buffer fill;
- during phase 2 the sort behaves like a table scan: suspend records the
  merge cursors; GoBack repositions them directly (skipping, no
  re-merging).
"""

from __future__ import annotations

import heapq
import math
from typing import Optional, Sequence

from repro.common.errors import ContractError
from repro.core.suspended_query import OpSuspendEntry
from repro.engine.base import Operator, Row
from repro.engine.runtime import ResumeContext, Runtime
from repro.storage.disk import add_each
from repro.storage.statefile import DumpHandle

PHASE_BUILD = "build"
PHASE_MERGE = "merge"


class SublistReader:
    """Cursor over one sorted sublist with per-block read charging."""

    def __init__(self, op: Operator, handle: DumpHandle, tuples_per_page: int):
        self._op = op
        self.handle = handle
        self.tuples_per_page = tuples_per_page
        self.index = 0
        self._rows: Optional[list] = None
        self._loaded_page = -1

    def seek(self, index: int) -> None:
        self.index = index
        self._loaded_page = -1

    def peek(self) -> Optional[Row]:
        if self._rows is None:
            # The payload object is fetched once; page charges are applied
            # per block as the cursor crosses page boundaries.
            self._rows = self._op.rt.store.peek(self.handle)
        if self.index >= len(self._rows):
            return None
        page = self.index // self.tuples_per_page
        if page != self._loaded_page:
            with self._op.attribute_work():
                self._op.rt.disk.read_pages(1)
            self._loaded_page = page
        return self._rows[self.index]

    def advance(self) -> None:
        self.index += 1


class TwoPhaseMergeSort(Operator):
    """External sort over ``key_columns`` with a bounded sort buffer."""

    STATEFUL = True
    REWINDABLE = True  # merge phase can restart from the sublist heads

    def __init__(
        self,
        op_id: int,
        name: str,
        child: Operator,
        runtime: Runtime,
        key_columns: Sequence[int],
        buffer_tuples: int,
    ):
        if buffer_tuples <= 0:
            raise ValueError("buffer_tuples must be positive")
        super().__init__(op_id, name, [child], runtime, child.schema)
        self.key_columns = tuple(key_columns)
        self.buffer_tuples = buffer_tuples
        self.phase = PHASE_BUILD
        self.sort_buffer: list[Row] = []
        self.sublists: list[DumpHandle] = []
        self.child_exhausted = False
        self._readers: list[SublistReader] = []

    @property
    def child(self) -> Operator:
        return self.children[0]

    def sort_key(self, row: Row):
        return tuple(row[i] for i in self.key_columns)

    def buffer_fill(self) -> int:
        """Tuples in the sort buffer (suspend-trigger hook)."""
        return len(self.sort_buffer)

    @property
    def tuples_per_page(self) -> int:
        return self.schema.tuples_per_page(self.rt.disk.cost_model.page_bytes)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _next(self) -> Optional[Row]:
        if self.phase == PHASE_BUILD:
            self._run_build()
        return self._merge_next()

    def _run_build(self) -> None:
        while not self.child_exhausted:
            while (
                len(self.sort_buffer) < self.buffer_tuples
                and not self.child_exhausted
            ):
                row = self.child.next()
                if row is None:
                    self.child_exhausted = True
                    break
                self.sort_buffer.append(row)
                self.charge_cpu(1)
            if self.sort_buffer:
                self._spill_sublist()
                # Buffer empty: minimal-heap-state point.
                self.make_checkpoint()
        self._enter_merge_phase()

    def _spill_sublist(self) -> None:
        rows = sorted(self.sort_buffer, key=self.sort_key)
        self.charge_cpu(len(rows))  # in-memory sorting work
        key = self.rt.store.fresh_key(f"{self.name}_sublist")
        with self.attribute_work():
            handle = self.rt.store.dump_tuples(key, rows, self.tuples_per_page)
        self.sublists.append(handle)
        self.sort_buffer = []

    def _enter_merge_phase(self) -> None:
        self.phase = PHASE_MERGE
        self._init_readers([0] * len(self.sublists))
        # The phase boundary is itself a minimal-heap-state point (all
        # state is on disk) and a materialization point. Readers are
        # initialized first so migrated contracts record valid positions.
        self.make_checkpoint()

    def _init_readers(self, positions: Sequence[int]) -> None:
        self._readers = [
            SublistReader(self, handle, self.tuples_per_page)
            for handle in self.sublists
        ]
        for reader, pos in zip(self._readers, positions):
            reader.seek(pos)

    def _merge_next(self) -> Optional[Row]:
        best = None
        best_reader = None
        for reader in self._readers:
            row = reader.peek()
            if row is None:
                continue
            key = self.sort_key(row)
            if best is None or key < best:
                best = key
                best_reader = reader
        if best_reader is None:
            return None
        row = best_reader.peek()
        best_reader.advance()
        self.charge_cpu(1)
        return row

    def _next_batch_fast(self, max_rows: int) -> list:
        """Vectorized merge drain with cached sublist heads.

        The row path recomputes every reader's head key per output row;
        here heads are cached and only the advanced reader is re-peeked.
        A re-peek that crosses a sublist page boundary charges its page
        read exactly where the row path does (at the top of the next
        row's scan), with the pending same-constant CPU run flushed first
        so the charge order across I/O events is identical.
        """
        if self._pending_rows:
            return super()._next_batch_fast(max_rows)
        if self.phase == PHASE_BUILD:
            self._run_build()  # row-exact: per-row pulls, spill, checkpoints
        disk = self.rt.disk
        c = disk.cost_model.cpu_tuple_cost
        charge_each = disk.charge_cpu_tuples_each
        readers = self._readers
        sort_key = self.sort_key
        out: list = []
        append = out.append
        crun = 0
        heads: list = []
        for r in readers:
            row = r.peek()  # may charge a page read; no CPU run pending yet
            heads.append((sort_key(row), row) if row is not None else None)
        dirty = -1
        need = max_rows
        while need > 0:
            if dirty >= 0:
                r = readers[dirty]
                if crun and (
                    r._rows is None
                    or (r.index // r.tuples_per_page) != r._loaded_page
                ):
                    charge_each(crun)
                    self.work = add_each(self.work, c, crun)
                    crun = 0
                row = r.peek()
                heads[dirty] = (sort_key(row), row) if row is not None else None
                dirty = -1
            best = None
            best_i = -1
            for i, h in enumerate(heads):
                if h is not None and (best is None or h[0] < best[0]):
                    best = h
                    best_i = i
            if best_i < 0:
                break
            append(best[1])
            readers[best_i].advance()
            dirty = best_i
            crun += 2  # the merge charge + the wrapper charge
            self.tuples_emitted += 1
            need -= 1
        if crun:
            charge_each(crun)
            self.work = add_each(self.work, c, crun)
        return out

    def rewind(self) -> None:
        if self.phase == PHASE_BUILD:
            # Nothing has been emitted yet (the build runs on first
            # next()); restarting the output pass is a no-op.
            return
        self._init_readers([0] * len(self.sublists))

    # ------------------------------------------------------------------
    # State introspection
    # ------------------------------------------------------------------
    def heap_tuples(self) -> int:
        return len(self.sort_buffer)

    def heap_pages(self) -> int:
        if self.phase == PHASE_BUILD and self.sort_buffer:
            return math.ceil(len(self.sort_buffer) / self.tuples_per_page)
        return 0  # merge-phase blocks are re-read from the sublists

    def control_state(self) -> dict:
        if self.phase == PHASE_BUILD:
            return {
                "phase": PHASE_BUILD,
                "fill": len(self.sort_buffer),
                "num_sublists": len(self.sublists),
                "sublists": list(self.sublists),
                "child_exhausted": self.child_exhausted,
            }
        return {
            "phase": PHASE_MERGE,
            "sublists": list(self.sublists),
            "positions": [r.index for r in self._readers],
        }

    def _checkpoint_payload(self) -> dict:
        return {
            "phase": self.phase,
            "sublists": list(self.sublists),
            "child_exhausted": self.child_exhausted,
        }

    def _heap_state_payload(self):
        if self.phase == PHASE_BUILD:
            return list(self.sort_buffer)
        return None

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------
    def _resume_from_dump(self, entry: OpSuspendEntry, payload, ctx) -> None:
        control = entry.target_control
        self.sublists = list(control["sublists"])
        if control["phase"] == PHASE_BUILD:
            self.phase = PHASE_BUILD
            self.sort_buffer = list(payload or [])[: control["fill"]]
            self.child_exhausted = control["child_exhausted"]
        else:
            self.phase = PHASE_MERGE
            self.sort_buffer = []
            self.child_exhausted = True
            self._init_readers(control["positions"])

    def _resume_goback(self, entry: OpSuspendEntry, ctx: ResumeContext) -> None:
        ckpt = entry.ckpt_payload or {}
        target = entry.target_control
        if ckpt.get("__full_state__"):
            control = ckpt["control"]
            self.sort_buffer = list(ckpt["heap"] or [])
            self.sublists = list(control["sublists"])
            self.phase = control["phase"]
            self.child_exhausted = control.get(
                "child_exhausted", self.phase == PHASE_MERGE
            )
        else:
            self.sublists = list(ckpt.get("sublists", []))
            self.child_exhausted = ckpt.get("child_exhausted", False)
            self.sort_buffer = []
            self.phase = PHASE_BUILD

        if self.phase == PHASE_MERGE:
            # Full-state checkpoint taken in the merge phase: only the
            # cursors move between checkpoint and target.
            self._init_readers(target["positions"])
            return
        if target["phase"] == PHASE_BUILD:
            # Roll forward: regenerate any sublists created after the
            # checkpoint (their old disk copies are orphaned), then refill
            # the partial buffer. The child was repositioned by its entry.
            while len(self.sublists) < target["num_sublists"]:
                self._refill_buffer(self.buffer_tuples)
                if not self.sort_buffer:
                    raise ContractError(
                        f"{self.name}: child exhausted while regenerating "
                        f"sublist {len(self.sublists) + 1} of "
                        f"{target['num_sublists']}"
                    )
                self._spill_sublist()
            self._refill_buffer(target["fill"])
            self.child_exhausted = target["child_exhausted"]
        else:
            # Target is in the merge phase. With contract migration the
            # fulfilling checkpoint is the phase boundary, so this loop is
            # a no-op and resume just repositions the merge cursors
            # (skipping); without migration the whole build is redone.
            while not self.child_exhausted:
                self._refill_buffer(self.buffer_tuples)
                if self.sort_buffer:
                    self._spill_sublist()
            if len(self.sublists) != len(target["positions"]):
                raise ContractError(
                    f"{self.name}: rebuilt {len(self.sublists)} sublists but "
                    f"the target records {len(target['positions'])}"
                )
            self.phase = PHASE_MERGE
            self._init_readers(target["positions"])

    def _refill_buffer(self, up_to: int) -> None:
        while len(self.sort_buffer) < up_to and not self.child_exhausted:
            row = self.child.next()
            if row is None:
                self.child_exhausted = True
                break
            self.sort_buffer.append(row)
            self.charge_cpu(1)

    # ------------------------------------------------------------------
    # Cost hints
    # ------------------------------------------------------------------
    def estimate_dump_resume_cost(self) -> float:
        if self.phase == PHASE_BUILD:
            return self.rt.disk.cost_of_page_reads(max(1, self.heap_pages()))
        # Merge phase: re-read one block per sublist to reposition.
        return self.rt.disk.cost_of_page_reads(max(1, len(self.sublists)))

    def estimate_goback_resume_cost(self, link) -> float:
        target = link.target_control
        if target is not None and target.get("phase") == PHASE_MERGE:
            ckpt = link.ckpt_payload or {}
            if ckpt.get("child_exhausted", False) or ckpt.get(
                "phase"
            ) == PHASE_MERGE:
                # Repositioning merge cursors only: one block per sublist.
                return self.rt.disk.cost_of_page_reads(
                    max(1, len(target["positions"]))
                )
        return super().estimate_goback_resume_cost(link)
