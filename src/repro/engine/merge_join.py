"""Merge join over two sorted inputs, using value packets (Section 4).

The operator pulls batches of equal-key tuples ("value packets") from both
children and emits their cross product. The current packets plus one
lookahead tuple per side are the heap state; the control state is the
cursor pair, the per-child consumed-tuple counts, and the state-machine
position — everything GoBack resume needs to roll the packets forward
from a checkpoint.

The operator is written as an explicit restartable state machine
(advance → collect_left → collect_right → emit) because a suspend
exception can unwind out of any child ``next()`` call: every transition
leaves the in-memory state consistent, so execution (or a GoBack
roll-forward) can continue exactly where it stopped.

Minimal-heap-state points occur when a packet pair is exhausted; the
operator checkpoints there proactively. Both children are heap children:
their GoBack positions come from the fulfilling checkpoint's contracts,
and the roll-forward re-consumes exactly (consumed_now - consumed_at_ckpt)
tuples per side while skipping the cross-product outputs before the target
cursors (Section 3.3 skipping).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.common.errors import ContractError
from repro.core.suspended_query import OpSuspendEntry
from repro.engine.base import Operator, Row
from repro.engine.runtime import ResumeContext, Runtime
from repro.relational.expressions import EquiJoinCondition
from repro.storage.disk import add_each

STATE_ADVANCE = "advance"
STATE_COLLECT_LEFT = "collect_left"
STATE_COLLECT_RIGHT = "collect_right"
STATE_EMIT = "emit"
STATE_DONE = "done"


class MergeJoin(Operator):
    """Sort-merge join; both inputs must arrive sorted on the join keys."""

    STATEFUL = True

    def __init__(
        self,
        op_id: int,
        name: str,
        left: Operator,
        right: Operator,
        runtime: Runtime,
        condition: EquiJoinCondition,
    ):
        super().__init__(
            op_id, name, [left, right], runtime, left.schema.concat(right.schema)
        )
        self.condition = condition
        self.state = STATE_ADVANCE
        self.collect_key = None
        self.left_packet: list[Row] = []
        self.right_packet: list[Row] = []
        self.l_idx = 0
        self.r_idx = 0
        self.l_next: Optional[Row] = None
        self.r_next: Optional[Row] = None
        self.l_eof = False
        self.r_eof = False
        self.l_consumed = 0
        self.r_consumed = 0

    @property
    def left(self) -> Operator:
        return self.children[0]

    @property
    def right(self) -> Operator:
        return self.children[1]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _pull_left(self) -> None:
        row = self.left.next()
        self.l_next = row
        if row is None:
            self.l_eof = True
        else:
            self.l_consumed += 1
            self.charge_cpu(1)

    def _pull_right(self) -> None:
        row = self.right.next()
        self.r_next = row
        if row is None:
            self.r_eof = True
        else:
            self.r_consumed += 1
            self.charge_cpu(1)

    def _next(self) -> Optional[Row]:
        while True:
            if self.state == STATE_DONE:
                return None
            if self.state == STATE_EMIT:
                row = self._emit_step()
                if row is not None:
                    return row
                # Packet pair exhausted: minimal-heap-state point.
                self.left_packet = []
                self.right_packet = []
                self.l_idx = 0
                self.r_idx = 0
                self.state = STATE_ADVANCE
                self.make_checkpoint()
            if self.state == STATE_ADVANCE:
                if not self._advance():
                    self.state = STATE_DONE
                    return None
                self.state = STATE_COLLECT_LEFT
            if self.state == STATE_COLLECT_LEFT:
                self._collect_side(left_side=True)
                self.state = STATE_COLLECT_RIGHT
            if self.state == STATE_COLLECT_RIGHT:
                self._collect_side(left_side=False)
                self.l_idx = 0
                self.r_idx = 0
                self.state = STATE_EMIT

    def _advance(self) -> bool:
        """Move both lookaheads to the next matching key; False at EOF.

        A lookahead of None means "needs a pull" unless the corresponding
        eof flag says the child is exhausted. Non-matching tuples are
        discarded by nulling the lookahead, so every child pull happens
        with consistent state (restartability).
        """
        while True:
            if self.l_next is None:
                if self.l_eof:
                    return False
                self._pull_left()
                if self.l_next is None:
                    return False
            if self.r_next is None:
                if self.r_eof:
                    return False
                self._pull_right()
                if self.r_next is None:
                    return False
            lkey = self.condition.left_key(self.l_next)
            rkey = self.condition.right_key(self.r_next)
            if lkey < rkey:
                self.l_next = None
            elif lkey > rkey:
                self.r_next = None
            else:
                self.collect_key = lkey
                return True

    def _collect_side(self, left_side: bool) -> None:
        """Collect the value packet for ``collect_key`` on one side.

        Restartable: each appended tuple nulls the lookahead before the
        next pull, so a suspend landing inside the pull resumes cleanly.
        """
        while True:
            lookahead = self.l_next if left_side else self.r_next
            if lookahead is None:
                if (self.l_eof if left_side else self.r_eof):
                    return
                if left_side:
                    self._pull_left()
                    lookahead = self.l_next
                else:
                    self._pull_right()
                    lookahead = self.r_next
                if lookahead is None:
                    return  # child exhausted
            key = (
                self.condition.left_key(lookahead)
                if left_side
                else self.condition.right_key(lookahead)
            )
            if key != self.collect_key:
                return  # lookahead stays for the next packet
            if left_side:
                self.left_packet.append(lookahead)
                self.l_next = None
            else:
                self.right_packet.append(lookahead)
                self.r_next = None

    def _emit_step(self) -> Optional[Row]:
        if self.l_idx >= len(self.left_packet):
            return None
        row = self.left_packet[self.l_idx] + self.right_packet[self.r_idx]
        self.r_idx += 1
        if self.r_idx >= len(self.right_packet):
            self.r_idx = 0
            self.l_idx += 1
        return row

    def _next_batch_fast(self, max_rows: int) -> list:
        """Vectorized cross-product drain of the current packet pair.

        Emitting charges only the per-row wrapper CPU constant, so a run
        folds into one bulk charge. Packet exhaustion ends a non-empty
        batch (the minimal-heap-state checkpoint then fires at the start
        of the next call, at the row path's exact instant); advance and
        collect steps pull children with interleaved charges, so they run
        through the row-exact ``_next``.
        """
        if self._pending_rows:
            return super()._next_batch_fast(max_rows)
        disk = self.rt.disk
        c = disk.cost_model.cpu_tuple_cost
        out: list = []
        need = max_rows
        while need > 0:
            if self.state == STATE_EMIT:
                lp = self.left_packet
                rp = self.right_packet
                ln, rn = len(lp), len(rp)
                l_idx, r_idx = self.l_idx, self.r_idx
                remaining = (ln - l_idx) * rn - r_idx
                if remaining > 0:
                    take = min(remaining, need)
                    k = 0
                    while k < take:
                        row_l = lp[l_idx]
                        run = min(rn - r_idx, take - k)
                        out.extend(
                            [row_l + rp[j] for j in range(r_idx, r_idx + run)]
                        )
                        k += run
                        r_idx += run
                        if r_idx >= rn:
                            r_idx = 0
                            l_idx += 1
                    self.l_idx = l_idx
                    self.r_idx = r_idx
                    self.tuples_emitted += take
                    disk.charge_cpu_tuples_each(take)
                    self.work = add_each(self.work, c, take)
                    need -= take
                    continue
                if out:
                    break
                # Packet pair exhausted: minimal-heap-state point (the
                # row path's transition, verbatim).
                self.left_packet = []
                self.right_packet = []
                self.l_idx = 0
                self.r_idx = 0
                self.state = STATE_ADVANCE
                self.make_checkpoint()
            if self.state == STATE_DONE:
                break
            row = self._next()  # advance/collect: row-exact child pulls
            if row is None:
                break
            out.append(row)
            self.tuples_emitted += 1
            self.work += disk.charge_cpu_tuples(1)
            need -= 1
        return out

    # ------------------------------------------------------------------
    # Generalized per-child suspend plans (Section 3.4)
    # ------------------------------------------------------------------
    def do_suspend(self, ctx) -> None:
        decision = ctx.plan.decision(self.op_id)
        if (
            decision.strategy.value == "goback"
            and decision.dump_children
        ):
            ckpt = ctx.graph.latest_checkpoint(self.op_id)
            self._suspend_mixed(ctx, ckpt, contract=None, decision=decision)
            return
        super().do_suspend(ctx)

    def do_suspend_to(self, contract, ctx) -> None:
        decision = ctx.plan.decision(self.op_id)
        if (
            decision.strategy.value == "goback"
            and decision.dump_children
        ):
            latest = ctx.graph.latest_checkpoint(self.op_id)
            if latest is None or latest.ckpt_id != contract.child_ckpt_id:
                raise ContractError(
                    f"{self.name}: per-child dump requires the enforced "
                    "contract to target the latest checkpoint (same "
                    "packet episode)"
                )
            ckpt = ctx.graph.checkpoint(contract.child_ckpt_id)
            self._suspend_mixed(ctx, ckpt, contract=contract, decision=decision)
            return
        super().do_suspend_to(contract, ctx)

    def _suspend_mixed(self, ctx, ckpt, contract, decision) -> None:
        """GoBack overall, but dump the packets of the listed children.

        Dumped-side children keep their current positions (they receive a
        plain Suspend()); regenerated-side children suspend to the
        fulfilling checkpoint's contracts as in a normal GoBack.
        """
        from repro.core.suspended_query import KIND_GOBACK, OpSuspendEntry

        target = (
            dict(contract.control) if contract is not None
            else self.control_state()
        )
        dumped = {}
        if self.left.op_id in decision.dump_children:
            dumped["left_packet"] = list(self.left_packet)
        if self.right.op_id in decision.dump_children:
            dumped["right_packet"] = list(self.right_packet)
        rows = sum(len(v) for v in dumped.values())
        per_page = self.schema.tuples_per_page(
            self.rt.disk.cost_model.page_bytes
        )
        handle = None
        if rows:
            key = ctx.store.fresh_key(f"dump_{self.name}_partial")
            with self.attribute_work():
                handle = ctx.store.dump(
                    key, dumped, math.ceil(rows / per_page)
                )
        entry = OpSuspendEntry(
            op_id=self.op_id,
            kind=KIND_GOBACK,
            target_control=target,
            ckpt_payload=dict(ckpt.payload),
            dump_handle=handle,
            saved_rows=list(contract.saved_rows) if contract else [],
        )
        ctx.sq.add_entry(entry)
        for child in self.children:
            if child.op_id in decision.dump_children:
                child.do_suspend(ctx)
            else:
                child_contract = ctx.graph.contract_from(ckpt, child.op_id)
                child.do_suspend_to(child_contract, ctx)

    # ------------------------------------------------------------------
    # State introspection
    # ------------------------------------------------------------------
    def heap_tuples(self) -> int:
        return len(self.left_packet) + len(self.right_packet)

    def heap_pages(self) -> int:
        per_page = self.schema.tuples_per_page(
            self.rt.disk.cost_model.page_bytes
        )
        total = self.heap_tuples()
        return math.ceil(total / per_page) if total else 0

    def control_state(self) -> dict:
        return {
            "state": self.state,
            "collect_key": self.collect_key,
            "l_consumed": self.l_consumed,
            "r_consumed": self.r_consumed,
            "l_len": len(self.left_packet),
            "r_len": len(self.right_packet),
            "l_idx": self.l_idx,
            "r_idx": self.r_idx,
            "l_next": self.l_next,
            "r_next": self.r_next,
            "l_eof": self.l_eof,
            "r_eof": self.r_eof,
        }

    def _checkpoint_payload(self) -> dict:
        # At a minimal-heap-state point the packets are empty; only the
        # consumed counts (baseline for roll-forward) and lookahead remain.
        return {
            "l_consumed": self.l_consumed,
            "r_consumed": self.r_consumed,
            "l_next": self.l_next,
            "r_next": self.r_next,
            "l_eof": self.l_eof,
            "r_eof": self.r_eof,
        }

    def _heap_state_payload(self):
        return {
            "left_packet": list(self.left_packet),
            "right_packet": list(self.right_packet),
        }

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------
    def _restore_control(self, control: dict) -> None:
        self.state = control["state"]
        self.collect_key = control["collect_key"]
        self.l_idx = control["l_idx"]
        self.r_idx = control["r_idx"]
        self.l_next = control["l_next"]
        self.r_next = control["r_next"]
        self.l_eof = control["l_eof"]
        self.r_eof = control["r_eof"]
        self.l_consumed = control["l_consumed"]
        self.r_consumed = control["r_consumed"]

    def _resume_from_dump(self, entry: OpSuspendEntry, payload, ctx) -> None:
        target = entry.target_control
        current = entry.current_control or target
        payload = payload or {"left_packet": [], "right_packet": []}
        # The dumped packets and consumption state reflect the suspend
        # point; the output position restarts from the contract point.
        self.left_packet = list(payload["left_packet"])[: current["l_len"]]
        self.right_packet = list(payload["right_packet"])[: current["r_len"]]
        self._restore_control(current)
        if target["state"] == STATE_EMIT:
            self.l_idx = target["l_idx"]
            self.r_idx = target["r_idx"]
        else:
            # The contract predates this packet pair's output entirely:
            # replay the whole cross product.
            self.l_idx = 0
            self.r_idx = 0

    def _resume_goback(self, entry: OpSuspendEntry, ctx: ResumeContext) -> None:
        """Re-consume child tuples from the checkpoint to the target counts,
        keeping only what is needed to rebuild the current packets."""
        ckpt = entry.ckpt_payload or {
            "l_consumed": 0,
            "r_consumed": 0,
            "l_next": None,
            "r_next": None,
            "l_eof": False,
            "r_eof": False,
        }
        seed_left: list[Row] = []
        seed_right: list[Row] = []
        if ckpt.get("__full_state__"):
            heap = ckpt["heap"] or {}
            seed_left = list(heap.get("left_packet", []))
            seed_right = list(heap.get("right_packet", []))
            ckpt = ckpt["control"]
        target = entry.target_control
        self.l_consumed = ckpt["l_consumed"]
        self.r_consumed = ckpt["r_consumed"]
        self.l_next = ckpt["l_next"]
        self.r_next = ckpt["r_next"]
        self.l_eof = ckpt["l_eof"]
        self.r_eof = ckpt["r_eof"]

        # Per-child dumps (Section 3.4): sides whose packet was written
        # to disk are reloaded instead of regenerated; their children
        # kept their positions, so no roll-forward pulls happen there.
        dumped = {}
        if entry.dump_handle is not None:
            with self.attribute_work():
                dumped = ctx.store.load(entry.dump_handle)

        if "left_packet" in dumped:
            self.left_packet = list(dumped["left_packet"])[: target["l_len"]]
        else:
            self.left_packet = self._roll_forward_side(
                left_side=True,
                seed=seed_left,
                lookahead=self.l_next,
                consumed_target=target["l_consumed"],
                packet_len=target["l_len"],
                target_lookahead=target["l_next"],
            )
        if "right_packet" in dumped:
            self.right_packet = list(dumped["right_packet"])[: target["r_len"]]
        else:
            self.right_packet = self._roll_forward_side(
                left_side=False,
                seed=seed_right,
                lookahead=self.r_next,
                consumed_target=target["r_consumed"],
                packet_len=target["r_len"],
                target_lookahead=target["r_next"],
            )
        self._restore_control(target)

    def _roll_forward_side(
        self,
        left_side,
        seed,
        lookahead,
        consumed_target,
        packet_len,
        target_lookahead,
    ) -> list[Row]:
        """Re-pull one side up to the target consumed count.

        The stream of tuples seen — ``seed`` (a full-state checkpoint's
        packet, usually empty), the checkpoint lookahead (if any), and the
        re-pulled tuples — reproduces the original consumption order. If
        the target has a lookahead, the final seen tuple is it and the
        ``packet_len`` tuples before it form the packet; otherwise the
        packet is the last ``packet_len`` seen tuples.
        """
        window: list[Row] = list(seed)
        if lookahead is not None:
            window.append(lookahead)
        keep = packet_len + 1
        consumed = self.l_consumed if left_side else self.r_consumed
        while consumed < consumed_target:
            if left_side:
                self._pull_left()
                row = self.l_next
            else:
                self._pull_right()
                row = self.r_next
            consumed += 1
            if row is None:
                raise ContractError(
                    f"{self.name}: child exhausted during GoBack roll-forward"
                )
            window.append(row)
            if len(window) > keep:
                window.pop(0)
        packet_source = window if target_lookahead is None else window[:-1]
        if len(packet_source) < packet_len:
            raise ContractError(
                f"{self.name}: roll-forward produced only "
                f"{len(packet_source)} packet tuples, target {packet_len}"
            )
        return packet_source[-packet_len:] if packet_len else []
