"""Filter operator with reactive checkpointing and contract migration.

A filter is stateless: it signs contracts by creating a reactive
checkpoint (which in turn contracts with its child) and propagates any
chain it is part of. The contract-migration optimization of Section 3.4
(footnote 3) is implemented: after signing a contract, when the filter
finds its first matching tuple it saves that single tuple inside the
contract and re-points the contract at a fresh reactive checkpoint taken
*after* the match — so a later GoBack does not re-read the non-matching
prefix from the child.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.base import Operator, Row
from repro.engine.runtime import Runtime
from repro.relational.expressions import Predicate
from repro.relational.schema import Schema


class Filter(Operator):
    """Passes through child rows matching a predicate."""

    STATEFUL = False

    def __init__(
        self,
        op_id: int,
        name: str,
        child: Operator,
        runtime: Runtime,
        predicate: Predicate,
    ):
        super().__init__(op_id, name, [child], runtime, child.schema)
        self.predicate = predicate
        self.REWINDABLE = child.REWINDABLE

    @property
    def child(self) -> Operator:
        return self.children[0]

    def _next(self) -> Optional[Row]:
        while True:
            row = self.child.next()
            if row is None:
                return None
            self.charge_cpu(1)
            if self.predicate.matches(row):
                if self.rt.config.contract_migration:
                    self._migrate_open_contracts(row)
                return row

    def rewind(self) -> None:
        self.child.rewind()

    def _migrate_open_contracts(self, row: Row) -> None:
        """Footnote-3 migration: save the matching tuple in any contract
        signed since the last emission and re-anchor it after the match."""
        graph = self.rt.graph
        open_contracts = [
            c
            for c in graph.contracts_of_child(self.op_id)
            if c.emitted_at_signing == self.tuples_emitted and not c.saved_rows
        ]
        if not open_contracts:
            return
        fresh = self._reactive_checkpoint()
        for contract in open_contracts:
            contract.child_ckpt_id = fresh.ckpt_id
            contract.control = self.control_state()
            contract.work_at_signing = self.work
            contract.saved_rows = [row]
        graph.prune()

    # Resume -------------------------------------------------------------
    def _resume_from_dump(self, entry, payload, ctx) -> None:
        pass  # stateless: the child holds the position

    def _resume_goback(self, entry, ctx) -> None:
        pass  # stateless: the child was repositioned by its own entry
