"""Filter operator with reactive checkpointing and contract migration.

A filter is stateless: it signs contracts by creating a reactive
checkpoint (which in turn contracts with its child) and propagates any
chain it is part of. The contract-migration optimization of Section 3.4
(footnote 3) is implemented: after signing a contract, when the filter
finds its first matching tuple it saves that single tuple inside the
contract and re-points the contract at a fresh reactive checkpoint taken
*after* the match — so a later GoBack does not re-read the non-matching
prefix from the child.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.base import Operator, Row
from repro.engine.runtime import Runtime
from repro.engine.scan import TableScan
from repro.relational.expressions import Predicate, compile_predicate
from repro.relational.schema import Schema
from repro.storage.disk import add_each


class Filter(Operator):
    """Passes through child rows matching a predicate."""

    STATEFUL = False

    def __init__(
        self,
        op_id: int,
        name: str,
        child: Operator,
        runtime: Runtime,
        predicate: Predicate,
    ):
        super().__init__(op_id, name, [child], runtime, child.schema)
        self.predicate = predicate
        self.REWINDABLE = child.REWINDABLE

    @property
    def child(self) -> Operator:
        return self.children[0]

    def _next(self) -> Optional[Row]:
        while True:
            row = self.child.next()
            if row is None:
                return None
            self.charge_cpu(1)
            if self.predicate.matches(row):
                if self.rt.config.contract_migration:
                    self._migrate_open_contracts(row)
                return row

    def rewind(self) -> None:
        self.child.rewind()

    def _has_open_contracts(self) -> bool:
        """A contract signed since the last emission could migrate on the
        next match; the fused batch loop defers to the row-exact loop
        while one exists (none can *appear* mid-batch: contracts are only
        created at checkpoints, and a batch never spans one)."""
        return any(
            c.emitted_at_signing == self.tuples_emitted and not c.saved_rows
            for c in self.rt.graph.contracts_of_child(self.op_id)
        )

    def _next_batch_fast(self, max_rows: int) -> list:
        """Scan-filter fusion: drive the child's cursor page-by-page with
        a compiled predicate instead of one ``child.next()`` per examined
        row.

        Row-path charge sequence per page: the page read, then per
        examined row one child-wrapper CPU charge plus one filter-examine
        charge, plus one filter-wrapper charge per match — everything
        after the read is the same constant, so the segment's charges fold
        into one bulk charge with identical float results.
        """
        child = self.child
        if (
            not isinstance(child, TableScan)
            or child._pending_rows
            or self._pending_rows
            or (self.rt.config.contract_migration and self._has_open_contracts())
        ):
            return super()._next_batch_fast(max_rows)
        disk = self.rt.disk
        cursor = child._cursor
        pred = compile_predicate(self.predicate)
        charge_each = disk.charge_cpu_tuples_each
        c = disk.cost_model.cpu_tuple_cost
        out: list = []
        append = out.append
        need = max_rows
        while need > 0:
            before = disk.query_now
            page = cursor.current_page()
            after = disk.query_now
            if after != before:
                child.work += after - before
            if page is None:
                break
            slot = cursor.position().slot
            limit = len(page)
            matched = 0
            i = slot
            while i < limit:
                row = page[i]
                i += 1
                if pred(row):
                    append(row)
                    matched += 1
                    if matched == need:
                        break
            examined = i - slot
            cursor.advance(examined)
            charge_each(2 * examined + matched)
            child.work = add_each(child.work, c, examined)
            child.tuples_emitted += examined
            self.work = add_each(self.work, c, examined + matched)
            self.tuples_emitted += matched
            need -= matched
        return out

    def _migrate_open_contracts(self, row: Row) -> None:
        """Footnote-3 migration: save the matching tuple in any contract
        signed since the last emission and re-anchor it after the match."""
        graph = self.rt.graph
        open_contracts = [
            c
            for c in graph.contracts_of_child(self.op_id)
            if c.emitted_at_signing == self.tuples_emitted and not c.saved_rows
        ]
        if not open_contracts:
            return
        fresh = self._reactive_checkpoint()
        for contract in open_contracts:
            contract.child_ckpt_id = fresh.ckpt_id
            contract.control = self.control_state()
            contract.work_at_signing = self.work
            contract.saved_rows = [row]
        graph.prune()

    # Resume -------------------------------------------------------------
    def _resume_from_dump(self, entry, payload, ctx) -> None:
        pass  # stateless: the child holds the position

    def _resume_goback(self, entry, ctx) -> None:
        pass  # stateless: the child was repositioned by its own entry
