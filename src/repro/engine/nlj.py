"""Block-based nested loop join (the paper's running example).

Each outer-loop iteration fills a large in-memory *outer buffer* from the
outer (left) child, then rewinds the inner (right) child and joins every
inner tuple against the buffer. The buffer is the heap state; the control
state is the fill count, the buffer cursor, and the current inner tuple
(Section 2).

Checkpoint/contract behaviour (Sections 3 and 4):

- minimal-heap-state points occur each time the buffer is discarded at the
  end of a pass; the operator checkpoints proactively there (payload is
  empty — an NLJ checkpoint "happens to contain no information",
  Example 5);
- the outer child is a *heap child*: a GoBack regenerates the buffer by
  re-pulling from the checkpoint's outer contract;
- the inner child is a *stream child*: its position at a contract point is
  captured by a nested contract, and restored directly on resume so the
  joins already performed before the target cursor are *skipped*
  (Section 3.3's skipping discussion uses exactly this operator).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.common.errors import ContractError
from repro.core.suspended_query import OpSuspendEntry
from repro.engine.base import Operator, Row
from repro.engine.runtime import ResumeContext, Runtime
from repro.relational.expressions import EquiJoinCondition, compile_join_matches
from repro.storage.disk import add_each

PHASE_FILL = "fill"
PHASE_JOIN = "join"
PHASE_DONE = "done"


class BlockNLJ(Operator):
    """Block nested-loop join with a tuple-count-bounded outer buffer."""

    STATEFUL = True

    def __init__(
        self,
        op_id: int,
        name: str,
        outer: Operator,
        inner: Operator,
        runtime: Runtime,
        condition: EquiJoinCondition,
        buffer_tuples: int,
    ):
        if buffer_tuples <= 0:
            raise ValueError("buffer_tuples must be positive")
        if not inner.REWINDABLE:
            raise ContractError(
                f"block NLJ inner child {inner.name} must be rewindable"
            )
        super().__init__(
            op_id, name, [outer, inner], runtime, outer.schema.concat(inner.schema)
        )
        self.condition = condition
        self.buffer_tuples = buffer_tuples
        self.buffer: list[Row] = []
        self.phase = PHASE_FILL
        self.cursor = 0
        self.inner_row: Optional[Row] = None
        self.outer_exhausted = False
        #: Completed join passes; lets a GoBack that restores an older
        #: checkpoint skip whole intervening passes during roll-forward.
        self.passes = 0

    @property
    def outer(self) -> Operator:
        return self.children[0]

    @property
    def inner(self) -> Operator:
        return self.children[1]

    def stream_children(self) -> list[Operator]:
        return [self.inner]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def buffer_fill(self) -> int:
        """Tuples currently in the outer buffer (suspend-trigger hook)."""
        return len(self.buffer)

    def _next(self) -> Optional[Row]:
        while True:
            if self.phase == PHASE_DONE:
                return None
            if self.phase == PHASE_FILL:
                self._fill_buffer()
                if not self.buffer:
                    self.phase = PHASE_DONE
                    return None
                self.inner.rewind()
                self.inner_row = None
                self.cursor = 0
                self.phase = PHASE_JOIN
            row = self._join_step()
            if row is not None:
                return row
            if self.phase == PHASE_JOIN:
                # Pass complete: discard the buffer. This is the
                # minimal-heap-state point.
                self.buffer = []
                self.cursor = 0
                self.inner_row = None
                self.passes += 1
                if self.outer_exhausted:
                    self.phase = PHASE_DONE
                    return None
                self.make_checkpoint()
                self.phase = PHASE_FILL

    def _next_batch_fast(self, max_rows: int) -> list:
        """Vectorized inner loop: compiled join condition, hoisted buffer
        scan, and same-constant CPU charges folded between inner pulls.

        Inner pulls (which may read pages) flush the pending CPU run
        first, keeping the charge order across I/O events identical to
        the row path. A pass boundary ends a non-empty batch with the
        state of the last emitted row persisted — the tail scan and the
        exhausted inner pull are chargeless and side-effect-free, so the
        next call replays them and fires the end-of-pass checkpoint at
        the row path's exact instant.
        """
        if self._pending_rows:
            return super()._next_batch_fast(max_rows)
        disk = self.rt.disk
        c = disk.cost_model.cpu_tuple_cost
        charge_each = disk.charge_cpu_tuples_each
        matches = compile_join_matches(self.condition)
        out: list = []
        append = out.append
        need = max_rows
        crun = 0
        while need > 0:
            if self.phase == PHASE_DONE:
                break
            if self.phase == PHASE_FILL:
                if crun:
                    charge_each(crun)
                    self.work = add_each(self.work, c, crun)
                    crun = 0
                self._fill_buffer()  # row-exact outer pulls
                if not self.buffer:
                    self.phase = PHASE_DONE
                    break
                self.inner.rewind()
                self.inner_row = None
                self.cursor = 0
                self.phase = PHASE_JOIN
            buffer = self.buffer
            nbuf = len(buffer)
            inner_next = self.inner.next
            inner_row = self.inner_row
            cursor = self.cursor
            last_cursor = cursor
            last_inner = inner_row
            pass_done = False
            while True:
                if inner_row is None:
                    if crun:
                        charge_each(crun)
                        self.work = add_each(self.work, c, crun)
                        crun = 0
                    nxt = inner_next()
                    if nxt is None:
                        pass_done = True
                        break
                    crun += 1  # the row path's inner-consume charge
                    inner_row = nxt
                    cursor = 0
                while cursor < nbuf:
                    outer_row = buffer[cursor]
                    cursor += 1
                    if matches(outer_row, inner_row):
                        append(outer_row + inner_row)
                        self.tuples_emitted += 1
                        crun += 1  # the wrapper charge
                        need -= 1
                        last_cursor = cursor
                        last_inner = inner_row
                        if need == 0:
                            break
                if need == 0:
                    break
                if cursor >= nbuf:
                    inner_row = None
            if pass_done and out:
                # Rows were produced this batch (necessarily from this
                # pass: any earlier boundary ended the batch); persist the
                # post-last-emit state and let the next call replay the
                # chargeless tail and run the boundary transition.
                self.inner_row = last_inner
                self.cursor = last_cursor
                break
            self.inner_row = inner_row
            self.cursor = cursor
            if pass_done:
                # The row path's end-of-pass transition, verbatim (crun is
                # zero: it was flushed before the exhausted inner pull).
                self.buffer = []
                self.cursor = 0
                self.inner_row = None
                self.passes += 1
                if self.outer_exhausted:
                    self.phase = PHASE_DONE
                    break
                self.make_checkpoint()
                self.phase = PHASE_FILL
                continue
            break  # need == 0
        if crun:
            charge_each(crun)
            self.work = add_each(self.work, c, crun)
        return out

    def _fill_buffer(self) -> None:
        while len(self.buffer) < self.buffer_tuples and not self.outer_exhausted:
            row = self.outer.next()
            if row is None:
                self.outer_exhausted = True
                break
            self.buffer.append(row)
            self.charge_cpu(1)

    def _join_step(self) -> Optional[Row]:
        """Produce the next join output of the current pass, or None when
        the pass is exhausted (leaving phase untouched)."""
        while True:
            if self.inner_row is None:
                inner = self.inner.next()
                if inner is None:
                    return None  # pass exhausted
                self.charge_cpu(1)
                self.inner_row = inner
                self.cursor = 0
            while self.cursor < len(self.buffer):
                outer_row = self.buffer[self.cursor]
                self.cursor += 1
                if self.condition.matches(outer_row, self.inner_row):
                    return outer_row + self.inner_row
            self.inner_row = None

    # ------------------------------------------------------------------
    # State introspection
    # ------------------------------------------------------------------
    def heap_tuples(self) -> int:
        return len(self.buffer)

    def heap_pages(self) -> int:
        per_page = self.outer.schema.tuples_per_page(
            self.rt.disk.cost_model.page_bytes
        )
        return math.ceil(len(self.buffer) / per_page) if self.buffer else 0

    def control_state(self) -> dict:
        return {
            "phase": self.phase,
            "fill": len(self.buffer),
            "cursor": self.cursor,
            "inner_row": self.inner_row,
            "outer_exhausted": self.outer_exhausted,
            "passes": self.passes,
        }

    def _checkpoint_payload(self) -> dict:
        # At minimal-heap-state points the buffer is empty and the phase
        # is implicitly the start of a fill; only the pass count needs to
        # be remembered (Example 5: NLJ checkpoints "happen to contain no
        # information" — the pass count is our bookkeeping for skipping
        # whole passes when rolling forward from older checkpoints).
        return {"passes": self.passes}

    def _heap_state_payload(self):
        return list(self.buffer)

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------
    def _restore_control(self, control: dict) -> None:
        self.phase = control["phase"]
        self.cursor = control["cursor"]
        self.inner_row = control["inner_row"]
        self.outer_exhausted = control["outer_exhausted"]
        self.passes = control["passes"]

    def _resume_from_dump(self, entry: OpSuspendEntry, payload, ctx) -> None:
        rows = payload or []
        target = entry.target_control
        current = entry.current_control or target
        if target["phase"] == PHASE_JOIN:
            # Contract signed while joining the current pass: the buffer
            # has not changed since, and resume replays the join from the
            # contract's cursor and inner tuple.
            self.buffer = list(rows[: target["fill"]])
            self._restore_control(target)
            self.outer_exhausted = current["outer_exhausted"]
        else:
            # Contract signed while filling (no output produced at that
            # point): keep the full dumped buffer, let the fill complete
            # from the outer child's current position, and replay the
            # whole pass's join output.
            self.buffer = list(rows)
            self.phase = PHASE_FILL
            self.cursor = 0
            self.inner_row = None
            self.outer_exhausted = current["outer_exhausted"]

    def _resume_goback(self, entry: OpSuspendEntry, ctx: ResumeContext) -> None:
        """Refill the buffer from the (already repositioned) outer child,
        then jump straight to the target cursor and inner tuple — skipping
        every join already produced before the target."""
        target = entry.target_control
        ckpt = entry.ckpt_payload or {}
        if ckpt.get("__full_state__"):
            # Post-resume full-state checkpoint: restore its heap and
            # control, then keep rolling forward to the target below.
            self.buffer = list(ckpt["heap"] or [])
            self._restore_control(ckpt["control"])
        else:
            self.buffer = []
            self.outer_exhausted = False
            self.passes = ckpt.get("passes", 0)
        # Skip whole passes between the checkpoint and the target (only
        # possible when the fulfilling checkpoint predates the current
        # pass, e.g. with proactive checkpointing disabled): their outer
        # tuples are re-consumed and discarded, and their join output is
        # skipped entirely (Section 3.3).
        while self.passes < target["passes"]:
            skipped = 0
            while skipped < self.buffer_tuples:
                row = self.outer.next()
                if row is None:
                    raise ContractError(
                        f"{self.name}: outer child exhausted while "
                        f"skipping pass {self.passes + 1} during GoBack"
                    )
                skipped += 1
                self.charge_cpu(1)
            self.passes += 1
        while len(self.buffer) < target["fill"]:
            row = self.outer.next()
            if row is None:
                raise ContractError(
                    f"{self.name}: outer child exhausted while refilling "
                    f"{target['fill']} tuples during GoBack resume"
                )
            self.buffer.append(row)
            self.charge_cpu(1)
        self._restore_control(target)
