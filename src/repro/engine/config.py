"""Engine configuration knobs.

Defaults match the paper's full system; the ablation benchmarks flip the
optional features off to quantify their contribution.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class EngineConfig:
    """Tunables for the checkpoint/contract machinery.

    Attributes:
        contract_migration: enable Section 3.4 contract migration (re-point
            a contract to a newer checkpoint when no output was produced in
            between, plus the filter's saved-tuple variant).
        check_invariants: assert contract-graph invariants (Theorem 1
            bound) after every checkpoint. Cheap for realistic plans; can
            be disabled for very large stress runs.
        proactive_checkpointing: enable proactive checkpoints at
            minimal-heap-state points. Disabling degrades every GoBack to
            the initial checkpoints only — used by ablations.
        batch_execution: drive sessions through ``Operator.next_batch``
            (vectorized path) instead of one ``next()`` per root row. Both
            paths charge bit-identical virtual-clock costs and produce
            identical checkpoint/contract sequences; this flag only trades
            Python interpreter overhead for batch bookkeeping, and exists
            so benchmarks and the equivalence property test can pin either
            path explicitly.
    """

    contract_migration: bool = True
    check_invariants: bool = True
    proactive_checkpointing: bool = True
    batch_execution: bool = True
