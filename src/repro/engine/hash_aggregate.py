"""Hash-based grouping with aggregation (Section 4).

The paper: "In case these operators use hashing, the first phase is as
before [simple hash join's partitioning]. In the second phase, an entire
bucket is brought into memory to perform the function of these operators.
We again maintain the current aggregate value ... while processing the
current bucket."

Phase 1 partitions the input by group-key hash, flushing blocks to disk
as they fill (charged); the phase boundary is a materialization point.
Phase 2 loads one partition at a time, folds it into per-group aggregates,
and emits the groups; partition boundaries are minimal-heap-state points.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.common.errors import ContractError
from repro.core.suspended_query import OpSuspendEntry
from repro.engine.aggregate import AGG_FUNCS
from repro.engine.base import Operator, Row
from repro.engine.filter import Filter
from repro.engine.runtime import ResumeContext, Runtime
from repro.engine.scan import TableScan
from repro.relational.expressions import compile_predicate, compile_projection
from repro.relational.schema import Column, Schema
from repro.storage.disk import add_each

PHASE_PARTITION = "partition"
PHASE_EMIT = "emit"
PHASE_DONE = "done"


class HashGroupAggregate(Operator):
    """Grouping with one aggregate, implemented by hash partitioning."""

    STATEFUL = True

    def __init__(
        self,
        op_id: int,
        name: str,
        child: Operator,
        runtime: Runtime,
        group_columns: Sequence[int],
        agg_func: str,
        agg_column: int,
        num_partitions: int = 8,
    ):
        if agg_func not in AGG_FUNCS:
            raise ValueError(f"unsupported aggregate {agg_func!r}")
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        cols = tuple(
            child.schema.columns[i] for i in group_columns
        ) + (Column(f"{agg_func}_{child.schema.columns[agg_column].name}"),)
        schema = Schema(columns=cols, bytes_per_tuple=16 * len(cols))
        super().__init__(op_id, name, [child], runtime, schema)
        self.group_columns = tuple(group_columns)
        self.agg_func = agg_func
        self.agg_column = agg_column
        self.num_partitions = num_partitions
        self.phase = PHASE_PARTITION
        self.pending: list[list[Row]] = []
        self._disk_rows: list[list[Row]] = []
        self.flushed_blocks: list[int] = []
        self.consumed = 0
        self.current_partition = -1
        self._groups: list[Row] = []
        self.emit_idx = 0

    @property
    def child(self) -> Operator:
        return self.children[0]

    @property
    def child_tpp(self) -> int:
        return self.child.schema.tuples_per_page(
            self.rt.disk.cost_model.page_bytes
        )

    def _do_open(self) -> None:
        k = self.num_partitions
        self.pending = [[] for _ in range(k)]
        self._disk_rows = [[] for _ in range(k)]
        self.flushed_blocks = [0] * k

    def _group_key(self, row: Row) -> tuple:
        return tuple(row[i] for i in self.group_columns)

    def _partition_of(self, key: tuple) -> int:
        return hash(key) % self.num_partitions

    def _fold(self, value, row: Row):
        x = row[self.agg_column]
        if self.agg_func == "count":
            return (value or 0) + 1
        if value is None:
            return x
        if self.agg_func == "sum":
            return value + x
        if self.agg_func == "min":
            return min(value, x)
        return max(value, x)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _next(self) -> Optional[Row]:
        while True:
            if self.phase == PHASE_DONE:
                return None
            if self.phase == PHASE_PARTITION:
                self._run_partition_phase()
                self.phase = PHASE_EMIT
                self.current_partition = -1
                self.make_checkpoint()  # materialization point
            if self.emit_idx < len(self._groups):
                row = self._groups[self.emit_idx]
                self.emit_idx += 1
                return row
            if not self._advance_partition():
                self.phase = PHASE_DONE
                return None

    def _next_batch_fast(self, max_rows: int) -> list:
        """Vectorized group drain: one slice per emit run.

        Emitting groups charges nothing but the per-row wrapper CPU
        constant, so a whole run folds into one bulk charge. Partition
        boundaries end a non-empty batch so the boundary checkpoint (and
        the partition load's I/O) happens at the start of the next call,
        at the exact instant the row path does it.
        """
        if self._pending_rows:
            return super()._next_batch_fast(max_rows)
        out: list = []
        if self.phase == PHASE_DONE:
            return out
        if self.phase == PHASE_PARTITION:
            self._run_partition_phase_batched()
            self.phase = PHASE_EMIT
            self.current_partition = -1
            self.make_checkpoint()  # materialization point
        disk = self.rt.disk
        c = disk.cost_model.cpu_tuple_cost
        need = max_rows
        while need > 0:
            avail = len(self._groups) - self.emit_idx
            if avail > 0:
                take = min(avail, need)
                out.extend(self._groups[self.emit_idx:self.emit_idx + take])
                self.emit_idx += take
                self.tuples_emitted += take
                disk.charge_cpu_tuples_each(take)
                self.work = add_each(self.work, c, take)
                need -= take
                continue
            if out:
                break
            if not self._advance_partition():
                self.phase = PHASE_DONE
                break
        return out

    def _run_partition_phase(self) -> None:
        while True:
            row = self.child.next()
            if row is None:
                break
            self.consumed += 1
            self.charge_cpu(1)
            self._stash(row, skip_blocks=None)
        self._flush_all_pending()

    def _stash(self, row: Row, skip_blocks: Optional[list[int]]) -> None:
        p = self._partition_of(self._group_key(row))
        self.pending[p].append(row)
        if len(self.pending[p]) >= self.child_tpp:
            if skip_blocks is not None and skip_blocks[p] > self.flushed_blocks[p]:
                # Block already on disk from before the suspend (the
                # contract recorded the flushed counts): skip the rewrite.
                self._disk_rows[p].extend(self.pending[p])
                self.pending[p] = []
                self.flushed_blocks[p] += 1
            else:
                self._flush_block(p)

    def _flush_block(self, p: int) -> None:
        if not self.pending[p]:
            return
        with self.attribute_work():
            self.rt.disk.write_pages(1)
        self._disk_rows[p].extend(self.pending[p])
        self.pending[p] = []
        self.flushed_blocks[p] += 1

    def _flush_all_pending(self) -> None:
        for p in range(self.num_partitions):
            self._flush_block(p)

    def _run_partition_phase_batched(self) -> None:
        """Phase 1 with a vectorized input drain where the child shape
        allows it; identical charges and state as the row-path phase."""
        if not self._drain_input_fast():
            while True:
                row = self.child.next()
                if row is None:
                    break
                self.consumed += 1
                self.charge_cpu(1)
                self._stash(row, skip_blocks=None)
        self._flush_all_pending()

    def _drain_input_fast(self) -> bool:
        """Drain the child to exhaustion page-segment-wise, hashing rows
        into partitions — the same fusion as the hash join's phase 1
        (see ``SimpleHashJoin._drain_input_fast`` for the charge
        accounting): all inter-I/O charges are the per-tuple constant and
        fold into bulk charges flushed before every page read and block
        write; the stash stays per-row because flushes are
        data-dependent."""
        child = self.child
        filt: Optional[Filter] = None
        scan = child
        if isinstance(child, Filter):
            filt = child
            scan = child.child
        if not isinstance(scan, TableScan):
            return False
        if scan._pending_rows or (filt is not None and filt._pending_rows):
            return False
        if filt is not None and self.rt.config.contract_migration:
            # Row-exact prefix while the filter carries an open contract
            # (closed by its first match; none can appear mid-phase).
            while filt._has_open_contracts():
                row = child.next()
                if row is None:
                    return True
                self.consumed += 1
                self.charge_cpu(1)
                self._stash(row, skip_blocks=None)
        disk = self.rt.disk
        c = disk.cost_model.cpu_tuple_cost
        charge_each = disk.charge_cpu_tuples_each
        cursor = scan._cursor
        pred = compile_predicate(filt.predicate) if filt is not None else None
        key_fn = compile_projection(self.group_columns)
        pending = self.pending
        flush_block = self._flush_block
        tpp = self.child_tpp
        k = self.num_partitions
        crun = 0      # same-constant clock charges pending since last I/O
        work_run = 0  # consume constants owed to self.work
        filt_run = 0  # constants owed to the filter's work
        scan_run = 0  # wrapper constants owed to the scan's work
        consumed = 0
        while True:
            if crun:
                charge_each(crun)
                crun = 0
            if scan_run:
                scan.work = add_each(scan.work, c, scan_run)
                scan_run = 0
            before = disk.query_now
            page = cursor.current_page()
            after = disk.query_now
            if after != before:
                scan.work += after - before
            if page is None:
                break
            slot = cursor.position().slot
            limit = len(page)
            i = slot
            while i < limit:
                row = page[i]
                i += 1
                if pred is None:
                    crun += 2
                elif pred(row):
                    crun += 4
                    filt_run += 2
                else:
                    crun += 2
                    filt_run += 1
                    continue
                work_run += 1
                consumed += 1
                p = hash(key_fn(row)) % k
                plist = pending[p]
                plist.append(row)
                if len(plist) >= tpp:
                    charge_each(crun)
                    crun = 0
                    self.work = add_each(self.work, c, work_run)
                    work_run = 0
                    flush_block(p)
            examined = limit - slot
            cursor.advance(examined)
            scan_run += examined
            scan.tuples_emitted += examined
        if work_run:
            self.work = add_each(self.work, c, work_run)
        if filt is not None:
            if filt_run:
                filt.work = add_each(filt.work, c, filt_run)
            filt.tuples_emitted += consumed
        self.consumed += consumed
        return True

    def _advance_partition(self) -> bool:
        next_p = self.current_partition + 1
        if next_p >= self.num_partitions:
            return False
        if self.current_partition >= 0:
            # Previous partition's groups discarded: minimal-heap-state
            # point.
            self._groups = []
            self.emit_idx = 0
            self.make_checkpoint()
        self.current_partition = next_p
        self._load_partition(next_p)
        return True

    def _load_partition(self, p: int) -> None:
        rows = self._disk_rows[p]
        pages = math.ceil(len(rows) / self.child_tpp)
        with self.attribute_work():
            self.rt.disk.read_pages(pages)
        aggregates: dict = {}
        for row in rows:
            self.charge_cpu(1)
            key = self._group_key(row)
            aggregates[key] = self._fold(aggregates.get(key), row)
        self._groups = [key + (value,) for key, value in aggregates.items()]
        self.emit_idx = 0

    # ------------------------------------------------------------------
    # State introspection
    # ------------------------------------------------------------------
    def heap_tuples(self) -> int:
        if self.phase == PHASE_PARTITION:
            return sum(len(b) for b in self.pending)
        return len(self._groups)

    def heap_pages(self) -> int:
        tuples = self.heap_tuples()
        return math.ceil(tuples / self.child_tpp) if tuples else 0

    def control_state(self) -> dict:
        return {
            "phase": self.phase,
            "consumed": self.consumed,
            "flushed": list(self.flushed_blocks),
            "current_partition": self.current_partition,
            "emit_idx": self.emit_idx,
        }

    def _checkpoint_payload(self) -> dict:
        return {
            "phase": self.phase,
            "consumed": self.consumed,
            "disk_rows": [list(rows) for rows in self._disk_rows],
            "flushed": list(self.flushed_blocks),
            "current_partition": self.current_partition,
        }

    def _heap_state_payload(self):
        return {
            "pending": [list(b) for b in self.pending],
            "disk_rows": [list(rows) for rows in self._disk_rows],
            "groups": list(self._groups),
        }

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------
    def _restore_heap_and_control(self, payload: dict, control: dict) -> None:
        self.phase = control["phase"]
        self.consumed = control["consumed"]
        self.flushed_blocks = list(control["flushed"])
        self.current_partition = control["current_partition"]
        self.pending = [list(b) for b in payload.get("pending", self.pending)]
        self._disk_rows = [
            list(r) for r in payload.get("disk_rows", self._disk_rows)
        ]
        self._groups = list(payload.get("groups", []))
        self.emit_idx = control["emit_idx"]

    def _resume_from_dump(self, entry: OpSuspendEntry, payload, ctx) -> None:
        self._restore_heap_and_control(payload or {}, entry.target_control)

    def _resume_goback(self, entry: OpSuspendEntry, ctx: ResumeContext) -> None:
        ckpt = entry.ckpt_payload or {}
        target = entry.target_control
        if ckpt.get("__full_state__"):
            control = dict(ckpt["control"])
            self._restore_heap_and_control(ckpt["heap"] or {}, control)
        else:
            self.phase = ckpt.get("phase", PHASE_PARTITION)
            self.consumed = ckpt.get("consumed", 0)
            self._disk_rows = [
                list(r)
                for r in ckpt.get(
                    "disk_rows", [[] for _ in range(self.num_partitions)]
                )
            ]
            self.flushed_blocks = list(
                ckpt.get("flushed", [0] * self.num_partitions)
            )

        if target["phase"] == PHASE_PARTITION:
            skip = list(target["flushed"])
            while self.consumed < target["consumed"]:
                row = self.child.next()
                if row is None:
                    raise ContractError(
                        f"{self.name}: child exhausted during GoBack"
                    )
                self.consumed += 1
                self.charge_cpu(1)
                self._stash(row, skip_blocks=skip)
            self.phase = PHASE_PARTITION
            return
        # Target in the emit phase.
        if self.phase == PHASE_PARTITION:
            # Checkpoint predates the phase boundary: redo partitioning.
            while True:
                row = self.child.next()
                if row is None:
                    break
                self.consumed += 1
                self.charge_cpu(1)
                self._stash(row, skip_blocks=list(target["flushed"]))
            self._flush_all_pending()
        self.phase = PHASE_EMIT
        self.current_partition = target["current_partition"]
        if self.current_partition >= 0:
            self._load_partition(self.current_partition)
            self.emit_idx = target["emit_idx"]
        else:
            self._groups = []
            self.emit_idx = 0
