"""Iterator-based query engine with the paper's extended interface.

Every physical operator implements ``open``/``next``/``close`` plus the
paper's extensions (Table 1): ``SignContract(Ckpt)``, ``Suspend()``,
``Suspend(Ctr)``, and ``Resume()`` — here ``sign_contract``,
``do_suspend``, ``do_suspend_to``, and ``do_resume``.
"""

from repro.engine.base import Operator
from repro.engine.config import EngineConfig
from repro.engine.runtime import Runtime, SuspendContext, SuspendController
from repro.engine.plan import (
    FilterSpec,
    HybridHashJoinSpec,
    IndexNLJSpec,
    GroupAggSpec,
    HashGroupAggSpec,
    DupElimSpec,
    MergeJoinSpec,
    NLJSpec,
    PlanSpec,
    ProjectSpec,
    ScanSpec,
    SimpleHashJoinSpec,
    SortSpec,
    instantiate_plan,
    plan_operator_count,
)
from repro.engine.validate import PlanValidationError, validate_plan_spec

__all__ = [
    "DupElimSpec",
    "EngineConfig",
    "FilterSpec",
    "GroupAggSpec",
    "HashGroupAggSpec",
    "HybridHashJoinSpec",
    "IndexNLJSpec",
    "MergeJoinSpec",
    "NLJSpec",
    "Operator",
    "PlanSpec",
    "PlanValidationError",
    "ProjectSpec",
    "Runtime",
    "ScanSpec",
    "SimpleHashJoinSpec",
    "SortSpec",
    "SuspendContext",
    "SuspendController",
    "instantiate_plan",
    "plan_operator_count",
    "validate_plan_spec",
]
