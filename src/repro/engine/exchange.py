"""Exchange operators: the shard-local ends of a shuffle.

Sharded execution (see ``repro.shard``) splits a plan into per-shard
fragments joined by *exchange channels*. Inside a fragment both ends of a
channel are ordinary scans over shard-local heap files:

- :class:`PartitionedScan` reads the shard's partition of a base table —
  the partition *is* the shard-local table, so the scan sees only local
  pages and its cost scales with the partition size;
- :class:`ShuffleRead` reads a materialized channel table, i.e. the rows
  other shards routed to this shard, frozen into a heap file before the
  consuming fragment starts.

Both subclass :class:`~repro.engine.scan.TableScan` so the paper's whole
suspend/resume machinery — reactive checkpoints, contracts, GoBack
re-reads, cursor-only control state — applies to shard fragments without
any new protocol. Materializing a channel before its consumers run is
what makes the global cut well-defined: in-flight rows live either in the
producer's uncommitted output (covered by its image) or in the channel's
serialized buffers (covered by the shard-set manifest), never in a pipe.
"""

from __future__ import annotations

from repro.engine.runtime import Runtime
from repro.engine.scan import TableScan
from repro.storage.heapfile import HeapFile


class PartitionedScan(TableScan):
    """Sequential scan over one shard's partition of a base table."""

    def __init__(
        self,
        op_id: int,
        name: str,
        runtime: Runtime,
        table: HeapFile,
        shard: int,
        num_shards: int,
    ):
        super().__init__(op_id, name, runtime, table)
        self.shard = shard
        self.num_shards = num_shards


class ShuffleRead(TableScan):
    """Scan over a materialized exchange channel (shard-local)."""

    def __init__(
        self,
        op_id: int,
        name: str,
        runtime: Runtime,
        table: HeapFile,
        channel: str,
        shard: int,
    ):
        super().__init__(op_id, name, runtime, table)
        self.channel = channel
        self.shard = shard
