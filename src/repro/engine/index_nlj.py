"""Tuple-based nested loop join with an index on the inner (Section 4).

Reads the outer child one tuple at a time and probes an ordered index on
the inner table for matches. The operator state is just the current outer
tuple and the position within the current probe's match range, so it uses
reactive checkpointing: on SignContract it records that control state and
recursively contracts with its outer child; on Suspend the same state goes
into SuspendedQuery so resume can re-probe the index and skip directly to
the match position.
"""

from __future__ import annotations

from typing import Optional

from repro.core.suspended_query import OpSuspendEntry
from repro.engine.base import Operator, Row
from repro.engine.runtime import ResumeContext, Runtime
from repro.storage.index import OrderedIndex


class IndexNLJ(Operator):
    """Index nested-loop join: outer tuples probe an inner-table index."""

    STATEFUL = False

    def __init__(
        self,
        op_id: int,
        name: str,
        outer: Operator,
        runtime: Runtime,
        index: OrderedIndex,
        outer_key_column: int,
    ):
        super().__init__(
            op_id, name, [outer], runtime, outer.schema.concat(index.table.schema)
        )
        self.index = index
        self.outer_key_column = outer_key_column
        self.outer_row: Optional[Row] = None
        self.match_lo = 0
        self.match_hi = 0
        self.match_pos = 0

    @property
    def outer(self) -> Operator:
        return self.children[0]

    def _next(self) -> Optional[Row]:
        while True:
            if self.outer_row is None:
                row = self.outer.next()
                if row is None:
                    return None
                self.charge_cpu(1)
                self.outer_row = row
                with self.attribute_work():
                    self.match_lo, self.match_hi = self.index.probe_range(
                        row[self.outer_key_column]
                    )
                self.match_pos = self.match_lo
            if self.match_pos < self.match_hi:
                with self.attribute_work():
                    entry = self.index.entry_at(self.match_pos)
                    inner_row = self.index.fetch(entry)
                self.match_pos += 1
                return self.outer_row + inner_row
            self.outer_row = None

    def control_state(self) -> dict:
        return {
            "outer_row": self.outer_row,
            "match_offset": self.match_pos - self.match_lo,
        }

    def _checkpoint_payload(self) -> dict:
        return self.control_state()

    def _restore_control(self, control: dict) -> None:
        self.outer_row = control["outer_row"]
        if self.outer_row is None:
            self.match_lo = self.match_hi = self.match_pos = 0
            return
        with self.attribute_work():
            self.match_lo, self.match_hi = self.index.probe_range(
                self.outer_row[self.outer_key_column]
            )
        self.match_pos = self.match_lo + control["match_offset"]

    def _resume_from_dump(self, entry: OpSuspendEntry, payload, ctx) -> None:
        self._restore_control(entry.target_control)

    def _resume_goback(self, entry: OpSuspendEntry, ctx: ResumeContext) -> None:
        self._restore_control(entry.target_control)
