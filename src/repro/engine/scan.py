"""Table scan and index scan (Section 4).

Both are stateless leaf operators: they checkpoint reactively, and their
entire suspend/resume state is a cursor position. A GoBack through a scan
re-reads the pages between the contract position and wherever execution
re-consumes them — that re-reading *is* the recomputation cost that the
suspend-plan optimizer trades off against dumping ancestors' state.
"""

from __future__ import annotations

from typing import Optional

from repro.core.suspended_query import OpSuspendEntry
from repro.engine.base import Operator, Row
from repro.engine.runtime import ResumeContext, Runtime
from repro.relational.schema import Schema
from repro.storage.disk import add_each
from repro.storage.heapfile import HeapFile, TuplePosition


class TableScan(Operator):
    """Sequential scan over a heap file."""

    STATEFUL = False
    REWINDABLE = True

    def __init__(self, op_id: int, name: str, runtime: Runtime, table: HeapFile):
        super().__init__(op_id, name, [], runtime, table.schema)
        self.table = table
        self._cursor = None

    def _do_open(self) -> None:
        self._cursor = self.table.cursor()

    def _next(self) -> Optional[Row]:
        with self.attribute_work():
            return self._cursor.next()

    def _next_batch_fast(self, max_rows: int) -> list:
        """Vectorized scan: consume the file in page-sized segments.

        Per segment the page-read charge lands exactly where the row path
        puts it (lazily, before the first row of the page), and the
        ``take`` per-row CPU charges that the row path interleaves after
        each row are folded into one same-constant bulk charge — the
        charge sequence between I/O events is identical, so the virtual
        clock and per-operator work stay bit-identical.
        """
        disk = self.rt.disk
        rows: list = []
        pending = self._pending_rows
        while pending and len(rows) < max_rows:
            rows.append(pending.popleft())
            self.tuples_emitted += 1
            self.work += disk.charge_cpu_tuples(1)
        cursor = self._cursor
        charge_each = disk.charge_cpu_tuples_each
        c = disk.cost_model.cpu_tuple_cost
        n = len(rows)
        while n < max_rows:
            before = disk.query_now
            page = cursor.current_page()
            after = disk.query_now
            if after != before:
                self.work += after - before
            if page is None:
                break
            slot = cursor.position().slot
            take = min(len(page) - slot, max_rows - n)
            rows.extend(page[slot:slot + take])
            cursor.advance(take)
            n += take
            charge_each(take)
            self.work = add_each(self.work, c, take)
            self.tuples_emitted += take
        return rows

    def rewind(self) -> None:
        self._cursor.rewind()

    def tuples_consumed(self) -> int:
        """Base tuples read so far (drives suspend-point triggers)."""
        return self._cursor.tuples_consumed() if self._cursor else 0

    # Control state ----------------------------------------------------
    def control_state(self) -> dict:
        pos = self._cursor.position()
        return {"page_no": pos.page_no, "slot": pos.slot}

    def _checkpoint_payload(self) -> dict:
        return self.control_state()

    # Resume -----------------------------------------------------------
    def _seek_control(self, control: dict) -> None:
        self._cursor.seek(TuplePosition(control["page_no"], control["slot"]))

    def _resume_from_dump(self, entry: OpSuspendEntry, payload, ctx) -> None:
        self._seek_control(entry.target_control)

    def _resume_goback(self, entry: OpSuspendEntry, ctx: ResumeContext) -> None:
        self._seek_control(entry.target_control)

    # Cost hints ---------------------------------------------------------
    def estimate_dump_resume_cost(self) -> float:
        # Repositioning re-reads the current page only.
        return self.rt.disk.cost_of_page_reads(1)

    def estimate_goback_resume_cost(self, link) -> float:
        """Exact redo: pages between the contract position and now.

        The scan knows its positions precisely at suspend time, which is
        why the paper optimizes *online*: these constants cannot be known
        from offline statistics.
        """
        target = link.target_control
        if target is None:
            return self.rt.disk.cost_of_page_reads(1)
        pages_redone = self._cursor.position().page_no - target["page_no"]
        return self.rt.disk.cost_of_page_reads(max(1, pages_redone + 1))


class IndexScan(Operator):
    """Ordered scan over an index, returning base rows in key order."""

    STATEFUL = False
    REWINDABLE = True

    def __init__(
        self,
        op_id: int,
        name: str,
        runtime: Runtime,
        index,
        start_key=None,
    ):
        super().__init__(op_id, name, [], runtime, index.table.schema)
        self.index = index
        self.start_key = start_key
        self._entry_idx = 0
        self._loaded_leaf = -1

    def _do_open(self) -> None:
        self._loaded_leaf = -1
        if self.start_key is None:
            self._entry_idx = 0
        else:
            with self.attribute_work():
                first = self.index.first_ge(self.start_key)
            self._entry_idx = first if first is not None else self.index.num_entries

    def _next(self) -> Optional[Row]:
        if self._entry_idx >= self.index.num_entries:
            return None
        leaf = self._entry_idx // self.index.entries_per_page
        with self.attribute_work():
            if leaf != self._loaded_leaf:
                self.rt.disk.read_pages(1)
                self._loaded_leaf = leaf
            row = self.index.fetch(self.index.entry_at(self._entry_idx))
        self._entry_idx += 1
        return row

    def rewind(self) -> None:
        self._do_open()

    def control_state(self) -> dict:
        return {"entry_idx": self._entry_idx}

    def _checkpoint_payload(self) -> dict:
        return self.control_state()

    def _resume_from_dump(self, entry: OpSuspendEntry, payload, ctx) -> None:
        self._entry_idx = entry.target_control["entry_idx"]

    def _resume_goback(self, entry: OpSuspendEntry, ctx: ResumeContext) -> None:
        self._entry_idx = entry.target_control["entry_idx"]

    def estimate_goback_resume_cost(self, link) -> float:
        target = link.target_control
        if target is None:
            return self.rt.disk.cost_of_page_reads(1)
        redone = self._entry_idx - target["entry_idx"]
        pages = max(1, redone // max(1, self.index.entries_per_page) + 1)
        return self.rt.disk.cost_of_page_reads(pages)
