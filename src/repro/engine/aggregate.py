"""Grouping with aggregation and duplicate elimination (Section 4).

Both operators here are the sort-based variants: they assume their input
arrives sorted on the grouping/key columns (put a
:class:`~repro.engine.sort.TwoPhaseMergeSort` beneath them) and stream one
group at a time. Their state is tiny — the current group key, the running
aggregate, and one lookahead tuple — so, as the paper prescribes, they
checkpoint reactively and "store the current value of the aggregate as
part of any requested contract", allowing resume from the exact point.

Hash-based grouping follows the simple-hash-join template
(:mod:`repro.engine.hash_join`) per the paper and is not duplicated here.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.suspended_query import OpSuspendEntry
from repro.engine.base import Operator, Row
from repro.engine.runtime import ResumeContext, Runtime
from repro.relational.schema import Column, Schema

#: Supported aggregate functions.
AGG_FUNCS = ("count", "sum", "min", "max")


class GroupAggregate(Operator):
    """Sorted-input grouping with a single aggregate column.

    Emits ``(group_key..., aggregate)`` rows, one per group, in key order.
    """

    STATEFUL = False

    def __init__(
        self,
        op_id: int,
        name: str,
        child: Operator,
        runtime: Runtime,
        group_columns: Sequence[int],
        agg_func: str,
        agg_column: int,
    ):
        if agg_func not in AGG_FUNCS:
            raise ValueError(f"unsupported aggregate {agg_func!r}")
        cols = tuple(
            child.schema.columns[i] for i in group_columns
        ) + (Column(f"{agg_func}_{child.schema.columns[agg_column].name}"),)
        schema = Schema(columns=cols, bytes_per_tuple=16 * len(cols))
        super().__init__(op_id, name, [child], runtime, schema)
        self.group_columns = tuple(group_columns)
        self.agg_func = agg_func
        self.agg_column = agg_column
        self.current_key: Optional[tuple] = None
        self.agg_value = None
        self.lookahead: Optional[Row] = None
        self.started = False
        self.in_group = False
        self.exhausted = False

    @property
    def child(self) -> Operator:
        return self.children[0]

    def _group_key(self, row: Row) -> tuple:
        return tuple(row[i] for i in self.group_columns)

    def _fold(self, value, row: Row):
        x = row[self.agg_column]
        if self.agg_func == "count":
            return (value or 0) + 1
        if value is None:
            return x
        if self.agg_func == "sum":
            return value + x
        if self.agg_func == "min":
            return min(value, x)
        return max(value, x)

    def _next(self) -> Optional[Row]:
        if self.exhausted:
            return None
        if not self.in_group:
            if not self.started:
                self.lookahead = self.child.next()
                self.started = True
            if self.lookahead is None:
                self.exhausted = True
                return None
            self.current_key = self._group_key(self.lookahead)
            self.agg_value = self._fold(None, self.lookahead)
            self.in_group = True
            self.charge_cpu(1)
        # The in_group flag makes this loop restartable: a suspend that
        # lands mid-group resumes accumulation from the saved aggregate.
        while True:
            row = self.child.next()
            if row is None:
                self.lookahead = None
                self.exhausted = True
                break
            self.charge_cpu(1)
            if self._group_key(row) != self.current_key:
                self.lookahead = row
                break
            self.agg_value = self._fold(self.agg_value, row)
        self.in_group = False
        return self.current_key + (self.agg_value,)

    def control_state(self) -> dict:
        return {
            "current_key": self.current_key,
            "agg_value": self.agg_value,
            "lookahead": self.lookahead,
            "started": self.started,
            "in_group": self.in_group,
            "exhausted": self.exhausted,
        }

    def _checkpoint_payload(self) -> dict:
        return self.control_state()

    def _restore_control(self, control: dict) -> None:
        self.current_key = control["current_key"]
        self.agg_value = control["agg_value"]
        self.lookahead = control["lookahead"]
        self.started = control["started"]
        self.in_group = control["in_group"]
        self.exhausted = control["exhausted"]

    def _resume_from_dump(self, entry: OpSuspendEntry, payload, ctx) -> None:
        self._restore_control(entry.target_control)

    def _resume_goback(self, entry: OpSuspendEntry, ctx: ResumeContext) -> None:
        self._restore_control(entry.target_control)


class DuplicateEliminate(Operator):
    """Sorted-input duplicate elimination.

    Keeps the tuple whose duplicates are currently being eliminated as its
    only state, exactly as the paper describes.
    """

    STATEFUL = False

    def __init__(self, op_id: int, name: str, child: Operator, runtime: Runtime):
        super().__init__(op_id, name, [child], runtime, child.schema)
        self.current: Optional[Row] = None

    @property
    def child(self) -> Operator:
        return self.children[0]

    def _next(self) -> Optional[Row]:
        while True:
            row = self.child.next()
            if row is None:
                return None
            self.charge_cpu(1)
            if row != self.current:
                self.current = row
                return row

    def control_state(self) -> dict:
        return {"current": self.current}

    def _checkpoint_payload(self) -> dict:
        return self.control_state()

    def _resume_from_dump(self, entry: OpSuspendEntry, payload, ctx) -> None:
        self.current = entry.target_control["current"]

    def _resume_goback(self, entry: OpSuspendEntry, ctx: ResumeContext) -> None:
        self.current = entry.target_control["current"]
