"""Static plan-spec validation.

Physical plans carry implicit requirements the engine otherwise only
discovers at runtime (or worse, silently violates):

- a merge join needs both inputs ordered on its join columns, and a
  modulus join condition is never order-compatible with stored columns;
- sorted-input grouping and duplicate elimination need a sorted child;
- a block NLJ's inner subtree must be rewindable.

``validate_plan_spec`` checks these before instantiation. A plain table
scan does not guarantee order, so merge-join/aggregate inputs must be
explicit ``SortSpec``s or index scans unless the caller passes the table
names it knows to be stored in key order via ``sorted_tables``.
"""

from __future__ import annotations

from typing import Iterable

from repro.common.errors import ReproError
from repro.engine.plan import (
    DupElimSpec,
    FilterSpec,
    GroupAggSpec,
    IndexScanSpec,
    MergeJoinSpec,
    NLJSpec,
    PlanSpec,
    ProjectSpec,
    ScanSpec,
    SortSpec,
)


class PlanValidationError(ReproError):
    """Raised when a plan spec violates an operator's input requirements."""


def _delivers_sorted_on(
    spec: PlanSpec, column: int, sorted_tables: frozenset
) -> bool:
    if isinstance(spec, SortSpec):
        return bool(spec.key_columns) and spec.key_columns[0] == column
    if isinstance(spec, IndexScanSpec):
        return True  # index scans stream in key order
    if isinstance(spec, ScanSpec):
        return spec.table in sorted_tables
    if isinstance(spec, (FilterSpec, DupElimSpec)):
        return _delivers_sorted_on(spec.child, column, sorted_tables)
    return False


def _is_rewindable(spec: PlanSpec) -> bool:
    if isinstance(spec, (ScanSpec, IndexScanSpec, SortSpec)):
        return True
    if isinstance(spec, (FilterSpec, ProjectSpec)):
        return _is_rewindable(spec.child)
    return False


def validate_plan_spec(
    spec: PlanSpec, sorted_tables: Iterable[str] = ()
) -> None:
    """Raise :class:`PlanValidationError` on input-requirement violations."""
    sorted_tables = frozenset(sorted_tables)

    def check(node: PlanSpec) -> None:
        if isinstance(node, MergeJoinSpec):
            if node.condition.modulus:
                raise PlanValidationError(
                    "merge join cannot use a modulus join condition: "
                    "residues are not ordered by the stored sort columns"
                )
            for side, child, column in (
                ("left", node.left, node.condition.left_column),
                ("right", node.right, node.condition.right_column),
            ):
                if not _delivers_sorted_on(child, column, sorted_tables):
                    raise PlanValidationError(
                        f"merge join {side} input is not sorted on join "
                        f"column {column}; wrap it in a SortSpec or list "
                        "its table in sorted_tables"
                    )
        if isinstance(node, (GroupAggSpec, DupElimSpec)):
            if isinstance(node, GroupAggSpec):
                needed = node.group_columns[0] if node.group_columns else 0
            else:
                needed = 0
            if not _delivers_sorted_on(node.child, needed, sorted_tables):
                raise PlanValidationError(
                    f"{type(node).__name__} requires its input sorted on "
                    f"column {needed}"
                )
        if isinstance(node, NLJSpec) and not _is_rewindable(node.inner):
            raise PlanValidationError(
                "block NLJ inner subtree must be rewindable (scan, index "
                "scan, sort, or filter/project over one)"
            )
        for child in node.children:
            check(child)

    check(spec)
