"""Operator base class: the extended iterator interface of the paper.

Beyond ``open``/``next``/``close``, every operator participates in the
checkpoint/contract protocol of Section 3:

- stateful operators call :meth:`make_checkpoint` at every
  minimal-heap-state point (proactive checkpointing);
- :meth:`sign_contract` implements ``SignContract(Ckpt)``: the child
  records its control state in a new contract and either points it at its
  latest proactive checkpoint (stateful) or creates a reactive checkpoint
  (stateless, recursing into its own children);
- :meth:`do_suspend` / :meth:`do_suspend_to` implement ``Suspend()`` /
  ``Suspend(Ctr)``, carrying out the DumpState or GoBack strategy chosen
  by the suspend plan and populating the SuspendedQuery structure;
- :meth:`do_resume` implements ``Resume()``: children first, then either
  reload dumped heap state or roll forward from the fulfilling checkpoint
  to the recorded target, *skipping* regeneration work where the operator
  semantics allow (Section 3.3).

Subclasses distinguish *heap children* (whose tuples build the operator's
heap state; their GoBack positions come from the fulfilling checkpoint's
contracts) from *stream children* (consumed tuple-at-a-time after the heap
is built, like block NLJ's inner; their positions are captured by nested
contracts signed at contract-signing time).
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from repro.common.errors import ContractError, ReproError, SuspendRequested
from repro.core.checkpoint import Checkpoint, Contract, control_state_bytes
from repro.core.strategies import Strategy
from repro.core.suspended_query import (
    KIND_DUMP,
    KIND_DUMP_TO_CONTRACT,
    KIND_GOBACK,
    OpSuspendEntry,
)
from repro.engine.runtime import ResumeContext, Runtime, SuspendContext
from repro.relational.schema import Schema
from repro.storage.statefile import DumpHandle

Row = tuple


class Operator:
    """Base physical operator. Subclasses implement the ``_``-hooks."""

    #: Stateful operators hold heap state and checkpoint proactively at
    #: minimal-heap-state points; stateless ones checkpoint reactively.
    STATEFUL = False
    #: Whether the operator supports rewind() (restart current output pass).
    REWINDABLE = False

    def __init__(
        self,
        op_id: int,
        name: str,
        children: Sequence["Operator"],
        runtime: Runtime,
        schema: Schema,
    ):
        self.op_id = op_id
        self.name = name
        self.children = list(children)
        self.rt = runtime
        self.schema = schema
        self.parent: Optional["Operator"] = None
        for child in self.children:
            child.parent = self
        self.tuples_emitted = 0
        self.work = 0.0
        self.is_open = False
        #: Rows to return before regular production (saved by contract
        #: migration, footnote 3 of the paper).
        self._pending_rows: deque = deque()
        runtime.register(self)
        #: Tracer bound with this operator's identity, and the hot-path
        #: flag for sampled ``next()`` spans — both resolved once here so
        #: ``next()`` pays a single attribute check when tracing is off.
        self._tr = runtime.tracer.bind(op=self.op_id, op_name=self.name)
        self._trace_next = self._tr.trace_next
        self._next_sample_every = self._tr.next_sample_every

    # ------------------------------------------------------------------
    # Iterator interface
    # ------------------------------------------------------------------
    def open(self) -> None:
        """Open children, initialize state, take the initial checkpoint."""
        for child in self.children:
            child.open()
        self._do_open()
        self.is_open = True
        if self.STATEFUL:
            # All stateful operators checkpoint just before execution
            # starts (Example 8 / Figure 5 of the paper).
            self.make_checkpoint()

    def next(self) -> Optional[Row]:
        """Return the next output row, or None when exhausted."""
        self.rt.poll()
        if self._trace_next:
            return self._next_traced()
        if self._pending_rows:
            row = self._pending_rows.popleft()
        else:
            row = self._next()
        if row is not None:
            self.tuples_emitted += 1
            self.charge_cpu(1)
        return row

    def _next_traced(self) -> Optional[Row]:
        """``next()`` under an enabled tracer: every Nth call is a span."""
        if self.tuples_emitted % self._next_sample_every != 0:
            if self._pending_rows:
                row = self._pending_rows.popleft()
            else:
                row = self._next()
            if row is not None:
                self.tuples_emitted += 1
                self.charge_cpu(1)
            return row
        with self._tr.span("op.next", emitted=self.tuples_emitted) as rec:
            row = None
            if self._pending_rows:
                row = self._pending_rows.popleft()
            else:
                row = self._next()
            if row is not None:
                self.tuples_emitted += 1
                self.charge_cpu(1)
            rec["produced"] = row is not None
        return row

    def next_batch(self, max_rows: int) -> list:
        """Return up to ``max_rows`` output rows (the vectorized path).

        Semantics are identical to ``max_rows`` calls to :meth:`next`:

        - at most ``max_rows`` rows are returned;
        - an **empty** list means the operator is exhausted *unless* the
          suspend controller fired mid-batch (drivers check
          ``rt.controller.fired`` before treating empty as done);
        - a short non-empty batch means "call again" — operators end a
          batch early at checkpoint/phase boundaries so a batch never
          spans a checkpoint point: the checkpoint is then taken at the
          start of the next call, at the exact virtual-clock instant and
          operator state the row path would take it.

        While a suspend condition is armed or per-``next()`` tracing is
        on, this degrades to a per-row loop over :meth:`next`, so polls,
        sampled spans and charges happen at the exact row boundaries the
        row path uses (a suspend fired mid-batch keeps the rows produced
        before it, exactly like the row path's driver loop). Otherwise
        ``poll()`` is provably a no-op and subclass fast paths may
        amortize bookkeeping — provided they charge the identical
        virtual-clock costs in the identical order across I/O events
        (same-constant CPU charges between two I/O charges may be folded
        with :func:`repro.storage.disk.add_each`; nothing may move across
        an I/O charge).
        """
        if max_rows <= 0:
            return []
        if self.rt.controller.armed or self._trace_next:
            return self._next_batch_rowloop(max_rows)
        return self._next_batch_fast(max_rows)

    def _next_batch_rowloop(self, max_rows: int) -> list:
        """Per-row fallback preserving exact poll/trace row boundaries."""
        rows: list = []
        if self._trace_next:
            with self._tr.span(
                "op.next_batch", emitted=self.tuples_emitted, max_rows=max_rows
            ) as rec:
                try:
                    while len(rows) < max_rows:
                        row = self.next()
                        if row is None:
                            break
                        rows.append(row)
                except SuspendRequested:
                    pass  # rt.controller.fired tells the driver
                rec["produced"] = len(rows)
            return rows
        try:
            while len(rows) < max_rows:
                row = self.next()
                if row is None:
                    break
                rows.append(row)
        except SuspendRequested:
            pass  # rt.controller.fired tells the driver
        return rows

    def _next_batch_fast(self, max_rows: int) -> list:
        """Default unarmed fast path: the row loop with the poll and
        trace checks hoisted out of it.

        Charges stay per-row because ``_next`` may interleave I/O charges
        with the per-tuple CPU charge; subclasses whose production has
        known I/O-free runs override this with truly vectorized loops.
        """
        rows: list = []
        append = rows.append
        pending = self._pending_rows
        _next = self._next
        charge = self.rt.disk.charge_cpu_tuples
        n = 0
        while n < max_rows:
            row = pending.popleft() if pending else _next()
            if row is None:
                break
            append(row)
            self.tuples_emitted += 1
            self.work += charge(1)
            n += 1
        return rows

    def close(self) -> None:
        self._do_close()
        self.is_open = False
        for child in self.children:
            child.close()

    def rewind(self) -> None:
        """Restart output from the beginning of the current pass.

        Only rewindable operators (scans and stateless wrappers over
        rewindable inputs, plus sort in its merge phase) support this; it
        is how block NLJ re-reads its inner child each pass.
        """
        raise ReproError(f"operator {self.name} ({type(self).__name__}) "
                         "does not support rewind()")

    # Hooks ------------------------------------------------------------
    def _do_open(self) -> None:
        """Subclass initialization; children are already open."""

    def _next(self) -> Optional[Row]:
        raise NotImplementedError

    def _do_close(self) -> None:
        """Subclass cleanup; children are closed afterwards."""

    # ------------------------------------------------------------------
    # Work accounting
    # ------------------------------------------------------------------
    def charge_cpu(self, ntuples: int) -> None:
        """Charge CPU work for processing ``ntuples`` to this operator."""
        self.work += self.rt.disk.charge_cpu_tuples(ntuples)

    @contextmanager
    def attribute_work(self):
        """Attribute the I/O charged inside the block to this operator.

        Wrap only *direct* storage calls — never calls into children,
        whose work is attributed to them by their own wrappers.
        """
        before = self.rt.disk.query_now
        yield
        self.work += self.rt.disk.query_now - before

    # ------------------------------------------------------------------
    # Heap/control state introspection (drives costs and dumps)
    # ------------------------------------------------------------------
    def heap_tuples(self) -> int:
        """Number of tuples currently held in heap state."""
        return 0

    def heap_pages(self) -> int:
        """Pages needed to dump the current heap state."""
        return 0

    def control_state(self) -> dict:
        """Small picklable snapshot of the operator's control state."""
        return {}

    def _checkpoint_payload(self) -> dict:
        """State stored in a checkpoint at the current point.

        For stateful operators this is called only at minimal-heap-state
        points, where it must capture what little state survives the
        minimum (e.g. a sort's sublist handles). Empty by default.
        """
        return {}

    def heap_children(self) -> list["Operator"]:
        """Children whose output (re)builds this operator's heap state."""
        return [c for c in self.children if c not in self.stream_children()]

    def stream_children(self) -> list["Operator"]:
        """Children consumed as a stream after heap state is built."""
        return []

    # ------------------------------------------------------------------
    # Checkpointing and contracts (execute phase)
    # ------------------------------------------------------------------
    def make_checkpoint(self) -> Optional[Checkpoint]:
        """Create a proactive checkpoint at a minimal-heap-state point.

        Also signs contracts with every child (the paper: "whenever the
        parent creates a checkpoint at time t, it has to establish
        contracts with its children at t"), attempts contract migration,
        prunes the contract graph, and checks the Theorem 1 bound.
        """
        if not self.rt.config.proactive_checkpointing:
            ck = self.rt.graph.latest_checkpoint(self.op_id)
            if ck is not None:
                if self._tr.enabled:
                    self._tr.event(
                        "checkpoint.skipped",
                        reason="proactive_checkpointing_disabled",
                        emitted=self.tuples_emitted,
                    )
                return None  # ablation mode: keep only the initial checkpoint
        graph = self.rt.graph
        ckpt = Checkpoint(
            op_id=self.op_id,
            seq=graph.next_seq(self.op_id),
            payload=self._checkpoint_payload(),
            work_at=self.work,
            emitted_at=self.tuples_emitted,
            reactive=not self.STATEFUL,
            created_at=self.rt.disk.query_now,
        )
        graph.add_checkpoint(ckpt)
        for child in self.children:
            child.sign_contract(anchor_ckpt=ckpt)
        migrated = 0
        if self.rt.config.contract_migration:
            migrated = graph.migrate_contracts(
                self.op_id,
                ckpt,
                self.tuples_emitted,
                self.control_state(),
                self.work,
            )
        pruned = graph.prune()
        if self.rt.config.check_invariants:
            graph.check_theorem1_bound(
                num_operators=len(self.rt.ops), height=self.rt.plan_height()
            )
        if self._tr.enabled:
            self._tr.event(
                "checkpoint.taken",
                ckpt_seq=ckpt.seq,
                reactive=ckpt.reactive,
                emitted=self.tuples_emitted,
                work=round(self.work, 6),
                migrated=migrated,
                pruned=pruned,
            )
            self._tr.metrics.counter(
                "checkpoints_taken_total", op=self.name
            ).inc()
        return ckpt

    def sign_contract(
        self,
        anchor_ckpt: Optional[Checkpoint] = None,
        anchor_contract: Optional[Contract] = None,
    ) -> Contract:
        """Sign a contract: agree to regenerate output from this point on."""
        graph = self.rt.graph
        if self.STATEFUL:
            fulfilling = graph.latest_checkpoint(self.op_id)
            if fulfilling is None:
                # Right after a resume the contract graph has not re-formed
                # yet (Section 3.3: "the contract graph will be gradually
                # reformed"). Until the next minimal-heap-state point, the
                # operator bridges the gap with a reactive checkpoint that
                # carries its full current state; its (large) payload is
                # charged like a dump if a suspend plan ever goes back to
                # it, so the cost accounting stays honest.
                fulfilling = self._full_state_checkpoint()
        else:
            fulfilling = self._reactive_checkpoint()
        contract = Contract(
            parent_op_id=self.parent.op_id if self.parent else -1,
            child_op_id=self.op_id,
            control=self.control_state(),
            child_ckpt_id=fulfilling.ckpt_id,
            anchor_ckpt_id=anchor_ckpt.ckpt_id if anchor_ckpt else None,
            anchor_contract_id=(
                anchor_contract.contract_id if anchor_contract else None
            ),
            work_at_signing=self.work,
            emitted_at_signing=self.tuples_emitted,
            signed_at=self.rt.disk.query_now,
        )
        for child in self.stream_children():
            contract.nested[child.op_id] = child.sign_contract(
                anchor_contract=contract
            )
        graph.add_contract(contract)
        if self._tr.enabled:
            self._tr.event(
                "contract.signed",
                parent=self.parent.op_id if self.parent else None,
                anchor="checkpoint" if anchor_ckpt is not None else (
                    "contract" if anchor_contract is not None else "root"
                ),
                fulfilling_op=fulfilling.op_id,
                fulfilling_seq=fulfilling.seq,
                reactive=fulfilling.reactive,
                emitted=self.tuples_emitted,
            )
            self._tr.metrics.counter(
                "contracts_signed_total", op=self.name
            ).inc()
        return contract

    def _full_state_checkpoint(self) -> Checkpoint:
        """Reactive full-state checkpoint for a stateful operator.

        Used only in the window between a resume and the operator's next
        minimal-heap-state point. The payload carries the complete heap
        and control state; GoBack resume restores it directly and rolls
        forward from there.
        """
        graph = self.rt.graph
        ckpt = Checkpoint(
            op_id=self.op_id,
            seq=graph.next_seq(self.op_id),
            payload={
                "__full_state__": True,
                "heap": self._heap_state_payload(),
                "control": self.control_state(),
            },
            work_at=self.work,
            emitted_at=self.tuples_emitted,
            reactive=True,
            created_at=self.rt.disk.query_now,
        )
        graph.add_checkpoint(ckpt)
        for child in self.children:
            child.sign_contract(anchor_ckpt=ckpt)
        return ckpt

    def _reactive_checkpoint(self) -> Checkpoint:
        """Reactive checkpoint for a stateless operator (Section 3.1)."""
        graph = self.rt.graph
        ckpt = Checkpoint(
            op_id=self.op_id,
            seq=graph.next_seq(self.op_id),
            payload=self._checkpoint_payload(),
            work_at=self.work,
            emitted_at=self.tuples_emitted,
            reactive=True,
            created_at=self.rt.disk.query_now,
        )
        graph.add_checkpoint(ckpt)
        for child in self.children:
            child.sign_contract(anchor_ckpt=ckpt)
        return ckpt

    # ------------------------------------------------------------------
    # Suspend phase
    # ------------------------------------------------------------------
    def do_suspend(self, ctx: SuspendContext) -> None:
        """``Suspend()``: suspend so resume continues from this exact point."""
        decision = ctx.plan.decision(self.op_id)
        if decision.strategy is Strategy.DUMP or not self.STATEFUL:
            self._suspend_as_dump(ctx)
            return
        if decision.goback_anchor != self.op_id:
            raise ContractError(
                f"operator {self.name} received Suspend() but its plan "
                f"anchors at {decision.goback_anchor}"
            )
        ckpt = ctx.graph.latest_checkpoint(self.op_id)
        if ckpt is None:
            raise ContractError(
                f"operator {self.name} has no checkpoint for GoBack"
            )
        self._add_goback_entry(ctx, target_control=self.control_state(),
                               ckpt=ckpt, saved_rows=[])
        self._suspend_children_for_goback(ctx, ckpt, enforced_contract=None)

    def do_suspend_to(self, contract: Contract, ctx: SuspendContext) -> None:
        """``Suspend(Ctr)``: suspend so resume continues from the contract."""
        decision = ctx.plan.decision(self.op_id)
        owes_nothing = (
            self.tuples_emitted == contract.emitted_at_signing
            and not contract.saved_rows
        )
        if decision.strategy is Strategy.DUMP:
            if owes_nothing:
                # No output produced since the contract was signed, so the
                # current state already satisfies it: dump exactly as for a
                # plain Suspend().
                self._suspend_as_dump(ctx)
                return
            self._suspend_as_dump_to_contract(ctx, contract)
            return
        # GoBack: restore the fulfilling checkpoint and roll forward to the
        # contract point on resume.
        ckpt = ctx.graph.checkpoint(contract.child_ckpt_id)
        self._add_goback_entry(
            ctx,
            target_control=dict(contract.control),
            ckpt=ckpt,
            saved_rows=list(contract.saved_rows),
        )
        self._suspend_children_for_goback(ctx, ckpt, enforced_contract=contract)

    def _suspend_as_dump(self, ctx: SuspendContext) -> None:
        handle = self._dump_heap_state(ctx)
        entry = OpSuspendEntry(
            op_id=self.op_id,
            kind=KIND_DUMP,
            target_control=self.control_state(),
            dump_handle=handle,
            saved_rows=list(self._pending_rows),
        )
        ctx.sq.add_entry(entry)
        self._trace_suspend_entry(entry, handle)
        for child in self.children:
            child.do_suspend(ctx)

    def _suspend_as_dump_to_contract(
        self, ctx: SuspendContext, contract: Contract
    ) -> None:
        handle = self._dump_heap_state(ctx)
        entry = OpSuspendEntry(
            op_id=self.op_id,
            kind=KIND_DUMP_TO_CONTRACT,
            target_control=dict(contract.control),
            dump_handle=handle,
            current_control=self.control_state(),
            saved_rows=list(contract.saved_rows),
        )
        ctx.sq.add_entry(entry)
        self._trace_suspend_entry(entry, handle)
        # Heap children have not moved since the contract was signed (the
        # c_{i,j} restriction guarantees the same batch), so they suspend
        # to their current positions; stream children are repositioned via
        # the nested contracts captured at signing time.
        for child in self.children:
            if child in self.stream_children():
                nested = contract.nested.get(child.op_id)
                if nested is not None:
                    child.do_suspend_to(nested, ctx)
                else:
                    child.do_suspend(ctx)
            else:
                child.do_suspend(ctx)

    def _suspend_children_for_goback(
        self,
        ctx: SuspendContext,
        ckpt: Checkpoint,
        enforced_contract: Optional[Contract],
    ) -> None:
        """Propagate suspension below a GoBack operator.

        Heap children suspend to the contracts established at the
        fulfilling checkpoint (they must regenerate the heap state from
        there). Stream children suspend to the nested contract captured
        when ``enforced_contract`` was signed; when the GoBack anchors at
        this operator itself (plain ``Suspend()``), the stream child's
        current position is already the roll-forward target, so it is
        given a contract signed on the spot.
        """
        stream = set(id(c) for c in self.stream_children())
        for child in self.children:
            if id(child) in stream:
                if enforced_contract is None:
                    fresh = child.sign_contract(anchor_ckpt=ckpt)
                    child.do_suspend_to(fresh, ctx)
                else:
                    nested = enforced_contract.nested.get(child.op_id)
                    if nested is None:
                        # The contract was migrated to the checkpoint, so
                        # the checkpoint's own contract has the position.
                        nested = ctx.graph.contract_from(ckpt, child.op_id)
                    child.do_suspend_to(nested, ctx)
            else:
                child_contract = ctx.graph.contract_from(ckpt, child.op_id)
                child.do_suspend_to(child_contract, ctx)

    def _add_goback_entry(
        self,
        ctx: SuspendContext,
        target_control: dict,
        ckpt: Checkpoint,
        saved_rows: list,
    ) -> None:
        saved = list(saved_rows) + list(self._pending_rows)
        entry = OpSuspendEntry(
            op_id=self.op_id,
            kind=KIND_GOBACK,
            target_control=target_control,
            ckpt_payload=dict(ckpt.payload),
            saved_rows=saved,
        )
        ctx.sq.add_entry(entry)
        if self._tr.enabled:
            self._tr.event(
                "op.suspend",
                kind=KIND_GOBACK,
                ckpt_op=ckpt.op_id,
                ckpt_seq=ckpt.seq,
                saved_rows=len(saved),
            )
            self._tr.metrics.counter("suspend_goback_entries_total").inc()

    def _trace_suspend_entry(self, entry: OpSuspendEntry, handle) -> None:
        """Emit the ``op.suspend`` event for a dump-style entry."""
        if not self._tr.enabled:
            return
        pages = handle.pages if handle is not None else 0
        self._tr.event(
            "op.suspend",
            kind=entry.kind,
            dump_pages=pages,
            saved_rows=len(entry.saved_rows),
        )
        metrics = self._tr.metrics
        metrics.counter("suspend_dump_entries_total").inc()
        if pages:
            metrics.counter("suspend_dump_pages_total").inc(pages)
            page_bytes = self.rt.disk.cost_model.page_bytes
            metrics.counter("heap_bytes_checkpointed_total").inc(
                pages * page_bytes
            )

    def _dump_heap_state(self, ctx: SuspendContext) -> Optional[DumpHandle]:
        """Write the heap state to the state store; None when empty."""
        payload = self._heap_state_payload()
        pages = self.heap_pages()
        if payload is None and pages == 0:
            return None
        key = ctx.store.fresh_key(f"dump_{self.name}")
        with self.attribute_work():
            handle = ctx.store.dump(key, payload, pages)
        return handle

    def _heap_state_payload(self):
        """The heap state object to dump; None for stateless operators."""
        return None

    # ------------------------------------------------------------------
    # Resume phase
    # ------------------------------------------------------------------
    def do_resume(self, ctx: ResumeContext) -> None:
        """``Resume()``: children first, then restore own state."""
        for child in self.children:
            child.do_resume(ctx)
        self._do_open()
        self.is_open = True
        entry = ctx.sq.entry(self.op_id)
        self._pending_rows = deque(entry.saved_rows)
        start = self.rt.disk.query_now
        if entry.kind in (KIND_DUMP, KIND_DUMP_TO_CONTRACT):
            payload = None
            if entry.dump_handle is not None:
                with self.attribute_work():
                    payload = ctx.store.load(entry.dump_handle)
            self._resume_from_dump(entry, payload, ctx)
        else:
            self._resume_goback(entry, ctx)
        if self._tr.enabled:
            # The span covers only this operator's own restore (children
            # resumed above, before ``start``); for GoBack entries its
            # duration is exactly the redo work Equation (2) charges.
            redo = round(self.rt.disk.query_now - start, 6)
            self._tr.event(
                "op.resume", ts=start, dur=redo, kind=entry.kind
            )
            if entry.kind == KIND_GOBACK:
                self._tr.metrics.histogram("resume_redo_work").observe(redo)
            elif entry.dump_handle is not None:
                self._tr.metrics.counter("resume_pages_loaded_total").inc(
                    entry.dump_handle.pages
                )
        # Output counting restarts at zero in the resumed process; only
        # deltas matter from here on.

    def _resume_from_dump(
        self, entry: OpSuspendEntry, payload, ctx: ResumeContext
    ) -> None:
        """Restore heap state from ``payload`` and control from the entry.

        Default implementation suits stateless operators (nothing to do).
        """
        if payload is not None:
            raise NotImplementedError(
                f"{type(self).__name__} dumped heap state but does not "
                "implement _resume_from_dump"
            )

    def _resume_goback(self, entry: OpSuspendEntry, ctx: ResumeContext) -> None:
        """Restore the checkpoint payload, then roll forward to the target."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement GoBack resume"
        )

    # ------------------------------------------------------------------
    # Suspend-time cost estimation (Section 5 constants)
    # ------------------------------------------------------------------
    def estimate_dump_suspend_cost(self) -> float:
        """d^s_i: cost of writing current heap + control state to disk.

        Control state is aggregated into the single SuspendedQuery write,
        so its per-operator share is byte-proportional, not a whole page.
        """
        disk = self.rt.disk
        cost = disk.cost_of_page_writes(self.heap_pages())
        nbytes = control_state_bytes(
            self.control_state(), self.schema.bytes_per_tuple
        )
        cost += disk.cost_of_page_writes(nbytes / disk.cost_model.page_bytes)
        return cost

    def estimate_dump_resume_cost(self) -> float:
        """d^r_i: cost of reading the dumped state back."""
        disk = self.rt.disk
        return disk.cost_of_page_reads(max(1, self.heap_pages()))

    def estimate_goback_suspend_cost(self, link) -> float:
        """g^s_{i,j}: usually negligible (control state only).

        Like the control share of d^s, charged byte-proportionally since
        all control state travels in one SuspendedQuery write. Saved rows
        carried by a migrated contract are charged at tuple width via
        ``control_state_bytes``.
        """
        disk = self.rt.disk
        nbytes = control_state_bytes(
            self.control_state(), self.schema.bytes_per_tuple
        )
        if link.ckpt_payload:
            nbytes += control_state_bytes(
                link.ckpt_payload, self.schema.bytes_per_tuple
            )
        return disk.cost_of_page_writes(nbytes / disk.cost_model.page_bytes)

    def estimate_goback_resume_cost(self, link) -> float:
        """g^r_{i,j}: redone work, approximated as the paper does by the
        difference between current cumulative work and cumulative work at
        the fulfilling checkpoint. Operators with cheaper repositioning
        (e.g. sort's merge phase) override this."""
        baseline = link.work_baseline
        return max(0.0, self.work - baseline)
