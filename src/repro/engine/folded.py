"""Folded operator variants: shared scans and shared build-side joins.

These subclasses are substituted by ``instantiate_plan`` when the query's
runtime carries a :class:`~repro.fold.manager.FoldBinding`. Each override
changes only *where bytes come from*, never what the owning query's lane
is charged: the lane replays the exact as-if-solo charge sequence, so
checkpoints, contracts, the suspend-plan optimizer's constants, and
durable images are byte-identical to an unfolded run's.

The plan spec recorded in images is the *original* spec (substitution
happens at instantiation), so a suspended folded query resumes cleanly
with or without a fold manager present — fold split on suspend is just
"resume without re-grafting" plus cursor detach at close.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional, Sequence

from repro.engine.hash_join import HybridHashJoin, SimpleHashJoin
from repro.engine.scan import TableScan
from repro.storage.disk import add_each
from repro.storage.heapfile import ScanCursor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fold.manager import FoldBinding, FoldProducer

Row = tuple


class FoldCursor(ScanCursor):
    """A scan cursor that drains pages from a shared fold producer.

    Page fetches go through :meth:`FoldProducer.acquire` (one real,
    globally charged read per page per window residency, split across all
    consumers) and the owning query's lane is charged an *absorbed* read
    at the exact point the plain cursor would charge a real one. All
    position/seek/control-state behavior is inherited unchanged.
    """

    def __init__(self, heapfile, producer: "FoldProducer", disk):
        super().__init__(heapfile)
        self._producer = producer
        self._disk = disk
        producer.attach(self)

    def _fetch_page(self, page_no: int) -> Sequence[Row]:
        rows = self._producer.acquire(page_no)
        self._disk.absorbed_read_pages(1)
        self._producer.stats.pages_absorbed += 1
        return rows

    def detach(self) -> None:
        self._producer.detach(self)


class SharedScanLeaf(TableScan):
    """A table scan grafted onto a shared fold producer.

    Only cursor creation and teardown differ from :class:`TableScan`;
    contracts, checkpoints, control state, batch execution, and resume
    are all inherited — which is precisely why a fold-split image is
    identical to an unfolded one by construction.
    """

    def __init__(self, op_id, name, runtime, table, producer: "FoldProducer"):
        super().__init__(op_id, name, runtime, table)
        self.producer = producer

    def _do_open(self) -> None:
        self._cursor = FoldCursor(self.table, self.producer, self.rt.disk)

    def _do_close(self) -> None:
        # Detach is the fold split: the remaining members keep sharing
        # the producer window; this cursor's pages are released.
        if self._cursor is not None:
            self._cursor.detach()
        super()._do_close()


class SharedBuildMixin:
    """Shares per-partition build-side hash tables between sibling joins.

    The first join to reload a (spilled) partition builds the hash table
    for real and publishes it under its build-side fingerprint; siblings
    with an equal fingerprint adopt the published table and charge their
    own lane the *absorbed* equivalents of the reload I/O and per-row
    build CPU — computed from their own partition sizes, which equal the
    provider's because equal build fingerprints imply identical build
    input and partitioning. Memory-resident partitions are never shared
    (there is no reload to save).

    The adopted dict is aliased, not copied: joins rebind ``_hash_table``
    rather than mutate it, probe via ``.get``, and copy on heap-state
    dumps, so aliasing is safe.
    """

    _fold_binding: Optional["FoldBinding"] = None
    _fold_build_key: Optional[str] = None

    def bind_fold(self, binding: "FoldBinding", build_key: str) -> None:
        self._fold_binding = binding
        self._fold_build_key = build_key

    def _load_partition(self, p: int) -> None:
        binding = self._fold_binding
        if (
            binding is None
            or self._fold_build_key is None
            or self._is_memory_partition(p)
        ):
            super()._load_partition(p)
            return
        manager = binding.manager
        cached = manager.lookup_build(self._fold_build_key, p)
        if cached is None:
            super()._load_partition(p)
            manager.store_build(self._fold_build_key, p, self._hash_table)
            return
        # Adopt the shared table; replay the as-if-solo charges on this
        # query's lane only (same sequence super() produces: the spilled
        # partition's page reads, then one CPU charge per build row).
        disk = self.rt.disk
        pages = math.ceil(len(self._build_disk[p]) / self.build_tpp)
        with self.attribute_work():
            disk.absorbed_read_pages(pages)
        n = len(self.build_pending[p]) + len(self._build_disk[p])
        disk.absorbed_cpu_tuples_each(n)
        self.work = add_each(self.work, disk.cost_model.cpu_tuple_cost, n)
        self._hash_table = cached
        self._probe_rows = list(self._probe_disk[p])
        manager.note_build_hit()
        manager.stats.pages_absorbed += pages


class FoldedSimpleHashJoin(SharedBuildMixin, SimpleHashJoin):
    """Simple hash join with shared build-side partition tables."""


class FoldedHybridHashJoin(SharedBuildMixin, HybridHashJoin):
    """Hybrid hash join with shared build-side partition tables."""
