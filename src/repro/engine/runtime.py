"""Per-query runtime context and the suspend controller.

The :class:`Runtime` is shared by every operator of one executing query:
it holds the database, the contract graph, the engine configuration, an
operator registry, and the :class:`SuspendController` that turns an
external suspend request into the paper's *suspend exception* at the next
safe point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.common.errors import LifecycleError, SuspendRequested
from repro.core.contract_graph import ContractGraph
from repro.core.strategies import SuspendPlan
from repro.core.suspended_query import SuspendedQuery
from repro.engine.config import EngineConfig
from repro.obs.tracer import Tracer, current_tracer
from repro.storage.database import Database
from repro.storage.disk import QueryLane, SimulatedDisk
from repro.storage.statefile import ScopedStateStore, StateStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.base import Operator
    from repro.fold.manager import FoldBinding


class SuspendController:
    """Arms a suspend condition and raises at the next safe poll.

    Operators poll at points where their in-memory state is internally
    consistent (between tuples); the paper's analogue is handling the
    suspend exception "at the query's next blocking step". The condition
    is a predicate over the runtime, so experiments can express triggers
    like "suspend when the NLJ outer buffer is 50% full" or "after the
    scan of R has produced 100,000 tuples".
    """

    def __init__(self):
        self._condition: Optional[Callable[["Runtime"], bool]] = None
        self._fired = False
        self._suppressed = 0

    def arm(self, condition: Callable[["Runtime"], bool]) -> None:
        """Install a suspend condition; it fires at most once."""
        self._condition = condition
        self._fired = False

    def disarm(self) -> None:
        self._condition = None

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def armed(self) -> bool:
        """True while a live condition could still fire.

        The batched execution path checks this once per batch: when no
        condition is armed, ``poll()`` is a no-op and the vectorized fast
        loops may skip it wholesale; when armed, operators degrade to the
        per-row loop so the poll happens at the exact row boundaries the
        row path polls at.
        """
        return self._condition is not None and not self._fired

    def suppress(self) -> None:
        """Disable polling (used inside the suspend and resume phases)."""
        self._suppressed += 1

    def unsuppress(self) -> None:
        if self._suppressed <= 0:
            raise LifecycleError("unbalanced SuspendController.unsuppress()")
        self._suppressed -= 1

    def poll(self, runtime: "Runtime") -> None:
        """Raise :class:`SuspendRequested` if the armed condition holds."""
        if self._fired or self._suppressed or self._condition is None:
            return
        if self._condition(runtime):
            self._fired = True
            raise SuspendRequested("suspend condition met")


class Runtime:
    """Shared execution context of one query."""

    def __init__(
        self,
        db: Database,
        config: Optional[EngineConfig] = None,
        tracer: Optional[Tracer] = None,
        query: Optional[str] = None,
    ):
        self.db = db
        self.config = config or EngineConfig()
        #: The runtime's tracer, bound to the virtual clock and (when
        #: known) the query name. Defaults to the process-wide tracer
        #: (:func:`repro.obs.tracer.current_tracer`), which is the no-op
        #: NullTracer unless tracing was explicitly enabled.
        base_tracer = tracer if tracer is not None else current_tracer()
        self.tracer = base_tracer.bind(clock=db.disk.clock, query=query)
        self.graph = ContractGraph(tracer=self.tracer)
        self.controller = SuspendController()
        self.ops: dict[int, "Operator"] = {}
        self.ops_by_name: dict[str, "Operator"] = {}
        #: The query's private as-if-solo clock/counters. Installed as the
        #: disk's active lane by the session while this query is the one
        #: executing; all per-query cost-model reads go through
        #: :attr:`SimulatedDisk.query_now` so they see this lane.
        self.lane = QueryLane(name=query or "")
        #: Session name doubling as the state-store key namespace; ``None``
        #: for anonymous sessions (legacy global key sequence).
        self.key_scope = query
        #: Fold binding installed by the scheduler before plan
        #: instantiation; when set, ``instantiate_plan`` substitutes
        #: shared-scan leaves / shared-build joins (see ``repro.fold``).
        self.fold: Optional["FoldBinding"] = None

    @property
    def disk(self) -> SimulatedDisk:
        return self.db.disk

    @property
    def store(self) -> StateStore:
        if self.key_scope is not None:
            return ScopedStateStore(self.db.state_store, self.key_scope)
        return self.db.state_store

    def register(self, op: "Operator") -> None:
        if op.op_id in self.ops:
            raise ValueError(f"duplicate operator id {op.op_id}")
        self.ops[op.op_id] = op
        self.ops_by_name[op.name] = op

    def op(self, op_id: int) -> "Operator":
        return self.ops[op_id]

    def op_named(self, name: str) -> "Operator":
        return self.ops_by_name[name]

    def poll(self) -> None:
        self.controller.poll(self)

    def memory_in_use(self) -> int:
        """Bytes of operator heap state currently held (page-granular)."""
        page_bytes = self.db.cost_model.page_bytes
        return sum(op.heap_pages() * page_bytes for op in self.ops.values())

    def root(self) -> "Operator":
        roots = [op for op in self.ops.values() if op.parent is None]
        if len(roots) != 1:
            raise ValueError(f"expected one root operator, found {len(roots)}")
        return roots[0]

    def plan_height(self) -> int:
        def depth(op: "Operator") -> int:
            if not op.children:
                return 1
            return 1 + max(depth(c) for c in op.children)

        return depth(self.root())


@dataclass
class SuspendContext:
    """Carries the suspend plan and the SuspendedQuery being populated."""

    plan: SuspendPlan
    sq: SuspendedQuery
    runtime: Runtime

    @property
    def graph(self) -> ContractGraph:
        return self.runtime.graph

    @property
    def store(self) -> StateStore:
        return self.runtime.store

    @property
    def disk(self) -> SimulatedDisk:
        return self.runtime.disk


@dataclass
class ResumeContext:
    """Carries the SuspendedQuery being restored."""

    sq: SuspendedQuery
    runtime: Runtime

    @property
    def store(self) -> StateStore:
        return self.runtime.store

    @property
    def disk(self) -> SimulatedDisk:
        return self.runtime.disk
