"""Simple (Grace) hash join and hybrid hash join (Section 4).

Phase 1 ("partition") hashes both inputs into k partitions; in-memory
partition blocks are flushed to disk as they fill. The end of phase 1 is a
materialization point. Phase 2 ("join") loads one build partition into
memory at a time and streams the matching probe partition past it.

Checkpoint behaviour, following the paper:

- one proactive checkpoint at the very start (before reading any child)
  — during partitioning "different blocks become empty at different
  times", so there are no usable minimal-heap-state points mid-phase;
- contracts signed during phase 1 record, as an optimization, the number
  of blocks each partition has already flushed, so a GoBack can skip
  re-writing those blocks while re-hashing;
- a proactive checkpoint at the phase boundary and at every partition
  boundary in phase 2 (the current build partition is the heap state and
  it empties between partitions), so GoBack in phase 2 just reloads the
  current partition from disk;
- hybrid hash join keeps the first ``memory_partitions`` build partitions
  entirely in memory; those have no materialization point, making both
  suspend strategies expensive for them — exactly the weakness Example 9
  exploits when comparing HHJ against SMJ under suspends.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.common.errors import ContractError
from repro.core.suspended_query import OpSuspendEntry
from repro.engine.base import Operator, Row
from repro.engine.filter import Filter
from repro.engine.runtime import ResumeContext, Runtime
from repro.engine.scan import TableScan
from repro.relational.expressions import (
    EquiJoinCondition,
    compile_left_key,
    compile_predicate,
    compile_right_key,
)
from repro.storage.disk import add_each
from repro.storage.statefile import DumpHandle

PHASE_PARTITION = "partition"
PHASE_JOIN = "join"
PHASE_DONE = "done"


class SimpleHashJoin(Operator):
    """Grace hash join with ``num_partitions`` disk partitions."""

    STATEFUL = True

    #: Build partitions kept fully in memory (0 for simple/Grace hash).
    memory_partitions = 0

    def __init__(
        self,
        op_id: int,
        name: str,
        build: Operator,
        probe: Operator,
        runtime: Runtime,
        condition: EquiJoinCondition,
        num_partitions: int = 8,
    ):
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        super().__init__(
            op_id, name, [build, probe], runtime, build.schema.concat(probe.schema)
        )
        self.condition = condition
        self.num_partitions = num_partitions
        self.phase = PHASE_PARTITION
        # Per-partition in-memory rows not yet flushed (or, for memory
        # partitions of the hybrid variant, all rows).
        self.build_pending: list[list[Row]] = []
        self.probe_pending: list[list[Row]] = []
        # Per-partition flushed rows (simulated disk payloads built up
        # incrementally; writes are charged per block as they fill).
        self._build_disk: list[list[Row]] = []
        self._probe_disk: list[list[Row]] = []
        self.build_flushed_blocks: list[int] = []
        self.probe_flushed_blocks: list[int] = []
        self.build_consumed = 0
        self.probe_consumed = 0
        self.build_done = False
        self.current_partition = -1
        self._hash_table: dict = {}
        self._probe_rows: list[Row] = []
        self.probe_pos = 0
        self._emit_matches: Optional[list[Row]] = None
        self._emit_pos = 0
        self._emit_probe_row: Optional[Row] = None

    @property
    def build_child(self) -> Operator:
        return self.children[0]

    @property
    def probe_child(self) -> Operator:
        return self.children[1]

    @property
    def build_tpp(self) -> int:
        return self.build_child.schema.tuples_per_page(
            self.rt.disk.cost_model.page_bytes
        )

    @property
    def probe_tpp(self) -> int:
        return self.probe_child.schema.tuples_per_page(
            self.rt.disk.cost_model.page_bytes
        )

    def _do_open(self) -> None:
        k = self.num_partitions
        self.build_pending = [[] for _ in range(k)]
        self.probe_pending = [[] for _ in range(k)]
        self._build_disk = [[] for _ in range(k)]
        self._probe_disk = [[] for _ in range(k)]
        self.build_flushed_blocks = [0] * k
        self.probe_flushed_blocks = [0] * k

    def _partition_of(self, key) -> int:
        return hash(key) % self.num_partitions

    def _is_memory_partition(self, p: int) -> bool:
        return p < self.memory_partitions

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _next(self) -> Optional[Row]:
        while True:
            if self.phase == PHASE_DONE:
                return None
            if self.phase == PHASE_PARTITION:
                self._run_partition_phase()
                self.current_partition = -1
                self.phase = PHASE_JOIN
                self.make_checkpoint()  # materialization point
            row = self._join_next()
            if row is not None:
                return row
            self.phase = PHASE_DONE
            return None

    def _run_partition_phase(self) -> None:
        while not self.build_done:
            row = self.build_child.next()
            if row is None:
                self.build_done = True
                break
            self.build_consumed += 1
            self.charge_cpu(1)
            self._stash(row, self.condition.left_key(row), build_side=True)
        while True:
            row = self.probe_child.next()
            if row is None:
                break
            self.probe_consumed += 1
            self.charge_cpu(1)
            self._stash(row, self.condition.right_key(row), build_side=False)
        self._flush_all_pending()

    def _stash(self, row: Row, key, build_side: bool) -> None:
        p = self._partition_of(key)
        pending = self.build_pending if build_side else self.probe_pending
        pending[p].append(row)
        if self._is_memory_partition(p):
            # Hybrid: neither side of a memory partition spills — that is
            # the I/O saving hybrid hash buys by giving up the
            # materialization point.
            return
        tpp = self.build_tpp if build_side else self.probe_tpp
        if len(pending[p]) >= tpp:
            self._flush_block(p, build_side)

    def _flush_block(self, p: int, build_side: bool) -> None:
        pending = self.build_pending if build_side else self.probe_pending
        disk = self._build_disk if build_side else self._probe_disk
        flushed = (
            self.build_flushed_blocks if build_side else self.probe_flushed_blocks
        )
        if not pending[p]:
            return
        with self.attribute_work():
            self.rt.disk.write_pages(1)
        disk[p].extend(pending[p])
        pending[p] = []
        flushed[p] += 1

    def _flush_all_pending(self) -> None:
        for p in range(self.num_partitions):
            if not self._is_memory_partition(p):
                self._flush_block(p, build_side=True)
                self._flush_block(p, build_side=False)

    def _run_partition_phase_batched(self) -> None:
        """Phase 1 with vectorized input drains where the child shape
        allows it; identical charges and state as the row-path phase."""
        if not self.build_done:
            if not self._drain_input_fast(build_side=True):
                while True:
                    row = self.build_child.next()
                    if row is None:
                        break
                    self.build_consumed += 1
                    self.charge_cpu(1)
                    self._stash(row, self.condition.left_key(row), True)
            self.build_done = True
        if not self._drain_input_fast(build_side=False):
            while True:
                row = self.probe_child.next()
                if row is None:
                    break
                self.probe_consumed += 1
                self.charge_cpu(1)
                self._stash(row, self.condition.right_key(row), False)
        self._flush_all_pending()

    def _drain_input_fast(self, build_side: bool) -> bool:
        """Drain one input to exhaustion page-segment-wise, hashing rows
        into partitions. Returns False when the child shape is not fused
        (caller falls back to the row-exact loop).

        Row-path charges per consumed row: the child-wrapper CPU constant
        (plus a filter-examine and filter-wrapper constant under a
        filter) and this operator's consume constant — all the same
        value, so they accumulate and fold into bulk charges flushed
        before every I/O event. Block flushes are data-dependent, so the
        stash stays per-row; each flush first settles the pending clock
        charges and this operator's pending work so the write's cost
        lands on the identical virtual-clock instant as the row path.
        """
        child = self.build_child if build_side else self.probe_child
        filt: Optional[Filter] = None
        scan = child
        if isinstance(child, Filter):
            filt = child
            scan = child.child
        if not isinstance(scan, TableScan):
            return False
        if scan._pending_rows or (filt is not None and filt._pending_rows):
            return False
        cond = self.condition
        raw_key = cond.left_key if build_side else cond.right_key
        if filt is not None and self.rt.config.contract_migration:
            # Row-exact prefix while the filter carries an open contract:
            # its first match migrates the contract (saving the row), and
            # no new contract can appear mid-phase (contracts are only
            # signed at checkpoints, which this phase never takes).
            while filt._has_open_contracts():
                row = child.next()
                if row is None:
                    return True
                if build_side:
                    self.build_consumed += 1
                else:
                    self.probe_consumed += 1
                self.charge_cpu(1)
                self._stash(row, raw_key(row), build_side)
        disk = self.rt.disk
        c = disk.cost_model.cpu_tuple_cost
        charge_each = disk.charge_cpu_tuples_each
        cursor = scan._cursor
        pred = compile_predicate(filt.predicate) if filt is not None else None
        key_fn = compile_left_key(cond) if build_side else compile_right_key(cond)
        pending = self.build_pending if build_side else self.probe_pending
        tpp = self.build_tpp if build_side else self.probe_tpp
        k = self.num_partitions
        mem_k = self.memory_partitions
        crun = 0      # same-constant clock charges pending since last I/O
        work_run = 0  # consume constants owed to self.work
        filt_run = 0  # constants owed to the filter's work (all same value)
        scan_run = 0  # wrapper constants owed to the scan's work
        consumed = 0
        while True:
            if crun:
                charge_each(crun)
                crun = 0
            if scan_run:
                scan.work = add_each(scan.work, c, scan_run)
                scan_run = 0
            before = disk.query_now
            page = cursor.current_page()
            after = disk.query_now
            if after != before:
                scan.work += after - before
            if page is None:
                break
            slot = cursor.position().slot
            limit = len(page)
            i = slot
            while i < limit:
                row = page[i]
                i += 1
                if pred is None:
                    crun += 2
                elif pred(row):
                    crun += 4
                    filt_run += 2
                else:
                    crun += 2
                    filt_run += 1
                    continue
                work_run += 1
                consumed += 1
                p = hash(key_fn(row)) % k
                plist = pending[p]
                plist.append(row)
                if p >= mem_k and len(plist) >= tpp:
                    charge_each(crun)
                    crun = 0
                    self.work = add_each(self.work, c, work_run)
                    work_run = 0
                    self._flush_block(p, build_side)
            examined = limit - slot
            cursor.advance(examined)
            scan_run += examined
            scan.tuples_emitted += examined
        if work_run:
            self.work = add_each(self.work, c, work_run)
        if filt is not None:
            if filt_run:
                filt.work = add_each(filt.work, c, filt_run)
            filt.tuples_emitted += consumed
        if build_side:
            self.build_consumed += consumed
        else:
            self.probe_consumed += consumed
        return True

    def _join_next(self) -> Optional[Row]:
        while True:
            if self._emit_matches is not None and self._emit_pos < len(
                self._emit_matches
            ):
                return self._emit_next()
            self._emit_matches = None
            if self.current_partition >= 0:
                while self.probe_pos < len(self._probe_rows):
                    probe_row = self._probe_rows[self.probe_pos]
                    self.probe_pos += 1
                    if (
                        not self._is_memory_partition(self.current_partition)
                        and self.probe_pos % self.probe_tpp == 1
                    ):
                        with self.attribute_work():
                            self.rt.disk.read_pages(1)
                    key = self.condition.right_key(probe_row)
                    matches = self._hash_table.get(key)
                    if matches:
                        self.charge_cpu(1)
                        # Emit the matching pairs one at a time.
                        self._emit_matches = matches
                        self._emit_pos = 0
                        self._emit_probe_row = probe_row
                        return self._emit_next()
            if not self._advance_partition():
                return None

    def _emit_next(self) -> Optional[Row]:
        row = self._emit_matches[self._emit_pos] + self._emit_probe_row
        self._emit_pos += 1
        return row

    def _next_batch_fast(self, max_rows: int) -> list:
        """Vectorized probe/emit drain for the join phase.

        Between block reads every charge is the per-tuple CPU constant
        (match charges and emit-wrapper charges), so they accumulate in
        ``crun`` and fold into one bulk charge that is flushed right
        before each block read — the identical charge sequence the row
        path produces. Partition boundaries end the batch (when it is
        non-empty) so the boundary checkpoint fires at the start of the
        next call, at the exact virtual-clock instant and operator state
        the row path fires it.
        """
        if self._pending_rows:
            return super()._next_batch_fast(max_rows)
        out: list = []
        if self.phase == PHASE_DONE:
            return out
        if self.phase == PHASE_PARTITION:
            self._run_partition_phase_batched()
            self.current_partition = -1
            self.phase = PHASE_JOIN
            self.make_checkpoint()  # materialization point
        disk = self.rt.disk
        charge_each = disk.charge_cpu_tuples_each
        c = disk.cost_model.cpu_tuple_cost
        right_key = compile_right_key(self.condition)
        need = max_rows
        crun = 0  # same-constant CPU charges pending since the last I/O
        while need > 0:
            em = self._emit_matches
            if em is not None:
                pos = self._emit_pos
                avail = len(em) - pos
                if avail > 0:
                    take = min(avail, need)
                    probe_row = self._emit_probe_row
                    out.extend([b + probe_row for b in em[pos:pos + take]])
                    self._emit_pos = pos + take
                    self.tuples_emitted += take
                    crun += take
                    need -= take
                    if need == 0:
                        break
                self._emit_matches = None
            found = False
            if self.current_partition >= 0:
                probe_rows = self._probe_rows
                n_probe = len(probe_rows)
                pos = self.probe_pos
                ht_get = self._hash_table.get
                mem = self._is_memory_partition(self.current_partition)
                tpp = self.probe_tpp
                while pos < n_probe:
                    probe_row = probe_rows[pos]
                    pos += 1
                    if not mem and pos % tpp == 1:
                        if crun:
                            charge_each(crun)
                            self.work = add_each(self.work, c, crun)
                            crun = 0
                        before = disk.query_now
                        disk.read_pages(1)
                        self.work += disk.query_now - before
                    matches = ht_get(right_key(probe_row))
                    if matches:
                        crun += 1  # the row path's match charge
                        self._emit_matches = matches
                        self._emit_pos = 0
                        self._emit_probe_row = probe_row
                        found = True
                        break
                self.probe_pos = pos
            if found:
                continue
            # Partition exhausted: the boundary checkpoint belongs to the
            # next call when this batch already produced rows.
            if out:
                break
            if not self._advance_partition():
                self.phase = PHASE_DONE
                break
        if crun:
            charge_each(crun)
            self.work = add_each(self.work, c, crun)
        return out

    def _advance_partition(self) -> bool:
        next_p = self.current_partition + 1
        if next_p >= self.num_partitions:
            return False
        if self.current_partition >= 0:
            # Current build partition discarded: minimal-heap-state point.
            self._hash_table = {}
            self._probe_rows = []
            self.make_checkpoint()
        self.current_partition = next_p
        self._load_partition(next_p)
        self.probe_pos = 0
        self._emit_matches = None
        return True

    def _load_partition(self, p: int) -> None:
        build_rows = list(self.build_pending[p]) + list(self._build_disk[p])
        if not self._is_memory_partition(p):
            pages = math.ceil(len(self._build_disk[p]) / self.build_tpp)
            with self.attribute_work():
                self.rt.disk.read_pages(pages)
        self._hash_table = {}
        for row in build_rows:
            self.charge_cpu(1)
            key = self.condition.left_key(row)
            self._hash_table.setdefault(key, []).append(row)
        # Probe rows stream one block at a time (charged as consumed).
        self._probe_rows = list(self._probe_disk[p])

    # ------------------------------------------------------------------
    # State introspection
    # ------------------------------------------------------------------
    def heap_tuples(self) -> int:
        if self.phase == PHASE_PARTITION:
            total = sum(len(b) for b in self.build_pending)
            total += sum(len(b) for b in self.probe_pending)
            return total
        total = sum(len(rows) for rows in self._hash_table.values())
        total += sum(
            len(self.build_pending[p])
            for p in range(self.memory_partitions)
            if p != self.current_partition
        )
        # Hybrid keeps the probe rows of memory partitions in memory too.
        total += sum(
            len(self.probe_pending[p]) for p in range(self.memory_partitions)
        )
        return total

    def heap_pages(self) -> int:
        tuples = self.heap_tuples()
        return math.ceil(tuples / self.build_tpp) if tuples else 0

    def control_state(self) -> dict:
        return {
            "phase": self.phase,
            "build_consumed": self.build_consumed,
            "probe_consumed": self.probe_consumed,
            "build_done": self.build_done,
            "build_flushed": list(self.build_flushed_blocks),
            "probe_flushed": list(self.probe_flushed_blocks),
            "current_partition": self.current_partition,
            "probe_pos": self.probe_pos,
            "emit_pos": getattr(self, "_emit_pos", 0),
            "emit_active": bool(getattr(self, "_emit_matches", None)),
            "emit_probe_row": getattr(self, "_emit_probe_row", None),
        }

    def _checkpoint_payload(self) -> dict:
        return {
            "phase": self.phase,
            "current_partition": self.current_partition,
            "build_disk": [list(rows) for rows in self._build_disk],
            "probe_disk": [list(rows) for rows in self._probe_disk],
            "memory_rows": [
                list(self.build_pending[p])
                for p in range(self.memory_partitions)
            ],
            "memory_probe_rows": [
                list(self.probe_pending[p])
                for p in range(self.memory_partitions)
            ],
            "build_flushed": list(self.build_flushed_blocks),
            "probe_flushed": list(self.probe_flushed_blocks),
        }

    def _heap_state_payload(self):
        return {
            "build_pending": [list(b) for b in self.build_pending],
            "probe_pending": [list(b) for b in self.probe_pending],
            "build_disk": [list(rows) for rows in self._build_disk],
            "probe_disk": [list(rows) for rows in self._probe_disk],
            "hash_rows": {
                k: list(v) for k, v in self._hash_table.items()
            },
            "probe_rows": list(self._probe_rows),
        }

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------
    def _resume_from_dump(self, entry: OpSuspendEntry, payload, ctx) -> None:
        self._restore_heap_and_control(payload or {}, entry.target_control)

    def _restore_heap_and_control(self, payload: dict, control: dict) -> None:
        """Restore complete state from a dump/full-checkpoint payload."""
        self.phase = control["phase"]
        self.build_consumed = control["build_consumed"]
        self.probe_consumed = control["probe_consumed"]
        self.build_done = control["build_done"]
        self.build_flushed_blocks = list(control["build_flushed"])
        self.probe_flushed_blocks = list(control["probe_flushed"])
        self.build_pending = [
            list(b) for b in payload.get("build_pending", self.build_pending)
        ]
        self.probe_pending = [
            list(b) for b in payload.get("probe_pending", self.probe_pending)
        ]
        self._build_disk = [
            list(rows) for rows in payload.get("build_disk", self._build_disk)
        ]
        self._probe_disk = [
            list(rows) for rows in payload.get("probe_disk", self._probe_disk)
        ]
        self.current_partition = control["current_partition"]
        if self.phase == PHASE_JOIN and self.current_partition >= 0:
            self._hash_table = {}
            for key, rows in payload.get("hash_rows", {}).items():
                self._hash_table[key] = list(rows)
            self._probe_rows = list(payload.get("probe_rows", []))
            self.probe_pos = control["probe_pos"]
            if control["emit_active"]:
                probe_row = control["emit_probe_row"]
                key = self.condition.right_key(probe_row)
                self._emit_matches = self._hash_table.get(key, [])
                self._emit_probe_row = probe_row
                self._emit_pos = control["emit_pos"]

    def _resume_goback(self, entry: OpSuspendEntry, ctx: ResumeContext) -> None:
        ckpt = entry.ckpt_payload or {}
        target = entry.target_control
        if ckpt.get("__full_state__"):
            heap = ckpt["heap"] or {}
            control = ckpt["control"]
            self._restore_heap_and_control(heap, control)
        else:
            self.phase = ckpt.get("phase", PHASE_PARTITION)
            self._build_disk = [list(r) for r in ckpt.get(
                "build_disk", [[] for _ in range(self.num_partitions)]
            )]
            self._probe_disk = [list(r) for r in ckpt.get(
                "probe_disk", [[] for _ in range(self.num_partitions)]
            )]
            self.build_flushed_blocks = list(
                ckpt.get("build_flushed", [0] * self.num_partitions)
            )
            self.probe_flushed_blocks = list(
                ckpt.get("probe_flushed", [0] * self.num_partitions)
            )
            for p, rows in enumerate(ckpt.get("memory_rows", [])):
                self.build_pending[p] = list(rows)
            for p, rows in enumerate(ckpt.get("memory_probe_rows", [])):
                self.probe_pending[p] = list(rows)

        if target["phase"] == PHASE_PARTITION:
            self._roll_forward_partitioning(target)
            return
        # Target in the join phase. If the checkpoint predates the phase
        # boundary (proactive checkpointing disabled), the partitioning
        # must be redone first; otherwise the partitions are on disk and
        # roll-forward is just reloading the current partition and
        # skipping to the probe cursor.
        if ckpt.get("phase", PHASE_PARTITION) == PHASE_PARTITION:
            self._roll_forward_partitioning(target)
            self._flush_all_pending()
        self.build_consumed = target["build_consumed"]
        self.probe_consumed = target["probe_consumed"]
        self.build_done = target["build_done"]
        self.phase = PHASE_JOIN
        self.current_partition = target["current_partition"]
        if self.current_partition >= 0:
            self._load_partition(self.current_partition)
            self.probe_pos = target["probe_pos"]
            if target["emit_active"]:
                probe_row = target["emit_probe_row"]
                key = self.condition.right_key(probe_row)
                self._emit_matches = self._hash_table.get(key, [])
                self._emit_probe_row = probe_row
                self._emit_pos = target["emit_pos"]

    def _roll_forward_partitioning(self, target: dict) -> None:
        """Re-consume children up to the target counts, re-hashing rows.

        Blocks that were already flushed before the checkpoint live in the
        checkpoint's disk payload; blocks flushed *after* it are rewritten
        (their writes are redone work), except that the flushed-block
        counts recorded in the contract let the operator skip rewriting
        blocks it knows are already on disk — the paper's optimization.
        """
        # The contract recorded the flushed-block counts at signing time —
        # those blocks are already on disk and their rewrites are skipped.
        skip_build = list(target.get("build_flushed", [0] * self.num_partitions))
        skip_probe = list(target.get("probe_flushed", [0] * self.num_partitions))
        while self.build_consumed < target["build_consumed"]:
            row = self.build_child.next()
            if row is None:
                raise ContractError(f"{self.name}: build child exhausted early")
            self.build_consumed += 1
            self.charge_cpu(1)
            self._stash_skippable(
                row, self.condition.left_key(row), True, skip_build
            )
        self.build_done = target["build_done"]
        while self.probe_consumed < target["probe_consumed"]:
            row = self.probe_child.next()
            if row is None:
                raise ContractError(f"{self.name}: probe child exhausted early")
            self.probe_consumed += 1
            self.charge_cpu(1)
            self._stash_skippable(
                row, self.condition.right_key(row), False, skip_probe
            )

    def _stash_skippable(
        self, row: Row, key, build_side: bool, skip_blocks: list[int]
    ) -> None:
        p = self._partition_of(key)
        pending = self.build_pending if build_side else self.probe_pending
        pending[p].append(row)
        if self._is_memory_partition(p):
            return
        tpp = self.build_tpp if build_side else self.probe_tpp
        if len(pending[p]) >= tpp:
            flushed = (
                self.build_flushed_blocks
                if build_side
                else self.probe_flushed_blocks
            )
            disk = self._build_disk if build_side else self._probe_disk
            if skip_blocks[p] > flushed[p]:
                # Block already on disk from before the suspend: skip the
                # rewrite, keep only the bookkeeping.
                disk[p].extend(pending[p])
                pending[p] = []
                flushed[p] += 1
            else:
                self._flush_block(p, build_side)


class HybridHashJoin(SimpleHashJoin):
    """Hybrid hash join: the first partitions of the build side stay in
    memory, trading materialization (and hence cheap suspend) for I/O."""

    def __init__(
        self,
        op_id: int,
        name: str,
        build: Operator,
        probe: Operator,
        runtime: Runtime,
        condition: EquiJoinCondition,
        num_partitions: int = 8,
        memory_partitions: int = 2,
    ):
        super().__init__(
            op_id, name, build, probe, runtime, condition, num_partitions
        )
        if not 0 <= memory_partitions <= num_partitions:
            raise ValueError("memory_partitions out of range")
        self.memory_partitions = memory_partitions

    def _load_partition(self, p: int) -> None:
        if self._is_memory_partition(p):
            # Build rows already in memory; probe rows stream from disk
            # plus any pending in-memory block.
            self._hash_table = {}
            for row in self.build_pending[p]:
                self.charge_cpu(1)
                key = self.condition.left_key(row)
                self._hash_table.setdefault(key, []).append(row)
            self._probe_rows = list(self._probe_disk[p]) + list(
                self.probe_pending[p]
            )
            return
        super()._load_partition(p)
