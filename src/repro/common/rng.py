"""Deterministic pseudo-random helpers.

Experiments must be bit-for-bit reproducible, so data generators avoid
global random state. ``hash_unit`` maps an integer to a deterministic
pseudo-uniform value in [0, 1); it is used to give every row a "uniform"
attribute so that a predicate ``u < s`` has selectivity ~s without any
stored random seed.
"""

from __future__ import annotations

import random

# Knuth's multiplicative hash constant (golden-ratio derived).
_KNUTH = 2654435761
_MASK32 = 0xFFFFFFFF


def hash_unit(i: int, salt: int = 0) -> float:
    """Map integer ``i`` to a deterministic pseudo-uniform float in [0, 1).

    The mapping mixes ``i`` with ``salt`` through two rounds of a
    multiplicative hash so that consecutive integers do not produce
    correlated outputs.
    """
    x = ((i + 1) * _KNUTH) & _MASK32
    x ^= (salt * 0x9E3779B9) & _MASK32
    x = (x * _KNUTH) & _MASK32
    x ^= x >> 16
    x = (x * 0x85EBCA6B) & _MASK32
    x ^= x >> 13
    return (x & _MASK32) / float(_MASK32 + 1)


def stable_shuffle(items: list, seed: int) -> list:
    """Return a deterministically shuffled copy of ``items``."""
    rng = random.Random(seed)
    out = list(items)
    rng.shuffle(out)
    return out
