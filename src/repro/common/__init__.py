"""Shared utilities: error types and deterministic pseudo-randomness."""

from repro.common.errors import (
    ContractError,
    InvalidSuspendPlanError,
    ReproError,
    StorageError,
    SuspendBudgetInfeasibleError,
    SuspendRequested,
)
from repro.common.rng import hash_unit, stable_shuffle

__all__ = [
    "ContractError",
    "InvalidSuspendPlanError",
    "ReproError",
    "StorageError",
    "SuspendBudgetInfeasibleError",
    "SuspendRequested",
    "hash_unit",
    "stable_shuffle",
]
