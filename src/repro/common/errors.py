"""Exception hierarchy for the suspend/resume reproduction.

``SuspendRequested`` is the Python analogue of the paper's *suspend
exception* (Section 3.2): the DBMS raises it in the thread running the
query, it unwinds to the executor at a safe point, and the query enters its
suspend phase.
"""


class ReproError(Exception):
    """Base class for every error raised by this package."""


class StorageError(ReproError):
    """Raised for invalid storage-layer operations (bad page, bad handle)."""


class ContractError(ReproError):
    """Raised when the checkpoint/contract protocol is violated.

    Examples: enforcing a contract that was pruned from the contract graph,
    or signing a contract against a checkpoint that no longer exists.
    """


class InvalidSuspendPlanError(ReproError):
    """Raised when a suspend plan violates the validity constraints.

    The constraints are the ones encoded in Equations (3)-(6) of the paper:
    an operator goes back to at most one ancestor, a child may only go back
    to an ancestor its parent also goes back to, and an operator whose
    latest checkpoint postdates the contract target cannot dump state.
    """


class SuspendBudgetInfeasibleError(ReproError):
    """Raised when no valid suspend plan fits within the suspend budget."""


class LifecycleError(ReproError, RuntimeError):
    """Raised when a query's lifecycle protocol is violated.

    Examples: unbalanced suppress/unsuppress of the suspend controller, or
    a harness expecting a suspend trigger that never fired.

    Subclasses ``RuntimeError`` because these conditions were raised as
    bare ``RuntimeError`` before they were typed; callers catching the old
    class keep working.
    """


class ShardError(ReproError):
    """Raised for invalid sharded-execution operations.

    Examples: a plan shape the shard planner cannot partition, a shard id
    out of range, or a coordinator driven outside its state machine.
    """


class InconsistentCutError(ShardError):
    """Raised when a shard-set image does not form a consistent global cut.

    A global suspend commits N per-shard images plus the exchange-channel
    state under one shard-set manifest; resuming from a shard set whose
    manifest is missing/torn, or whose member images cannot all be
    recovered, raises this error rather than silently resuming a subset of
    shards against a cut they do not share.
    """


class TraceFileError(ReproError):
    """Raised when a JSONL trace file cannot be read as a trace.

    Examples: an empty file, a torn tail from a crashed writer, or a line
    that is not a JSON object. Carries enough context (path, line number)
    for the CLI to print a clean one-line diagnosis and exit nonzero
    instead of dumping a JSON decoder traceback.
    """

    def __init__(self, path: str, reason: str, line: int = 0):
        detail = f"{path}: {reason}"
        if line:
            detail = f"{path}:{line}: {reason}"
        super().__init__(detail)
        self.path = path
        self.reason = reason
        self.line = line


class SuspendRequested(ReproError):
    """Control-flow exception: a suspend request fired at a safe point.

    Operators poll the suspend controller at points where their in-memory
    state is internally consistent; when a request is pending the controller
    raises this exception, which unwinds to the executor.
    """

    def __init__(self, reason: str = "suspend requested"):
        super().__init__(reason)
        self.reason = reason
