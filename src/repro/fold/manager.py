"""Fold manager: producers, build-table cache, and per-query bindings.

One :class:`FoldManager` lives on an executor core (scheduler or serve
service). Admitting a query yields a :class:`FoldBinding` installed on
the query's :class:`~repro.engine.runtime.Runtime` before plan
instantiation; ``instantiate_plan`` then grafts the plan's foldable
leaves onto the manager's shared state:

- plain table scans become
  :class:`~repro.engine.folded.SharedScanLeaf` operators drawing pages
  from a per-table :class:`FoldProducer` page window. The first consumer
  to need a page fetches it once for everyone
  (:meth:`~repro.storage.disk.SimulatedDisk.shared_read_pages`, global
  clock only); every consumer charges its *own* lane an absorbed read,
  so per-query cost models are exactly as-if-solo.
- hash joins whose build subplans fingerprint equal adopt one shared
  build-side hash table per partition (see
  :class:`~repro.engine.folded.SharedBuildMixin`).

Fold split on suspend needs no special machinery beyond detach: all
image-visible state (cursor positions, checkpoints, virtual clocks,
dump keys) is per-lane and per-query by construction, so a victim's
image is byte-identical to an unfolded run's. The detach happens in the
operator's ``_do_close`` — the suspend phase closes the session, which
unhooks every shared cursor while the remaining members keep sharing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.fold.fingerprint import (
    build_side_fingerprint,
    plan_fingerprint,
    scan_tables,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.plan import PlanSpec
    from repro.storage.database import Database

#: Default cap on buffered pages per producer window.
DEFAULT_WINDOW_PAGES = 64
#: Default cap on cached shared build-side hash tables (per manager).
DEFAULT_BUILD_TABLES = 32


@dataclass
class FoldStats:
    """Fold effectiveness tallies (published as first-class metrics)."""

    #: Queries admitted with at least one foldable leaf.
    candidates: int = 0
    #: Queries grafted onto work another live member also reads.
    grafted: int = 0
    #: Folded members unfolded because they were suspended/killed.
    splits: int = 0
    #: Page reads satisfied from producer windows (global I/O avoided).
    pages_absorbed: int = 0
    #: Pages fetched by producers on behalf of all consumers.
    pages_shared: int = 0
    #: Producer re-fetches of evicted/behind-window pages.
    refetches: int = 0
    #: Shared build-side hash-table adoptions (partition granularity).
    build_hits: int = 0

    def as_dict(self) -> dict:
        return {
            "candidates": self.candidates,
            "grafted": self.grafted,
            "splits": self.splits,
            "pages_absorbed": self.pages_absorbed,
            "pages_shared": self.pages_shared,
            "refetches": self.refetches,
            "build_hits": self.build_hits,
        }


class FoldProducer:
    """Shared page window over one table.

    Holds up to ``window_pages`` recently fetched pages. When the cap is
    hit the lowest-numbered page is evicted — in the co-scheduled case
    that is the page every attached cursor has already passed, so the
    window slides along the table; a consumer still needing an evicted
    page triggers a counted refetch. Pages are retained across detaches
    (still bounded by the cap): on the serve path requests are serial —
    a query detaches at the end of every token hop — and the retained
    window is what lets the next hop, or the next query over the same
    table, absorb those pages instead of refetching them.
    """

    def __init__(self, table, disk, stats: FoldStats, window_pages: int):
        self.table = table
        self.disk = disk
        self.stats = stats
        self.window_pages = max(1, window_pages)
        self._pages: dict[int, list] = {}
        self._consumers: dict[int, object] = {}
        #: Highest page number ever fetched (refetch detection).
        self._high_water = -1

    @property
    def num_consumers(self) -> int:
        return len(self._consumers)

    @property
    def window_size(self) -> int:
        return len(self._pages)

    def attach(self, cursor) -> None:
        self._consumers[id(cursor)] = cursor

    def detach(self, cursor) -> None:
        self._consumers.pop(id(cursor), None)

    def acquire(self, page_no: int):
        """Rows of ``page_no``, fetching it into the window on a miss.

        The fetch charges :meth:`SimulatedDisk.shared_read_pages` — the
        one real I/O all consumers split. The *caller* (a fold cursor)
        separately charges its own lane an absorbed read.
        """
        rows = self._pages.get(page_no)
        if rows is not None:
            return rows
        rows = self.table.peek_page(page_no)
        self.disk.shared_read_pages(1)
        self.stats.pages_shared += 1
        if page_no <= self._high_water:
            self.stats.refetches += 1
        else:
            self._high_water = page_no
        self._pages[page_no] = rows
        self._trim(keep=page_no)
        return rows

    def _trim(self, keep: int) -> None:
        while len(self._pages) > self.window_pages:
            victim = min(p for p in self._pages if p != keep)
            del self._pages[victim]


class _MemberState:
    """Per-admitted-query fold bookkeeping inside the manager."""

    __slots__ = ("name", "fingerprint", "tables", "build_keys", "grafted")

    def __init__(self, name, fingerprint, tables, build_keys):
        self.name = name
        self.fingerprint = fingerprint
        self.tables = tables
        self.build_keys = build_keys
        self.grafted = False


class FoldManager:
    """Detects foldable work among admitted queries and owns the shared
    producers and build-table cache they graft onto."""

    def __init__(
        self,
        db: "Database",
        window_pages: int = DEFAULT_WINDOW_PAGES,
        build_tables: int = DEFAULT_BUILD_TABLES,
        tracer=None,
    ):
        self.db = db
        self.window_pages = window_pages
        self.build_tables = max(0, build_tables)
        self.tracer = tracer
        self.stats = FoldStats()
        self._producers: dict[str, FoldProducer] = {}
        self._members: dict[str, _MemberState] = {}
        #: build-key -> per-partition hash tables adopted by siblings.
        self._build_cache: dict[str, dict[int, dict]] = {}

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit(self, name: str, plan_spec: "PlanSpec") -> Optional["FoldBinding"]:
        """Consider ``name`` for folding; return its binding or ``None``.

        A query is a *candidate* when it has foldable leaves at all, and
        *grafted* when some other live member reads one of its tables or
        shares a build-side fingerprint. Databases with a buffer pool
        attached are not folded: the pool's hit/miss charging would make
        folded and unfolded lane timelines diverge.
        """
        if self.db.buffer_pool is not None:
            return None
        from repro.fold.fingerprint import iter_specs

        tables = scan_tables(plan_spec)
        build_keys = {
            bk
            for node in iter_specs(plan_spec)
            if (bk := build_side_fingerprint(node)) is not None
        }
        if not tables and not build_keys:
            return None
        self.stats.candidates += 1
        member = _MemberState(
            name, plan_fingerprint(plan_spec), tables, build_keys
        )
        shared_with = sorted(
            other.name
            for other in self._members.values()
            if other.name != name
            and (other.tables & tables or other.build_keys & build_keys)
        )
        self._members[name] = member
        if shared_with:
            member.grafted = True
            self.stats.grafted += 1
            # Re-grafting is mutual: the member already running becomes
            # shared too (it was a lone candidate when admitted).
            for other_name in shared_with:
                other = self._members[other_name]
                if not other.grafted:
                    other.grafted = True
                    self.stats.grafted += 1
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.event(
                "fold.admit",
                query=name,
                tables=sorted(tables),
                build_keys=len(build_keys),
                shared_with=shared_with,
            )
        return FoldBinding(self, name)

    def is_grafted(self, name: str) -> bool:
        """True while ``name`` currently shares work with a live sibling."""
        member = self._members.get(name)
        return member is not None and member.grafted

    def forget(self, name: str) -> None:
        """Drop a completed/killed member's bookkeeping."""
        self._members.pop(name, None)

    def note_split(self, name: str) -> None:
        """Record that a folded member was unfolded by suspend/kill."""
        member = self._members.get(name)
        if member is not None and member.grafted:
            self.stats.splits += 1
            member.grafted = False
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.event("fold.split", query=name)

    # ------------------------------------------------------------------
    # Shared scan producers
    # ------------------------------------------------------------------
    def producer_for(self, table) -> FoldProducer:
        producer = self._producers.get(table.name)
        if producer is None:
            producer = FoldProducer(
                table, self.db.disk, self.stats, self.window_pages
            )
            self._producers[table.name] = producer
        return producer

    def producer_named(self, table_name: str) -> Optional[FoldProducer]:
        return self._producers.get(table_name)

    # ------------------------------------------------------------------
    # Shared build-side hash tables
    # ------------------------------------------------------------------
    def lookup_build(self, build_key: str, partition: int) -> Optional[dict]:
        per_part = self._build_cache.get(build_key)
        if per_part is None:
            return None
        return per_part.get(partition)

    def store_build(self, build_key: str, partition: int, table: dict) -> None:
        if self.build_tables <= 0:
            return
        per_part = self._build_cache.get(build_key)
        if per_part is None:
            while len(self._build_cache) >= self.build_tables:
                # FIFO eviction: oldest fingerprint's tables go first.
                oldest = next(iter(self._build_cache))
                del self._build_cache[oldest]
            per_part = self._build_cache[build_key] = {}
        per_part[partition] = table

    def note_build_hit(self) -> None:
        self.stats.build_hits += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def bytes_saved(self) -> int:
        """Bytes of I/O folding avoided so far (the headline gauge).

        Absorbed reads are what the queries' lanes were charged without
        touching the disk; shared reads are what producers actually
        fetched on their behalf. The difference is the real saving —
        zero for a lone consumer, ``(K-1)/K`` of the scan for K
        perfectly folded members.
        """
        disk = self.db.disk
        saved = max(0, disk.fold_pages_saved - disk.fold_shared_pages)
        return saved * disk.cost_model.page_bytes

    def publish_metrics(self, metrics) -> None:
        """Mirror the tallies into a MetricsRegistry (``/obs/metrics``)."""
        s = self.stats
        metrics.counter("fold.candidates").set(s.candidates)
        metrics.counter("fold.grafted").set(s.grafted)
        metrics.counter("fold.splits").set(s.splits)
        metrics.counter("fold.pages_absorbed_total").set(s.pages_absorbed)
        metrics.counter("fold.pages_shared_total").set(s.pages_shared)
        metrics.counter("fold.refetches_total").set(s.refetches)
        metrics.counter("fold.build_hits_total").set(s.build_hits)
        metrics.gauge("fold.scan_bytes_saved").set(self.bytes_saved())


class FoldBinding:
    """One query's handle onto the fold manager.

    Installed on the query's runtime before plan instantiation;
    ``instantiate_plan`` consults it to substitute shared-scan leaves and
    shared-build joins. Cheap and stateless — all shared state lives on
    the manager, so bindings survive session re-instantiation (resume).
    """

    __slots__ = ("manager", "query")

    def __init__(self, manager: FoldManager, query: str):
        self.manager = manager
        self.query = query

    @property
    def stats(self) -> FoldStats:
        return self.manager.stats
