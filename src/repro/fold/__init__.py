"""Shared-work folding of concurrent queries (GraftDB-style).

When K concurrent queries read the same tables, K-1 of every page read
is redundant. ``repro.fold`` detects common subplans among queries
admitted to the scheduler/serve layers via structural plan fingerprints,
grafts matching consumers onto shared producers (shared table-scan page
windows first, then shared build-side hash tables), and — the part the
suspend/resume contracts make tractable — *splits the fold on suspend*:
a folded member chosen as a victim detaches at a tuple boundary and its
durable image is byte-identical to the image an unfolded run would have
committed, because all per-query accounting runs on the query's private
:class:`~repro.storage.disk.QueryLane` rather than the shared clock.
"""

from repro.fold.fingerprint import (
    build_side_fingerprint,
    plan_fingerprint,
    scan_tables,
)
from repro.fold.manager import FoldBinding, FoldManager, FoldProducer, FoldStats

__all__ = [
    "FoldBinding",
    "FoldManager",
    "FoldProducer",
    "FoldStats",
    "build_side_fingerprint",
    "plan_fingerprint",
    "scan_tables",
]
