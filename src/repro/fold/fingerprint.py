"""Structural plan-spec fingerprints for fold detection.

A fingerprint canonicalizes a plan-spec subtree into a label-free string:
two subtrees fingerprint equal iff they would do identical physical work
over identical inputs. Labels are presentation-only (they name operators
in traces and images) and are excluded, so ``q1`` and ``q7`` running the
same shape fold together.

Fingerprints are deliberately conservative: every semantic field of a
spec participates (tables, predicates, key columns, partition counts),
so a false "equal" is impossible as long as spec dataclasses keep their
``repr`` faithful — all of them are frozen dataclasses, so it is.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass

from repro.engine.plan import (
    HybridHashJoinSpec,
    PlanSpec,
    ScanSpec,
    SimpleHashJoinSpec,
)


def _canon(value) -> str:
    """Canonical, label-free rendering of a spec field value."""
    if is_dataclass(value) and not isinstance(value, type):
        if hasattr(value, "children"):  # a nested plan spec
            return plan_fingerprint(value)
        parts = ", ".join(
            f"{f.name}={_canon(getattr(value, f.name))}"
            for f in fields(value)
        )
        return f"{type(value).__name__}({parts})"
    if isinstance(value, frozenset):
        return f"frozenset({sorted(map(repr, value))})"
    if isinstance(value, (list, tuple)):
        inner = ", ".join(_canon(v) for v in value)
        return f"({inner})"
    return repr(value)


def plan_fingerprint(spec: PlanSpec) -> str:
    """Label-free structural fingerprint of a plan-spec tree."""
    parts = []
    for f in fields(spec):
        if f.name == "label":
            continue
        value = getattr(spec, f.name)
        parts.append(f"{f.name}={_canon(value)}")
    return f"{type(spec).__name__}({', '.join(parts)})"


def scan_tables(spec: PlanSpec) -> set[str]:
    """Names of tables read by plain ``ScanSpec`` leaves of ``spec``.

    Only plain table scans participate in page-window folding; index
    scans, partitioned scans, and shuffle reads have their own access
    patterns and stay unfolded.
    """
    tables: set[str] = set()
    if isinstance(spec, ScanSpec):
        tables.add(spec.table)
    for child in spec.children:
        tables |= scan_tables(child)
    return tables


def build_side_fingerprint(spec: PlanSpec) -> str | None:
    """Shared-build cache key for a hash-join spec, or ``None``.

    Two joins may share one build-side hash table per partition iff they
    drain an identical build subplan, hash it with the same left-key
    columns, and split it into the same partition layout — all of which
    this key captures. The probe side is irrelevant to the build table
    and is excluded, so joins probing different inputs still share.
    """
    if not isinstance(spec, (SimpleHashJoinSpec, HybridHashJoinSpec)):
        return None
    memory = getattr(spec, "memory_partitions", 0)
    return (
        f"build[{plan_fingerprint(spec.build)}]"
        f" cond[{_canon(spec.condition)}]"
        f" k={spec.num_partitions} mem={memory}"
    )


def iter_specs(spec: PlanSpec):
    """Preorder iteration over a spec tree (matches operator-id order)."""
    yield spec
    for child in spec.children:
        yield from iter_specs(child)
