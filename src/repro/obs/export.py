"""Trace and metrics exporters: JSONL, Chrome ``trace_event``, text.

Three formats, one source of truth (the tracer's record list):

- :func:`write_jsonl` — one sorted-keys JSON object per line. This is
  the canonical archival format; it is byte-deterministic for identical
  runs and is what the determinism tests compare.
- :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` JSON array format, so one suspend/resume cycle opens
  directly in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
  Spans become ``X`` (complete) events, instantaneous records become
  ``i`` events, and scheduler memory samples become a ``C`` counter
  track. Tracks (pid/tid) are laid out per query and per operator, with
  ``M`` metadata records naming them.
- :func:`summarize` — per-type counts and the time range, for
  ``repro trace summary``.

Virtual time units are exported as microseconds 1:1 scaled by
:data:`TS_SCALE` so Perfetto's zoom behaves sensibly.
"""

from __future__ import annotations

import json
import math
import os
from typing import Iterable, Optional

from repro.common.errors import TraceFileError

#: Chrome trace timestamps are microseconds; one virtual time unit maps
#: to this many "microseconds" in the exported file.
TS_SCALE = 1000.0


def _encode(record: dict) -> str:
    return json.dumps(
        _jsonable(record), sort_keys=True, separators=(",", ":")
    )


def _jsonable(value):
    """Make a record strictly JSON-serializable and deterministic."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, float):
        if math.isinf(value) or math.isnan(value):
            return None
        return value
    return value


def trace_lines(records: Iterable[dict]) -> list[str]:
    return [_encode(r) for r in records]


def write_jsonl(records: Iterable[dict], path: str) -> int:
    """Write records as JSON Lines; returns the record count."""
    lines = trace_lines(records)
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        for line in lines:
            fh.write(line + "\n")
    return len(lines)


def read_jsonl(path: str) -> list[dict]:
    with open(path, "r", encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]


def load_trace(path: str) -> list[dict]:
    """Read a JSONL trace, diagnosing empty and torn files.

    Raises :class:`TraceFileError` (with path and line number) instead of
    propagating a raw ``JSONDecodeError``, distinguishing a *torn tail* —
    the final line cut mid-write by a crashed or killed exporter — from
    corruption in the middle of the file, which is never expected and gets
    a blunter message. An empty (or whitespace-only) file is an error too:
    every real trace starts with a ``trace.meta`` record.
    """
    if not os.path.exists(path):
        raise TraceFileError(path, "no such trace file")
    records: list[dict] = []
    numbered: list[tuple[int, str]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            if line.strip():
                numbered.append((lineno, line))
    if not numbered:
        raise TraceFileError(path, "empty trace file (no records)")
    last = len(numbered) - 1
    for i, (lineno, line) in enumerate(numbered):
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if i == last:
                raise TraceFileError(
                    path,
                    "torn tail: final line is not valid JSON "
                    "(writer crashed mid-record?)",
                    line=lineno,
                ) from None
            raise TraceFileError(
                path, "corrupt record (not valid JSON)", line=lineno
            ) from None
        if not isinstance(record, dict) or "type" not in record:
            raise TraceFileError(
                path, "not a trace record (missing 'type')", line=lineno
            )
        records.append(record)
    return records


# ----------------------------------------------------------------------
# Chrome trace_event conversion
# ----------------------------------------------------------------------

def _track_of(record: dict) -> tuple[str, str]:
    """(process, thread) track names for a record.

    Queries are processes; operators are threads within them, so a
    suspend/resume cycle reads top-down like the plan itself. Records
    with no query context land on the scheduler/system track. Merged
    distributed traces (see :mod:`repro.obs.merge`) carry a ``lane``
    field, which takes over the process dimension so each shard (and the
    coordinator) gets its own lane in Perfetto.
    """
    lane = record.get("lane")
    query = record.get("query")
    if lane is not None:
        process = str(lane)
    else:
        process = f"query:{query}" if query else "system"
    if "op" in record:
        name = record.get("op_name", "")
        thread = f"op {record['op']}" + (f" {name}" if name else "")
    elif record["type"].startswith("sched."):
        thread = "scheduler"
    elif record["type"].startswith("image."):
        thread = "durability"
    else:
        thread = "lifecycle"
    return process, thread


def to_chrome_trace(records: Iterable[dict]) -> dict:
    """Convert tracer records to the Chrome ``trace_event`` format."""
    events: list[dict] = []
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}

    def track(record: dict) -> tuple[int, int]:
        process, thread = _track_of(record)
        if process not in pids:
            pid = len(pids) + 1
            pids[process] = pid
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "name": "process_name",
                    "args": {"name": process},
                }
            )
        pid = pids[process]
        key = (process, thread)
        if key not in tids:
            tid = len([k for k in tids if k[0] == process]) + 1
            tids[key] = tid
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": thread},
                }
            )
        return pid, tids[key]

    for record in records:
        rtype = record.get("type")
        if rtype == "trace.meta":
            continue
        pid, tid = track(record)
        ts = record.get("ts", 0.0) * TS_SCALE
        args = {
            k: v
            for k, v in sorted(record.items())
            if k not in ("type", "ts", "dur", "seq")
        }
        base = {
            "name": rtype,
            "cat": rtype.split(".", 1)[0],
            "pid": pid,
            "tid": tid,
            "ts": ts,
            "args": _jsonable(args),
        }
        if "dur" in record:
            base["ph"] = "X"
            base["dur"] = max(record["dur"] * TS_SCALE, 1.0)
        else:
            base["ph"] = "i"
            base["s"] = "t"
        events.append(base)
        if "memory_bytes" in record:
            events.append(
                {
                    "ph": "C",
                    "name": "live_memory_bytes",
                    "cat": "sched",
                    "pid": pid,
                    "tid": 0,
                    "ts": ts,
                    "args": {"bytes": record["memory_bytes"]},
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(records: Iterable[dict], path: str) -> int:
    """Write the Chrome-format conversion; returns the event count."""
    converted = to_chrome_trace(records)
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        json.dump(_jsonable(converted), fh, sort_keys=True)
    return len(converted["traceEvents"])


# ----------------------------------------------------------------------
# Summaries
# ----------------------------------------------------------------------

def summarize(records: Iterable[dict]) -> dict:
    """Per-type counts, queries seen, and the trace's time range."""
    counts: dict[str, int] = {}
    queries: set = set()
    t_min: Optional[float] = None
    t_max: Optional[float] = None
    for record in records:
        counts[record["type"]] = counts.get(record["type"], 0) + 1
        if record.get("query"):
            queries.add(record["query"])
        if record["type"] != "trace.meta":
            ts = record.get("ts", 0.0)
            end = ts + record.get("dur", 0.0)
            t_min = ts if t_min is None else min(t_min, ts)
            t_max = end if t_max is None else max(t_max, end)
    return {
        "records": sum(counts.values()),
        "types": dict(sorted(counts.items())),
        "queries": sorted(queries),
        "time_range": [t_min, t_max],
    }


def render_summary(records: Iterable[dict]) -> str:
    info = summarize(list(records))
    t_min, t_max = info["time_range"]
    span = "-" if t_min is None else f"{t_min} .. {t_max}"
    lines = [
        f"{info['records']} records, "
        f"queries: {', '.join(info['queries']) or '-'}, "
        f"virtual time {span}"
    ]
    width = max((len(t) for t in info["types"]), default=0)
    for rtype, count in info["types"].items():
        lines.append(f"  {rtype:<{width}}  {count}")
    return "\n".join(lines)
