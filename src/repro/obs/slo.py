"""Service-level summaries: latency percentiles and fairness.

The serving layer and its load generator publish per-request latencies
(virtual-clock time inside one request) and per-session service totals.
This module turns those samples into the numbers BENCH_serve.json and
the ``serve-smoke`` CI job report: p50/p99 latency and the Jain fairness
index over what each session received.

Everything here is pure arithmetic over the caller's samples — no
tracer, no registry — so the same functions serve tests, benchmarks,
and the CLI identically.
"""

from __future__ import annotations

from typing import Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation.

    Matches the "linear" / "inclusive" convention (numpy's default):
    rank ``(n - 1) * q / 100`` over the sorted samples.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile {q} outside [0, 100]")
    if not values:
        raise ValueError("percentile of no samples")
    ordered = sorted(values)
    rank = (len(ordered) - 1) * (q / 100.0)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 when every session received identical service, approaching
    ``1/n`` when one session received everything. Defined as 1.0 for
    zero or all-zero samples (nobody is being treated unfairly when
    nothing was served).
    """
    n = len(values)
    if n == 0:
        return 1.0
    total = float(sum(values))
    squares = float(sum(v * v for v in values))
    if squares == 0.0:
        return 1.0
    return (total * total) / (n * squares)


def latency_summary(values: Sequence[float]) -> dict:
    """The standard latency block: count, mean, p50/p90/p99, max."""
    if not values:
        return {
            "count": 0,
            "mean": 0.0,
            "p50": 0.0,
            "p90": 0.0,
            "p99": 0.0,
            "max": 0.0,
        }
    return {
        "count": len(values),
        "mean": round(sum(values) / len(values), 6),
        "p50": round(percentile(values, 50), 6),
        "p90": round(percentile(values, 90), 6),
        "p99": round(percentile(values, 99), 6),
        "max": round(max(values), 6),
    }
