"""Observability: structured tracing, metrics, and trace exporters.

The paper's machinery — proactive checkpoint placement (Section 4),
contract-graph growth against the Theorem 1 bound, and the online MIP's
per-operator DumpState-vs-GoBack decisions (Section 5) — runs inside
operators where nothing external can see it. This package makes the
whole suspend/resume lifecycle observable:

- :class:`Tracer` (:mod:`repro.obs.tracer`) — typed span/event records
  on the virtual clock, a no-op :class:`NullTracer` default so untraced
  runs pay nothing, and ``bind()`` context propagation;
- :class:`MetricsRegistry` (:mod:`repro.obs.metrics`) — counters,
  gauges, fixed-bucket histograms; the scheduler's public stats are
  views over one of these;
- exporters (:mod:`repro.obs.export`) — deterministic JSONL, Chrome
  ``trace_event`` JSON (opens in Perfetto), and a plain-text metrics
  snapshot.

Enable tracing for any block of code::

    from repro.obs import Tracer, use_tracer, write_jsonl

    tracer = Tracer(next_sample_every=64)
    with use_tracer(tracer):
        ...  # run sessions / schedulers as usual
    write_jsonl(tracer.records, "out.jsonl")

or pass a tracer explicitly to ``QuerySession(..., tracer=...)`` /
``SchedulerConfig(tracer=...)``. The CLI exposes the same via
``--trace``/``--metrics`` flags and the ``repro trace`` subcommand.
"""

from repro.obs.export import (
    load_trace,
    read_jsonl,
    render_summary,
    summarize,
    to_chrome_trace,
    trace_lines,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.merge import (
    COORDINATOR_LANE,
    merge_shard_trace,
    merge_traces,
    shard_lane,
    split_by_shard,
    strip_lanes,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Summary,
)
from repro.obs.progress import (
    QueryProgress,
    emit_progress,
    estimate_cardinalities,
    progress_timeline,
    publish_progress,
    query_progress,
    render_progress,
)
from repro.obs.slo import jain_index, latency_summary, percentile
from repro.obs.tracer import (
    NULL_TRACER,
    TRACE_FORMAT_VERSION,
    NullTracer,
    Tracer,
    current_tracer,
    make_trace_id,
    set_current_tracer,
    use_tracer,
)

__all__ = [
    "COORDINATOR_LANE",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "QueryProgress",
    "Summary",
    "TRACE_FORMAT_VERSION",
    "Tracer",
    "current_tracer",
    "emit_progress",
    "estimate_cardinalities",
    "jain_index",
    "latency_summary",
    "load_trace",
    "make_trace_id",
    "merge_shard_trace",
    "merge_traces",
    "percentile",
    "progress_timeline",
    "publish_progress",
    "query_progress",
    "read_jsonl",
    "render_progress",
    "render_summary",
    "set_current_tracer",
    "shard_lane",
    "split_by_shard",
    "strip_lanes",
    "summarize",
    "to_chrome_trace",
    "trace_lines",
    "use_tracer",
    "write_chrome_trace",
    "write_jsonl",
]
