"""Structured tracing on the virtual clock.

A :class:`Tracer` collects typed records — instantaneous *events* and
duration *spans* — from every layer of the system: query lifecycle
phases, per-operator ``next()`` spans (sampled), checkpoint and contract
activity, suspend-plan optimization with the MIP's per-operator
DumpState-vs-GoBack decisions, scheduler quanta and pressure-policy
victim selection, and durable-image commit steps.

Design constraints, in order:

1. **Zero hot-path cost when disabled.** Every site first checks
   ``tracer.enabled`` (or the precomputed ``trace_next`` flag in
   ``Operator.next``); the default :class:`NullTracer` is a singleton of
   no-op methods, so an untraced run executes the same work as one built
   before this module existed.
2. **Determinism.** Timestamps come from the *virtual* clock, records
   carry per-operator sequence numbers (never ``id()`` or the global
   checkpoint/contract counters), and the JSONL export sorts keys — two
   runs of the same recipe produce byte-identical traces.
3. **Zero dependencies.** Plain dicts in a list; exporters live in
   :mod:`repro.obs.export`.

Context propagation uses :meth:`Tracer.bind`: a bound tracer shares its
parent's record sink and metrics registry but carries default fields
(e.g. ``query="q_lo"``) and a clock, so deeply nested components emit
fully-attributed records without threading arguments everywhere. The
module-level default (:func:`current_tracer` / :func:`use_tracer`) lets
the CLI switch a whole command run to tracing without changing any
intermediate call signature.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from typing import Optional

from repro.obs.metrics import MetricsRegistry

#: Version of the trace record schema (see docs/PROTOCOL.md section 7).
TRACE_FORMAT_VERSION = 1


def make_trace_id(*parts) -> str:
    """Deterministic trace identity from stable inputs.

    One logical query keeps one ``trace_id`` across processes, continuation
    hops, and suspend/resume cycles, so the id must be derivable from the
    query's durable identity (name, plan spec, shard-set gid, ...) — never
    from wall clock, ``id()``, or random state. Sixteen hex chars of
    SHA-256 over the ``\\x1f``-joined string forms keeps records short
    while making cross-query collisions implausible.
    """
    joined = "\x1f".join(str(p) for p in parts)
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()[:16]


class _Sink:
    """Shared record store behind one tracer and all its bindings."""

    __slots__ = ("records", "metrics", "_seq")

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        self.records: list[dict] = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._seq = 0

    def next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq


class Tracer:
    """Collects trace records; cheap to bind, deterministic to export."""

    __slots__ = ("_sink", "_clock", "_fields", "next_sample_every", "trace_next")

    enabled = True

    def __init__(
        self,
        next_sample_every: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        _sink: Optional[_Sink] = None,
        _clock=None,
        _fields: Optional[dict] = None,
    ):
        self._sink = _sink if _sink is not None else _Sink(metrics)
        self._clock = _clock
        self._fields = _fields or {}
        self.next_sample_every = next_sample_every
        self.trace_next = next_sample_every > 0
        if _sink is None:
            # Root tracer: open the trace with its schema version so any
            # consumer can validate before trusting field layouts.
            self.event("trace.meta", ts=0.0, version=TRACE_FORMAT_VERSION)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def records(self) -> list[dict]:
        return self._sink.records

    @property
    def metrics(self) -> MetricsRegistry:
        return self._sink.metrics

    def now(self) -> float:
        return self._clock.now if self._clock is not None else 0.0

    # ------------------------------------------------------------------
    # Context propagation
    # ------------------------------------------------------------------
    def bind(self, clock=None, **fields) -> "Tracer":
        """A tracer sharing this sink, with extra default fields/clock."""
        merged = dict(self._fields)
        merged.update((k, v) for k, v in fields.items() if v is not None)
        return Tracer(
            next_sample_every=self.next_sample_every,
            _sink=self._sink,
            _clock=clock if clock is not None else self._clock,
            _fields=merged,
        )

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def event(self, etype: str, ts: Optional[float] = None, **fields) -> dict:
        """Record one instantaneous event and return the record."""
        record = {
            "type": etype,
            "ts": round(ts if ts is not None else self.now(), 6),
            "seq": self._sink.next_seq(),
        }
        record.update(self._fields)
        record.update(fields)
        self._sink.records.append(record)
        return record

    @contextmanager
    def span(self, etype: str, **fields):
        """Record a duration span around a block.

        Yields the record dict so the block can attach result fields
        (e.g. rows produced, final status). The span's ``dur`` is the
        virtual time elapsed inside the block; the record is appended on
        exit, even when the block raises (the suspend exception included).
        """
        start = self.now()
        record = {"type": etype, "ts": round(start, 6)}
        record.update(self._fields)
        record.update(fields)
        try:
            yield record
        finally:
            record["dur"] = round(self.now() - start, 6)
            record["seq"] = self._sink.next_seq()
            self._sink.records.append(record)


class NullTracer(Tracer):
    """The disabled tracer: every operation is a no-op.

    A single shared instance (:data:`NULL_TRACER`) is the default
    everywhere, so the hot path pays one attribute check and nothing
    else. It deliberately has no sink: binding returns itself, and the
    rare caller that reads ``metrics`` off it gets a throwaway registry
    nobody exports.
    """

    __slots__ = ()

    enabled = False

    def __init__(self):
        pass

    @property
    def records(self) -> list[dict]:
        return []

    @property
    def metrics(self) -> MetricsRegistry:
        return MetricsRegistry()

    @property
    def next_sample_every(self) -> int:  # type: ignore[override]
        return 0

    @property
    def trace_next(self) -> bool:  # type: ignore[override]
        return False

    def now(self) -> float:
        return 0.0

    def bind(self, clock=None, **fields) -> "NullTracer":
        return self

    def event(self, etype, ts=None, **fields):
        return None

    @contextmanager
    def span(self, etype, **fields):
        yield {}


#: The process-wide disabled tracer.
NULL_TRACER = NullTracer()

_current: Tracer = NULL_TRACER


def current_tracer() -> Tracer:
    """The tracer newly created runtimes/schedulers/stores pick up."""
    return _current


def set_current_tracer(tracer: Optional[Tracer]) -> None:
    """Install (or, with None, clear) the process-default tracer."""
    global _current
    _current = tracer if tracer is not None else NULL_TRACER


@contextmanager
def use_tracer(tracer: Tracer):
    """Scope ``tracer`` as the process default for a ``with`` block."""
    global _current
    previous = _current
    _current = tracer
    try:
        yield tracer
    finally:
        _current = previous
