"""Deterministic merge of distributed trace streams into one timeline.

A sharded query produces N+1 traces — one per shard worker (its own
process when :class:`~repro.shard.worker_proc.ProcessShardWorker` is in
play) plus the coordinator's — and a served query's trace shatters
across continuation-token hops. :func:`merge_traces` interleaves those
streams into a single global timeline that is *byte-identical across
runs*, which makes the merged trace itself a regression artifact: any
cross-run divergence is a determinism bug somewhere in the distributed
path.

Ordering rules (also documented in PROTOCOL.md section 7):

1. Primary key: virtual-clock timestamp ``ts``. Every stream runs on a
   simulated clock, so timestamps are comparable across processes
   without skew correction.
2. Tiebreak 1: lane rank — the coordinator lane sorts before shard
   lanes, shard lanes sort by shard id. Concurrent-at-t records from
   different processes thus interleave the same way every run.
3. Tiebreak 2: the record's position in its own stream (its original
   per-sink ``seq``), preserving each process's causal emission order.

The merged stream gets fresh contiguous ``seq`` values and a ``lane``
field on every record; per-stream ``trace.meta`` records are collapsed
into a single merged one that lists the lanes. A single in-process trace
whose records carry ``shard`` fields can be normalized into the same
shape with :func:`split_by_shard` + :func:`merge_traces`, so process-mode
and in-process-mode runs of one query are comparable modulo nothing.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.obs.tracer import TRACE_FORMAT_VERSION

#: Lane name of the coordinator/driver stream.
COORDINATOR_LANE = "coordinator"


def shard_lane(shard_id: int) -> str:
    """Canonical lane name for a shard's stream."""
    return f"shard:{shard_id}"


def _lane_rank(lane: str) -> tuple[int, int, str]:
    """Sort key for lanes: coordinator first, then shards by id, then
    anything else lexicographically (e.g. ad-hoc lanes from serve hops)."""
    if lane == COORDINATOR_LANE:
        return (0, 0, lane)
    if lane.startswith("shard:"):
        suffix = lane.split(":", 1)[1]
        if suffix.isdigit():
            return (1, int(suffix), lane)
    return (2, 0, lane)


def merge_traces(
    streams: Sequence[tuple[str, Iterable[dict]]],
) -> list[dict]:
    """Merge ``(lane, records)`` streams into one deterministic timeline.

    Records are not mutated; merged copies carry ``lane`` and a rewritten
    contiguous ``seq``. Exactly one ``trace.meta`` heads the result,
    recording the schema version, the sorted lane list, and — when every
    input stream that has one agrees on it — the shared ``trace_id``.
    """
    metas: list[tuple[str, dict]] = []
    body: list[tuple[float, tuple[int, int, str], int, str, dict]] = []
    for lane, records in streams:
        rank = _lane_rank(lane)
        for position, record in enumerate(records):
            if record.get("type") == "trace.meta":
                metas.append((lane, record))
                continue
            ts = record.get("ts", 0.0)
            body.append((ts, rank, position, lane, record))
    body.sort(key=lambda item: item[:3])

    lanes = sorted({lane for lane, _ in streams}, key=_lane_rank)
    trace_ids = {
        m.get("trace_id") for _, m in metas if m.get("trace_id") is not None
    }
    for _, _, _, _, record in body:
        if record.get("trace_id") is not None:
            trace_ids.add(record["trace_id"])
    meta: dict = {
        "type": "trace.meta",
        "ts": 0.0,
        "seq": 0,
        "version": TRACE_FORMAT_VERSION,
        "merged": True,
        "lanes": lanes,
    }
    if len(trace_ids) == 1:
        meta["trace_id"] = trace_ids.pop()

    merged = [meta]
    for seq, (_, _, _, lane, record) in enumerate(body, start=1):
        out = dict(record)
        out["lane"] = lane
        out["seq"] = seq
        merged.append(out)
    return merged


def split_by_shard(
    records: Iterable[dict],
    coordinator_lane: str = COORDINATOR_LANE,
) -> list[tuple[str, list[dict]]]:
    """Split one trace into lanes by each record's ``shard`` field.

    The inverse-of-merge normalizer: an in-process sharded run emits all
    workers' records into one sink, tagged with ``shard``; splitting by
    that tag and re-merging yields the exact shape a process-worker run's
    merged trace has, so the two modes can be compared record-for-record.
    Records without a ``shard`` field (coordinator spans, trace.meta) go
    to ``coordinator_lane``.
    """
    by_lane: dict[str, list[dict]] = {}
    for record in records:
        shard = record.get("shard")
        lane = coordinator_lane if shard is None else shard_lane(shard)
        by_lane.setdefault(lane, []).append(record)
    return sorted(by_lane.items(), key=lambda kv: _lane_rank(kv[0]))


def strip_lanes(records: Iterable[dict]) -> list[dict]:
    """Drop ``lane``/``seq`` bookkeeping for modulo-lane comparisons."""
    out = []
    for record in records:
        slim = {
            k: v for k, v in record.items() if k not in ("lane", "seq")
        }
        out.append(slim)
    return out


def merge_shard_trace(
    coordinator_records: Iterable[dict],
    shard_records: dict[int, Iterable[dict]],
    extra_streams: Optional[Sequence[tuple[str, Iterable[dict]]]] = None,
) -> list[dict]:
    """Convenience wrapper: coordinator + per-shard streams by shard id."""
    streams: list[tuple[str, Iterable[dict]]] = [
        (COORDINATOR_LANE, coordinator_records)
    ]
    for shard_id in sorted(shard_records):
        streams.append((shard_lane(shard_id), shard_records[shard_id]))
    if extra_streams:
        streams.extend(extra_streams)
    return merge_traces(streams)
