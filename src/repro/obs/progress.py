"""Per-operator and per-query progress estimation.

The paper's suspend/resume machinery makes *where a query is* a
first-class question: the scheduler wants remaining-work estimates to
pick suspension victims (ROADMAP item 2), the serving layer wants a
fraction-complete to show next to a continuation token, and the shard
coordinator wants to know how lopsided a pass was. This module answers
all three from data the engine already keeps:

- **Cardinality estimates** walk the live operator tree bottom-up using
  the same signals the static optimizer has — heap-file tuple counts
  for scans, declared :class:`~repro.relational.expressions.UniformSelect`
  selectivities for filters, the join condition's ``modulus`` for
  equi-joins — with documented heuristics where no statistic exists.
- **Actuals** are each operator's ``tuples_emitted`` and attributed
  ``work`` (virtual-clock units), maintained on the hot path since PR 0.

Per-operator fraction-complete is ``emitted / estimate`` clamped to
[0, 1]; the query-level fraction is the root's, offset by
``rows_offset`` — the rows delivered in *previous* processes (resume
resets ``tuples_emitted`` to zero, so cross-process monotonicity needs
the durable cumulative count carried by the continuation token or the
suspend image's ``root_rows_emitted``). Estimated remaining work
extrapolates observed work-per-fraction; estimated remaining bytes use
the same nominal bytes-per-row convention as the suspend-cost model.

Everything here is deterministic: estimates are pure functions of the
plan and catalog, actuals come off the virtual clock, and fractions are
rounded to six places before they reach a trace record.

``query.progress`` trace records (PROTOCOL.md section 7) are emitted at
quantum boundaries by the executor core and at pass boundaries by the
shard coordinator; :func:`progress_timeline` recovers the series from an
archived trace for ``repro trace progress``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

#: Nominal bytes per delivered row, matching the suspend-cost model's
#: control-state sizing convention (SuspendedQuery.nominal_bytes).
EST_BYTES_PER_ROW = 200


# ----------------------------------------------------------------------
# Cardinality estimation over the live operator tree
# ----------------------------------------------------------------------

def estimate_cardinalities(root) -> dict[int, float]:
    """Estimated output rows per operator id, walking bottom-up.

    Heuristics, in the order they are tried per operator type:

    - scans (``TableScan`` and subclasses, ``IndexScan``): the heap
      file's exact ``num_tuples`` — sharded exchange scans inherit this,
      so a shard fragment is estimated against its own shard-local data;
    - filters: child estimate x the predicate's declared ``selectivity``
      when it has one (``UniformSelect``), else 1.0 (conservative: an
      overestimate keeps the fraction a lower bound);
    - equi-joins (hash/merge/block-NLJ): ``l*r/modulus`` when the
      condition widens matches modulo ``m`` (uniform keys match a random
      pair with probability 1/m), else ``min(l, r)`` — the textbook
      foreign-key shape;
    - group aggregates: ``sqrt(child)`` — the standard no-statistics
      guess for distinct groups;
    - everything else (project, sort, ...): pass the child through.
    """
    estimates: dict[int, float] = {}

    def visit(op) -> float:
        child_ests = [visit(c) for c in op.children]
        est = _estimate_one(op, child_ests)
        estimates[op.op_id] = est
        return est

    visit(root)
    return estimates


def _estimate_one(op, child_ests: list[float]) -> float:
    table = getattr(op, "table", None)
    if table is not None and not op.children:
        return float(table.num_tuples)
    index = getattr(op, "index", None)
    if index is not None and not op.children:
        return float(index.table.num_tuples)
    condition = getattr(op, "condition", None)
    if condition is not None and len(child_ests) == 2:
        left, right = child_ests
        modulus = getattr(condition, "modulus", 0)
        if modulus:
            return max(left * right / modulus, 1.0)
        return max(min(left, right), 1.0)
    predicate = getattr(op, "predicate", None)
    if predicate is not None and child_ests:
        selectivity = getattr(predicate, "selectivity", None)
        if selectivity is None:
            selectivity = 1.0
        return max(child_ests[0] * float(selectivity), 1.0)
    if getattr(op, "group_columns", None) is not None and child_ests:
        return max(child_ests[0] ** 0.5, 1.0)
    if child_ests:
        return child_ests[0]
    return 1.0


# ----------------------------------------------------------------------
# Progress snapshots
# ----------------------------------------------------------------------

@dataclass
class OpProgress:
    """One operator's estimated completion state."""

    op: str
    op_id: int
    est_rows: float
    emitted: int
    fraction: float
    work: float

    def as_dict(self) -> dict:
        return {
            "op": self.op,
            "op_id": self.op_id,
            "est_rows": round(self.est_rows, 2),
            "emitted": self.emitted,
            "fraction": self.fraction,
            "work": round(self.work, 6),
        }


@dataclass
class QueryProgress:
    """A query's fraction-complete and estimated remaining work."""

    query: Optional[str]
    fraction: float
    rows_total: int
    est_rows: float
    work_done: float
    est_remaining_work: Optional[float]
    est_remaining_bytes: Optional[int]
    operators: list[OpProgress] = field(default_factory=list)

    def as_dict(self, include_operators: bool = True) -> dict:
        doc = {
            "query": self.query,
            "fraction": self.fraction,
            "rows_total": self.rows_total,
            "est_rows": round(self.est_rows, 2),
            "work_done": round(self.work_done, 6),
            "est_remaining_work": (
                None
                if self.est_remaining_work is None
                else round(self.est_remaining_work, 6)
            ),
            "est_remaining_bytes": self.est_remaining_bytes,
        }
        if include_operators:
            doc["operators"] = [op.as_dict() for op in self.operators]
        return doc


def _fraction(emitted: float, estimate: float) -> float:
    if estimate <= 0:
        return 1.0
    return round(min(emitted / estimate, 1.0), 6)


def query_progress(
    session,
    rows_offset: int = 0,
    estimates: Optional[dict[int, float]] = None,
    include_operators: bool = True,
) -> QueryProgress:
    """Snapshot a live session's progress.

    ``rows_offset`` is the number of rows the query delivered before this
    process resumed it (from the continuation token's cumulative count or
    the suspend image's ``root_rows_emitted``); adding it to the live
    root's ``tuples_emitted`` keeps the query-level fraction monotone
    across suspend/resume cycles and continuation hops even though each
    resume restarts the in-process counters at zero.

    ``estimates`` takes a precomputed :func:`estimate_cardinalities` map;
    the estimates are pure functions of the plan and base-table counts,
    so per-quantum callers compute them once and pass them back in.
    ``include_operators=False`` skips the per-operator breakdown — the
    query-level snapshot is all the trace record and the gauges carry.
    """
    root = session.root
    if estimates is None:
        estimates = estimate_cardinalities(root)
    operators: list[OpProgress] = []
    work_done = 0.0
    for op_id in sorted(session.runtime.ops):
        op = session.runtime.ops[op_id]
        work_done += op.work
        if not include_operators:
            continue
        est = estimates.get(op_id, 1.0)
        operators.append(
            OpProgress(
                op=op.name,
                op_id=op_id,
                est_rows=est,
                emitted=op.tuples_emitted,
                fraction=_fraction(op.tuples_emitted, est),
                work=op.work,
            )
        )
    est_root = estimates.get(root.op_id, 1.0)
    rows_total = rows_offset + root.tuples_emitted
    fraction = _fraction(rows_total, est_root)
    if fraction > 0:
        est_remaining_work = round(work_done * (1.0 - fraction) / fraction, 6)
    else:
        est_remaining_work = None
    est_remaining_bytes = int(
        max(est_root - rows_total, 0) * EST_BYTES_PER_ROW
    )
    return QueryProgress(
        query=getattr(session, "name", None),
        fraction=fraction,
        rows_total=rows_total,
        est_rows=est_root,
        work_done=work_done,
        est_remaining_work=est_remaining_work,
        est_remaining_bytes=est_remaining_bytes,
        operators=operators,
    )


def publish_progress(progress: QueryProgress, metrics) -> None:
    """Mirror a snapshot into registry gauges.

    Gauges carry the latest value only; the full series lives in the
    ``query.progress`` trace records.
    """
    query = progress.query or "-"
    metrics.gauge("query_progress_fraction", query=query).set(
        progress.fraction
    )
    metrics.gauge("query_progress_rows_total", query=query).set(
        progress.rows_total
    )
    if progress.est_remaining_work is not None:
        metrics.gauge("query_est_remaining_work", query=query).set(
            progress.est_remaining_work
        )
    metrics.gauge("query_est_remaining_bytes", query=query).set(
        progress.est_remaining_bytes or 0
    )


def emit_progress(tracer, progress: QueryProgress, **fields) -> None:
    """Emit one ``query.progress`` record and update the gauges."""
    if not tracer.enabled:
        return
    doc = progress.as_dict(include_operators=False)
    doc.pop("query", None)  # the bound tracer already carries it
    doc.update(fields)
    tracer.event("query.progress", **doc)
    publish_progress(progress, tracer.metrics)


# ----------------------------------------------------------------------
# Offline: recover the progress series from an archived trace
# ----------------------------------------------------------------------

def progress_timeline(records: Iterable[dict]) -> dict[str, list[dict]]:
    """Group a trace's ``query.progress`` records by query, in order."""
    series: dict[str, list[dict]] = {}
    for record in records:
        if record.get("type") != "query.progress":
            continue
        key = record.get("query") or "-"
        series.setdefault(key, []).append(record)
    return series


def render_progress(records: Iterable[dict]) -> str:
    """Human-readable progress report for ``repro trace progress``."""
    series = progress_timeline(records)
    if not series:
        return "no query.progress records in trace"
    lines = []
    for query in sorted(series):
        points = series[query]
        last = points[-1]
        lines.append(
            f"{query}: {len(points)} snapshots, "
            f"fraction {points[0].get('fraction')} -> {last.get('fraction')}, "
            f"rows {last.get('rows_total')}/{last.get('est_rows')}, "
            f"est remaining work {last.get('est_remaining_work')}"
        )
        for point in points:
            lines.append(
                f"  ts={point.get('ts')} fraction={point.get('fraction')} "
                f"rows={point.get('rows_total')} "
                f"remaining_work={point.get('est_remaining_work')}"
            )
    return "\n".join(lines)
