"""Metrics registry: counters, gauges, and fixed-bucket histograms.

Everything here is deterministic by construction: histogram bucket
boundaries are fixed at creation (never adapted to the data), snapshots
iterate in sorted order, and values derive only from what the simulation
itself did — so two runs of the same recipe render byte-identical
snapshots.

The registry is intentionally tiny and dependency-free. It serves two
masters at once:

- the tracer (:mod:`repro.obs.tracer`) owns a registry and the engine
  hooks record pages read/written, heap bytes checkpointed, contract
  graph size vs. the Theorem 1 bound, suspend budget vs. actual, and
  resume redo work into it;
- the scheduler's :class:`~repro.service.stats.SchedulerStats` /
  :class:`~repro.service.stats.QueryStats` are *views over* a registry,
  so scheduler counters and tracer metrics are one set of numbers that
  can never disagree.
"""

from __future__ import annotations

from typing import Optional

#: Default histogram bucket upper bounds (virtual time units / pages /
#: bytes all share the same decade ladder). Fixed for determinism.
DEFAULT_BUCKETS = (
    1.0,
    2.0,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1_000.0,
    2_500.0,
    5_000.0,
    10_000.0,
)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def _format_labels(labels: tuple) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class Counter:
    """A numeric total. Normally monotonic; :meth:`set` exists so stats
    views can model resettable quantities (a killed query's emitted-row
    count restarts from zero)."""

    __slots__ = ("name", "labels", "value", "volatile")

    def __init__(self, name: str, labels: tuple):
        self.name = name
        self.labels = labels
        self.value = 0
        self.volatile = False

    def inc(self, amount=1):
        self.value += amount

    def set(self, value):
        self.value = value


class Gauge:
    """A point-in-time value (e.g. live contract-graph node count)."""

    __slots__ = ("name", "labels", "value", "volatile")

    def __init__(self, name: str, labels: tuple):
        self.name = name
        self.labels = labels
        self.value = 0
        self.volatile = False

    def set(self, value):
        self.value = value

    def max(self, value):
        """Retain the maximum observed value (peak tracking)."""
        if value > self.value:
            self.value = value


class Histogram:
    """Cumulative histogram over fixed bucket upper bounds."""

    __slots__ = (
        "name",
        "labels",
        "boundaries",
        "bucket_counts",
        "sum",
        "count",
        "volatile",
    )

    def __init__(self, name: str, labels: tuple, boundaries=DEFAULT_BUCKETS):
        if list(boundaries) != sorted(boundaries):
            raise ValueError("histogram boundaries must be sorted")
        self.name = name
        self.labels = labels
        self.boundaries = tuple(float(b) for b in boundaries)
        # One count per boundary plus the +inf overflow bucket.
        self.bucket_counts = [0] * (len(self.boundaries) + 1)
        self.sum = 0.0
        self.count = 0
        self.volatile = False

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.boundaries):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def value(self):
        """Summary pair used by generic snapshots."""
        return {"count": self.count, "sum": round(self.sum, 6)}


class Summary:
    """A sample-keeping metric with exact percentile readout.

    Unlike :class:`Histogram` (fixed buckets, O(1) memory) a Summary
    retains every observation, so its percentiles are exact — the same
    numbers :func:`repro.obs.slo.latency_summary` computes. The serving
    load generator publishes per-request latencies here so BENCH_serve
    and ``/obs/metrics`` report from one source. Use for bounded sample
    counts (one observation per request of a bench run), not unbounded
    hot paths.
    """

    __slots__ = ("name", "labels", "samples", "volatile")

    def __init__(self, name: str, labels: tuple):
        self.name = name
        self.labels = labels
        self.samples: list[float] = []
        self.volatile = False

    def observe(self, value: float) -> None:
        self.samples.append(float(value))

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def value(self) -> dict:
        # Imported lazily: slo is pure arithmetic but lives above metrics
        # in the module graph.
        from repro.obs.slo import latency_summary

        return latency_summary(self.samples)


class MetricsRegistry:
    """Named, labeled metrics with deterministic snapshots."""

    def __init__(self):
        self._metrics: dict[tuple, object] = {}

    def _get(self, cls, name: str, labels: dict, volatile=False, **kwargs):
        key = (cls.__name__, name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, _label_key(labels), **kwargs)
            metric.volatile = volatile
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, volatile: bool = False, **labels) -> Counter:
        return self._get(Counter, name, labels, volatile=volatile)

    def gauge(self, name: str, volatile: bool = False, **labels) -> Gauge:
        return self._get(Gauge, name, labels, volatile=volatile)

    def histogram(
        self, name: str, boundaries=None, volatile: bool = False, **labels
    ) -> Histogram:
        if boundaries is None:
            return self._get(Histogram, name, labels, volatile=volatile)
        return self._get(
            Histogram, name, labels, volatile=volatile, boundaries=boundaries
        )

    def summary(self, name: str, volatile: bool = False, **labels) -> Summary:
        return self._get(Summary, name, labels, volatile=volatile)

    def total(self, name: str) -> float:
        """Sum of every counter value registered under ``name``.

        The aggregation primitive the scheduler stats derive their
        whole-run counters from — summing the per-query series means the
        aggregate cannot drift from the per-query numbers.
        """
        return sum(
            m.value
            for (kind, metric_name, _), m in self._metrics.items()
            if kind == "Counter" and metric_name == name
        )

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def as_dict(self, include_volatile: bool = False) -> dict:
        """Nested deterministic snapshot: kind -> series -> value.

        *Volatile* metrics carry wall-clock measurements (e.g. image
        encode seconds) and so vary between identical runs; they are
        excluded by default so the snapshot stays byte-deterministic, and
        included only when a consumer asks (CLI exports for humans).
        """
        out: dict[str, dict] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "summaries": {},
        }
        for (kind, name, labels), metric in sorted(self._metrics.items()):
            if metric.volatile and not include_volatile:
                continue
            series = f"{name}{_format_labels(labels)}"
            if kind == "Counter":
                out["counters"][series] = metric.value
            elif kind == "Gauge":
                out["gauges"][series] = metric.value
            elif kind == "Summary":
                out["summaries"][series] = metric.value
            else:
                out["histograms"][series] = {
                    "count": metric.count,
                    "sum": round(metric.sum, 6),
                    "buckets": {
                        ("+inf" if i == len(metric.boundaries) else repr(b)): c
                        for i, (b, c) in enumerate(
                            zip(
                                list(metric.boundaries) + [None],
                                metric.bucket_counts,
                            )
                        )
                    },
                }
        return out

    def render_text(self, include_volatile: bool = False) -> str:
        """Plain-text metrics snapshot (Prometheus-flavoured, sorted).

        Volatile (wall-clock) metrics are excluded unless asked for —
        this render is byte-compared across runs by the determinism
        tests, so only simulation-derived values may appear by default.
        """
        lines: list[str] = []
        for (kind, name, labels), metric in sorted(self._metrics.items()):
            if metric.volatile and not include_volatile:
                continue
            series = f"{name}{_format_labels(labels)}"
            if kind in ("Counter", "Gauge"):
                value = metric.value
                text = repr(value) if isinstance(value, float) else str(value)
                lines.append(f"{series} {text}")
            elif kind == "Summary":
                block = metric.value
                for stat in ("p50", "p90", "p99"):
                    q_labels = labels + (("quantile", stat[1:]),)
                    lines.append(
                        f"{name}{_format_labels(q_labels)} "
                        f"{repr(float(block[stat]))}"
                    )
                lines.append(
                    f"{name}_sum{_format_labels(labels)} "
                    f"{repr(round(sum(metric.samples), 6))}"
                )
                lines.append(
                    f"{name}_count{_format_labels(labels)} {metric.count}"
                )
            else:
                cumulative = 0
                for bound, count in zip(
                    list(metric.boundaries) + ["+Inf"], metric.bucket_counts
                ):
                    cumulative += count
                    label = bound if isinstance(bound, str) else repr(bound)
                    bucket_labels = labels + (("le", label),)
                    lines.append(
                        f"{name}_bucket{_format_labels(bucket_labels)} "
                        f"{cumulative}"
                    )
                lines.append(
                    f"{name}_sum{_format_labels(labels)} {repr(metric.sum)}"
                )
                lines.append(
                    f"{name}_count{_format_labels(labels)} {metric.count}"
                )
        return "\n".join(lines) + ("\n" if lines else "")
