"""Shard workers: one engine instance per shard behind a small interface.

The coordinator never touches a shard's database or session directly —
everything goes through :class:`ShardWorker`, whose operations are plain
values (rows, dicts, floats). That keeps the in-process implementation
here and the process-backed one in :mod:`repro.shard.worker_proc`
interchangeable: the coordinator, the suspend protocol, and the tests run
identically against both.

The in-process worker owns a shard-local :class:`Database` (its own
virtual clock — shards run "in parallel", so global elapsed time is the
max over shard clocks, not the sum) and drives a :class:`QuerySession`
per fragment. Suspend goes through the session's normal spec-driven
path, so a shard image is byte-for-byte the image a single-engine suspend
of the same fragment would commit.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.common.errors import ShardError
from repro.core.costs import build_cost_model
from repro.core.lifecycle import QuerySession, QueryStatus, SuspendSpec
from repro.core.optimizer import build_lp_plan, estimate_plan_cost
from repro.core.strategies import all_goback_plan
from repro.durability.faults import FaultInjector
from repro.durability.store import ImageStore
from repro.engine.config import EngineConfig
from repro.engine.plan import PlanSpec
from repro.obs.tracer import NULL_TRACER
from repro.relational.schema import Schema
from repro.storage.database import Database


class ShardWorker:
    """Interface every shard worker implements (see module docstring)."""

    shard_id: int
    num_shards: int

    def create_channel_table(
        self, name: str, column_names, bytes_per_tuple: int, rows
    ) -> None:
        raise NotImplementedError

    def start_fragment(self, spec: PlanSpec) -> None:
        raise NotImplementedError

    def run_quantum(self, max_rows: int) -> dict:
        raise NotImplementedError

    def progress(self) -> dict:
        """Fragment fraction-complete and cumulative rows (see
        :mod:`repro.obs.progress`); ``fraction`` is 1.0 once done."""
        raise NotImplementedError

    def drain_trace(self) -> list:
        """Trace records buffered in the worker's own process, shipped
        once and cleared. In-process workers share the coordinator's
        sink, so theirs is always empty."""
        return []

    def estimate_suspend_cost(self) -> dict:
        raise NotImplementedError

    def suspend_to_image(
        self,
        root: str,
        image_id: str,
        budget: float = math.inf,
        meta: Optional[dict] = None,
    ) -> dict:
        raise NotImplementedError

    def resume_fragment(self, root: str, image_id: str) -> dict:
        raise NotImplementedError

    def arm_fault(self, kind: str, point: str) -> None:
        raise NotImplementedError

    def now(self) -> float:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class InProcessShardWorker(ShardWorker):
    """A shard worker running in the coordinator's process."""

    def __init__(
        self,
        shard_id: int,
        num_shards: int,
        db: Database,
        config: Optional[EngineConfig] = None,
        tracer=None,
    ):
        self.shard_id = shard_id
        self.num_shards = num_shards
        self.db = db
        self.config = config or EngineConfig()
        base = tracer if tracer is not None else NULL_TRACER
        #: Shard-tagged tracer bound to this shard's virtual clock, so
        #: every engine event the fragment emits carries ``shard=k``.
        self.tracer = base.bind(clock=db.disk.clock, shard=shard_id)
        self.session: Optional[QuerySession] = None
        self._fault: Optional[tuple[str, str]] = None
        #: Rows this fragment has emitted across every suspend/resume
        #: cycle (restored from image meta on resume — in-process
        #: counters restart at zero, the fragment's progress must not).
        self._rows_total = 0

    # -- channels ------------------------------------------------------
    def create_channel_table(
        self, name: str, column_names, bytes_per_tuple: int, rows
    ) -> None:
        schema = Schema.of(list(column_names), bytes_per_tuple=bytes_per_tuple)
        table = self.db.create_table(name, schema, rows=list(rows))
        # bulk_load is uncharged (it models the initial base-table load);
        # materializing shuffled rows is real work — charge the writes.
        self.db.disk.write_pages(table.num_pages)

    # -- execution -----------------------------------------------------
    def start_fragment(self, spec: PlanSpec) -> None:
        if self.session is not None:
            raise ShardError(f"shard {self.shard_id} already has a fragment")
        self._rows_total = 0
        self.session = QuerySession(
            self.db,
            spec,
            config=self.config,
            name=f"shard{self.shard_id}",
            tracer=self.tracer,
        )

    def run_quantum(self, max_rows: int) -> dict:
        session = self._require_session()
        result = session.execute(max_rows=max_rows)
        self._rows_total += len(result.rows)
        done = session.status is QueryStatus.COMPLETED
        if done:
            self.session = None
        return {"rows": result.rows, "done": done}

    def progress(self) -> dict:
        """This fragment's progress snapshot (plain values, pipe-safe)."""
        from repro.obs.progress import query_progress

        if self.session is None:
            return {
                "shard": self.shard_id,
                "fraction": 1.0,
                "rows_total": self._rows_total,
                "est_rows": float(self._rows_total),
                "work_done": 0.0,
            }
        offset = self._rows_total - self.session.root.tuples_emitted
        snapshot = query_progress(self.session, rows_offset=offset)
        return {
            "shard": self.shard_id,
            "fraction": snapshot.fraction,
            "rows_total": snapshot.rows_total,
            "est_rows": round(snapshot.est_rows, 2),
            "work_done": round(snapshot.work_done, 6),
        }

    # -- suspend / resume ----------------------------------------------
    def estimate_suspend_cost(self) -> dict:
        """Unbudgeted-LP and all-GoBack suspend-cost estimates.

        ``est`` is what this shard would spend with no budget pressure;
        ``floor`` is the cheapest valid suspend (every operator going
        back to a contract dumps only control state). The coordinator
        uses the pair to split a global budget across shards.
        """
        session = self._require_session()
        model = build_cost_model(session.runtime)
        lp = build_lp_plan(model, budget=math.inf)
        floor = all_goback_plan(model.topology())
        return {
            "est": estimate_plan_cost(lp, model).suspend,
            "floor": estimate_plan_cost(floor, model).suspend,
        }

    def suspend_to_image(
        self,
        root: str,
        image_id: str,
        budget: float = math.inf,
        meta: Optional[dict] = None,
    ) -> dict:
        session = self._require_session()
        injector = FaultInjector()
        if self._fault is not None:
            kind, point = self._fault
            if kind == "crash":
                injector = FaultInjector.crashing_at(point)
            elif kind == "torn":
                injector = FaultInjector.tearing(point)
            else:
                raise ShardError(f"unknown fault kind {kind!r}")
        store = ImageStore(root, injector=injector)
        # The fragment's cumulative row count rides in the image meta so
        # a resuming process (this one or a fresh child) can keep its
        # progress fraction monotone.
        meta = dict(meta or {})
        meta["rows_total"] = self._rows_total
        session.suspend(
            SuspendSpec(
                budget=budget,
                persist_to=store,
                image_id=image_id,
                image_meta=meta,
                delta=False,
            )
        )
        info = session.last_image
        self.session = None
        return {
            "image_id": info.image_id,
            "suspend_cost": session.last_suspend_cost,
            "total_bytes": info.total_bytes,
        }

    def resume_fragment(self, root: str, image_id: str) -> dict:
        if self.session is not None:
            raise ShardError(f"shard {self.shard_id} already has a fragment")
        if self._fault == ("crash", "resume"):
            raise ShardError(
                f"injected crash: shard {self.shard_id} died mid-resume"
            )
        store = ImageStore(root)
        sq = store.load(image_id)
        self._rows_total = int(
            (store.manifest(image_id).get("meta") or {}).get("rows_total", 0)
        )
        self.session = QuerySession.resume(
            self.db,
            sq,
            config=self.config,
            name=f"shard{self.shard_id}",
            tracer=self.tracer,
        )
        return {"resume_cost": self.session.last_resume_cost}

    def arm_fault(self, kind: str, point: str) -> None:
        self._fault = (kind, point)

    # -- misc ------------------------------------------------------------
    def now(self) -> float:
        return self.db.now

    def memory_in_use(self) -> int:
        if self.session is None:
            return 0
        return self.session.runtime.memory_in_use()

    def close(self) -> None:
        if self.session is not None:
            self.session.close()
            self.session = None

    def _require_session(self) -> QuerySession:
        if self.session is None:
            raise ShardError(f"shard {self.shard_id} has no active fragment")
        return self.session
