"""The shard planner: one single-engine plan → per-shard stage fragments.

A sharded query runs as a sequence of *stages*. Each stage executes the
same fragment spec on every shard (with the shard id substituted into its
leaf scans) and sends its output either to the client (``gather``) or
into an exchange channel (``shuffle``) keyed by one output column. A
later stage consumes the channel through :class:`ShuffleReadSpec` leaves
after the coordinator has materialized the routed rows on each shard.

Supported shapes, mirroring the tentpole's operator menu:

- scan pipelines: ``Scan`` under any stack of ``Filter``/``Project`` —
  one gather stage of partitioned scans;
- shuffle hash join: ``SimpleHashJoin``/``HybridHashJoin`` whose inputs
  are scan pipelines — two shuffle stages (build rows keyed by the build
  column, probe rows by the probe column) feeding a join stage over the
  two channels; when both inputs are bare (unprojected) scans already
  hash-partitioned on their join columns, the shuffle collapses to a
  single co-partitioned join stage;
- partial/final aggregation: ``HashGroupAgg`` over a scan pipeline — a
  partial-aggregate stage per shard, a shuffle keyed by the first group
  column, and a final stage that re-aggregates (count folds by summing
  the partial counts); bare scans hash-partitioned on a group column skip
  the shuffle entirely, since no group can span shards.

Anything else raises :class:`~repro.common.errors.ShardError` — the shard
subsystem refuses shapes it cannot prove equivalent rather than guessing.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import ShardError
from repro.engine.aggregate import AGG_FUNCS
from repro.engine.plan import (
    FilterSpec,
    HashGroupAggSpec,
    HybridHashJoinSpec,
    PartitionedScanSpec,
    PlanSpec,
    ProjectSpec,
    ScanSpec,
    ShuffleReadSpec,
    SimpleHashJoinSpec,
)
from repro.relational.schema import Schema
from repro.shard.partition import ShardedCatalog
from repro.storage.database import Database

GATHER = "gather"
SHUFFLE = "shuffle"


@dataclass(frozen=True)
class ShardStage:
    """One stage: a fragment template plus its output routing."""

    index: int
    fragment: PlanSpec
    output: str = GATHER
    channel: Optional[str] = None
    #: Column of the stage's *output rows* that keys the shuffle.
    key_column: Optional[int] = None
    #: Modulus reduction applied to the key before routing — must match
    #: the join condition's modulus so both sides of a join co-locate.
    key_modulus: int = 0
    #: Channels this stage's fragment reads via :class:`ShuffleReadSpec`.
    consumes: tuple = ()
    #: Output row schema (channel-table geometry for shuffle stages).
    schema_names: tuple = ()
    bytes_per_tuple: int = 200

    def fragment_for(self, shard: int, num_shards: int) -> PlanSpec:
        """The fragment with ``shard`` substituted into its leaf scans."""

        def localize(node: PlanSpec) -> PlanSpec:
            changes = {}
            for f in dataclasses.fields(node):
                value = getattr(node, f.name)
                if hasattr(value, "children"):
                    changes[f.name] = localize(value)
            if isinstance(node, PartitionedScanSpec):
                changes.update(shard=shard, num_shards=num_shards)
            elif isinstance(node, ShuffleReadSpec):
                changes.update(shard=shard)
            return dataclasses.replace(node, **changes) if changes else node

        return localize(self.fragment)


@dataclass
class ShardQueryPlan:
    """The staged decomposition of one plan over one sharded catalog."""

    catalog: ShardedCatalog
    stages: list = field(default_factory=list)

    @property
    def num_shards(self) -> int:
        return self.catalog.num_shards

    @property
    def final_stage(self) -> ShardStage:
        return self.stages[-1]


def spec_output_schema(
    spec: PlanSpec, db: Database, channel_schemas: Optional[dict] = None
) -> Schema:
    """Output schema of a plan spec against ``db``'s catalog.

    ``channel_schemas`` supplies schemas for :class:`ShuffleReadSpec`
    leaves whose channel tables do not exist yet (planning time); at run
    time the channel table is registered and the catalog answers.
    """
    channel_schemas = channel_schemas or {}
    if isinstance(spec, (ScanSpec, PartitionedScanSpec)):
        return db.catalog.table(spec.table).schema
    if isinstance(spec, ShuffleReadSpec):
        if spec.channel in channel_schemas:
            return channel_schemas[spec.channel]
        return db.catalog.table(spec.channel).schema
    if isinstance(spec, FilterSpec):
        return spec_output_schema(spec.child, db, channel_schemas)
    if isinstance(spec, ProjectSpec):
        child = spec_output_schema(spec.child, db, channel_schemas)
        return child.project(list(spec.columns))
    if isinstance(spec, (SimpleHashJoinSpec, HybridHashJoinSpec)):
        # SimpleHashJoin emits build_row + probe_row.
        build = spec_output_schema(spec.build, db, channel_schemas)
        probe = spec_output_schema(spec.probe, db, channel_schemas)
        return build.concat(probe)
    if isinstance(spec, HashGroupAggSpec):
        child = spec_output_schema(spec.child, db, channel_schemas)
        names = [child.columns[c].name for c in spec.group_columns]
        names.append(f"{spec.agg_func}_{child.columns[spec.agg_column].name}")
        per_col = max(1, child.bytes_per_tuple // max(1, len(child)))
        return Schema.of(names, bytes_per_tuple=per_col * len(names))
    raise ShardError(
        f"shard planner cannot derive a schema for {type(spec).__name__}"
    )


def _split_pipeline(spec: PlanSpec):
    """Peel Filter/Project wrappers: returns (wrappers root→leaf, core)."""
    wrappers = []
    node = spec
    while isinstance(node, (FilterSpec, ProjectSpec)):
        wrappers.append(node)
        node = node.child
    return wrappers, node


def _rewrap(wrappers, core: PlanSpec) -> PlanSpec:
    for wrapper in reversed(wrappers):
        core = dataclasses.replace(wrapper, child=core)
    return core


def _as_scan_pipeline(spec: PlanSpec, num_shards: int) -> PlanSpec:
    """Rewrite a scan pipeline's leaf ``Scan`` to a partitioned scan."""
    wrappers, core = _split_pipeline(spec)
    if not isinstance(core, ScanSpec):
        raise ShardError(
            "shard planner supports Filter/Project pipelines over a base "
            f"table scan here, got {type(core).__name__}"
        )
    leaf = PartitionedScanSpec(
        table=core.table, num_shards=num_shards, label=core.label
    )
    return _rewrap(wrappers, leaf)


def _bare_scan_table(spec: PlanSpec) -> Optional[str]:
    """Table name if ``spec`` is a Scan under position-preserving wrappers."""
    wrappers, core = _split_pipeline(spec)
    if not isinstance(core, ScanSpec):
        return None
    if any(isinstance(w, ProjectSpec) for w in wrappers):
        return None  # projection may move the key column
    return core.table


def plan_shards(spec: PlanSpec, catalog: ShardedCatalog, db: Database) -> ShardQueryPlan:
    """Decompose ``spec`` into a :class:`ShardQueryPlan` over ``catalog``."""
    n = catalog.num_shards
    plan = ShardQueryPlan(catalog=catalog)
    wrappers, core = _split_pipeline(spec)
    channel_schemas: dict = {}

    def add_stage(**kwargs) -> ShardStage:
        stage = ShardStage(index=len(plan.stages), **kwargs)
        plan.stages.append(stage)
        return stage

    def shuffle_stage(fragment: PlanSpec, key_column: int, key_modulus: int, role: str) -> str:
        schema = spec_output_schema(fragment, db, channel_schemas)
        channel = f"xch{len(plan.stages)}_{role}"
        channel_schemas[channel] = schema
        add_stage(
            fragment=fragment,
            output=SHUFFLE,
            channel=channel,
            key_column=key_column,
            key_modulus=key_modulus,
            schema_names=tuple(schema.names()),
            bytes_per_tuple=schema.bytes_per_tuple,
        )
        return channel

    def final_stage(fragment: PlanSpec, consumes=()) -> None:
        full = _rewrap(wrappers, fragment)
        schema = spec_output_schema(full, db, channel_schemas)
        add_stage(
            fragment=full,
            output=GATHER,
            consumes=tuple(consumes),
            schema_names=tuple(schema.names()),
            bytes_per_tuple=schema.bytes_per_tuple,
        )

    if isinstance(core, ScanSpec):
        fragment = _as_scan_pipeline(spec, n)
        schema = spec_output_schema(fragment, db)
        add_stage(
            fragment=fragment,
            output=GATHER,
            schema_names=tuple(schema.names()),
            bytes_per_tuple=schema.bytes_per_tuple,
        )
        return plan

    if isinstance(core, (SimpleHashJoinSpec, HybridHashJoinSpec)):
        cond = core.condition
        build_table = _bare_scan_table(core.build)
        probe_table = _bare_scan_table(core.probe)
        co_partitioned = (
            cond.modulus == 0
            and build_table is not None
            and probe_table is not None
            and catalog.is_partitioned_on(build_table, cond.left_column)
            and catalog.is_partitioned_on(probe_table, cond.right_column)
        )
        if co_partitioned:
            join = dataclasses.replace(
                core,
                build=_as_scan_pipeline(core.build, n),
                probe=_as_scan_pipeline(core.probe, n),
            )
            final_stage(join)
            return plan
        build_ch = shuffle_stage(
            _as_scan_pipeline(core.build, n),
            cond.left_column,
            cond.modulus,
            "build",
        )
        probe_ch = shuffle_stage(
            _as_scan_pipeline(core.probe, n),
            cond.right_column,
            cond.modulus,
            "probe",
        )
        join = dataclasses.replace(
            core,
            build=ShuffleReadSpec(channel=build_ch),
            probe=ShuffleReadSpec(channel=probe_ch),
        )
        final_stage(join, consumes=(build_ch, probe_ch))
        return plan

    if isinstance(core, HashGroupAggSpec):
        if core.agg_func not in AGG_FUNCS:
            raise ShardError(f"unknown aggregate {core.agg_func!r}")
        child_table = _bare_scan_table(core.child)
        if child_table is not None and any(
            catalog.is_partitioned_on(child_table, c) for c in core.group_columns
        ):
            # No group spans shards: full aggregation is shard-local.
            final_stage(
                dataclasses.replace(core, child=_as_scan_pipeline(core.child, n))
            )
            return plan
        partial = dataclasses.replace(
            core, child=_as_scan_pipeline(core.child, n)
        )
        # Partial output rows are group-key tuple + aggregate value; route
        # by the first group key (all rows of a group share it).
        channel = shuffle_stage(partial, key_column=0, key_modulus=0, role="part")
        k = len(core.group_columns)
        final = HashGroupAggSpec(
            child=ShuffleReadSpec(channel=channel),
            group_columns=tuple(range(k)),
            # Partial counts combine by summing; sum/min/max fold by
            # themselves.
            agg_func="sum" if core.agg_func in ("count", "sum") else core.agg_func,
            agg_column=k,
            num_partitions=core.num_partitions,
            label=core.label,
        )
        final_stage(final, consumes=(channel,))
        return plan

    raise ShardError(
        f"shard planner does not support a {type(core).__name__} root; "
        "supported roots: scan pipelines, hash joins over scan pipelines, "
        "hash aggregation over scan pipelines"
    )
