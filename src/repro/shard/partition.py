"""Table partitioning: how base tables are split across shards.

A :class:`PartitionSpec` describes one table's placement — hash or range
on one column, or replicated to every shard (the broadcast case for small
dimension tables). A :class:`ShardedCatalog` maps table names to specs
and is the single source of truth for row routing: the same spec drives
the initial split in :func:`build_sharded_database`, shuffle routing in
the coordinator, and the co-partitioning shortcut in the planner.

Routing must be deterministic **across processes** (a resumed coordinator
in a fresh process must route every row exactly as the original did), so
the hash function avoids Python's seeded ``hash()``: integers route by
value modulo shard count, everything else by CRC-32 of ``repr``.
"""

from __future__ import annotations

import bisect
import zlib
from dataclasses import dataclass, field

from repro.common.errors import ShardError
from repro.storage.database import Database

HASH = "hash"
RANGE = "range"
REPLICATED = "replicated"


def shard_of_value(value, num_shards: int) -> int:
    """Deterministic, process-independent hash placement of one key."""
    if isinstance(value, bool) or not isinstance(value, int):
        return zlib.crc32(repr(value).encode("utf-8")) % num_shards
    return value % num_shards


@dataclass(frozen=True)
class PartitionSpec:
    """Placement of one table: hash/range on a column, or replicated."""

    kind: str = HASH
    column: int = 0
    #: For ``range``: sorted upper-exclusive split points. ``len(bounds)``
    #: must be ``num_shards - 1``; rows with key >= the last bound land on
    #: the last shard.
    bounds: tuple = ()

    def __post_init__(self):
        if self.kind not in (HASH, RANGE, REPLICATED):
            raise ShardError(f"unknown partition kind {self.kind!r}")
        if self.kind == RANGE and list(self.bounds) != sorted(self.bounds):
            raise ShardError(f"range bounds must be sorted: {self.bounds!r}")

    def shard_of(self, row: tuple, num_shards: int) -> int:
        """Which shard owns ``row``; replicated tables own no single shard."""
        if self.kind == REPLICATED:
            raise ShardError("replicated tables are not routed row-by-row")
        value = row[self.column]
        if self.kind == HASH:
            return shard_of_value(value, num_shards)
        if len(self.bounds) != num_shards - 1:
            raise ShardError(
                f"range spec has {len(self.bounds)} bounds for "
                f"{num_shards} shards (need num_shards - 1)"
            )
        return bisect.bisect_right(self.bounds, value)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "column": self.column,
            "bounds": list(self.bounds),
        }

    @staticmethod
    def from_dict(data: dict) -> "PartitionSpec":
        return PartitionSpec(
            kind=data["kind"],
            column=data["column"],
            bounds=tuple(data["bounds"]),
        )


@dataclass
class ShardedCatalog:
    """Table-name → :class:`PartitionSpec` map for one sharded database.

    Tables without an explicit spec default to hash partitioning on
    column 0 — the convention every workload table in this repo follows
    (``key`` is the first column).
    """

    num_shards: int
    specs: dict[str, PartitionSpec] = field(default_factory=dict)

    def __post_init__(self):
        if self.num_shards < 1:
            raise ShardError(f"num_shards must be >= 1, got {self.num_shards}")

    def spec_for(self, table: str) -> PartitionSpec:
        return self.specs.get(table, PartitionSpec())

    def is_partitioned_on(self, table: str, column: int) -> bool:
        """True when ``table`` is hash-placed by ``column`` (co-location)."""
        spec = self.spec_for(table)
        return spec.kind == HASH and spec.column == column

    def route(self, table: str, rows) -> list[list[tuple]]:
        """Split ``rows`` into per-shard lists according to the spec."""
        parts: list[list[tuple]] = [[] for _ in range(self.num_shards)]
        spec = self.spec_for(table)
        if spec.kind == REPLICATED:
            rows = list(rows)
            return [list(rows) for _ in range(self.num_shards)]
        for row in rows:
            parts[spec.shard_of(row, self.num_shards)].append(row)
        return parts

    def to_dict(self) -> dict:
        return {
            "num_shards": self.num_shards,
            "specs": {
                name: spec.to_dict() for name, spec in sorted(self.specs.items())
            },
        }

    @staticmethod
    def from_dict(data: dict) -> "ShardedCatalog":
        return ShardedCatalog(
            num_shards=data["num_shards"],
            specs={
                name: PartitionSpec.from_dict(spec)
                for name, spec in data["specs"].items()
            },
        )


def build_sharded_database(
    db: Database, catalog: ShardedCatalog
) -> list[Database]:
    """Split ``db`` into ``num_shards`` shard-local databases.

    Each shard database registers its partition under the *original*
    table name (a fragment's :class:`PartitionedScanSpec` resolves it
    without renaming), keeps the original page geometry, and inherits the
    table's predicate-selectivity statistics so the per-shard static
    optimizer sees the same estimates. Indexes are rebuilt per shard over
    the local partition. Bulk loading is uncharged, exactly like the
    initial load of the single-engine database it mirrors.
    """
    shards = [Database(cost_model=db.cost_model) for _ in range(catalog.num_shards)]
    for name in db.catalog.table_names():
        table = db.catalog.table(name)
        parts = catalog.route(name, table.all_rows())
        stats = db.catalog.stats(name)
        for shard_db, rows in zip(shards, parts):
            shard_db.create_table(
                name,
                table.schema,
                rows=rows,
                tuples_per_page=table.tuples_per_page,
            )
            for label, sel in stats.predicate_selectivity.items():
                shard_db.catalog.set_predicate_selectivity(name, label, sel)
    for index_name in db.catalog.index_names():
        index = db.catalog.index(index_name)
        for shard_db in shards:
            shard_db.create_index(index_name, index.table.name, index.key_column)
    return shards
