"""Process-backed shard worker: the same interface, a real process.

The parent side (:class:`ProcessShardWorker`) speaks a JSON-lines
protocol over the child's stdin/stdout; the child
(``python -m repro.shard.worker_proc``) builds its shard database from
the shipped table rows and delegates every request to an ordinary
:class:`~repro.shard.worker.InProcessShardWorker`. Plan fragments cross
the boundary via the durability codec's spec encoding; suspend images
are committed by the child directly into the shared on-disk image root,
so the coordinator's shard-set protocol is identical for both worker
kinds.

What the process boundary buys is *real* crash semantics for the fault
matrix: an armed crash makes the child ``os._exit`` mid-commit or
mid-resume — actual process death, not an exception unwinding through
cleanup handlers — and the parent surfaces the broken pipe as a
:class:`~repro.common.errors.ShardError`.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from typing import Optional

import repro
from repro.common.errors import (
    ReproError,
    ShardError,
    SuspendBudgetInfeasibleError,
)
from repro.durability.codec import spec_from_dict, spec_to_dict
from repro.shard.worker import InProcessShardWorker, ShardWorker
from repro.storage.database import Database

#: Exit code the child uses for an injected crash (real process death).
CRASH_EXIT_CODE = 23


class ProcessShardWorker(ShardWorker):
    """Parent-side proxy driving one shard in a child process.

    ``trace`` configures the child's own tracer:
    ``{"enabled": bool, "sample": int, "trace_id": str | None}``. The
    child buffers records in its own sink (virtual-clock timestamps, so
    no cross-process skew) and ships them back through
    :meth:`drain_trace`; :mod:`repro.obs.merge` interleaves them with
    the coordinator's stream into one global timeline.
    """

    def __init__(
        self,
        shard_id: int,
        num_shards: int,
        tables: list,
        trace: Optional[dict] = None,
    ):
        self.shard_id = shard_id
        self.num_shards = num_shards
        self.trace = trace or {"enabled": False}
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(repro.__file__))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_root, env.get("PYTHONPATH")) if p
        )
        # -c (not -m): the module is imported once, normally — running it
        # as __main__ under runpy would shadow the already-imported copy
        # the package's __init__ pulled in.
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-u",
                "-c",
                "from repro.shard.worker_proc import main; main()",
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        self._call(
            "init",
            shard_id=shard_id,
            num_shards=num_shards,
            tables=tables,
            trace=self.trace,
        )

    # -- protocol -------------------------------------------------------
    def _call(self, op: str, **kwargs):
        if self.proc.poll() is not None:
            raise ShardError(
                f"shard {self.shard_id} worker process is dead "
                f"(exit code {self.proc.returncode})"
            )
        request = {"op": op, **kwargs}
        try:
            self.proc.stdin.write(json.dumps(request) + "\n")
            self.proc.stdin.flush()
            line = self.proc.stdout.readline()
        except (BrokenPipeError, OSError) as exc:
            raise ShardError(
                f"shard {self.shard_id} worker process died during {op!r}"
            ) from exc
        if not line:
            self.proc.wait()
            raise ShardError(
                f"shard {self.shard_id} worker process died during {op!r} "
                f"(exit code {self.proc.returncode})"
            )
        response = json.loads(line)
        if not response["ok"]:
            err_type = response.get("error_type")
            message = f"shard {self.shard_id}: {err_type}: {response['error']}"
            if err_type == "SuspendBudgetInfeasibleError":
                raise SuspendBudgetInfeasibleError(message)
            raise ShardError(message)
        return response.get("result")

    # -- ShardWorker interface ------------------------------------------
    def create_channel_table(
        self, name: str, column_names, bytes_per_tuple: int, rows
    ) -> None:
        self._call(
            "create_channel_table",
            name=name,
            column_names=list(column_names),
            bytes_per_tuple=bytes_per_tuple,
            rows=[list(r) for r in rows],
        )

    def start_fragment(self, spec) -> None:
        self._call("start_fragment", spec=spec_to_dict(spec))

    def run_quantum(self, max_rows: int) -> dict:
        result = self._call("run_quantum", max_rows=max_rows)
        result["rows"] = [tuple(r) for r in result["rows"]]
        return result

    def progress(self) -> dict:
        return self._call("progress")

    def drain_trace(self) -> list:
        """Ship the child's buffered trace records (cleared after)."""
        if not self.trace.get("enabled"):
            return []
        if self.proc.poll() is not None:
            # A crashed child's buffered records died with it; the
            # coordinator's stream still shows the crash.
            return []
        return self._call("drain_trace")

    def estimate_suspend_cost(self) -> dict:
        return self._call("estimate_suspend_cost")

    def suspend_to_image(
        self,
        root: str,
        image_id: str,
        budget: float = float("inf"),
        meta: Optional[dict] = None,
    ) -> dict:
        return self._call(
            "suspend_to_image",
            root=root,
            image_id=image_id,
            # JSON has no Infinity literal in strict mode; encode as null.
            budget=None if budget == float("inf") else budget,
            meta=meta,
        )

    def resume_fragment(self, root: str, image_id: str) -> dict:
        return self._call("resume_fragment", root=root, image_id=image_id)

    def arm_fault(self, kind: str, point: str) -> None:
        self._call("arm_fault", kind=kind, point=point)

    def now(self) -> float:
        return self._call("now")

    def close(self) -> None:
        if self.proc.poll() is None:
            try:
                self.proc.stdin.write(json.dumps({"op": "shutdown"}) + "\n")
                self.proc.stdin.flush()
            except (BrokenPipeError, OSError):
                pass
            try:
                self.proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait()

    def kill(self) -> None:
        """Hard-kill the child (a shard dying outside any protocol step)."""
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()


# ----------------------------------------------------------------------
# Child side
# ----------------------------------------------------------------------
def _build_worker(request: dict) -> InProcessShardWorker:
    from repro.relational.schema import Schema

    db = Database()
    for table in request["tables"]:
        db.create_table(
            table["name"],
            Schema.of(
                table["columns"], bytes_per_tuple=table["bytes_per_tuple"]
            ),
            rows=[tuple(r) for r in table["rows"]],
            tuples_per_page=table["tuples_per_page"],
        )
    trace = request.get("trace") or {"enabled": False}
    tracer = None
    if trace.get("enabled"):
        from repro.obs.tracer import Tracer

        # The child runs its own root Tracer: records buffer here (with
        # the shard's virtual-clock timestamps) until the parent drains
        # them over the pipe for the global merge.
        root = Tracer(next_sample_every=int(trace.get("sample") or 0))
        tracer = root.bind(trace_id=trace.get("trace_id"))
    return InProcessShardWorker(
        request["shard_id"], request["num_shards"], db, tracer=tracer
    )


def _handle(worker: Optional[InProcessShardWorker], request: dict):
    op = request["op"]
    if op == "create_channel_table":
        worker.create_channel_table(
            request["name"],
            request["column_names"],
            request["bytes_per_tuple"],
            [tuple(r) for r in request["rows"]],
        )
        return None
    if op == "start_fragment":
        worker.start_fragment(spec_from_dict(request["spec"]))
        return None
    if op == "run_quantum":
        result = worker.run_quantum(request["max_rows"])
        return {"rows": [list(r) for r in result["rows"]], "done": result["done"]}
    if op == "progress":
        return worker.progress()
    if op == "drain_trace":
        from repro.obs.export import _jsonable

        records = [_jsonable(r) for r in worker.tracer.records]
        worker.tracer.records.clear()
        return records
    if op == "estimate_suspend_cost":
        return worker.estimate_suspend_cost()
    if op == "suspend_to_image":
        budget = request["budget"]
        return worker.suspend_to_image(
            request["root"],
            request["image_id"],
            budget=float("inf") if budget is None else budget,
            meta=request["meta"],
        )
    if op == "resume_fragment":
        if worker._fault == ("crash", "resume"):
            # Injected mid-resume death: the real thing, not an exception.
            os._exit(CRASH_EXIT_CODE)
        return worker.resume_fragment(request["root"], request["image_id"])
    if op == "arm_fault":
        worker.arm_fault(request["kind"], request["point"])
        return None
    if op == "now":
        return worker.now()
    raise ShardError(f"unknown worker op {request['op']!r}")


def main() -> None:
    from repro.durability.faults import InjectedCrash

    worker: Optional[InProcessShardWorker] = None
    for line in sys.stdin:
        if not line.strip():
            continue
        request = json.loads(line)
        if request["op"] == "shutdown":
            break
        try:
            if request["op"] == "init":
                worker = _build_worker(request)
                result = None
            else:
                result = _handle(worker, request)
            response = {"ok": True, "result": result}
        except InjectedCrash:
            # The simulated crash becomes a genuine one: no response, no
            # cleanup, no atexit handlers — the parent sees a dead pipe.
            sys.stdout.flush()
            os._exit(CRASH_EXIT_CODE)
        except ReproError as exc:
            response = {
                "ok": False,
                "error_type": type(exc).__name__,
                "error": str(exc),
            }
        sys.stdout.write(json.dumps(response) + "\n")
        sys.stdout.flush()


if __name__ == "__main__":
    main()
