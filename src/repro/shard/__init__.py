"""Sharded execution with globally consistent cross-shard suspend/resume.

The single-engine machinery (contracts, checkpoints, the MIP suspend-plan
optimizer, durable images) protects one query on one database. This
package runs one query across N shard workers and extends the same
guarantees to the whole fleet:

- :mod:`repro.shard.partition` — hash/range partitioning and the
  :class:`ShardedCatalog`, plus building N shard-local databases;
- :mod:`repro.shard.planner` — splitting a single-engine plan into
  per-shard fragments joined by exchange channels (partitioned scan,
  shuffle hash join, partial/final aggregation);
- :mod:`repro.shard.worker` — the shard worker interface and the
  in-process implementation (one :class:`QuerySession` per shard);
- :mod:`repro.shard.worker_proc` — the same interface backed by a real
  child process, so shard crashes are process deaths;
- :mod:`repro.shard.coordinator` — quantum-interleaved execution and the
  two-phase consistent-cut suspend protocol under a *global* budget;
- :mod:`repro.shard.manifest` — the shard-set image: N per-shard images
  plus channel state committed as one atomic unit, with recovery
  classification (committed cut / torn / stranded members).
"""

from repro.shard.coordinator import GlobalSuspendReport, ShardCoordinator
from repro.shard.manifest import (
    ShardSetRecovery,
    classify_shardsets,
    shard_image_id,
)
from repro.shard.partition import (
    PartitionSpec,
    ShardedCatalog,
    build_sharded_database,
    shard_of_value,
)
from repro.shard.planner import ShardQueryPlan, ShardStage, plan_shards
from repro.shard.worker import InProcessShardWorker, ShardWorker
from repro.shard.worker_proc import ProcessShardWorker

__all__ = [
    "GlobalSuspendReport",
    "InProcessShardWorker",
    "PartitionSpec",
    "ProcessShardWorker",
    "ShardCoordinator",
    "ShardQueryPlan",
    "ShardSetRecovery",
    "ShardStage",
    "ShardWorker",
    "ShardedCatalog",
    "build_sharded_database",
    "classify_shardsets",
    "plan_shards",
    "shard_image_id",
    "shard_of_value",
]
