"""The shard coordinator: staged execution and the consistent-cut suspend.

Execution model
---------------

The coordinator drives the stages of a :class:`ShardQueryPlan` in order.
Within a stage it interleaves the N shard fragments in fixed round-robin
*passes*: every pass gives each unfinished shard one quantum of
``quantum_rows`` output rows. Shuffle-stage output is routed into
per-destination channel buffers as it is produced; when the stage
finishes, the buffers are frozen into shard-local channel tables before
the consuming stage starts. Gather-stage output is delivered to the
client in pass order — a deterministic order, which is what makes
"suspend, recover, continue" produce byte-identical delivery to an
uninterrupted run.

Since each shard database owns its own virtual clock and shards run in
parallel, global elapsed time is the **max** over shard clocks.

The two-phase consistent-cut suspend (:meth:`suspend_global`)
-------------------------------------------------------------

Phase 1 — *quiesce and plan*. The coordinator only suspends at a pass
boundary, so every shard session sits at a safe point and every in-flight
batch is either inside a shard's operator state (covered by its image) or
in a channel buffer (covered by the shard-set manifest); the channels are
frozen by construction — nothing moves during the cut. Each running
shard then reports two MIP estimates: its unbudgeted-LP suspend cost and
its all-GoBack floor. The *global* budget is allocated per shard as
``floor_k + surplus * need_k / total_need`` — every shard can afford its
cheapest valid plan, and slack flows to the shards with the most state.

Phase 2 — *commit*. Each running shard runs its own suspend-plan MIP
against its allocated budget and commits an ordinary durable image
(``<gid>--s<k>``). When every member image is down, the coordinator
writes the shard-set directory — channel state first, then
``SHARDSET.json``, whose rename is the single global commit point. A
crash anywhere before it leaves stranded member images and **no** cut;
recovery classifies, never guesses (see :mod:`repro.shard.manifest`).
"""

from __future__ import annotations

import json
import math
import uuid
from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import (
    ShardError,
    SuspendBudgetInfeasibleError,
)
from repro.durability.codec import spec_from_dict, spec_to_dict
from repro.durability.faults import FaultInjector
from repro.durability.store import ImageStore
from repro.engine.config import EngineConfig
from repro.engine.plan import PlanSpec
from repro.obs.tracer import current_tracer, make_trace_id
from repro.shard.manifest import (
    MEMBER_DONE,
    MEMBER_RUNNING,
    load_shardset,
    shard_image_id,
    write_shardset,
)
from repro.shard.partition import (
    ShardedCatalog,
    build_sharded_database,
    shard_of_value,
)
from repro.shard.planner import SHUFFLE, ShardQueryPlan, plan_shards
from repro.shard.worker import InProcessShardWorker, ShardWorker
from repro.storage.database import Database


@dataclass
class ChannelState:
    """One exchange channel: routing key plus per-destination buffers."""

    name: str
    key_column: int
    key_modulus: int
    schema_names: tuple
    bytes_per_tuple: int
    #: Per-destination routed rows. Kept until the consuming stage
    #: completes, so a suspended cut can rebuild the channel tables.
    buffers: list = field(default_factory=list)
    #: Frozen into shard-local tables (the consuming stage reads those).
    materialized: bool = False

    def route(self, rows, num_shards: int) -> None:
        for row in rows:
            key = row[self.key_column]
            if self.key_modulus:
                key = key % self.key_modulus
            self.buffers[shard_of_value(key, num_shards)].append(row)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "key_column": self.key_column,
            "key_modulus": self.key_modulus,
            "schema_names": list(self.schema_names),
            "bytes_per_tuple": self.bytes_per_tuple,
            "materialized": self.materialized,
            "buffers": [[list(row) for row in part] for part in self.buffers],
        }

    @staticmethod
    def from_dict(data: dict) -> "ChannelState":
        return ChannelState(
            name=data["name"],
            key_column=data["key_column"],
            key_modulus=data["key_modulus"],
            schema_names=tuple(data["schema_names"]),
            bytes_per_tuple=data["bytes_per_tuple"],
            buffers=[
                [tuple(row) for row in part] for part in data["buffers"]
            ],
            materialized=data["materialized"],
        )


@dataclass
class GlobalSuspendReport:
    """What one consistent-cut suspend cost, shard by shard."""

    gid: str
    budget: float
    #: Per running shard: allocated budget and actual suspend cost.
    budgets: dict = field(default_factory=dict)
    costs: dict = field(default_factory=dict)

    @property
    def latency(self) -> float:
        """Global suspend latency: shards commit in parallel, so the cut
        is released when the slowest shard finishes."""
        return max(self.costs.values(), default=0.0)

    @property
    def total_cost(self) -> float:
        return sum(self.costs.values())


class ShardCoordinator:
    """Runs one query across N shard workers (see module docstring)."""

    def __init__(
        self,
        db: Database,
        plan_spec: PlanSpec,
        catalog: Optional[ShardedCatalog] = None,
        num_shards: int = 2,
        config: Optional[EngineConfig] = None,
        tracer=None,
        worker_mode: str = "inproc",
        quantum_rows: int = 64,
        trace_id: Optional[str] = None,
        _start: bool = True,
    ):
        self.catalog = catalog or ShardedCatalog(num_shards=num_shards)
        self.plan_spec = plan_spec
        self.shard_plan: ShardQueryPlan = plan_shards(
            plan_spec, self.catalog, db
        )
        self.config = config or EngineConfig()
        base = tracer if tracer is not None else current_tracer()
        #: One trace identity for the whole distributed query, derived
        #: from its durable shape (plan spec + shard count) so resume in
        #: any process rejoins the same trace. Every coordinator record
        #: and every shard-worker record carries it.
        self.trace_id = trace_id or make_trace_id(
            "shard",
            json.dumps(spec_to_dict(plan_spec), sort_keys=True),
            self.catalog.num_shards,
        )
        self.tracer = base.bind(trace_id=self.trace_id)
        self.quantum_rows = quantum_rows
        self.worker_mode = worker_mode
        #: Trace records drained from process-backed workers, keyed by
        #: shard id (in-process workers share the coordinator's sink and
        #: never appear here). See :meth:`collect_shard_traces`.
        self.shard_traces: dict[int, list] = {}
        self.workers: list[ShardWorker] = self._make_workers(db)
        self.stage_idx = 0
        self.frag_done: list[bool] = []
        self.channels: dict[str, ChannelState] = {}
        self.output_rows: list = []
        #: Rows delivered by a pre-suspend incarnation of this query (the
        #: client already holds them); resumed delivery continues after.
        self.delivered_before = 0
        self.done = False
        self._stage_started = False
        self._shardset_fault: Optional[FaultInjector] = None
        if _start:
            self._start_stage()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _make_workers(self, db: Database) -> list:
        n = self.catalog.num_shards
        if self.worker_mode == "inproc":
            shard_dbs = build_sharded_database(db, self.catalog)
            return [
                InProcessShardWorker(
                    k, n, shard_dbs[k], config=self.config, tracer=self.tracer
                )
                for k in range(n)
            ]
        if self.worker_mode == "process":
            from repro.shard.worker_proc import ProcessShardWorker

            payloads = self._table_payloads(db)
            trace = {
                "enabled": self.tracer.enabled,
                "sample": self.tracer.next_sample_every,
                "trace_id": self.trace_id,
            }
            return [
                ProcessShardWorker(k, n, tables=payloads[k], trace=trace)
                for k in range(n)
            ]
        raise ShardError(f"unknown worker mode {self.worker_mode!r}")

    def _table_payloads(self, db: Database) -> list:
        """Per-shard table descriptions for process-backed workers."""
        n = self.catalog.num_shards
        payloads: list = [[] for _ in range(n)]
        for name in db.catalog.table_names():
            table = db.catalog.table(name)
            parts = self.catalog.route(name, table.all_rows())
            for k in range(n):
                payloads[k].append(
                    {
                        "name": name,
                        "columns": table.schema.names(),
                        "bytes_per_tuple": table.schema.bytes_per_tuple,
                        "tuples_per_page": table.tuples_per_page,
                        "rows": [list(r) for r in parts[k]],
                    }
                )
        return payloads

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.catalog.num_shards

    @property
    def stage(self):
        return self.shard_plan.stages[self.stage_idx]

    def global_now(self) -> float:
        """Global virtual time: shards run in parallel, so the makespan."""
        return max((w.now() for w in self.workers), default=0.0)

    def _start_stage(self) -> None:
        stage = self.stage
        # Freeze the channels this stage reads into shard-local tables.
        for channel_name in stage.consumes:
            self._materialize_channel(self.channels[channel_name])
        if stage.output == SHUFFLE:
            self.channels[stage.channel] = ChannelState(
                name=stage.channel,
                key_column=stage.key_column,
                key_modulus=stage.key_modulus,
                schema_names=stage.schema_names,
                bytes_per_tuple=stage.bytes_per_tuple,
                buffers=[[] for _ in range(self.num_shards)],
            )
        for k, worker in enumerate(self.workers):
            worker.start_fragment(stage.fragment_for(k, self.num_shards))
        self.frag_done = [False] * self.num_shards
        self._stage_started = True
        if self.tracer.enabled:
            self.tracer.event(
                "shard.stage_start",
                ts=self.global_now(),
                stage=stage.index,
                output=stage.output,
            )

    def _materialize_channel(self, channel: ChannelState) -> None:
        if channel.materialized:
            return
        for k, worker in enumerate(self.workers):
            worker.create_channel_table(
                channel.name,
                channel.schema_names,
                channel.bytes_per_tuple,
                channel.buffers[k],
            )
        channel.materialized = True

    def _finish_stage(self) -> None:
        stage = self.stage
        for channel_name in stage.consumes:
            # The consuming stage is over; the channel's rows are no
            # longer part of any future cut.
            del self.channels[channel_name]
        if self.stage_idx + 1 < len(self.shard_plan.stages):
            self.stage_idx += 1
            self._start_stage()
        else:
            self.done = True
            self._stage_started = False
            if self.tracer.enabled:
                self.tracer.event(
                    "shard.query_done",
                    ts=self.global_now(),
                    rows=self.delivered_before + len(self.output_rows),
                )

    def run_pass(self) -> list:
        """One round-robin pass: a quantum on every unfinished shard.

        Returns the rows delivered to the client by this pass (empty for
        shuffle stages). Between passes the coordinator is at a *pass
        boundary* — the only place :meth:`suspend_global` may cut.
        """
        if self.done:
            return []
        stage = self.stage
        delivered: list = []
        for k, worker in enumerate(self.workers):
            if self.frag_done[k]:
                continue
            result = worker.run_quantum(self.quantum_rows)
            rows = [tuple(r) for r in result["rows"]]
            if stage.output == SHUFFLE:
                self.channels[stage.channel].route(rows, self.num_shards)
            else:
                delivered.extend(rows)
            if result["done"]:
                self.frag_done[k] = True
        self.output_rows.extend(delivered)
        if all(self.frag_done):
            self._finish_stage()
        if self.tracer.enabled:
            # The pass boundary is also the progress-publication point:
            # the same safe point suspend_global may cut at.
            self.tracer.event(
                "query.progress", ts=self.global_now(), **self.progress()
            )
        return delivered

    def progress(self) -> dict:
        """Global fraction-complete, stage-weighted across the plan.

        Each stage contributes ``1 / num_stages``; the in-flight stage
        contributes the mean of its fragments' fractions (a finished
        fragment counts 1.0). Cardinality estimates come from each
        shard's own planner statistics (:mod:`repro.obs.progress`).
        """
        num_stages = len(self.shard_plan.stages)
        if self.done:
            fraction = 1.0
        elif not self._stage_started:
            fraction = round(self.stage_idx / num_stages, 6)
        else:
            fracs = [
                1.0
                if self.frag_done[k]
                else self.workers[k].progress()["fraction"]
                for k in range(self.num_shards)
            ]
            stage_fraction = sum(fracs) / len(fracs) if fracs else 1.0
            fraction = round(
                (self.stage_idx + stage_fraction) / num_stages, 6
            )
        return {
            # The trace identity doubles as the query label: a sharded
            # query has no session name, but its trace_id is stable
            # across suspend/resume and unique per logical query.
            "query": f"gq:{self.trace_id}",
            "fraction": fraction,
            "stage": self.stage_idx,
            "stages": num_stages,
            "rows_total": self.delivered_before + len(self.output_rows),
        }

    def run(self, max_rows: Optional[int] = None) -> list:
        """Run passes until completion (or ``max_rows`` new deliveries)."""
        start = len(self.output_rows)
        while not self.done:
            self.run_pass()
            if max_rows is not None and len(self.output_rows) - start >= max_rows:
                break
        return self.output_rows[start:]

    # ------------------------------------------------------------------
    # The two-phase consistent-cut suspend
    # ------------------------------------------------------------------
    def arm_shard_fault(self, shard: int, kind: str, point: str) -> None:
        """Arm a crash/torn fault on one shard's image commit or resume."""
        self.workers[shard].arm_fault(kind, point)

    def arm_shardset_fault(self, injector: FaultInjector) -> None:
        """Arm faults on the coordinator's own shard-set commit."""
        self._shardset_fault = injector

    def _allocate_budgets(self, budget: float, running: list) -> dict:
        """Split the global budget over running shards (phase 1)."""
        estimates = {k: self.workers[k].estimate_suspend_cost() for k in running}
        if math.isinf(budget):
            return {k: math.inf for k in running}
        floor_total = sum(estimates[k]["floor"] for k in running)
        if floor_total > budget:
            raise SuspendBudgetInfeasibleError(
                f"global suspend budget {budget} cannot cover the "
                f"all-GoBack floor {floor_total:.3f} across "
                f"{len(running)} running shards"
            )
        surplus = budget - floor_total
        need = {
            k: max(0.0, estimates[k]["est"] - estimates[k]["floor"])
            for k in running
        }
        total_need = sum(need.values())
        budgets = {}
        for k in running:
            if total_need > 0:
                share = surplus * need[k] / total_need
            else:
                share = surplus / len(running)
            budgets[k] = estimates[k]["floor"] + share
        return budgets

    def suspend_global(
        self,
        root: str,
        budget: float = math.inf,
        gid: Optional[str] = None,
        meta: Optional[dict] = None,
    ) -> GlobalSuspendReport:
        """Suspend every shard to one durable, globally consistent cut."""
        if self.done:
            raise ShardError("query already complete; nothing to suspend")
        if not self._stage_started:
            raise ShardError("no stage in flight; nothing to suspend")
        gid = gid or f"gq-{uuid.uuid4().hex[:12]}"
        running = [k for k in range(self.num_shards) if not self.frag_done[k]]
        report = GlobalSuspendReport(gid=gid, budget=budget)
        # Phase 1: the pass boundary is the quiesce point — channels are
        # frozen, every session is at a safe point. Plan the split.
        report.budgets = self._allocate_budgets(budget, running)
        if self.tracer.enabled:
            self.tracer.event(
                "shard.suspend_prepare",
                ts=self.global_now(),
                gid=gid,
                budget=budget,
                running=len(running),
            )
        # Phase 2: commit member images, then the shard-set manifest.
        members = []
        for k in range(self.num_shards):
            if self.frag_done[k]:
                members.append({"shard": k, "status": MEMBER_DONE})
                continue
            result = self.workers[k].suspend_to_image(
                root,
                shard_image_id(gid, k),
                budget=report.budgets[k],
                meta={"shard_group": gid, "shard": k},
            )
            report.costs[k] = result["suspend_cost"]
            members.append(
                {
                    "shard": k,
                    "status": MEMBER_RUNNING,
                    "image_id": result["image_id"],
                }
            )
        channels_doc = {
            "gid": gid,
            "stage_index": self.stage_idx,
            "frag_done": list(self.frag_done),
            "delivered_rows": self.delivered_before + len(self.output_rows),
            "plan": spec_to_dict(self.plan_spec),
            "catalog": self.catalog.to_dict(),
            "quantum_rows": self.quantum_rows,
            # The trace identity survives the cut: a resuming coordinator
            # (any process) rejoins the same distributed trace.
            "trace_id": self.trace_id,
            "channels": {
                name: ch.to_dict() for name, ch in sorted(self.channels.items())
            },
        }
        write_shardset(
            root,
            gid,
            channels_doc,
            members,
            meta=meta,
            injector=self._shardset_fault,
        )
        self.done = True  # this incarnation is over; resume from the cut
        self._stage_started = False
        cut_ts = self.global_now()  # before the workers go away
        self.collect_shard_traces()
        for worker in self.workers:
            worker.close()
        if self.tracer.enabled:
            self.tracer.event(
                "shard.suspend_commit",
                ts=cut_ts,
                gid=gid,
                latency=round(report.latency, 6),
                total_cost=round(report.total_cost, 6),
            )
        return report

    # ------------------------------------------------------------------
    # Resume from a committed cut
    # ------------------------------------------------------------------
    @classmethod
    def resume(
        cls,
        db: Database,
        root: str,
        gid: str,
        config: Optional[EngineConfig] = None,
        tracer=None,
        worker_mode: str = "inproc",
    ) -> "ShardCoordinator":
        """Rebuild a coordinator from shard-set ``gid`` under ``root``.

        ``db`` is the deterministically rebuilt source database (same
        rows the original was sharded from — the cross-process recipe
        convention). The shard-set is verified end to end first; any
        defect raises :class:`InconsistentCutError` before any shard is
        touched.
        """
        store = ImageStore(root)
        doc, channels_doc = load_shardset(store, gid)
        catalog = ShardedCatalog.from_dict(channels_doc["catalog"])
        plan_spec = spec_from_dict(channels_doc["plan"])
        coord = cls(
            db,
            plan_spec,
            catalog=catalog,
            config=config,
            tracer=tracer,
            worker_mode=worker_mode,
            quantum_rows=channels_doc.get("quantum_rows", 64),
            trace_id=channels_doc.get("trace_id"),
            _start=False,
        )
        coord.stage_idx = channels_doc["stage_index"]
        coord.frag_done = [bool(f) for f in channels_doc["frag_done"]]
        coord.delivered_before = channels_doc["delivered_rows"]
        coord.channels = {
            name: ChannelState.from_dict(data)
            for name, data in channels_doc["channels"].items()
        }
        # Rebuild materialized channel tables before any fragment touches
        # them (resumed scans hold cursors into these files).
        for channel in coord.channels.values():
            if channel.materialized:
                channel.materialized = False
                coord._materialize_channel(channel)
        members = {m["shard"]: m for m in doc["members"]}
        for k in range(coord.num_shards):
            member = members[k]
            if member["status"] == MEMBER_RUNNING:
                coord.workers[k].resume_fragment(root, member["image_id"])
        coord._stage_started = True
        if coord.tracer.enabled:
            coord.tracer.event(
                "shard.resume",
                ts=coord.global_now(),
                gid=gid,
                stage=coord.stage_idx,
            )
        return coord

    def collect_shard_traces(self) -> dict:
        """Drain every worker's buffered trace records (idempotent).

        Process-backed workers ship their child-side records over the
        pipe and clear them, so repeated calls never duplicate; the
        accumulated streams feed :func:`repro.obs.merge.merge_shard_trace`
        together with the coordinator's own records.
        """
        for k, worker in enumerate(self.workers):
            records = worker.drain_trace()
            if records:
                self.shard_traces.setdefault(k, []).extend(records)
        return self.shard_traces

    def close(self) -> None:
        self.collect_shard_traces()
        for worker in self.workers:
            worker.close()
